"""AlexNet-style convolutional network scaled for small images (Fig. 3c)."""

from __future__ import annotations

from ..nn.module import Module, Sequential
from ..nn.layers import Conv2d, Linear, MaxPool2d, ReLU, Dropout, Flatten
from ..nn.tensor import Tensor

__all__ = ["AlexNetS"]


class AlexNetS(Module):
    """A small AlexNet: five conv layers, three fully connected layers.

    The original 224x224 geometry is rescaled to small synthetic-CIFAR
    inputs; the layer sequence (conv-pool-conv-pool-conv-conv-conv-pool,
    then FC-FC-FC with dropout) follows AlexNet.  ``width`` scales all
    channel counts.
    """

    def __init__(self, num_classes: int = 10, in_channels: int = 3,
                 image_size: int = 16, width: int = 8, dropout_rate: float = 0.0,
                 rng=None):
        super().__init__()
        if image_size % 8 != 0:
            raise ValueError("image_size must be divisible by 8 (three 2x2 pools)")
        w = width
        self.features = Sequential(
            Conv2d(in_channels, w, kernel_size=3, padding=1, rng=rng),
            ReLU(),
            Dropout(dropout_rate, rng=rng),
            MaxPool2d(2),
            Conv2d(w, w * 2, kernel_size=3, padding=1, rng=rng),
            ReLU(),
            Dropout(dropout_rate, rng=rng),
            MaxPool2d(2),
            Conv2d(w * 2, w * 4, kernel_size=3, padding=1, rng=rng),
            ReLU(),
            Dropout(dropout_rate, rng=rng),
            Conv2d(w * 4, w * 4, kernel_size=3, padding=1, rng=rng),
            ReLU(),
            Dropout(dropout_rate, rng=rng),
            Conv2d(w * 4, w * 2, kernel_size=3, padding=1, rng=rng),
            ReLU(),
            Dropout(dropout_rate, rng=rng),
            MaxPool2d(2),
        )
        spatial = image_size // 8
        flat = w * 2 * spatial * spatial
        self.classifier = Sequential(
            Flatten(),
            Linear(flat, 128, rng=rng),
            ReLU(),
            Dropout(dropout_rate, rng=rng),
            Linear(128, 64, rng=rng),
            ReLU(),
            Dropout(dropout_rate, rng=rng),
            Linear(64, num_classes, rng=rng),
        )
        self.num_classes = num_classes

    def forward(self, x: Tensor) -> Tensor:
        return self.classifier(self.features(x))
