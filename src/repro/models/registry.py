"""Model registry: build any paper model from its name.

The benchmark harness and the examples refer to models by the names used in
Figure 3 ("mlp", "lenet", "alexnet", "resnet18", "vgg11", "preact18",
"preact50", "preact152", "stn", "detector"); this registry maps those names
to constructors with sensible CPU-scale defaults.
"""

from __future__ import annotations

from typing import Callable

from .mlp import build_mlp
from .lenet import LeNet5
from .alexnet import AlexNetS
from .vgg import VGG11S
from .resnet import ResNet18S
from .preact_resnet import preact_resnet18, preact_resnet50, preact_resnet152
from .stn import SpatialTransformerClassifier
from .detection import TinyDetector

__all__ = ["build_model", "available_models"]


def _mlp_factory(num_classes: int, in_channels: int, image_size: int, **kwargs):
    input_dim = in_channels * image_size * image_size
    return build_mlp(input_dim, depth=3, width=128, num_classes=num_classes, **kwargs)


_REGISTRY: dict[str, Callable] = {
    "mlp": _mlp_factory,
    "lenet": lambda num_classes, in_channels, image_size, **kw:
        LeNet5(num_classes=num_classes, in_channels=in_channels, image_size=image_size, **kw),
    "alexnet": lambda num_classes, in_channels, image_size, **kw:
        AlexNetS(num_classes=num_classes, in_channels=in_channels, image_size=image_size, **kw),
    "vgg11": lambda num_classes, in_channels, image_size, **kw:
        VGG11S(num_classes=num_classes, in_channels=in_channels, **kw),
    "resnet18": lambda num_classes, in_channels, image_size, **kw:
        ResNet18S(num_classes=num_classes, in_channels=in_channels, **kw),
    "preact18": lambda num_classes, in_channels, image_size, **kw:
        preact_resnet18(num_classes=num_classes, in_channels=in_channels, **kw),
    "preact50": lambda num_classes, in_channels, image_size, **kw:
        preact_resnet50(num_classes=num_classes, in_channels=in_channels, **kw),
    "preact152": lambda num_classes, in_channels, image_size, **kw:
        preact_resnet152(num_classes=num_classes, in_channels=in_channels, **kw),
    "stn": lambda num_classes, in_channels, image_size, **kw:
        SpatialTransformerClassifier(num_classes=num_classes, in_channels=in_channels,
                                     image_size=image_size, **kw),
    "detector": lambda num_classes, in_channels, image_size, **kw:
        TinyDetector(image_size=image_size, in_channels=in_channels, **kw),
}


def available_models() -> list[str]:
    """Names accepted by :func:`build_model`."""
    return sorted(_REGISTRY)


def build_model(name: str, num_classes: int = 10, in_channels: int = 1,
                image_size: int = 16, **kwargs):
    """Instantiate a model by its Figure-3 name."""
    key = name.lower()
    if key not in _REGISTRY:
        raise ValueError(f"unknown model {name!r}; available: {available_models()}")
    return _REGISTRY[key](num_classes=num_classes, in_channels=in_channels,
                          image_size=image_size, **kwargs)
