"""TinyDetector: a small anchor-free single-stage pedestrian detector.

The paper uses Mask-RCNN on PennFudanPed; a two-stage instance-segmentation
network is far outside a CPU/numpy budget, but the Figure 3(j) / Figure 4
comparison only requires *a detector whose mAP degrades as its weights
drift*.  TinyDetector is a CenterNet-style dense predictor: a convolutional
backbone produces a G x G grid of cells, and each cell predicts an
objectness logit plus a box parameterised as (dx, dy, log w, log h) relative
to the cell centre.  Ground-truth boxes are assigned to the cell containing
their centre; inference applies a score threshold followed by non-maximum
suppression.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..nn import functional as F
from ..nn.module import Module, Sequential
from ..nn.layers import Conv2d, ReLU, Dropout, MaxPool2d
from ..nn.losses import bce_with_logits
from ..nn.tensor import Tensor

__all__ = ["TinyDetector", "Detection", "box_iou", "non_max_suppression"]


@dataclass
class Detection:
    """One predicted box with its confidence score."""

    box: np.ndarray    # (4,) x1, y1, x2, y2 in pixels
    score: float


def box_iou(box_a: np.ndarray, box_b: np.ndarray) -> float:
    """Intersection-over-union of two (x1, y1, x2, y2) boxes."""
    x1 = max(box_a[0], box_b[0])
    y1 = max(box_a[1], box_b[1])
    x2 = min(box_a[2], box_b[2])
    y2 = min(box_a[3], box_b[3])
    intersection = max(0.0, x2 - x1) * max(0.0, y2 - y1)
    area_a = max(0.0, box_a[2] - box_a[0]) * max(0.0, box_a[3] - box_a[1])
    area_b = max(0.0, box_b[2] - box_b[0]) * max(0.0, box_b[3] - box_b[1])
    union = area_a + area_b - intersection
    return float(intersection / union) if union > 0 else 0.0


def non_max_suppression(detections: list[Detection], iou_threshold: float = 0.4) -> list[Detection]:
    """Greedy NMS keeping the highest-scoring box in each overlapping cluster."""
    ordered = sorted(detections, key=lambda d: d.score, reverse=True)
    kept: list[Detection] = []
    for candidate in ordered:
        if all(box_iou(candidate.box, existing.box) < iou_threshold for existing in kept):
            kept.append(candidate)
    return kept


class TinyDetector(Module):
    """Dense single-stage detector over a ``grid_size`` x ``grid_size`` cell grid."""

    def __init__(self, image_size: int = 32, in_channels: int = 3, width: int = 8,
                 grid_size: int = 8, dropout_rate: float = 0.0, rng=None):
        super().__init__()
        if image_size % grid_size != 0:
            raise ValueError("image_size must be divisible by grid_size")
        downsample = image_size // grid_size
        if downsample not in (2, 4, 8):
            raise ValueError("image_size / grid_size must be 2, 4 or 8")
        layers = Sequential(
            Conv2d(in_channels, width, 3, padding=1, rng=rng),
            ReLU(),
            Dropout(dropout_rate, rng=rng),
            MaxPool2d(2),
        )
        channels = width
        remaining = downsample // 2
        stage = 0
        while remaining > 1:
            layers.add(Conv2d(channels, channels * 2, 3, padding=1, rng=rng),
                       name=f"conv{stage}")
            layers.add(ReLU(), name=f"act{stage}")
            layers.add(Dropout(dropout_rate, rng=rng), name=f"dropout{stage}")
            layers.add(MaxPool2d(2), name=f"pool{stage}")
            channels *= 2
            remaining //= 2
            stage += 1
        self.backbone = layers
        # 5 output channels per cell: objectness, dx, dy, log w, log h.
        self.head = Conv2d(channels, 5, 3, padding=1, rng=rng)
        self.image_size = image_size
        self.grid_size = grid_size
        self.cell = image_size / grid_size

    # ------------------------------------------------------------------ #
    # Forward / encoding
    # ------------------------------------------------------------------ #
    def forward(self, images: Tensor) -> Tensor:
        """Raw prediction map of shape (N, 5, grid, grid)."""
        return self.head(self.backbone(images))

    def encode_targets(self, boxes_per_image: list[np.ndarray]) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Build dense training targets.

        Returns ``(objectness, box_targets, mask)`` with shapes
        ``(N, grid, grid)``, ``(N, 4, grid, grid)`` and ``(N, grid, grid)``.
        """
        n = len(boxes_per_image)
        g = self.grid_size
        objectness = np.zeros((n, g, g))
        box_targets = np.zeros((n, 4, g, g))
        mask = np.zeros((n, g, g))
        for index, boxes in enumerate(boxes_per_image):
            for box in boxes:
                cx = (box[0] + box[2]) / 2.0
                cy = (box[1] + box[3]) / 2.0
                col = min(g - 1, int(cx / self.cell))
                row = min(g - 1, int(cy / self.cell))
                width = max(box[2] - box[0], 1.0)
                height = max(box[3] - box[1], 1.0)
                objectness[index, row, col] = 1.0
                mask[index, row, col] = 1.0
                box_targets[index, 0, row, col] = cx / self.cell - col
                box_targets[index, 1, row, col] = cy / self.cell - row
                box_targets[index, 2, row, col] = np.log(width / self.cell)
                box_targets[index, 3, row, col] = np.log(height / self.cell)
        return objectness, box_targets, mask

    def loss(self, images: Tensor, boxes_per_image: list[np.ndarray]) -> Tensor:
        """Objectness BCE + masked smooth-L1 box regression."""
        predictions = self.forward(images)
        objectness_logits = predictions[:, 0, :, :]
        box_predictions = predictions[:, 1:, :, :]
        objectness, box_targets, mask = self.encode_targets(boxes_per_image)
        obj_loss = bce_with_logits(objectness_logits, objectness)
        positives = float(mask.sum())
        if positives > 0:
            # Smooth-L1 on assigned cells only, averaged over the positives.
            mask4 = Tensor(np.broadcast_to(mask[:, None, :, :], box_targets.shape).copy())
            diff = (box_predictions - Tensor(box_targets)) * mask4
            abs_diff = diff.abs()
            quadratic = diff * diff * 0.5
            linear = abs_diff - 0.5
            small = Tensor((abs_diff.data < 1.0).astype(np.float64))
            elementwise = quadratic * small + linear * (Tensor(1.0) - small)
            box_loss = elementwise.sum() * (1.0 / (4.0 * positives))
        else:
            box_loss = Tensor(0.0)
        return obj_loss + box_loss * 0.5

    # ------------------------------------------------------------------ #
    # Decoding
    # ------------------------------------------------------------------ #
    def decode(self, predictions: np.ndarray, score_threshold: float = 0.5,
               iou_threshold: float = 0.4, max_detections: int = 10) -> list[list[Detection]]:
        """Convert a raw prediction map into per-image detection lists."""
        results: list[list[Detection]] = []
        g = self.grid_size
        for image_prediction in predictions:
            scores = 1.0 / (1.0 + np.exp(-image_prediction[0]))
            detections: list[Detection] = []
            candidate_cells = np.argwhere(scores >= score_threshold)
            # Fall back to the best few cells if nothing clears the threshold,
            # so mAP can still rank predictions of a degraded model.
            if candidate_cells.size == 0:
                flat = np.argsort(scores.ravel())[::-1][:3]
                candidate_cells = np.stack(np.unravel_index(flat, scores.shape), axis=1)
            for row, col in candidate_cells:
                dx, dy = image_prediction[1, row, col], image_prediction[2, row, col]
                log_w = np.clip(image_prediction[3, row, col], -4.0, 4.0)
                log_h = np.clip(image_prediction[4, row, col], -4.0, 4.0)
                cx = (col + dx) * self.cell
                cy = (row + dy) * self.cell
                width = np.exp(log_w) * self.cell
                height = np.exp(log_h) * self.cell
                box = np.array([cx - width / 2, cy - height / 2,
                                cx + width / 2, cy + height / 2])
                box = np.clip(box, 0, self.image_size)
                detections.append(Detection(box=box, score=float(scores[row, col])))
            detections = non_max_suppression(detections, iou_threshold)[:max_detections]
            results.append(detections)
        return results

    def detect(self, images: np.ndarray, score_threshold: float = 0.5) -> list[list[Detection]]:
        """End-to-end inference on an (N, 3, H, W) image batch."""
        from ..nn.tensor import no_grad
        self.eval()
        with no_grad():
            predictions = self.forward(Tensor(images)).data
        return self.decode(predictions, score_threshold=score_threshold)
