"""VGG-11 style convolutional network scaled for small images (Fig. 3e)."""

from __future__ import annotations

from ..nn.module import Module, Sequential
from ..nn.layers import Conv2d, Linear, MaxPool2d, ReLU, Dropout, Flatten, GlobalAvgPool2d
from ..nn.tensor import Tensor

__all__ = ["VGG11S"]

# VGG-11 configuration: channel multiplier per conv layer, "M" = max pool.
_VGG11_CONFIG = [1, "M", 2, "M", 4, 4, "M", 8, 8, "M"]


class VGG11S(Module):
    """A narrow VGG-11: 8 convolutional layers in 4 stages + classifier.

    Channel counts are ``width`` times the standard VGG multipliers
    (64/128/256/512 become width·1/2/4/8).  Global average pooling replaces
    the 7x7 pooling so the model works on small inputs.
    """

    def __init__(self, num_classes: int = 10, in_channels: int = 3,
                 width: int = 8, dropout_rate: float = 0.0, rng=None):
        super().__init__()
        layers = Sequential()
        channels = in_channels
        conv_index = 0
        for item in _VGG11_CONFIG:
            if item == "M":
                layers.add(MaxPool2d(2), name=f"pool{conv_index}")
                continue
            out_channels = width * int(item)
            layers.add(Conv2d(channels, out_channels, kernel_size=3, padding=1, rng=rng),
                       name=f"conv{conv_index}")
            layers.add(ReLU(), name=f"act{conv_index}")
            layers.add(Dropout(dropout_rate, rng=rng), name=f"dropout{conv_index}")
            channels = out_channels
            conv_index += 1
        self.features = layers
        self.classifier = Sequential(
            GlobalAvgPool2d(),
            Flatten(),
            Linear(channels, 64, rng=rng),
            ReLU(),
            Dropout(dropout_rate, rng=rng),
            Linear(64, num_classes, rng=rng),
        )
        self.num_classes = num_classes

    def forward(self, x: Tensor) -> Tensor:
        return self.classifier(self.features(x))
