"""LeNet-5 style convolutional network (MNIST experiments, Fig. 3b)."""

from __future__ import annotations

from ..nn.module import Module, Sequential
from ..nn.layers import Conv2d, Linear, MaxPool2d, ReLU, Dropout, Flatten
from ..nn.tensor import Tensor

__all__ = ["LeNet5"]


class LeNet5(Module):
    """A LeNet-5 variant for small single-channel images.

    The classic architecture (two conv+pool stages followed by three fully
    connected layers) is preserved; channel widths scale with ``width`` and
    the spatial geometry adapts to ``image_size`` so that the same class
    works for 16x16 synthetic digits and 28x28 MNIST-sized inputs.  Dropout
    layers (rate 0 by default) follow every trainable stage for BayesFT.
    """

    def __init__(self, num_classes: int = 10, in_channels: int = 1,
                 image_size: int = 16, width: int = 6, dropout_rate: float = 0.0,
                 rng=None):
        super().__init__()
        if image_size % 4 != 0:
            raise ValueError("image_size must be divisible by 4 (two 2x2 pools)")
        c1, c2 = width, width * 2
        self.features = Sequential(
            Conv2d(in_channels, c1, kernel_size=3, padding=1, rng=rng),
            ReLU(),
            Dropout(dropout_rate, rng=rng),
            MaxPool2d(2),
            Conv2d(c1, c2, kernel_size=3, padding=1, rng=rng),
            ReLU(),
            Dropout(dropout_rate, rng=rng),
            MaxPool2d(2),
        )
        spatial = image_size // 4
        flat = c2 * spatial * spatial
        self.classifier = Sequential(
            Flatten(),
            Linear(flat, 64, rng=rng),
            ReLU(),
            Dropout(dropout_rate, rng=rng),
            Linear(64, 32, rng=rng),
            ReLU(),
            Dropout(dropout_rate, rng=rng),
            Linear(32, num_classes, rng=rng),
        )
        self.num_classes = num_classes

    def forward(self, x: Tensor) -> Tensor:
        return self.classifier(self.features(x))
