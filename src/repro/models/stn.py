"""Spatial-transformer classifier for traffic-sign recognition (Fig. 3i).

The paper follows Arcos-Garcia et al. and uses a spatial transformer network
for GTSRB: a small localisation network predicts a 2x3 affine transform that
is applied to the input image before classification, letting the model
normalise the sign's randomised position and scale.

The affine grid sampling is implemented with differentiable bilinear
interpolation so that gradients flow both into the classification trunk and
back through the sampling coordinates into the localisation network, exactly
as in Jaderberg et al.'s original formulation.
"""

from __future__ import annotations

import numpy as np

from ..nn import functional as F
from ..nn.module import Module, Sequential
from ..nn.layers import Conv2d, Linear, MaxPool2d, ReLU, Dropout, Flatten
from ..nn.tensor import Tensor

__all__ = ["SpatialTransformerClassifier", "affine_grid_sample"]


def affine_grid_sample(images: Tensor, theta: Tensor) -> Tensor:
    """Sample ``images`` (N, C, H, W) under affine transforms ``theta`` (N, 2, 3).

    The sampling grid covers the normalised square [-1, 1]²; bilinear
    interpolation is differentiable with respect to both the image values and
    the transform parameters.
    """
    n, c, h, w = images.shape
    if theta.shape != (n, 2, 3):
        raise ValueError(f"theta must have shape (N, 2, 3), got {theta.shape}")

    ys = np.linspace(-1.0, 1.0, h)
    xs = np.linspace(-1.0, 1.0, w)
    grid_y, grid_x = np.meshgrid(ys, xs, indexing="ij")
    # Homogeneous target coordinates, shape (3, H*W).
    base_grid = np.stack([grid_x.ravel(), grid_y.ravel(), np.ones(h * w)])

    theta_data = theta.data                       # (N, 2, 3)
    source = theta_data @ base_grid               # (N, 2, H*W) in [-1, 1]
    source_x = (source[:, 0, :] + 1.0) * (w - 1) / 2.0
    source_y = (source[:, 1, :] + 1.0) * (h - 1) / 2.0

    x0 = np.floor(source_x).astype(np.int64)
    y0 = np.floor(source_y).astype(np.int64)
    x1, y1 = x0 + 1, y0 + 1
    wx = source_x - x0
    wy = source_y - y0

    x0c = np.clip(x0, 0, w - 1)
    x1c = np.clip(x1, 0, w - 1)
    y0c = np.clip(y0, 0, h - 1)
    y1c = np.clip(y1, 0, h - 1)

    batch_index = np.arange(n)[:, None]
    image_data = images.data
    # Gather the four corners for every channel: result shapes (N, C, H*W).
    def gather(y_index, x_index):
        return image_data[batch_index[:, None, :], np.arange(c)[None, :, None],
                          y_index[:, None, :], x_index[:, None, :]]

    v00 = gather(y0c, x0c)
    v01 = gather(y0c, x1c)
    v10 = gather(y1c, x0c)
    v11 = gather(y1c, x1c)

    wx_b = wx[:, None, :]
    wy_b = wy[:, None, :]
    out_data = (v00 * (1 - wx_b) * (1 - wy_b) + v01 * wx_b * (1 - wy_b)
                + v10 * (1 - wx_b) * wy_b + v11 * wx_b * wy_b)
    out_data = out_data.reshape(n, c, h, w)

    def backward(grad: np.ndarray) -> None:
        grad_flat = grad.reshape(n, c, h * w)
        if images.requires_grad:
            grad_images = np.zeros_like(image_data)
            contributions = (
                (y0c, x0c, (1 - wx_b) * (1 - wy_b)),
                (y0c, x1c, wx_b * (1 - wy_b)),
                (y1c, x0c, (1 - wx_b) * wy_b),
                (y1c, x1c, wx_b * wy_b),
            )
            for y_index, x_index, weight in contributions:
                np.add.at(grad_images,
                          (batch_index[:, None, :], np.arange(c)[None, :, None],
                           y_index[:, None, :], x_index[:, None, :]),
                          grad_flat * weight)
            images._accumulate(grad_images)
        if theta.requires_grad:
            # d(out)/d(source_x) and d(source_y) from the bilinear weights.
            d_dx = ((v01 - v00) * (1 - wy_b) + (v11 - v10) * wy_b)
            d_dy = ((v10 - v00) * (1 - wx_b) + (v11 - v01) * wx_b)
            grad_sx = (grad_flat * d_dx).sum(axis=1) * (w - 1) / 2.0   # (N, H*W)
            grad_sy = (grad_flat * d_dy).sum(axis=1) * (h - 1) / 2.0
            grad_source = np.stack([grad_sx, grad_sy], axis=1)         # (N, 2, H*W)
            grad_theta = grad_source @ base_grid.T                     # (N, 2, 3)
            theta._accumulate(grad_theta)

    return Tensor._make(out_data, (images, theta), backward)


class SpatialTransformerClassifier(Module):
    """Localisation network + affine sampler + convolutional classifier."""

    def __init__(self, num_classes: int = 43, in_channels: int = 3,
                 image_size: int = 16, width: int = 8, dropout_rate: float = 0.0,
                 rng=None):
        super().__init__()
        if image_size % 4 != 0:
            raise ValueError("image_size must be divisible by 4")
        loc_spatial = image_size // 4
        self.localization = Sequential(
            Conv2d(in_channels, width, 3, padding=1, rng=rng),
            ReLU(),
            MaxPool2d(2),
            Conv2d(width, width, 3, padding=1, rng=rng),
            ReLU(),
            MaxPool2d(2),
            Flatten(),
            Linear(width * loc_spatial * loc_spatial, 32, rng=rng),
            ReLU(),
        )
        # The transform head starts at the identity transform, as recommended
        # by the spatial-transformer paper.
        self.theta_head = Linear(32, 6, rng=rng)
        self.theta_head.weight.data *= 0.0
        self.theta_head.bias.data = np.array([1.0, 0.0, 0.0, 0.0, 1.0, 0.0])

        spatial = image_size // 4
        self.classifier = Sequential(
            Conv2d(in_channels, width, 3, padding=1, rng=rng),
            ReLU(),
            Dropout(dropout_rate, rng=rng),
            MaxPool2d(2),
            Conv2d(width, width * 2, 3, padding=1, rng=rng),
            ReLU(),
            Dropout(dropout_rate, rng=rng),
            MaxPool2d(2),
            Flatten(),
            Linear(width * 2 * spatial * spatial, 64, rng=rng),
            ReLU(),
            Dropout(dropout_rate, rng=rng),
            Linear(64, num_classes, rng=rng),
        )
        self.num_classes = num_classes

    def transform(self, x: Tensor) -> Tensor:
        """Apply the predicted affine transform to the input images."""
        features = self.localization(x)
        theta = self.theta_head(features).reshape(x.shape[0], 2, 3)
        return affine_grid_sample(x, theta)

    def forward(self, x: Tensor) -> Tensor:
        return self.classifier(self.transform(x))
