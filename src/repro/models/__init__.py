"""Model zoo: the architectures evaluated in the paper, scaled for CPU.

Every classifier inserts a :class:`~repro.nn.layers.dropout.Dropout` layer
after each trainable block (with rate 0 by default), matching the BayesFT
search-space design: the search only re-configures those dropout rates.
"""

from .mlp import MLP, build_mlp
from .lenet import LeNet5
from .alexnet import AlexNetS
from .vgg import VGG11S
from .resnet import ResNet18S
from .preact_resnet import PreActResNetS, preact_resnet18, preact_resnet50, preact_resnet152
from .stn import SpatialTransformerClassifier
from .detection import TinyDetector
from .registry import build_model, available_models

__all__ = [
    "MLP", "build_mlp", "LeNet5", "AlexNetS", "VGG11S", "ResNet18S",
    "PreActResNetS", "preact_resnet18", "preact_resnet50", "preact_resnet152",
    "SpatialTransformerClassifier", "TinyDetector",
    "build_model", "available_models",
]
