"""Pre-activation ResNets (He et al., ECCV 2016) — Fig. 3(f)-(h).

The paper compares PreAct-18, PreAct-50 and PreAct-152 to show that deeper
networks degrade faster under weight drift.  The block counts follow the
original paper exactly (18: 2-2-2-2 basic, 50: 3-4-6-3 bottleneck,
152: 3-8-36-3 bottleneck); channel widths are scaled down by ``width`` so the
models train on CPU.  A ``depth_scale`` argument lets benchmarks shrink the
block counts proportionally when wall-clock budget matters while preserving
the 18 < 50 < 152 depth ordering.
"""

from __future__ import annotations

import math

from ..nn import functional as F
from ..nn.module import Module, ModuleList, Sequential
from ..nn.layers import (
    Conv2d, Linear, Dropout, Flatten, GlobalAvgPool2d, BatchNorm2d, Identity,
)
from ..nn.tensor import Tensor

__all__ = ["PreActResNetS", "preact_resnet18", "preact_resnet50", "preact_resnet152"]


class PreActBasicBlock(Module):
    """Pre-activation basic block: BN-ReLU-conv-BN-ReLU-conv + skip."""

    expansion = 1

    def __init__(self, in_channels: int, out_channels: int, stride: int = 1,
                 dropout_rate: float = 0.0, use_norm: bool = True, rng=None):
        super().__init__()
        self.norm1 = BatchNorm2d(in_channels) if use_norm else Identity()
        self.conv1 = Conv2d(in_channels, out_channels, 3, stride=stride, padding=1,
                            bias=not use_norm, rng=rng)
        self.norm2 = BatchNorm2d(out_channels) if use_norm else Identity()
        self.conv2 = Conv2d(out_channels, out_channels, 3, padding=1,
                            bias=not use_norm, rng=rng)
        self.dropout = Dropout(dropout_rate, rng=rng)
        if stride != 1 or in_channels != out_channels:
            self.shortcut = Conv2d(in_channels, out_channels, 1, stride=stride, rng=rng)
        else:
            self.shortcut = Identity()

    def forward(self, x: Tensor) -> Tensor:
        pre = F.relu(self.norm1(x))
        out = self.conv1(pre)
        out = self.dropout(out)
        out = self.conv2(F.relu(self.norm2(out)))
        return out + self.shortcut(x)


class PreActBottleneckBlock(Module):
    """Pre-activation bottleneck block (1x1 reduce, 3x3, 1x1 expand)."""

    expansion = 4

    def __init__(self, in_channels: int, out_channels: int, stride: int = 1,
                 dropout_rate: float = 0.0, use_norm: bool = True, rng=None):
        super().__init__()
        expanded = out_channels * self.expansion
        self.norm1 = BatchNorm2d(in_channels) if use_norm else Identity()
        self.conv1 = Conv2d(in_channels, out_channels, 1, bias=not use_norm, rng=rng)
        self.norm2 = BatchNorm2d(out_channels) if use_norm else Identity()
        self.conv2 = Conv2d(out_channels, out_channels, 3, stride=stride, padding=1,
                            bias=not use_norm, rng=rng)
        self.norm3 = BatchNorm2d(out_channels) if use_norm else Identity()
        self.conv3 = Conv2d(out_channels, expanded, 1, bias=not use_norm, rng=rng)
        self.dropout = Dropout(dropout_rate, rng=rng)
        if stride != 1 or in_channels != expanded:
            self.shortcut = Conv2d(in_channels, expanded, 1, stride=stride, rng=rng)
        else:
            self.shortcut = Identity()

    def forward(self, x: Tensor) -> Tensor:
        out = self.conv1(F.relu(self.norm1(x)))
        out = self.conv2(F.relu(self.norm2(out)))
        out = self.dropout(out)
        out = self.conv3(F.relu(self.norm3(out)))
        return out + self.shortcut(x)


_CONFIGS = {
    18: (PreActBasicBlock, (2, 2, 2, 2)),
    50: (PreActBottleneckBlock, (3, 4, 6, 3)),
    152: (PreActBottleneckBlock, (3, 8, 36, 3)),
}


class PreActResNetS(Module):
    """Pre-activation ResNet with the original block counts and scaled widths."""

    def __init__(self, depth: int = 18, num_classes: int = 10, in_channels: int = 3,
                 width: int = 8, dropout_rate: float = 0.0, use_norm: bool = True,
                 depth_scale: float = 1.0, rng=None):
        super().__init__()
        if depth not in _CONFIGS:
            raise ValueError(f"depth must be one of {sorted(_CONFIGS)}")
        if not 0.0 < depth_scale <= 1.0:
            raise ValueError("depth_scale must lie in (0, 1]")
        block_class, counts = _CONFIGS[depth]
        counts = tuple(max(1, int(math.ceil(c * depth_scale))) for c in counts)
        widths = [width, width * 2, width * 4, width * 8]
        self.depth = depth
        self.stem = Conv2d(in_channels, width, 3, padding=1, rng=rng)
        stages = ModuleList()
        channels = width
        for stage_index, (stage_width, count) in enumerate(zip(widths, counts)):
            for block_index in range(count):
                stride = 2 if (stage_index > 0 and block_index == 0) else 1
                stages.append(block_class(channels, stage_width, stride=stride,
                                          dropout_rate=dropout_rate,
                                          use_norm=use_norm, rng=rng))
                channels = stage_width * block_class.expansion
        self.stages = stages
        self.final_norm = BatchNorm2d(channels) if use_norm else Identity()
        self.head = Sequential(
            GlobalAvgPool2d(),
            Flatten(),
            Dropout(dropout_rate, rng=rng),
            Linear(channels, num_classes, rng=rng),
        )
        self.num_classes = num_classes
        self.num_blocks = sum(counts)

    def forward(self, x: Tensor) -> Tensor:
        out = self.stem(x)
        for block in self.stages:
            out = block(out)
        out = F.relu(self.final_norm(out))
        return self.head(out)


def preact_resnet18(**kwargs) -> PreActResNetS:
    """PreAct-ResNet-18 (2-2-2-2 basic blocks)."""
    return PreActResNetS(depth=18, **kwargs)


def preact_resnet50(**kwargs) -> PreActResNetS:
    """PreAct-ResNet-50 (3-4-6-3 bottleneck blocks)."""
    return PreActResNetS(depth=50, **kwargs)


def preact_resnet152(**kwargs) -> PreActResNetS:
    """PreAct-ResNet-152 (3-8-36-3 bottleneck blocks)."""
    return PreActResNetS(depth=152, **kwargs)
