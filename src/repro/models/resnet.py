"""ResNet-18 style residual network scaled for small images (Fig. 3d)."""

from __future__ import annotations

from ..nn import functional as F
from ..nn.module import Module, ModuleList, Sequential
from ..nn.layers import (
    Conv2d, Linear, ReLU, Dropout, Flatten, GlobalAvgPool2d, BatchNorm2d, Identity,
)
from ..nn.tensor import Tensor

__all__ = ["ResNet18S", "BasicBlock"]


class BasicBlock(Module):
    """The standard post-activation residual block: conv-BN-ReLU-conv-BN + skip."""

    def __init__(self, in_channels: int, out_channels: int, stride: int = 1,
                 dropout_rate: float = 0.0, use_norm: bool = True, rng=None):
        super().__init__()
        self.conv1 = Conv2d(in_channels, out_channels, 3, stride=stride, padding=1,
                            bias=not use_norm, rng=rng)
        self.norm1 = BatchNorm2d(out_channels) if use_norm else Identity()
        self.conv2 = Conv2d(out_channels, out_channels, 3, stride=1, padding=1,
                            bias=not use_norm, rng=rng)
        self.norm2 = BatchNorm2d(out_channels) if use_norm else Identity()
        self.dropout = Dropout(dropout_rate, rng=rng)
        if stride != 1 or in_channels != out_channels:
            self.shortcut = Conv2d(in_channels, out_channels, 1, stride=stride,
                                   bias=True, rng=rng)
        else:
            self.shortcut = Identity()

    def forward(self, x: Tensor) -> Tensor:
        out = F.relu(self.norm1(self.conv1(x)))
        out = self.dropout(out)
        out = self.norm2(self.conv2(out))
        return F.relu(out + self.shortcut(x))


class ResNet18S(Module):
    """ResNet-18 topology (2-2-2-2 basic blocks) with scaled channel widths.

    ``use_norm=False`` removes all BatchNorm layers, which the Fig. 2(b)
    conclusion suggests is the more drift-robust configuration.
    """

    def __init__(self, num_classes: int = 10, in_channels: int = 3, width: int = 8,
                 blocks_per_stage: tuple = (2, 2, 2, 2), dropout_rate: float = 0.0,
                 use_norm: bool = True, rng=None):
        super().__init__()
        widths = [width, width * 2, width * 4, width * 8]
        self.stem = Conv2d(in_channels, width, 3, padding=1, rng=rng)
        self.stem_norm = BatchNorm2d(width) if use_norm else Identity()
        stages = ModuleList()
        channels = width
        for stage_index, (stage_width, count) in enumerate(zip(widths, blocks_per_stage)):
            for block_index in range(count):
                stride = 2 if (stage_index > 0 and block_index == 0) else 1
                stages.append(BasicBlock(channels, stage_width, stride=stride,
                                         dropout_rate=dropout_rate,
                                         use_norm=use_norm, rng=rng))
                channels = stage_width
        self.stages = stages
        self.head = Sequential(
            GlobalAvgPool2d(),
            Flatten(),
            Dropout(dropout_rate, rng=rng),
            Linear(channels, num_classes, rng=rng),
        )
        self.num_classes = num_classes

    def forward(self, x: Tensor) -> Tensor:
        out = F.relu(self.stem_norm(self.stem(x)))
        for block in self.stages:
            out = block(out)
        return self.head(out)
