"""Multi-layer perceptron with configurable robustness-relevant components.

This is the workhorse of the paper's Figure 2 ablation: its constructor
exposes exactly the architectural factors the paper varies — dropout type,
normalisation type, depth (number of hidden layers) and activation function —
so the ablation harness can sweep each factor independently.
"""

from __future__ import annotations

from typing import Sequence

from ..nn.module import Module, Sequential
from ..nn.layers import (
    Linear, Dropout, AlphaDropout, Flatten,
    BatchNorm1d, LayerNorm, Identity,
)
from ..nn.layers.activations import make_activation
from ..nn.tensor import Tensor

__all__ = ["MLP", "build_mlp"]


def _make_norm(kind: str | None, width: int) -> Module:
    if kind is None or kind == "none":
        return Identity()
    if kind == "batch":
        return BatchNorm1d(width)
    if kind == "layer":
        return LayerNorm(width)
    raise ValueError(f"unsupported MLP normalisation {kind!r} (use none/batch/layer)")


def _make_dropout(kind: str, rate: float, rng=None) -> Module:
    if kind == "dropout":
        return Dropout(rate, rng=rng)
    if kind == "alpha":
        return AlphaDropout(rate, rng=rng)
    raise ValueError(f"unsupported dropout kind {kind!r} (use none/dropout/alpha)")


class MLP(Module):
    """Fully connected classifier.

    Parameters
    ----------
    input_dim:
        Flattened input dimensionality.
    hidden_dims:
        Width of each hidden layer; the number of entries is the depth.
    num_classes:
        Output dimensionality.
    activation:
        ``"relu"``, ``"leaky_relu"``, ``"elu"`` or ``"gelu"`` (Fig. 2d factors).
    normalization:
        ``"none"``, ``"batch"`` or ``"layer"`` (Fig. 2b factors).
    dropout:
        ``"none"``, ``"dropout"`` or ``"alpha"`` (Fig. 2a factors).
    dropout_rate:
        Initial rate for every dropout layer; BayesFT later overrides these
        per layer.
    """

    def __init__(self, input_dim: int, hidden_dims: Sequence[int] = (128, 64),
                 num_classes: int = 10, activation: str = "relu",
                 normalization: str = "none", dropout: str = "dropout",
                 dropout_rate: float = 0.0, rng=None):
        super().__init__()
        if input_dim <= 0 or num_classes <= 0:
            raise ValueError("input_dim and num_classes must be positive")
        self.input_dim = input_dim
        self.num_classes = num_classes
        self.hidden_dims = tuple(hidden_dims)
        body = Sequential()
        body.add(Flatten(), name="flatten")
        previous = input_dim
        for index, width in enumerate(hidden_dims):
            body.add(Linear(previous, width, rng=rng), name=f"linear{index}")
            body.add(_make_norm(normalization, width), name=f"norm{index}")
            body.add(make_activation(activation), name=f"act{index}")
            if dropout != "none":
                body.add(_make_dropout(dropout, dropout_rate, rng=rng), name=f"dropout{index}")
            previous = width
        body.add(Linear(previous, num_classes, rng=rng), name="head")
        self.body = body

    def forward(self, x: Tensor) -> Tensor:
        return self.body(x)


def build_mlp(input_dim: int, depth: int = 3, width: int = 128, num_classes: int = 10,
              **kwargs) -> MLP:
    """Build an MLP with ``depth`` total layers (``depth - 1`` hidden layers).

    This matches the paper's "3-layer / 6-layer / 9-layer MLP" terminology in
    Figure 2(c), where the count includes the output layer.
    """
    if depth < 2:
        raise ValueError("depth must be at least 2 (one hidden + one output layer)")
    hidden = [width] * (depth - 1)
    return MLP(input_dim, hidden, num_classes, **kwargs)
