"""The Bayesian-optimisation loop over a box-constrained search space.

This is the outer loop of BayesFT's Algorithm 1: a Gaussian-process
surrogate (:mod:`repro.bayesopt.gp`) is fitted to every ``(α, u)`` pair
observed so far, an acquisition function (:mod:`repro.bayesopt.acquisition`)
scores a random candidate pool, and the best candidate becomes the next
trial's dropout configuration.  :class:`BayesianOptimizer` exposes the
``suggest``/``observe`` pair used by
:class:`~repro.core.algorithm.BayesFTSearch` as well as a self-contained
:meth:`~BayesianOptimizer.optimize` loop; :class:`OptimizationTrace` records
every trial for regret plots and NaN-safe ``best_*`` lookups.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from ..utils.rng import get_rng
from .acquisition import AcquisitionFunction, PosteriorMean
from .gp import GaussianProcessRegressor
from .kernels import ExponentialKernel

__all__ = ["BayesianOptimizer", "OptimizationTrace"]


@dataclass
class OptimizationTrace:
    """Record of an optimisation run: every trial point and its objective value.

    Non-finite objective values (NaN/inf from a diverged training run) are
    recorded — they are real trials and the surrogate must not re-suggest
    those points blindly — but they are excluded from every ``best_*``
    accessor, so a single crashed trial can never be reported as the winner.
    """

    points: list = field(default_factory=list)
    values: list = field(default_factory=list)

    def append(self, point: np.ndarray, value: float) -> None:
        self.points.append(np.asarray(point, dtype=np.float64).copy())
        self.values.append(float(value))

    def finite_indices(self) -> np.ndarray:
        """Indices of trials whose objective came back finite."""
        return np.flatnonzero(np.isfinite(np.asarray(self.values, dtype=np.float64)))

    @property
    def best_index(self) -> int:
        finite = self.finite_indices()
        if len(finite) == 0:
            raise ValueError("no finite objective values observed yet "
                             "(every trial so far returned NaN/inf)")
        values = np.asarray(self.values, dtype=np.float64)
        return int(finite[np.argmax(values[finite])])

    @property
    def best_point(self) -> np.ndarray:
        return self.points[self.best_index]

    @property
    def best_value(self) -> float:
        return self.values[self.best_index]

    def running_best(self) -> np.ndarray:
        """Cumulative best *finite* objective after each trial (regret plots).

        Trials before the first finite observation are ``-inf``.
        """
        values = np.asarray(self.values, dtype=np.float64)
        values = np.where(np.isfinite(values), values, -np.inf)
        return np.maximum.accumulate(values)

    def __len__(self) -> int:
        return len(self.values)


class BayesianOptimizer:
    """Maximise a black-box function over ``[low, high]^d`` with a GP surrogate.

    Parameters
    ----------
    bounds:
        Sequence of ``(low, high)`` pairs, one per dimension (for BayesFT
        these are the per-layer dropout-rate ranges).
    acquisition:
        Acquisition function; default is the paper's posterior-mean rule.
    kernel:
        Covariance kernel for the GP surrogate; default is an
        :class:`~repro.bayesopt.kernels.ExponentialKernel` with unit
        lengthscale per dimension.
    n_initial:
        Number of uniformly random trials before the surrogate is used
        (Algorithm 1 initialises α uniformly on [0, 1]).
    n_candidates:
        Size of the random candidate pool scored by the acquisition function
        at each step.
    noise:
        Observation-noise variance added to the GP's diagonal; raise it for
        very noisy objectives (few Monte-Carlo samples), lower it for
        near-deterministic ones.
    rng:
        Seed or ``numpy.random.Generator`` for candidate sampling; a fixed
        seed makes the whole optimisation reproducible.
    """

    def __init__(self, bounds: Sequence[tuple[float, float]],
                 acquisition: AcquisitionFunction | None = None,
                 kernel=None, n_initial: int = 3, n_candidates: int = 256,
                 noise: float = 1e-4, rng=None):
        self.bounds = np.asarray(bounds, dtype=np.float64)
        if self.bounds.ndim != 2 or self.bounds.shape[1] != 2:
            raise ValueError("bounds must be a sequence of (low, high) pairs")
        if np.any(self.bounds[:, 0] >= self.bounds[:, 1]):
            raise ValueError("each bound must satisfy low < high")
        if n_initial < 1:
            raise ValueError("n_initial must be at least 1")
        self.dim = self.bounds.shape[0]
        self.acquisition = acquisition or PosteriorMean()
        self.kernel = kernel or ExponentialKernel(lengthscales=np.ones(self.dim))
        self.n_initial = n_initial
        self.n_candidates = n_candidates
        self.noise = noise
        self.rng = get_rng(rng)
        self.trace = OptimizationTrace()

    # ------------------------------------------------------------------ #
    def _sample_uniform(self, count: int) -> np.ndarray:
        span = self.bounds[:, 1] - self.bounds[:, 0]
        return self.bounds[:, 0] + span * self.rng.random((count, self.dim))

    def suggest(self) -> np.ndarray:
        """Propose the next trial point.

        Only finite observations feed the surrogate: a NaN objective (e.g. a
        diverged training run, mirroring wandb's ``bayes_search`` NaN
        handling) would otherwise poison the GP posterior and make
        ``argmax`` pick garbage forever after.  Until ``n_initial`` finite
        observations exist, suggestions stay uniformly random.
        """
        finite = self.trace.finite_indices()
        if len(finite) < self.n_initial:
            return self._sample_uniform(1)[0]
        gp = GaussianProcessRegressor(kernel=self.kernel, noise=self.noise)
        points = np.stack(self.trace.points)[finite]
        values = np.asarray(self.trace.values, dtype=np.float64)[finite]
        gp.fit(points, values)
        candidates = self._sample_uniform(self.n_candidates)
        # Always include the best point found so far plus small perturbations
        # of it, so exploitation can refine promising regions.
        best = self.trace.best_point
        jitter = best + self.rng.normal(0, 0.05, size=(8, self.dim)) * \
            (self.bounds[:, 1] - self.bounds[:, 0])
        jitter = np.clip(jitter, self.bounds[:, 0], self.bounds[:, 1])
        candidates = np.vstack([candidates, best[None, :], jitter])
        scores = self.acquisition(gp, candidates, best_observed=self.trace.best_value)
        return candidates[int(np.argmax(scores))]

    def observe(self, point: np.ndarray, value: float) -> None:
        """Record the objective value measured at ``point``."""
        point = np.asarray(point, dtype=np.float64)
        if point.shape != (self.dim,):
            raise ValueError(f"point must have shape ({self.dim},)")
        self.trace.append(point, value)

    def optimize(self, objective: Callable[[np.ndarray], float],
                 n_trials: int = 20) -> OptimizationTrace:
        """Run the full suggest → evaluate → observe loop."""
        if n_trials < 1:
            raise ValueError("n_trials must be at least 1")
        for _ in range(n_trials):
            point = self.suggest()
            value = float(objective(point))
            self.observe(point, value)
        return self.trace
