"""The Bayesian-optimisation loop over a box-constrained search space.

This is the outer loop of BayesFT's Algorithm 1: a Gaussian-process
surrogate (:mod:`repro.bayesopt.gp`) is fitted to every ``(α, u)`` pair
observed so far, an acquisition function (:mod:`repro.bayesopt.acquisition`)
scores a random candidate pool, and the best candidate becomes the next
trial's dropout configuration.  :class:`BayesianOptimizer` exposes the
``suggest``/``observe`` pair used by
:class:`~repro.core.algorithm.BayesFTSearch` as well as a self-contained
:meth:`~BayesianOptimizer.optimize` loop; :class:`OptimizationTrace` records
every trial for regret plots and NaN-safe ``best_*`` lookups.

For concurrent trial evaluation, :meth:`BayesianOptimizer.suggest_batch`
proposes ``q`` points at once with the constant-liar heuristic: each pending
(suggested but not yet observed) point is *fantasised* into the GP fit at a
fixed "liar" value, so the refitted acquisition steers later slots of the
batch away from earlier ones.  Fantasies live only in the pending list —
:meth:`~BayesianOptimizer.observe` retracts them the moment the real
observation arrives, so they can never leak into the
:class:`OptimizationTrace` or any ``best_*`` accessor.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from ..utils.rng import get_rng
from .acquisition import AcquisitionFunction, PosteriorMean
from .gp import GaussianProcessRegressor
from .kernels import ExponentialKernel

__all__ = ["BayesianOptimizer", "OptimizationTrace"]


@dataclass
class OptimizationTrace:
    """Record of an optimisation run: every trial point and its objective value.

    Non-finite objective values (NaN/inf from a diverged training run) are
    recorded — they are real trials and the surrogate must not re-suggest
    those points blindly — but they are excluded from every ``best_*``
    accessor, so a single crashed trial can never be reported as the winner.
    """

    points: list = field(default_factory=list)
    values: list = field(default_factory=list)

    def append(self, point: np.ndarray, value: float) -> None:
        self.points.append(np.asarray(point, dtype=np.float64).copy())
        self.values.append(float(value))

    def finite_indices(self) -> np.ndarray:
        """Indices of trials whose objective came back finite."""
        return np.flatnonzero(np.isfinite(np.asarray(self.values, dtype=np.float64)))

    @property
    def best_index(self) -> int:
        finite = self.finite_indices()
        if len(finite) == 0:
            raise ValueError("no finite objective values observed yet "
                             "(every trial so far returned NaN/inf)")
        values = np.asarray(self.values, dtype=np.float64)
        return int(finite[np.argmax(values[finite])])

    @property
    def best_point(self) -> np.ndarray:
        return self.points[self.best_index]

    @property
    def best_value(self) -> float:
        return self.values[self.best_index]

    def canonical_dict(self) -> dict:
        """Deterministic projection of the trace for byte-comparison.

        Two runs of the same seeded search are equivalent iff their
        canonical dicts serialise to the same JSON — the same contract
        :meth:`repro.evaluation.sweep.SweepReport.canonical_dict` gives
        sweeps.
        """
        return {"points": [[float(x) for x in point] for point in self.points],
                "values": [float(v) for v in self.values]}

    def to_json(self) -> str:
        """Canonical JSON (sorted keys, no whitespace); byte-comparable."""
        return json.dumps(self.canonical_dict(), sort_keys=True,
                          separators=(",", ":"))

    def running_best(self) -> np.ndarray:
        """Cumulative best *finite* objective after each trial (regret plots).

        Trials before the first finite observation are ``-inf``.
        """
        values = np.asarray(self.values, dtype=np.float64)
        values = np.where(np.isfinite(values), values, -np.inf)
        return np.maximum.accumulate(values)

    def __len__(self) -> int:
        return len(self.values)


class BayesianOptimizer:
    """Maximise a black-box function over ``[low, high]^d`` with a GP surrogate.

    Parameters
    ----------
    bounds:
        Sequence of ``(low, high)`` pairs, one per dimension (for BayesFT
        these are the per-layer dropout-rate ranges).
    acquisition:
        Acquisition function; default is the paper's posterior-mean rule.
    kernel:
        Covariance kernel for the GP surrogate; default is an
        :class:`~repro.bayesopt.kernels.ExponentialKernel` with unit
        lengthscale per dimension.
    n_initial:
        Number of uniformly random trials before the surrogate is used
        (Algorithm 1 initialises α uniformly on [0, 1]).
    n_candidates:
        Size of the random candidate pool scored by the acquisition function
        at each step.
    noise:
        Observation-noise variance added to the GP's diagonal; raise it for
        very noisy objectives (few Monte-Carlo samples), lower it for
        near-deterministic ones.
    rng:
        Seed or ``numpy.random.Generator`` for candidate sampling; a fixed
        seed makes the whole optimisation reproducible.
    liar:
        Fantasy value assigned to pending points during batch suggestion:
        ``"min"`` (default, the pessimistic constant-liar that pushes the
        batch apart), ``"mean"`` or ``"max"`` over the finite observations.
    """

    def __init__(self, bounds: Sequence[tuple[float, float]],
                 acquisition: AcquisitionFunction | None = None,
                 kernel=None, n_initial: int = 3, n_candidates: int = 256,
                 noise: float = 1e-4, rng=None, liar: str = "min"):
        self.bounds = np.asarray(bounds, dtype=np.float64)
        if self.bounds.ndim != 2 or self.bounds.shape[1] != 2:
            raise ValueError("bounds must be a sequence of (low, high) pairs")
        if np.any(self.bounds[:, 0] >= self.bounds[:, 1]):
            raise ValueError("each bound must satisfy low < high")
        if n_initial < 1:
            raise ValueError("n_initial must be at least 1")
        if liar not in ("min", "mean", "max"):
            raise ValueError("liar must be 'min', 'mean' or 'max'")
        self.dim = self.bounds.shape[0]
        self.acquisition = acquisition or PosteriorMean()
        self.kernel = kernel or ExponentialKernel(lengthscales=np.ones(self.dim))
        self.n_initial = n_initial
        self.n_candidates = n_candidates
        self.noise = noise
        self.rng = get_rng(rng)
        self.liar = liar
        self.trace = OptimizationTrace()
        # Points suggested via suggest_batch() whose real observation has not
        # arrived yet; fantasised into the GP fit, retracted by observe().
        self._pending: list[np.ndarray] = []
        # Lazily created on the first suggest_batch() call so the sequential
        # suggest() path consumes exactly the RNG stream it always has.
        self._batch_seeds: np.random.SeedSequence | None = None

    # ------------------------------------------------------------------ #
    def _sample_uniform(self, count: int, rng=None) -> np.ndarray:
        span = self.bounds[:, 1] - self.bounds[:, 0]
        rng = self.rng if rng is None else rng
        return self.bounds[:, 0] + span * rng.random((count, self.dim))

    @staticmethod
    def _argmax_stable(scores: np.ndarray, candidates: np.ndarray) -> int:
        """Argmax with a deterministic lexicographic tie-break.

        ``np.argmax`` keeps the first maximal index, which makes the chosen
        point depend on candidate *ordering* — under batch suggestion the
        same acquisition landscape must pick the same point regardless of
        how the candidate pool happened to be assembled.  Among exactly-tied
        scores the lexicographically smallest candidate wins.
        """
        scores = np.asarray(scores, dtype=np.float64)
        index = int(np.argmax(scores))
        ties = np.flatnonzero(scores == scores[index])
        if len(ties) <= 1:  # unique max (or a NaN score, which never ties)
            return index
        order = np.lexsort(candidates[ties].T[::-1])
        return int(ties[order[0]])

    def _liar_value(self, values: np.ndarray) -> float:
        if self.liar == "min":
            return float(np.min(values))
        if self.liar == "max":
            return float(np.max(values))
        return float(np.mean(values))

    def _suggest_from(self, rng) -> np.ndarray:
        """One suggestion, drawing candidate randomness from ``rng``.

        Only finite observations feed the surrogate: a NaN objective (e.g. a
        diverged training run, mirroring wandb's ``bayes_search`` NaN
        handling) would otherwise poison the GP posterior and make
        ``argmax`` pick garbage forever after.  Pending batch points are
        fantasised at the liar value; a pending point whose trial later
        fails (NaN) is simply retracted, so it cannot poison the fit either.
        Until ``n_initial`` finite observations exist, suggestions stay
        uniformly random.
        """
        finite = self.trace.finite_indices()
        if len(finite) < self.n_initial:
            return self._sample_uniform(1, rng)[0]
        gp = GaussianProcessRegressor(kernel=self.kernel, noise=self.noise)
        points = np.stack(self.trace.points)[finite]
        values = np.asarray(self.trace.values, dtype=np.float64)[finite]
        if self._pending:
            liar = self._liar_value(values)
            points = np.vstack([points, np.stack(self._pending)])
            values = np.concatenate(
                [values, np.full(len(self._pending), liar, dtype=np.float64)])
        gp.fit(points, values)
        candidates = self._sample_uniform(self.n_candidates, rng)
        # Always include the best point found so far plus small perturbations
        # of it, so exploitation can refine promising regions.
        best = self.trace.best_point
        jitter = best + rng.normal(0, 0.05, size=(8, self.dim)) * \
            (self.bounds[:, 1] - self.bounds[:, 0])
        jitter = np.clip(jitter, self.bounds[:, 0], self.bounds[:, 1])
        candidates = np.vstack([candidates, best[None, :], jitter])
        scores = self.acquisition(gp, candidates, best_observed=self.trace.best_value)
        return candidates[self._argmax_stable(scores, candidates)].copy()

    def suggest(self) -> np.ndarray:
        """Propose the next trial point (see :meth:`_suggest_from`)."""
        return self._suggest_from(self.rng)

    def _next_batch_rng(self) -> np.random.Generator:
        if self._batch_seeds is None:
            self._batch_seeds = np.random.SeedSequence(
                int(self.rng.integers(0, 2 ** 63 - 1)))
        return np.random.default_rng(self._batch_seeds.spawn(1)[0])

    def suggest_batch(self, q: int) -> list[np.ndarray]:
        """Propose ``q`` points for concurrent evaluation (constant liar).

        Each slot draws its candidates from a freshly spawned RNG stream, so
        slot ``j``'s proposal depends only on the observed trace, the
        pending set and ``j`` — never on how many random draws an earlier
        slot consumed internally.  Every returned point is registered as
        *pending* and fantasised at the liar value in later fits until
        :meth:`observe` delivers its real objective.
        """
        if q < 1:
            raise ValueError("q must be at least 1")
        points = []
        for _ in range(q):
            point = self._suggest_from(self._next_batch_rng())
            self._pending.append(point.copy())
            points.append(point)
        return points

    @property
    def pending_points(self) -> list[np.ndarray]:
        """Copies of the suggested-but-unobserved points (fantasy anchors)."""
        return [point.copy() for point in self._pending]

    def clear_pending(self) -> None:
        """Drop all fantasies (e.g. when abandoning an in-flight batch)."""
        self._pending.clear()

    def observe(self, point: np.ndarray, value: float) -> None:
        """Record the objective value measured at ``point``.

        If ``point`` is pending from a previous :meth:`suggest_batch` call,
        its fantasy is retracted: from here on the GP sees only the real
        observation recorded in the trace.
        """
        point = np.asarray(point, dtype=np.float64)
        if point.shape != (self.dim,):
            raise ValueError(f"point must have shape ({self.dim},)")
        for i, pending in enumerate(self._pending):
            if pending.tobytes() == point.tobytes():
                del self._pending[i]
                break
        self.trace.append(point, value)

    def optimize(self, objective: Callable[[np.ndarray], float],
                 n_trials: int = 20) -> OptimizationTrace:
        """Run the full suggest → evaluate → observe loop."""
        if n_trials < 1:
            raise ValueError("n_trials must be at least 1")
        for _ in range(n_trials):
            point = self.suggest()
            value = float(objective(point))
            self.observe(point, value)
        return self.trace
