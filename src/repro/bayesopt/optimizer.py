"""The Bayesian-optimisation loop over a box-constrained search space."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from ..utils.rng import get_rng
from .acquisition import AcquisitionFunction, PosteriorMean
from .gp import GaussianProcessRegressor
from .kernels import ExponentialKernel

__all__ = ["BayesianOptimizer", "OptimizationTrace"]


@dataclass
class OptimizationTrace:
    """Record of an optimisation run: every trial point and its objective value."""

    points: list = field(default_factory=list)
    values: list = field(default_factory=list)

    def append(self, point: np.ndarray, value: float) -> None:
        self.points.append(np.asarray(point, dtype=np.float64).copy())
        self.values.append(float(value))

    @property
    def best_index(self) -> int:
        return int(np.argmax(self.values))

    @property
    def best_point(self) -> np.ndarray:
        return self.points[self.best_index]

    @property
    def best_value(self) -> float:
        return self.values[self.best_index]

    def running_best(self) -> np.ndarray:
        """Cumulative best objective value after each trial (for regret plots)."""
        return np.maximum.accumulate(np.asarray(self.values))

    def __len__(self) -> int:
        return len(self.values)


class BayesianOptimizer:
    """Maximise a black-box function over ``[low, high]^d`` with a GP surrogate.

    Parameters
    ----------
    bounds:
        Sequence of ``(low, high)`` pairs, one per dimension (for BayesFT
        these are the per-layer dropout-rate ranges).
    acquisition:
        Acquisition function; default is the paper's posterior-mean rule.
    n_initial:
        Number of uniformly random trials before the surrogate is used
        (Algorithm 1 initialises α uniformly on [0, 1]).
    n_candidates:
        Size of the random candidate pool scored by the acquisition function
        at each step.
    """

    def __init__(self, bounds: Sequence[tuple[float, float]],
                 acquisition: AcquisitionFunction | None = None,
                 kernel=None, n_initial: int = 3, n_candidates: int = 256,
                 noise: float = 1e-4, rng=None):
        self.bounds = np.asarray(bounds, dtype=np.float64)
        if self.bounds.ndim != 2 or self.bounds.shape[1] != 2:
            raise ValueError("bounds must be a sequence of (low, high) pairs")
        if np.any(self.bounds[:, 0] >= self.bounds[:, 1]):
            raise ValueError("each bound must satisfy low < high")
        if n_initial < 1:
            raise ValueError("n_initial must be at least 1")
        self.dim = self.bounds.shape[0]
        self.acquisition = acquisition or PosteriorMean()
        self.kernel = kernel or ExponentialKernel(lengthscales=np.ones(self.dim))
        self.n_initial = n_initial
        self.n_candidates = n_candidates
        self.noise = noise
        self.rng = get_rng(rng)
        self.trace = OptimizationTrace()

    # ------------------------------------------------------------------ #
    def _sample_uniform(self, count: int) -> np.ndarray:
        span = self.bounds[:, 1] - self.bounds[:, 0]
        return self.bounds[:, 0] + span * self.rng.random((count, self.dim))

    def suggest(self) -> np.ndarray:
        """Propose the next trial point."""
        if len(self.trace) < self.n_initial:
            return self._sample_uniform(1)[0]
        gp = GaussianProcessRegressor(kernel=self.kernel, noise=self.noise)
        gp.fit(np.stack(self.trace.points), np.asarray(self.trace.values))
        candidates = self._sample_uniform(self.n_candidates)
        # Always include the best point found so far plus small perturbations
        # of it, so exploitation can refine promising regions.
        best = self.trace.best_point
        jitter = best + self.rng.normal(0, 0.05, size=(8, self.dim)) * \
            (self.bounds[:, 1] - self.bounds[:, 0])
        jitter = np.clip(jitter, self.bounds[:, 0], self.bounds[:, 1])
        candidates = np.vstack([candidates, best[None, :], jitter])
        scores = self.acquisition(gp, candidates, best_observed=self.trace.best_value)
        return candidates[int(np.argmax(scores))]

    def observe(self, point: np.ndarray, value: float) -> None:
        """Record the objective value measured at ``point``."""
        point = np.asarray(point, dtype=np.float64)
        if point.shape != (self.dim,):
            raise ValueError(f"point must have shape ({self.dim},)")
        self.trace.append(point, value)

    def optimize(self, objective: Callable[[np.ndarray], float],
                 n_trials: int = 20) -> OptimizationTrace:
        """Run the full suggest → evaluate → observe loop."""
        if n_trials < 1:
            raise ValueError("n_trials must be at least 1")
        for _ in range(n_trials):
            point = self.suggest()
            value = float(objective(point))
            self.observe(point, value)
        return self.trace
