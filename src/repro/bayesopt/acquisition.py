"""Acquisition functions for choosing the next Bayesian-optimisation trial."""

from __future__ import annotations

import numpy as np
from scipy.stats import norm

from .gp import GaussianProcessRegressor

__all__ = ["AcquisitionFunction", "PosteriorMean", "ExpectedImprovement",
           "UpperConfidenceBound"]


class AcquisitionFunction:
    """Scores candidate points; higher is better."""

    def __call__(self, gp: GaussianProcessRegressor, candidates: np.ndarray,
                 best_observed: float) -> np.ndarray:
        raise NotImplementedError


class PosteriorMean(AcquisitionFunction):
    """The paper's rule (Algorithm 1, line 9): pick the posterior-mean maximiser.

    This is pure exploitation of the surrogate; the paper relies on the
    random initial trials for exploration.
    """

    def __call__(self, gp: GaussianProcessRegressor, candidates: np.ndarray,
                 best_observed: float) -> np.ndarray:
        return gp.predict(candidates)


class ExpectedImprovement(AcquisitionFunction):
    """EI(α) = E[max(g(α) − g⁺ − ξ, 0)] under the GP posterior."""

    def __init__(self, xi: float = 0.01):
        if xi < 0:
            raise ValueError("xi must be non-negative")
        self.xi = float(xi)

    def __call__(self, gp: GaussianProcessRegressor, candidates: np.ndarray,
                 best_observed: float) -> np.ndarray:
        mean, std = gp.predict(candidates, return_std=True)
        improvement = mean - best_observed - self.xi
        z = improvement / std
        return improvement * norm.cdf(z) + std * norm.pdf(z)


class UpperConfidenceBound(AcquisitionFunction):
    """UCB(α) = μ(α) + β·σ(α)."""

    def __init__(self, beta: float = 2.0):
        if beta < 0:
            raise ValueError("beta must be non-negative")
        self.beta = float(beta)

    def __call__(self, gp: GaussianProcessRegressor, candidates: np.ndarray,
                 best_observed: float) -> np.ndarray:
        mean, std = gp.predict(candidates, return_std=True)
        return mean + self.beta * std
