"""Gaussian-process Bayesian optimisation (the paper's §III-B machinery).

The surrogate is a Gaussian-process regressor with the exponential / ARD
squared-distance kernel of Eq. (9); candidates are selected by maximising an
acquisition function over random candidate points.  The paper's rule —
"the next trial is the point most likely to give the optimal objective",
i.e. maximising the posterior mean — is :class:`PosteriorMean`; expected
improvement and UCB are provided for the ablation benchmarks, alongside a
random-search baseline.
"""

from .kernels import ExponentialKernel, RBFKernel, Matern52Kernel, Kernel
from .gp import GaussianProcessRegressor
from .acquisition import AcquisitionFunction, PosteriorMean, ExpectedImprovement, UpperConfidenceBound
from .optimizer import BayesianOptimizer, OptimizationTrace
from .random_search import RandomSearchOptimizer, GridSearchOptimizer

__all__ = [
    "Kernel", "ExponentialKernel", "RBFKernel", "Matern52Kernel",
    "GaussianProcessRegressor",
    "AcquisitionFunction", "PosteriorMean", "ExpectedImprovement", "UpperConfidenceBound",
    "BayesianOptimizer", "OptimizationTrace",
    "RandomSearchOptimizer", "GridSearchOptimizer",
]
