"""Gaussian-process regression surrogate (Eq. (5)–(8) of the paper)."""

from __future__ import annotations

import numpy as np
from scipy import linalg

from .kernels import ExponentialKernel, Kernel

__all__ = ["GaussianProcessRegressor"]


class GaussianProcessRegressor:
    """Exact GP regression with a jitter-stabilised Cholesky solve.

    Given trials ``X = α_{1:n}`` and observed objective values ``y = g(α_{1:n})``,
    the posterior at a new point α is Gaussian with

        μ_n(α)  = k(α, X) K⁻¹ y
        σ²_n(α) = k(α, α) − k(α, X) K⁻¹ k(X, α)

    which is Eq. (8) of the paper (the paper writes the mean recursion with
    κ_n; the standard kriging equations are identical).
    """

    def __init__(self, kernel: Kernel | None = None, noise: float = 1e-6,
                 normalize_y: bool = True):
        if noise < 0:
            raise ValueError("noise must be non-negative")
        self.kernel = kernel or ExponentialKernel()
        self.noise = float(noise)
        self.normalize_y = normalize_y
        self._X: np.ndarray | None = None
        self._y_mean = 0.0
        self._y_std = 1.0
        self._alpha: np.ndarray | None = None
        self._cho = None
        self._y_scaled: np.ndarray | None = None

    @property
    def is_fitted(self) -> bool:
        return self._X is not None

    def fit(self, X: np.ndarray, y: np.ndarray) -> "GaussianProcessRegressor":
        """Fit the surrogate to observed (trial, objective) pairs."""
        X = np.atleast_2d(np.asarray(X, dtype=np.float64))
        y = np.asarray(y, dtype=np.float64).ravel()
        if X.shape[0] != y.shape[0]:
            raise ValueError("X and y must have the same number of rows")
        if self.normalize_y and y.size > 1 and y.std() > 0:
            self._y_mean, self._y_std = float(y.mean()), float(y.std())
        else:
            self._y_mean, self._y_std = float(y.mean()) if y.size else 0.0, 1.0
        y_scaled = (y - self._y_mean) / self._y_std

        K = self.kernel(X, X)
        K[np.diag_indices_from(K)] += self.noise + 1e-10
        # Increase jitter until the Cholesky succeeds (degenerate trial sets).
        jitter = 0.0
        for attempt in range(6):
            try:
                self._cho = linalg.cho_factor(K + jitter * np.eye(K.shape[0]), lower=True)
                break
            except linalg.LinAlgError:
                jitter = 10.0 ** (attempt - 8)
        else:
            raise linalg.LinAlgError("GP covariance matrix is not positive definite")
        self._alpha = linalg.cho_solve(self._cho, y_scaled)
        self._y_scaled = y_scaled
        self._X = X
        return self

    def predict(self, X_new: np.ndarray, return_std: bool = False):
        """Posterior mean (and optionally standard deviation) at ``X_new``."""
        if not self.is_fitted:
            raise RuntimeError("predict() called before fit()")
        X_new = np.atleast_2d(np.asarray(X_new, dtype=np.float64))
        K_cross = self.kernel(X_new, self._X)
        mean = K_cross @ self._alpha * self._y_std + self._y_mean
        if not return_std:
            return mean
        v = linalg.cho_solve(self._cho, K_cross.T)
        variance = self.kernel.diag(X_new) - np.einsum("ij,ji->i", K_cross, v)
        variance = np.maximum(variance, 1e-12)
        return mean, np.sqrt(variance) * self._y_std

    def log_marginal_likelihood(self) -> float:
        """Log p(y | X) of the fitted (scaled) targets.

        Uses the standard identity  -½ yᵀK⁻¹y − Σᵢ log Lᵢᵢ − n/2 log 2π.
        Everything it needs — ``alpha = K⁻¹ y``, the Cholesky factor ``L``
        (whose diagonal carries ½ log|K|) and the scaled targets — is
        cached by :meth:`fit`, so this is O(n): no kernel matrix is
        rebuilt and no O(n²) matmul re-derives ``y``.
        """
        if not self.is_fitted:
            raise RuntimeError("fit() must be called first")
        L = self._cho[0]
        return float(-0.5 * np.dot(self._y_scaled, self._alpha)
                     - np.log(np.diag(L)).sum()
                     - 0.5 * self._y_scaled.size * np.log(2 * np.pi))
