"""Random-search and grid-search baselines for the BO ablation benchmarks."""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from ..utils.rng import get_rng
from .optimizer import OptimizationTrace

__all__ = ["RandomSearchOptimizer", "GridSearchOptimizer"]


class RandomSearchOptimizer:
    """Uniform random search over a box, with the same interface as the BO loop."""

    def __init__(self, bounds: Sequence[tuple[float, float]], rng=None):
        self.bounds = np.asarray(bounds, dtype=np.float64)
        if self.bounds.ndim != 2 or self.bounds.shape[1] != 2:
            raise ValueError("bounds must be a sequence of (low, high) pairs")
        self.dim = self.bounds.shape[0]
        self.rng = get_rng(rng)
        self.trace = OptimizationTrace()

    def suggest(self) -> np.ndarray:
        span = self.bounds[:, 1] - self.bounds[:, 0]
        return self.bounds[:, 0] + span * self.rng.random(self.dim)

    def suggest_batch(self, q: int) -> list[np.ndarray]:
        """``q`` independent uniform draws (random search has no surrogate
        to fantasise on, so batch suggestion is just repeated suggestion)."""
        if q < 1:
            raise ValueError("q must be at least 1")
        return [self.suggest() for _ in range(q)]

    def observe(self, point: np.ndarray, value: float) -> None:
        self.trace.append(point, value)

    def optimize(self, objective: Callable[[np.ndarray], float],
                 n_trials: int = 20) -> OptimizationTrace:
        for _ in range(n_trials):
            point = self.suggest()
            self.observe(point, float(objective(point)))
        return self.trace


class GridSearchOptimizer:
    """Exhaustive grid search (only practical for 1–2 search dimensions)."""

    def __init__(self, bounds: Sequence[tuple[float, float]], points_per_dim: int = 5):
        self.bounds = np.asarray(bounds, dtype=np.float64)
        if points_per_dim < 2:
            raise ValueError("points_per_dim must be at least 2")
        self.dim = self.bounds.shape[0]
        axes = [np.linspace(low, high, points_per_dim) for low, high in self.bounds]
        mesh = np.meshgrid(*axes, indexing="ij")
        self.grid = np.stack([m.ravel() for m in mesh], axis=1)
        self.trace = OptimizationTrace()

    def optimize(self, objective: Callable[[np.ndarray], float],
                 n_trials: int | None = None) -> OptimizationTrace:
        points = self.grid if n_trials is None else self.grid[:n_trials]
        for point in points:
            self.trace.append(point, float(objective(point)))
        return self.trace
