"""Covariance kernels for Gaussian-process regression."""

from __future__ import annotations

import numpy as np

__all__ = ["Kernel", "ExponentialKernel", "RBFKernel", "Matern52Kernel"]


def _pairwise_sq_dists(a: np.ndarray, b: np.ndarray, lengthscales: np.ndarray) -> np.ndarray:
    """Weighted squared distances Σ_i k_i (a_i - b_i)² for every pair."""
    scaled_a = a / lengthscales
    scaled_b = b / lengthscales
    a2 = (scaled_a ** 2).sum(axis=1)[:, None]
    b2 = (scaled_b ** 2).sum(axis=1)[None, :]
    cross = scaled_a @ scaled_b.T
    return np.maximum(a2 + b2 - 2.0 * cross, 0.0)


class Kernel:
    """Base covariance function."""

    def __call__(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def diag(self, a: np.ndarray) -> np.ndarray:
        """Diagonal of K(a, a) without forming the full matrix."""
        return np.diag(self(a, a))


class ExponentialKernel(Kernel):
    """The paper's Eq. (9) kernel: k0 · exp(-‖α1 - α2‖²) with ARD weights.

    ``‖α1 - α2‖² = Σ_i k_i (α1,i - α2,i)²`` where ``k_0`` is the output scale
    and ``k_1..k_d`` are per-dimension inverse-squared lengthscales.
    """

    def __init__(self, output_scale: float = 1.0, lengthscales: np.ndarray | float = 1.0):
        if output_scale <= 0:
            raise ValueError("output_scale must be positive")
        self.output_scale = float(output_scale)
        self.lengthscales = np.atleast_1d(np.asarray(lengthscales, dtype=np.float64))
        if np.any(self.lengthscales <= 0):
            raise ValueError("lengthscales must be positive")

    def _expand(self, dim: int) -> np.ndarray:
        if self.lengthscales.size == 1:
            return np.full(dim, float(self.lengthscales[0]))
        if self.lengthscales.size != dim:
            raise ValueError("lengthscale dimensionality mismatch")
        return self.lengthscales

    def __call__(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        a = np.atleast_2d(a)
        b = np.atleast_2d(b)
        lengthscales = self._expand(a.shape[1])
        return self.output_scale * np.exp(-_pairwise_sq_dists(a, b, lengthscales))

    def diag(self, a: np.ndarray) -> np.ndarray:
        return np.full(np.atleast_2d(a).shape[0], self.output_scale)


class RBFKernel(ExponentialKernel):
    """Squared-exponential kernel exp(-d²/2); identical family to Eq. (9)."""

    def __call__(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        a = np.atleast_2d(a)
        b = np.atleast_2d(b)
        lengthscales = self._expand(a.shape[1])
        return self.output_scale * np.exp(-0.5 * _pairwise_sq_dists(a, b, lengthscales))


class Matern52Kernel(Kernel):
    """Matérn-5/2 kernel, the default in many BO packages (used in ablations)."""

    def __init__(self, output_scale: float = 1.0, lengthscale: float = 1.0):
        if output_scale <= 0 or lengthscale <= 0:
            raise ValueError("kernel hyper-parameters must be positive")
        self.output_scale = float(output_scale)
        self.lengthscale = float(lengthscale)

    def __call__(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        a = np.atleast_2d(a)
        b = np.atleast_2d(b)
        dists = np.sqrt(_pairwise_sq_dists(a, b, np.full(a.shape[1], self.lengthscale)))
        scaled = np.sqrt(5.0) * dists
        return self.output_scale * (1.0 + scaled + scaled ** 2 / 3.0) * np.exp(-scaled)

    def diag(self, a: np.ndarray) -> np.ndarray:
        return np.full(np.atleast_2d(a).shape[0], self.output_scale)
