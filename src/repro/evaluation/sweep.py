"""Vectorized Monte-Carlo drift-sweep engine.

Every curve in Figures 2–4 of the paper is the same measurement: for each σ
on a grid, evaluate the model under ``trials`` independently drifted weight
copies and average.  The naive loop re-snapshots the weights, re-draws the
drift and re-runs the full test set once per (σ, trial) pair with zero reuse.
:class:`DriftSweepEngine` is the production-scale replacement:

1. **Vectorized sampling** — all ``trials`` drift copies per σ are pre-drawn
   with one :meth:`~repro.fault.drift.DriftModel.sample_batch` RNG call per
   parameter (via :meth:`FaultInjector.draw_trials`), in the main process.
   Because sampling is decoupled from evaluation, results are bit-identical
   regardless of how evaluation is scheduled.
2. **Single snapshot** — the clean weights are snapshotted once per sweep
   (:meth:`FaultInjector.multi_trial`), not once per trial, and restored even
   if an evaluation raises mid-sweep.
3. **Parallel evaluation** — trials run under ``concurrent.futures``
   process-level parallelism (``workers`` configurable, serial fallback on
   any pool failure), plus an inference cache keyed on the drifted weight
   bytes so bit-identical trials (every σ=0 trial, for instance) are
   evaluated exactly once.
4. **Structured results** — the sweep streams into the existing
   :class:`~repro.evaluation.robustness.RobustnessCurve` and returns a
   JSON-serializable :class:`SweepReport` with timing statistics.

The legacy :func:`~repro.evaluation.robustness.robustness_curve` /
:func:`~repro.evaluation.detection_metrics.map_under_drift` entry points are
thin wrappers over this engine.
"""

from __future__ import annotations

import functools
import hashlib
import json
import multiprocessing
import time
import warnings
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from ..fault.drift import DriftModel, LogNormalDrift
from ..fault.injector import FaultInjector
from ..fault.policy import LayerFaultPolicy
from ..utils.rng import get_rng
from .robustness import RobustnessCurve, accuracy

__all__ = ["DriftSweepEngine", "SweepReport", "classification_accuracy"]


def classification_accuracy(model, data, batch_size: int = 256) -> float:
    """Default evaluation function: clean classification accuracy."""
    return accuracy(model, data, batch_size=batch_size)


# --------------------------------------------------------------------------- #
# Worker-process plumbing.  The model and dataset are shipped once per worker
# (via the pool initializer); each task then carries only the drifted
# parameter arrays for one trial.
# --------------------------------------------------------------------------- #
_WORKER_STATE: dict = {}


def _init_worker(model, data, evaluate_fn) -> None:
    # The model arrives clean (the pool is created before any trial is
    # applied), so the worker-local injector snapshots the same clean state
    # as the main process and apply_trial enforces the identical restore
    # invariant: parameters absent from a trial reset to the snapshot, so a
    # worker that just ran a trial drifting a different parameter subset
    # (per-σ policies) cannot leak stale weights into the next one.
    injector = FaultInjector(model, LogNormalDrift(0.0))
    injector.snapshot()
    _WORKER_STATE["model"] = model
    _WORKER_STATE["injector"] = injector
    _WORKER_STATE["data"] = data
    _WORKER_STATE["evaluate_fn"] = evaluate_fn


def _run_trial(digest: str, params: dict) -> tuple[str, float, float]:
    _WORKER_STATE["injector"].apply_trial(params)
    start = time.perf_counter()
    score = float(_WORKER_STATE["evaluate_fn"](_WORKER_STATE["model"],
                                               _WORKER_STATE["data"]))
    return digest, score, time.perf_counter() - start


def _weights_digest(params: dict) -> str:
    """Content hash of one trial's drifted arrays (the inference-cache key)."""
    h = hashlib.blake2b(digest_size=16)
    for name in sorted(params):
        h.update(name.encode())
        h.update(np.ascontiguousarray(params[name]).tobytes())
    return h.hexdigest()


@dataclass
class SweepReport:
    """JSON-serializable record of one drift sweep, with timing statistics."""

    label: str
    sigmas: list = field(default_factory=list)
    means: list = field(default_factory=list)
    stds: list = field(default_factory=list)
    trial_scores: list = field(default_factory=list)  # per-σ list of per-trial scores
    trials: int = 0
    workers: int = 1          # worker processes actually used (1 = serial)
    backend: str = "serial"   # "serial" or "process"
    fallback_reason: str = ""  # why a requested parallel run degraded to serial
    n_evaluations: int = 0    # model evaluations actually run (after caching)
    cache_hits: int = 0       # trials answered from the inference cache
    elapsed_seconds: float = 0.0
    per_sigma_seconds: list = field(default_factory=list)  # summed eval time per σ

    def curve(self) -> RobustnessCurve:
        """The sweep as the classic accuracy-vs-σ curve (Fig. 2/3 series)."""
        return RobustnessCurve(label=self.label, sigmas=list(self.sigmas),
                               means=list(self.means), stds=list(self.stds))

    def as_dict(self) -> dict:
        return {
            "label": self.label, "sigmas": list(self.sigmas),
            "means": list(self.means), "stds": list(self.stds),
            "trial_scores": [list(scores) for scores in self.trial_scores],
            "trials": self.trials, "workers": self.workers,
            "backend": self.backend, "fallback_reason": self.fallback_reason,
            "n_evaluations": self.n_evaluations,
            "cache_hits": self.cache_hits,
            "elapsed_seconds": self.elapsed_seconds,
            "per_sigma_seconds": list(self.per_sigma_seconds),
        }

    def to_json(self, indent: int | None = None) -> str:
        return json.dumps(self.as_dict(), indent=indent)

    @classmethod
    def from_dict(cls, data: dict) -> "SweepReport":
        return cls(**data)

    @classmethod
    def from_json(cls, text: str) -> "SweepReport":
        return cls.from_dict(json.loads(text))

    def __len__(self) -> int:
        return len(self.sigmas)


class DriftSweepEngine:
    """Batched, cached, optionally parallel accuracy-vs-σ measurement.

    Parameters
    ----------
    model:
        Trained network to evaluate (its weights are snapshotted once per
        sweep and always restored).
    data:
        Whatever ``evaluate_fn`` consumes — a classification
        :class:`~repro.data.loader.Dataset` for the default accuracy
        evaluation, a list of detection samples for mAP sweeps, …
    trials:
        Monte-Carlo drift trials per σ grid point.
    drift_factory:
        Callable mapping σ to a :class:`DriftModel` (or a
        :class:`LayerFaultPolicy`); defaults to the paper's
        :class:`LogNormalDrift`.  Passing a ``DriftModel`` *instance* is an
        error: its fixed parameters would silently override every σ.
    workers:
        ``0``/``1`` evaluates serially; ``n >= 2`` spreads trials over ``n``
        worker processes.  Seeded results are bit-identical either way
        because all randomness is pre-drawn in the main process.
    evaluate_fn:
        ``f(model, data) -> float`` run per trial; must be picklable for the
        process backend.  Defaults to classification accuracy at
        ``batch_size``.
    cache:
        Skip re-evaluating trials whose drifted weights are bit-identical to
        an already-evaluated trial (every σ=0 trial hits this).
    """

    def __init__(self, model, data, *, trials: int = 5, drift_factory=None,
                 batch_size: int = 256, workers: int = 0, rng=None,
                 skip: Sequence[str] = (), cache: bool = True,
                 evaluate_fn: Callable | None = None):
        if trials < 1:
            raise ValueError("trials must be at least 1")
        if workers < 0:
            raise ValueError("workers must be non-negative")
        if isinstance(drift_factory, DriftModel):
            raise TypeError(
                "drift_factory must be a callable mapping sigma to a DriftModel "
                f"(e.g. LogNormalDrift, not LogNormalDrift(...)); got the instance "
                f"{drift_factory!r}, whose fixed parameters would silently override "
                "every sigma in the sweep")
        self.model = model
        self.data = data
        self.trials = int(trials)
        self.drift_factory = drift_factory
        self.batch_size = int(batch_size)
        self.workers = int(workers)
        self.rng = get_rng(rng)
        self.skip = tuple(skip)
        self.cache = bool(cache)
        self.evaluate_fn = evaluate_fn or functools.partial(
            classification_accuracy, batch_size=self.batch_size)

    # ------------------------------------------------------------------ #
    def _drift_for(self, sigma: float) -> DriftModel | LayerFaultPolicy:
        if self.drift_factory is None:
            return LogNormalDrift(float(sigma))
        return self.drift_factory(sigma)

    def run(self, sigmas: Sequence[float], label: str = "") -> SweepReport:
        """Sweep σ over ``sigmas`` and return the full report.

        ``report.curve()`` gives the plot-ready :class:`RobustnessCurve`.
        """
        start = time.perf_counter()
        sigmas = [float(sigma) for sigma in sigmas]
        label = label or type(self.model).__name__
        injector = FaultInjector(self.model, LogNormalDrift(0.0),
                                 skip=self.skip, rng=self.rng)

        with injector.multi_trial():
            # 1. Pre-draw every trial's weights: one vectorized RNG call per
            #    (σ, parameter).  Consuming the stream here, before any
            #    evaluation is scheduled, is what makes the sweep
            #    deterministic for any worker count.
            trial_params: dict[tuple[int, int], dict] = {}
            for sigma_index, sigma in enumerate(sigmas):
                batch = injector.draw_trials(self.trials, self._drift_for(sigma))
                for trial_index in range(self.trials):
                    trial_params[(sigma_index, trial_index)] = {
                        name: arrays[trial_index] for name, arrays in batch.items()}

            # 2. Deduplicate bit-identical trials (the inference cache).
            digest_of: dict[tuple[int, int], str] = {}
            pending: dict[str, tuple[int, int]] = {}
            cache_hits = 0
            for key in sorted(trial_params):
                digest = (_weights_digest(trial_params[key]) if self.cache
                          else f"trial-{key[0]}-{key[1]}")
                digest_of[key] = digest
                if digest in pending:
                    cache_hits += 1
                else:
                    pending[digest] = key

            # 3. Evaluate each unique weight set, in parallel when asked.
            scores: dict[str, float] = {}
            eval_seconds: dict[str, float] = {}
            backend = "serial"
            workers_used = 1
            fallback_reason = ""
            if self.workers >= 2 and len(pending) > 1:
                backend, workers_used, fallback_reason = self._run_parallel(
                    pending, trial_params, scores, eval_seconds)
            for digest, key in pending.items():
                if digest in scores:
                    continue
                injector.apply_trial(trial_params[key])
                t0 = time.perf_counter()
                scores[digest] = float(self.evaluate_fn(self.model, self.data))
                eval_seconds[digest] = time.perf_counter() - t0

        # 4. Stream per-trial scores into the aggregate curve/report.
        report = SweepReport(label=label, trials=self.trials,
                             workers=workers_used, backend=backend,
                             fallback_reason=fallback_reason,
                             n_evaluations=len(pending), cache_hits=cache_hits)
        for sigma_index, sigma in enumerate(sigmas):
            per_trial = [scores[digest_of[(sigma_index, trial_index)]]
                         for trial_index in range(self.trials)]
            seconds = sum(eval_seconds.get(digest, 0.0)
                          for digest, key in pending.items() if key[0] == sigma_index)
            report.sigmas.append(sigma)
            report.means.append(float(np.mean(per_trial)))
            report.stds.append(float(np.std(per_trial)))
            report.trial_scores.append(per_trial)
            report.per_sigma_seconds.append(round(seconds, 6))
        report.elapsed_seconds = round(time.perf_counter() - start, 6)
        return report

    # ------------------------------------------------------------------ #
    def _run_parallel(self, pending, trial_params, scores, eval_seconds
                      ) -> tuple[str, int, str]:
        """Evaluate ``pending`` trials in worker processes.

        Fills ``scores``/``eval_seconds`` in place; any failure (pool setup,
        pickling, a dead worker) leaves the remaining trials for the serial
        fallback loop in :meth:`run` and is surfaced through a warning plus
        ``SweepReport.fallback_reason``.  Returns ``(backend, workers_used,
        fallback_reason)``.
        """
        workers = min(self.workers, len(pending))
        try:
            context = multiprocessing.get_context(
                "fork" if "fork" in multiprocessing.get_all_start_methods() else None)
            with ProcessPoolExecutor(
                    max_workers=workers, mp_context=context,
                    initializer=_init_worker,
                    initargs=(self.model, self.data, self.evaluate_fn)) as pool:
                futures = [pool.submit(_run_trial, digest, trial_params[key])
                           for digest, key in pending.items()]
                for future in futures:
                    digest, score, seconds = future.result()
                    scores[digest] = score
                    eval_seconds[digest] = seconds
            return "process", workers, ""
        except Exception as error:
            scores.clear()
            eval_seconds.clear()
            reason = f"{type(error).__name__}: {error}"
            warnings.warn(f"parallel sweep fell back to serial evaluation "
                          f"({reason})", RuntimeWarning, stacklevel=3)
            return "serial", 1, reason
