"""Vectorized Monte-Carlo drift-sweep engine.

Every curve in Figures 2–4 of the paper is the same measurement: for each σ
on a grid, evaluate the model under ``trials`` independently drifted weight
copies and average.  The naive loop re-snapshots the weights, re-draws the
drift and re-runs the full test set once per (σ, trial) pair with zero reuse.
:class:`DriftSweepEngine` is the production-scale replacement:

1. **Vectorized sampling** — all drift copies are pre-drawn with one
   :meth:`~repro.fault.drift.DriftModel.sample_batch` RNG call per
   (σ, parameter, chunk) via :meth:`FaultInjector.plan_trials
   <repro.fault.injector.FaultInjector.plan_trials>`, in the main process.
   Because sampling is decoupled from evaluation, results are bit-identical
   regardless of how evaluation is scheduled.
2. **Chunked pre-drawing** — ``max_chunk_trials`` bounds how many weight
   copies per parameter are materialised at once, so PreAct-ResNet-depth
   models sweep in bounded memory.  Per-parameter RNG streams make the drawn
   trials bit-identical for any chunk size.
3. **Single snapshot** — the clean weights are snapshotted once per sweep
   (:meth:`FaultInjector.multi_trial`), not once per trial, and restored even
   if an evaluation raises mid-sweep.
4. **Pluggable execution** — evaluation is scheduled through an
   :class:`~repro.execution.ExecutionBackend` (serial, pickled process
   pool, or shared-memory weight shipping; any out-of-process failure
   degrades to serial), plus an inference cache keyed on the drifted weight
   bytes so bit-identical trials (every σ=0 trial, for instance) are
   evaluated exactly once.  A caller-owned ``shared_cache`` extends the
   cache across engine runs — the BayesFT inner objective reuses it across
   Bayesian-optimisation trials.  ``trial_batch`` composes with all of the
   above: an :class:`~repro.inference.InferenceEvaluator` owns the model
   calls, and the batched strategy evaluates several stacked trials per
   forward pass — bit-identically — both in-process and inside workers.
5. **Structured results** — the sweep streams into the existing
   :class:`~repro.evaluation.robustness.RobustnessCurve` and returns a
   JSON-serializable :class:`SweepReport` with timing statistics and, when
   the evaluation function reports one, a per-trial loss track (the paper's
   Eq. 3 objective needs losses, its figures need accuracies).

The legacy :func:`~repro.evaluation.robustness.robustness_curve` /
:func:`~repro.evaluation.detection_metrics.map_under_drift` entry points are
thin wrappers over this engine, as are the BayesFT inner objective
(:class:`~repro.core.objective.DriftMarginalizedObjective`) and the fig2/fig3
experiment harnesses.
"""

from __future__ import annotations

import hashlib
import json
import time
import warnings
from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from ..execution import EvalContext, resolve_backend, validate_backend
from ..fault.drift import DriftModel, LogNormalDrift
from ..inference import ClassificationAccuracy, resolve_evaluator
from ..fault.injector import FaultInjector
from ..fault.policy import LayerFaultPolicy
from ..telemetry import MetricsRegistry, current
from ..utils.rng import get_rng
from .robustness import RobustnessCurve, accuracy

__all__ = ["DriftSweepEngine", "SweepReport", "classification_accuracy"]


def classification_accuracy(model, data, batch_size: int = 256) -> float:
    """Default evaluation function: clean classification accuracy."""
    return accuracy(model, data, batch_size=batch_size)


def _weights_digest(params: dict) -> str:
    """Content hash of one trial's drifted arrays (the inference-cache key)."""
    h = hashlib.blake2b(digest_size=16)
    for name in sorted(params):
        h.update(name.encode())
        h.update(np.ascontiguousarray(params[name]).tobytes())
    return h.hexdigest()


@dataclass
class SweepReport:
    """JSON-serializable record of one drift sweep, with timing statistics.

    ``means``/``stds``/``trial_scores`` carry the primary score per σ (the
    accuracy track plotted in Figs. 2–3).  When the engine's ``evaluate_fn``
    also reports a loss, ``loss_means``/``loss_stds``/``trial_losses`` carry
    the Eq.-3 loss track; they are empty lists otherwise.

    :attr:`VOLATILE_FIELDS` names the fields that legitimately vary between
    bit-identical runs (scheduling, shipping and timing);
    :meth:`canonical_dict` / ``to_json(canonical=True)`` drop them, giving
    the byte-comparable projection the result store persists and the
    backend-equivalence tests diff.
    """

    label: str
    sigmas: list = field(default_factory=list)
    means: list = field(default_factory=list)
    stds: list = field(default_factory=list)
    trial_scores: list = field(default_factory=list)  # per-σ list of per-trial scores
    loss_means: list = field(default_factory=list)    # empty unless losses tracked
    loss_stds: list = field(default_factory=list)
    trial_losses: list = field(default_factory=list)  # per-σ list of per-trial losses
    trials: int = 0
    workers: int = 1          # worker processes actually used (1 = serial)
    backend: str = "serial"   # "serial", "process" or "shared_memory"
    fallback_reason: str = ""  # why a requested parallel run degraded to serial
    n_evaluations: int = 0    # model evaluations actually run (after caching)
    cache_hits: int = 0       # trials answered from the inference cache
    max_chunk_trials: int | None = None  # chunk bound the sweep ran with
    peak_resident_trials: int = 0  # most weight copies materialised at once
    tasks_shipped: int = 0    # trials sent to worker processes
    bytes_shipped: int = 0    # payload bytes those tasks carried
    trial_batch: int | None = None  # trials per stacked forward pass (None = 1)
    batched_evaluations: int = 0  # evaluations answered by a stacked pass
    elapsed_seconds: float = 0.0
    per_sigma_seconds: list = field(default_factory=list)  # summed eval time per σ

    #: Fields that vary between bit-identical runs of the same seeded sweep
    #: (scheduling, shipping and timing); everything else is deterministic.
    VOLATILE_FIELDS = (
        "workers", "backend", "fallback_reason", "elapsed_seconds",
        "per_sigma_seconds", "max_chunk_trials", "peak_resident_trials",
        "tasks_shipped", "bytes_shipped", "trial_batch", "batched_evaluations",
    )

    def curve(self) -> RobustnessCurve:
        """The sweep as the classic accuracy-vs-σ curve (Fig. 2/3 series)."""
        return RobustnessCurve(label=self.label, sigmas=list(self.sigmas),
                               means=list(self.means), stds=list(self.stds))

    def as_dict(self) -> dict:
        return {
            "label": self.label, "sigmas": list(self.sigmas),
            "means": list(self.means), "stds": list(self.stds),
            "trial_scores": [list(scores) for scores in self.trial_scores],
            "loss_means": list(self.loss_means),
            "loss_stds": list(self.loss_stds),
            "trial_losses": [list(losses) for losses in self.trial_losses],
            "trials": self.trials, "workers": self.workers,
            "backend": self.backend, "fallback_reason": self.fallback_reason,
            "n_evaluations": self.n_evaluations,
            "cache_hits": self.cache_hits,
            "max_chunk_trials": self.max_chunk_trials,
            "peak_resident_trials": self.peak_resident_trials,
            "tasks_shipped": self.tasks_shipped,
            "bytes_shipped": self.bytes_shipped,
            "trial_batch": self.trial_batch,
            "batched_evaluations": self.batched_evaluations,
            "elapsed_seconds": self.elapsed_seconds,
            "per_sigma_seconds": list(self.per_sigma_seconds),
        }

    def canonical_dict(self) -> dict:
        """The deterministic projection: :attr:`VOLATILE_FIELDS` removed.

        Two seeded sweeps of the same model/data/grid agree on this dict
        byte for byte regardless of backend, worker count or chunk size.
        """
        data = self.as_dict()
        for key in self.VOLATILE_FIELDS:
            data.pop(key, None)
        return data

    def to_json(self, indent: int | None = None, canonical: bool = False) -> str:
        """Serialize; ``canonical=True`` gives the sorted-key deterministic
        projection (used by the result store and the backend-equivalence
        tests), ``False`` the full record including volatile stats."""
        if canonical:
            return json.dumps(self.canonical_dict(), indent=indent,
                              sort_keys=True)
        return json.dumps(self.as_dict(), indent=indent)

    @classmethod
    def from_dict(cls, data: dict) -> "SweepReport":
        return cls(**data)

    @classmethod
    def from_json(cls, text: str) -> "SweepReport":
        return cls.from_dict(json.loads(text))

    def __len__(self) -> int:
        return len(self.sigmas)


class DriftSweepEngine:
    """Batched, cached, optionally parallel accuracy-vs-σ measurement.

    Parameters
    ----------
    model:
        Trained network to evaluate (its weights are snapshotted once per
        sweep and always restored).
    data:
        Whatever ``evaluate_fn`` consumes — a classification
        :class:`~repro.data.loader.Dataset` for the default accuracy
        evaluation, a list of detection samples for mAP sweeps, …
    trials:
        Monte-Carlo drift trials per σ grid point.
    drift_factory:
        Callable mapping σ to a :class:`DriftModel` (or a
        :class:`LayerFaultPolicy`); defaults to the paper's
        :class:`LogNormalDrift`.  Passing a ``DriftModel`` *instance* is an
        error: its fixed parameters would silently override every σ.
    workers:
        ``0``/``1`` evaluates serially; ``n >= 2`` spreads trials over ``n``
        worker processes.  Seeded results are bit-identical either way
        because all randomness is pre-drawn in the main process.
    backend:
        Where trial evaluations run: ``None`` derives the backend from
        ``workers`` (the historical behaviour), or pass an
        :mod:`repro.execution` registry name (``"serial"``, ``"process"``,
        ``"shared_memory"``) or an :class:`~repro.execution.ExecutionBackend`
        instance.  Backends never change results — they receive
        fully-materialised weights and consume no randomness — so the choice
        trades only shipping cost against parallelism.  Out-of-process
        backend failures degrade the rest of the sweep to serial evaluation
        (recorded in ``SweepReport.fallback_reason``).
    evaluate_fn:
        ``f(model, data) -> float`` or ``f(model, data) -> (score, loss)``,
        run per trial; must be picklable for the process backend.  Defaults
        to classification accuracy at ``batch_size``.  When it returns a
        ``(score, loss)`` pair the report additionally carries the per-trial
        loss track (``loss_means``/``trial_losses``).
    cache:
        Skip re-evaluating trials whose drifted weights are bit-identical to
        an already-evaluated trial (every σ=0 trial hits this).
    shared_cache:
        Optional caller-owned ``dict`` mapping weight digests to
        ``(score, loss)``; entries found there skip evaluation (counted as
        cache hits) and newly evaluated trials are written back, so the
        cache persists across engine runs.  Used by the BayesFT inner
        objective to reuse evaluations across Bayesian-optimisation trials.
        Requires ``cache=True`` (content-addressed keys).
    max_chunk_trials:
        Upper bound on how many drifted weight copies per parameter are
        materialised at once (``None`` pre-draws each σ's full trial batch).
        Results are bit-identical for any value — see
        :meth:`FaultInjector.plan_trials
        <repro.fault.injector.FaultInjector.plan_trials>` — so the knob
        trades only memory against scheduling freedom: chunks of one trial
        evaluate serially even when ``workers >= 2``.
    trial_batch:
        How many trials each forward pass evaluates (``None``/``1`` is the
        historical one-trial-at-a-time path).  ``n >= 2`` routes evaluation
        through the :class:`~repro.inference.TrialBatchedEvaluator`, which
        stacks ``n`` drifted weight realisations along a leading trial axis
        and runs them in one tiled forward pass — bit-identical to ``n``
        separate passes (see :mod:`repro.nn.functional`), so like
        ``workers``, ``backend`` and ``max_chunk_trials`` this is a pure
        scheduling knob.  Composes with all of them: worker tasks widen to
        ``trial_batch`` trials, and the σ=0 collapse and inference cache
        dedupe *before* batching, so batches only ever contain unique
        trials.  Evaluation functions without the batched protocol
        (``evaluate_trials``) silently run per-trial.
    """

    def __init__(self, model, data, *, trials: int = 5, drift_factory=None,
                 batch_size: int = 256, workers: int = 0, rng=None,
                 skip: Sequence[str] = (), cache: bool = True,
                 shared_cache: dict | None = None,
                 max_chunk_trials: int | None = None,
                 evaluate_fn: Callable | None = None,
                 backend=None, trial_batch: int | None = None):
        if trials < 1:
            raise ValueError("trials must be at least 1")
        if workers < 0:
            raise ValueError("workers must be non-negative")
        if max_chunk_trials is not None and max_chunk_trials < 1:
            raise ValueError("max_chunk_trials must be at least 1 (or None)")
        if shared_cache is not None and not cache:
            raise ValueError(
                "shared_cache requires cache=True: with caching disabled the "
                "trials are keyed by position, not weight content, so reusing "
                "them across runs would return stale scores for different "
                "weights")
        if isinstance(drift_factory, DriftModel):
            raise TypeError(
                "drift_factory must be a callable mapping sigma to a DriftModel "
                f"(e.g. LogNormalDrift, not LogNormalDrift(...)); got the instance "
                f"{drift_factory!r}, whose fixed parameters would silently override "
                "every sigma in the sweep")
        self.model = model
        self.data = data
        self.trials = int(trials)
        self.drift_factory = drift_factory
        self.batch_size = int(batch_size)
        self.workers = int(workers)
        self.rng = get_rng(rng)
        self.skip = tuple(skip)
        self.cache = bool(cache)
        self.shared_cache = shared_cache
        self.max_chunk_trials = None if max_chunk_trials is None else int(max_chunk_trials)
        self.evaluate_fn = evaluate_fn or ClassificationAccuracy(
            batch_size=self.batch_size)
        self.backend = backend
        self.trial_batch = None if trial_batch is None else int(trial_batch)
        # Fail fast on an unknown backend name or trial_batch; each run()
        # resolves the backend afresh, the evaluator is reused.  Validation
        # is a pure registry lookup — no throwaway backend is built here.
        self.evaluator = resolve_evaluator(self.trial_batch)
        validate_backend(self.backend)

    # ------------------------------------------------------------------ #
    def _drift_for(self, sigma: float) -> DriftModel | LayerFaultPolicy:
        if self.drift_factory is None:
            return LogNormalDrift(float(sigma))
        return self.drift_factory(sigma)

    def run(self, sigmas: Sequence[float], label: str = "") -> SweepReport:
        """Sweep σ over ``sigmas`` and return the full report.

        ``report.curve()`` gives the plot-ready :class:`RobustnessCurve`.
        """
        label = label or type(self.model).__name__
        telemetry = current()
        with telemetry.span("sweep", label=label, grid=len(sigmas),
                            trials=self.trials) as sweep_span:
            return self._run([float(sigma) for sigma in sigmas], label,
                             telemetry, sweep_span)

    def _run(self, sigmas: list[float], label: str, telemetry,
             sweep_span) -> SweepReport:
        start = time.perf_counter()
        injector = FaultInjector(self.model, LogNormalDrift(0.0),
                                 skip=self.skip, rng=self.rng)

        digest_of: dict[tuple[int, int], str] = {}
        first_key: dict[str, tuple[int, int]] = {}  # digest -> key that evaluated it
        scores: dict[str, float] = {}
        losses: dict[str, float | None] = {}
        eval_seconds: dict[str, float] = {}
        # The sweep's own accounting lives in a per-run MetricsRegistry —
        # the one counter implementation — and the report fields below are
        # views of its final values.
        metrics = MetricsRegistry()
        cache_hits = metrics.counter("cache_hits")
        n_evaluations = metrics.counter("n_evaluations")
        batched_evaluations = metrics.counter("batched_evaluations")
        fallback_reason = ""
        backend = resolve_backend(self.backend, workers=self.workers)
        backend.open(EvalContext(model=self.model, data=self.data,
                                 evaluate_fn=self.evaluate_fn,
                                 evaluator=self.evaluator,
                                 trace=telemetry.enabled))
        backend_broken = False
        if self.shared_cache:
            for digest, (score, loss) in self.shared_cache.items():
                scores[digest] = score
                losses[digest] = loss

        try:
            with injector.multi_trial():
                for sigma_index, sigma in enumerate(sigmas):
                    with telemetry.span("sigma", sigma=sigma):
                        backend_broken, fallback_reason = self._run_sigma(
                            sigma_index, sigma, injector, backend,
                            backend_broken, fallback_reason, telemetry,
                            digest_of, first_key, scores, losses,
                            eval_seconds, cache_hits, n_evaluations,
                            batched_evaluations)
        finally:
            backend.close()

        if self.shared_cache is not None:
            for digest in first_key:
                self.shared_cache[digest] = (scores[digest], losses[digest])

        # 4. Stream per-trial scores into the aggregate curve/report.
        has_losses = all(losses[digest] is not None for digest in digest_of.values())
        report = SweepReport(label=label, trials=self.trials,
                             workers=backend.workers_used,
                             backend=backend.used_backend,
                             fallback_reason=fallback_reason,
                             n_evaluations=n_evaluations.value,
                             cache_hits=cache_hits.value,
                             max_chunk_trials=self.max_chunk_trials,
                             peak_resident_trials=injector.peak_resident_trials,
                             tasks_shipped=backend.tasks_shipped,
                             bytes_shipped=backend.bytes_shipped,
                             trial_batch=self.trial_batch,
                             batched_evaluations=batched_evaluations.value)
        # Roll the run's counters into the ambient session (no-op when
        # telemetry is off) so `trace summarize` sees system-wide totals.
        telemetry.add("evaluations_total", n_evaluations.value)
        telemetry.add("cache_hits_total", cache_hits.value)
        telemetry.add("batched_evaluations", batched_evaluations.value)
        telemetry.add("tasks_shipped", backend.tasks_shipped)
        telemetry.add("bytes_shipped", backend.bytes_shipped)
        telemetry.gauge("workers", backend.workers_used)
        sweep_span.set(backend=backend.used_backend,
                       n_evaluations=n_evaluations.value,
                       cache_hits=cache_hits.value)
        for sigma_index, sigma in enumerate(sigmas):
            per_trial = [scores[digest_of[(sigma_index, trial_index)]]
                         for trial_index in range(self.trials)]
            seconds = sum(eval_seconds.get(digest, 0.0)
                          for digest, key in first_key.items()
                          if key[0] == sigma_index)
            report.sigmas.append(sigma)
            report.means.append(float(np.mean(per_trial)))
            report.stds.append(float(np.std(per_trial)))
            report.trial_scores.append(per_trial)
            report.per_sigma_seconds.append(round(seconds, 6))
            if has_losses:
                per_loss = [losses[digest_of[(sigma_index, trial_index)]]
                            for trial_index in range(self.trials)]
                report.loss_means.append(float(np.mean(per_loss)))
                report.loss_stds.append(float(np.std(per_loss)))
                report.trial_losses.append(per_loss)
        report.elapsed_seconds = round(time.perf_counter() - start, 6)
        return report

    def _run_sigma(self, sigma_index: int, sigma: float, injector, backend,
                   backend_broken: bool, fallback_reason: str, telemetry,
                   digest_of, first_key, scores, losses, eval_seconds,
                   cache_hits, n_evaluations, batched_evaluations
                   ) -> tuple[bool, str]:
        """Measure one σ grid point; returns updated backend health."""
        # 1. Pre-draw this σ's trials in memory-bounded chunks: one
        #    vectorized RNG call per (parameter, chunk), all in the main
        #    process.  Consuming the streams here, before any evaluation is
        #    scheduled, is what makes the sweep deterministic for any worker
        #    count, and the per-parameter streams make it deterministic for
        #    any chunk size.
        drift = self._drift_for(sigma)
        # A drift with no randomness (σ=0) produces `trials` bit-identical
        # copies; draw/hash/evaluate it once and map every trial onto that
        # digest — the cache would have collapsed them anyway, this skips
        # the redundant drawing and hashing too.
        collapse = (self.cache and isinstance(drift, DriftModel)
                    and drift.is_deterministic())
        draw_count = 1 if collapse else self.trials
        plan = injector.plan_trials(draw_count, drift,
                                    max_chunk=self.max_chunk_trials)
        trial_index = 0
        for count, chunk in plan:
            with telemetry.span("chunk", trials=count) as chunk_span:
                # 2. Deduplicate against everything evaluated so far (the
                #    inference cache, including shared entries).
                pending: dict[str, dict] = {}
                for offset in range(count):
                    key = (sigma_index, trial_index + offset)
                    params = {name: arrays[offset]
                              for name, arrays in chunk.items()}
                    digest = (_weights_digest(params) if self.cache
                              else f"trial-{key[0]}-{key[1]}")
                    digest_of[key] = digest
                    if digest in scores or digest in pending:
                        cache_hits.add()
                    else:
                        pending[digest] = params
                        first_key[digest] = key
                if not pending:
                    trial_index += count
                    continue
                chunk_span.set(unique=len(pending))

                # 3. Evaluate this chunk's unique weight sets through the
                #    execution backend.  In-process evaluation errors
                #    propagate; an out-of-process backend that breaks (pool
                #    setup, pickling, a dead worker) degrades the rest of
                #    the sweep to serial.
                if not backend_broken:
                    try:
                        for result in backend.run_trials(
                                pending, injector.apply_trial):
                            scores[result.digest] = result.score
                            losses[result.digest] = result.loss
                            eval_seconds[result.digest] = result.seconds
                            n_evaluations.add()
                            batched_evaluations.add(int(result.batched))
                    except Exception as error:
                        if not backend.out_of_process:
                            raise
                        backend_broken = True
                        fallback_reason = f"{type(error).__name__}: {error}"
                        telemetry.add("sweep_serial_fallbacks")
                        warnings.warn(
                            f"parallel sweep fell back to serial "
                            f"evaluation ({fallback_reason})",
                            RuntimeWarning, stacklevel=2)
                # Serial completion of anything the backend did not answer
                # (everything, once it is broken), through the same
                # evaluator the backend's workers run.
                leftovers = {digest: params
                             for digest, params in pending.items()
                             if digest not in scores}
                if leftovers:
                    for result in self.evaluator.run(
                            self.model, self.data, self.evaluate_fn,
                            leftovers, injector.apply_trial):
                        scores[result.digest] = result.score
                        losses[result.digest] = result.loss
                        eval_seconds[result.digest] = result.seconds
                        n_evaluations.add()
                        batched_evaluations.add(int(result.batched))
                trial_index += count
        if collapse:
            digest = digest_of[(sigma_index, 0)]
            for extra in range(1, self.trials):
                digest_of[(sigma_index, extra)] = digest
                cache_hits.add()
        return backend_broken, fallback_reason
