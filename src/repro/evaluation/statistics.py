"""Summary statistics over robustness curves."""

from __future__ import annotations

import numpy as np
from scipy import stats

from .robustness import RobustnessCurve

__all__ = ["curve_auc", "sigma_at_accuracy", "compare_curves", "mean_confidence_interval"]


def curve_auc(curve: RobustnessCurve) -> float:
    """Area under the accuracy-vs-σ curve (trapezoidal), normalised by the σ span.

    A scalar robustness score: 1.0 means perfect accuracy across the whole
    sweep, higher is better.
    """
    sigmas = np.asarray(curve.sigmas)
    means = np.asarray(curve.means)
    if len(sigmas) < 2:
        return float(means[0]) if len(means) else 0.0
    span = sigmas[-1] - sigmas[0]
    if span <= 0:
        return float(means.mean())
    return float(np.trapezoid(means, sigmas) / span)


def sigma_at_accuracy(curve: RobustnessCurve, threshold: float = 0.5) -> float:
    """The largest σ at which accuracy still meets ``threshold``.

    Linear interpolation between grid points; returns 0 if the clean
    accuracy is already below the threshold and the last σ if the curve
    never drops below it.  This is the "accuracy cliff location" statistic
    used to compare methods in EXPERIMENTS.md.
    """
    sigmas = np.asarray(curve.sigmas)
    means = np.asarray(curve.means)
    if means[0] < threshold:
        return 0.0
    for index in range(1, len(sigmas)):
        if means[index] < threshold:
            # Interpolate the crossing between index-1 and index.
            x0, x1 = sigmas[index - 1], sigmas[index]
            y0, y1 = means[index - 1], means[index]
            if y0 == y1:
                return float(x0)
            return float(x0 + (threshold - y0) * (x1 - x0) / (y1 - y0))
    return float(sigmas[-1])


def compare_curves(curve_a: RobustnessCurve, curve_b: RobustnessCurve) -> dict:
    """Pairwise comparison summary between two methods on the same σ grid."""
    if list(curve_a.sigmas) != list(curve_b.sigmas):
        raise ValueError("curves must share the same sigma grid")
    means_a = np.asarray(curve_a.means)
    means_b = np.asarray(curve_b.means)
    gaps = means_a - means_b
    return {
        "auc_a": curve_auc(curve_a),
        "auc_b": curve_auc(curve_b),
        "max_gap": float(gaps.max()),
        "mean_gap": float(gaps.mean()),
        "a_wins_fraction": float((gaps > 0).mean()),
    }


def mean_confidence_interval(values, confidence: float = 0.95) -> tuple[float, float]:
    """Mean and half-width of the Student-t confidence interval."""
    values = np.asarray(values, dtype=np.float64)
    if values.size == 0:
        return float("nan"), float("nan")
    mean = float(values.mean())
    if values.size == 1:
        return mean, 0.0
    sem = stats.sem(values)
    half_width = float(sem * stats.t.ppf((1 + confidence) / 2.0, values.size - 1))
    return mean, half_width
