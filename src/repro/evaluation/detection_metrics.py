"""Object-detection metrics: average precision and mAP under weight drift.

Figure 3(j) of the paper reports mean average precision (mAP) versus the
drift level σ for the pedestrian-detection task; Figure 4 visualises the
detections.  The implementation follows the standard PASCAL-VOC style
all-point-interpolated AP at a fixed IoU threshold.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..models.detection import Detection, box_iou

__all__ = ["average_precision", "mean_average_precision", "map_under_drift"]


def average_precision(predictions: list[list[Detection]],
                      ground_truths: list[np.ndarray],
                      iou_threshold: float = 0.5) -> float:
    """All-point interpolated AP for a single class over a set of images.

    ``predictions[i]`` is the detection list for image ``i`` and
    ``ground_truths[i]`` the (num_objects, 4) array of true boxes.
    """
    if len(predictions) != len(ground_truths):
        raise ValueError("predictions and ground_truths must align per image")
    total_objects = int(sum(len(boxes) for boxes in ground_truths))
    if total_objects == 0:
        return 0.0

    # Flatten detections with their image index, sorted by confidence.
    flat = [(det.score, image_index, det.box)
            for image_index, dets in enumerate(predictions) for det in dets]
    flat.sort(key=lambda item: item[0], reverse=True)

    matched = [np.zeros(len(boxes), dtype=bool) for boxes in ground_truths]
    true_positive = np.zeros(len(flat))
    false_positive = np.zeros(len(flat))
    for rank, (_, image_index, box) in enumerate(flat):
        truths = ground_truths[image_index]
        best_iou, best_match = 0.0, -1
        for truth_index, truth_box in enumerate(truths):
            iou = box_iou(box, truth_box)
            if iou > best_iou:
                best_iou, best_match = iou, truth_index
        if best_iou >= iou_threshold and not matched[image_index][best_match]:
            true_positive[rank] = 1.0
            matched[image_index][best_match] = True
        else:
            false_positive[rank] = 1.0

    cumulative_tp = np.cumsum(true_positive)
    cumulative_fp = np.cumsum(false_positive)
    recall = cumulative_tp / total_objects
    precision = cumulative_tp / np.maximum(cumulative_tp + cumulative_fp, 1e-12)

    # All-point interpolation: precision envelope integrated over recall.
    recall = np.concatenate([[0.0], recall, [1.0]])
    precision = np.concatenate([[0.0], precision, [0.0]])
    for index in range(len(precision) - 2, -1, -1):
        precision[index] = max(precision[index], precision[index + 1])
    change_points = np.where(recall[1:] != recall[:-1])[0]
    return float(np.sum((recall[change_points + 1] - recall[change_points])
                        * precision[change_points + 1]))


def mean_average_precision(detector, samples, iou_threshold: float = 0.5,
                           score_threshold: float = 0.3) -> float:
    """mAP of a detector over a list of :class:`DetectionSample` items.

    With a single (pedestrian) class, mAP equals the class AP.
    """
    images = np.stack([sample.image for sample in samples])
    predictions = detector.detect(images, score_threshold=score_threshold)
    ground_truths = [sample.boxes for sample in samples]
    return average_precision(predictions, ground_truths, iou_threshold=iou_threshold)


def map_under_drift(detector, samples, sigmas: Sequence[float],
                    trials: int = 3, rng=None, iou_threshold: float = 0.5,
                    workers: int = 0, max_chunk_trials: int | None = None) -> dict:
    """mAP-vs-σ sweep (the Fig. 3(j) measurement).

    Thin wrapper over :class:`~repro.evaluation.sweep.DriftSweepEngine` with
    mAP as the per-trial evaluation function.  ``max_chunk_trials`` bounds
    how many drifted weight copies are pre-drawn at once (``None`` = all);
    seeded results are bit-identical for any value.
    """
    import functools

    from .sweep import DriftSweepEngine

    engine = DriftSweepEngine(
        detector, samples, trials=trials, workers=workers, rng=rng,
        max_chunk_trials=max_chunk_trials,
        evaluate_fn=functools.partial(mean_average_precision,
                                      iou_threshold=iou_threshold))
    report = engine.run(sigmas)
    return {"sigmas": list(report.sigmas), "means": list(report.means),
            "stds": list(report.stds)}
