"""Evaluation: clean accuracy, drift-robustness curves, detection mAP, statistics."""

from .robustness import (
    accuracy, accuracy_under_drift, robustness_curve, RobustnessCurve,
)
from .sweep import DriftSweepEngine, SweepReport, classification_accuracy
from .detection_metrics import average_precision, mean_average_precision, map_under_drift
from .statistics import curve_auc, sigma_at_accuracy, compare_curves, mean_confidence_interval

__all__ = [
    "accuracy", "accuracy_under_drift", "robustness_curve", "RobustnessCurve",
    "DriftSweepEngine", "SweepReport", "classification_accuracy",
    "average_precision", "mean_average_precision", "map_under_drift",
    "curve_auc", "sigma_at_accuracy", "compare_curves", "mean_confidence_interval",
]
