"""Robustness evaluation: accuracy as a function of the drift level σ.

These functions implement the measurement protocol behind every curve in
Figures 2 and 3 of the paper: for each σ on a grid, sample several drifted
copies of the trained weights (Eq. 1), measure test accuracy with each copy,
and average.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from ..nn.module import Module
from ..nn.tensor import Tensor, no_grad
from ..data.loader import Dataset, DataLoader
from ..fault.drift import DriftModel, LogNormalDrift
from ..fault.injector import fault_injection
from ..utils.rng import get_rng

__all__ = ["accuracy", "accuracy_under_drift", "robustness_curve", "RobustnessCurve"]


def accuracy(model: Module, dataset: Dataset, batch_size: int = 256) -> float:
    """Clean classification accuracy of ``model`` on ``dataset``."""
    model.eval()
    loader = DataLoader(dataset, batch_size=batch_size, shuffle=False)
    correct = 0
    for inputs, labels in loader:
        with no_grad():
            logits = model(Tensor(inputs))
        correct += int((logits.data.argmax(axis=1) == labels).sum())
    return correct / max(len(dataset), 1)


def accuracy_under_drift(model: Module, dataset: Dataset, sigma: float,
                         trials: int = 5, drift_factory=None, rng=None,
                         batch_size: int = 256) -> tuple[float, float]:
    """Mean and std of accuracy over ``trials`` independent drift samples.

    ``drift_factory`` maps σ to a :class:`DriftModel` (defaults to the
    paper's log-normal drift).
    """
    if trials < 1:
        raise ValueError("trials must be at least 1")
    rng = get_rng(rng)
    drift_factory = drift_factory or LogNormalDrift
    scores = []
    for _ in range(trials):
        drift = drift_factory(sigma) if not isinstance(drift_factory, DriftModel) else drift_factory
        with fault_injection(model, drift, rng=rng):
            scores.append(accuracy(model, dataset, batch_size=batch_size))
    return float(np.mean(scores)), float(np.std(scores))


@dataclass
class RobustnessCurve:
    """Accuracy-vs-σ curve for one method/model (one line in Fig. 2/3)."""

    label: str
    sigmas: list = field(default_factory=list)
    means: list = field(default_factory=list)
    stds: list = field(default_factory=list)

    def add(self, sigma: float, mean: float, std: float) -> None:
        self.sigmas.append(float(sigma))
        self.means.append(float(mean))
        self.stds.append(float(std))

    def as_dict(self) -> dict:
        return {"label": self.label, "sigmas": list(self.sigmas),
                "means": list(self.means), "stds": list(self.stds)}

    def accuracy_at(self, sigma: float) -> float:
        """Accuracy at the grid point closest to ``sigma``."""
        index = int(np.argmin(np.abs(np.asarray(self.sigmas) - sigma)))
        return self.means[index]

    def __len__(self) -> int:
        return len(self.sigmas)


def robustness_curve(model: Module, dataset: Dataset,
                     sigmas: Sequence[float] = (0.0, 0.3, 0.6, 0.9, 1.2, 1.5),
                     trials: int = 5, label: str = "", drift_factory=None,
                     rng=None, batch_size: int = 256) -> RobustnessCurve:
    """Sweep σ over a grid and record mean/std accuracy at each point."""
    rng = get_rng(rng)
    curve = RobustnessCurve(label=label or type(model).__name__)
    for sigma in sigmas:
        mean, std = accuracy_under_drift(model, dataset, sigma, trials=trials,
                                         drift_factory=drift_factory, rng=rng,
                                         batch_size=batch_size)
        curve.add(sigma, mean, std)
    return curve
