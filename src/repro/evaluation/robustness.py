"""Robustness evaluation: accuracy as a function of the drift level σ.

These functions implement the measurement protocol behind every curve in
Figures 2 and 3 of the paper: for each σ on a grid, sample several drifted
copies of the trained weights (Eq. 1), measure test accuracy with each copy,
and average.  :func:`accuracy_under_drift` and :func:`robustness_curve` are
thin wrappers over :class:`~repro.evaluation.sweep.DriftSweepEngine`, which
pre-draws all drift samples vectorized and can evaluate trials in parallel
worker processes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from ..nn.module import Module
from ..nn.tensor import Tensor, no_grad
from ..data.loader import Dataset, DataLoader

__all__ = ["accuracy", "accuracy_under_drift", "robustness_curve", "RobustnessCurve"]


def accuracy(model: Module, dataset: Dataset, batch_size: int = 256) -> float:
    """Clean classification accuracy of ``model`` on ``dataset``."""
    model.eval()
    loader = DataLoader(dataset, batch_size=batch_size, shuffle=False)
    correct = 0
    for inputs, labels in loader:
        with no_grad():
            logits = model(Tensor(inputs))
        correct += int((logits.data.argmax(axis=1) == labels).sum())
    return correct / max(len(dataset), 1)


def accuracy_under_drift(model: Module, dataset: Dataset, sigma: float,
                         trials: int = 5, drift_factory=None, rng=None,
                         batch_size: int = 256, workers: int = 0,
                         max_chunk_trials: int | None = None) -> tuple[float, float]:
    """Mean and std of accuracy over ``trials`` independent drift samples.

    ``drift_factory`` maps σ to a :class:`~repro.fault.drift.DriftModel`
    (defaults to the paper's log-normal drift).  Passing a ``DriftModel``
    *instance* raises: its fixed parameters would silently override ``sigma``
    and every point of a σ-sweep would measure the same drift level.
    ``max_chunk_trials`` bounds how many drifted weight copies are pre-drawn
    at once (``None`` = all); seeded results are bit-identical for any value.
    """
    from .sweep import DriftSweepEngine
    engine = DriftSweepEngine(model, dataset, trials=trials,
                              drift_factory=drift_factory, batch_size=batch_size,
                              workers=workers, rng=rng,
                              max_chunk_trials=max_chunk_trials)
    report = engine.run([sigma])
    return report.means[0], report.stds[0]


@dataclass
class RobustnessCurve:
    """Accuracy-vs-σ curve for one method/model (one line in Fig. 2/3)."""

    label: str
    sigmas: list = field(default_factory=list)
    means: list = field(default_factory=list)
    stds: list = field(default_factory=list)

    def add(self, sigma: float, mean: float, std: float) -> None:
        self.sigmas.append(float(sigma))
        self.means.append(float(mean))
        self.stds.append(float(std))

    def as_dict(self) -> dict:
        return {"label": self.label, "sigmas": list(self.sigmas),
                "means": list(self.means), "stds": list(self.stds)}

    def accuracy_at(self, sigma: float) -> float:
        """Accuracy at the grid point closest to ``sigma``."""
        if not self.sigmas:
            raise ValueError(
                f"RobustnessCurve {self.label!r} is empty: no σ grid points "
                "have been added yet, so there is no accuracy to look up")
        index = int(np.argmin(np.abs(np.asarray(self.sigmas) - sigma)))
        return self.means[index]

    def __len__(self) -> int:
        return len(self.sigmas)


def robustness_curve(model: Module, dataset: Dataset,
                     sigmas: Sequence[float] = (0.0, 0.3, 0.6, 0.9, 1.2, 1.5),
                     trials: int = 5, label: str = "", drift_factory=None,
                     rng=None, batch_size: int = 256, workers: int = 0,
                     max_chunk_trials: int | None = None) -> RobustnessCurve:
    """Sweep σ over a grid and record mean/std accuracy at each point.

    Thin wrapper over :class:`~repro.evaluation.sweep.DriftSweepEngine`;
    pass ``workers >= 2`` to evaluate trials in parallel processes and
    ``max_chunk_trials`` to bound how many drifted weight copies are
    pre-drawn at once (seeded results are bit-identical either way).
    """
    from .sweep import DriftSweepEngine
    engine = DriftSweepEngine(model, dataset, trials=trials,
                              drift_factory=drift_factory, batch_size=batch_size,
                              workers=workers, rng=rng,
                              max_chunk_trials=max_chunk_trials)
    return engine.run(sigmas, label=label or type(model).__name__).curve()
