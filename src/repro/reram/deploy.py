"""Deploying a trained network onto simulated ReRAM hardware.

:func:`deploy_on_reram` replaces every parameter of a trained model with the
weights a crossbar array would actually realise (programming error, process
variation, retention drift), giving an end-to-end hardware-in-the-loop
evaluation path that complements the purely statistical Eq. (1) drift used
in the paper's figures.
"""

from __future__ import annotations

import numpy as np

from ..nn.module import Module
from ..nn.layers import Linear
from ..nn.tensor import Tensor
from ..utils.rng import get_rng
from .crossbar import CrossbarArray
from .device import DeviceConfig

__all__ = ["ReRAMLinear", "deploy_on_reram"]


class ReRAMLinear(Module):
    """A Linear layer whose matmul is computed by a simulated crossbar array.

    Inference only (the crossbar holds fixed programmed weights); used in the
    hardware-deployment example to show activation-level noise rather than
    the weight-level abstraction.
    """

    def __init__(self, linear: Linear, config: DeviceConfig | None = None,
                 deployment_time: float = 1.0, rng=None):
        super().__init__()
        self.in_features = linear.in_features
        self.out_features = linear.out_features
        self.config = config or DeviceConfig()
        self.array = CrossbarArray(linear.weight.data, config=self.config,
                                   deployment_time=deployment_time, rng=rng)
        self.bias = None if linear.bias is None else linear.bias.data.copy()

    def forward(self, x: Tensor) -> Tensor:
        inputs = x.data if isinstance(x, Tensor) else np.asarray(x, dtype=np.float64)
        outputs = np.stack([self.array.matvec(row) for row in inputs])
        if self.bias is not None:
            outputs = outputs + self.bias
        return Tensor(outputs)

    def __repr__(self) -> str:
        return (f"ReRAMLinear(in_features={self.in_features}, "
                f"out_features={self.out_features}, tiles={self.array.num_tiles})")


def deploy_on_reram(model: Module, config: DeviceConfig | None = None,
                    deployment_time: float = 1.0, rng=None) -> dict[str, float]:
    """Overwrite ``model``'s parameters with crossbar-realised values.

    Every 2-D-or-higher parameter is flattened to a matrix, programmed onto a
    :class:`CrossbarArray`, and replaced by the effective weights the array
    realises.  1-D parameters (biases, norm affine parameters) are perturbed
    with the device model's equivalent log-normal factor, matching how they
    would be stored in peripheral ReRAM cells.

    Returns a report mapping parameter names to their realised mean relative
    error, so callers (and tests) can verify the deployment actually
    perturbed the weights.
    """
    config = config or DeviceConfig()
    rng = get_rng(rng)
    report: dict[str, float] = {}
    from .device import DeviceVariationModel
    variation = DeviceVariationModel(config, deployment_time, rng=rng)
    for name, parameter in model.named_parameters():
        clean = parameter.data.copy()
        if clean.ndim >= 2:
            matrix = clean.reshape(clean.shape[0], -1)
            array = CrossbarArray(matrix, config=config,
                                  deployment_time=deployment_time, rng=rng)
            realised = array.effective_weights().reshape(clean.shape)
        else:
            realised = clean * variation.sample_log_factors(clean.shape)
        denom = np.maximum(np.abs(clean), 1e-12)
        report[name] = float(np.mean(np.abs(realised - clean) / denom))
        parameter.data = realised
    return report
