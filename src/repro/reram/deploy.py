"""Deploying a trained network onto simulated ReRAM hardware.

:func:`deploy_on_reram` replaces every parameter of a trained model with the
weights a crossbar array would actually realise (programming error, process
variation, retention drift), giving an end-to-end hardware-in-the-loop
evaluation path that complements the purely statistical Eq. (1) drift used
in the paper's figures.

The per-parameter perturbation is expressed as a
:class:`~repro.fault.drift.DriftModel` (:class:`CrossbarRealization`) and
applied through the :class:`~repro.fault.injector.FaultInjector` snapshot
machinery (``snapshot`` → ``draw_trials`` → ``apply_trial``) — the same
trial plumbing the :class:`~repro.evaluation.sweep.DriftSweepEngine` uses —
rather than a private mutation loop.  Deployment intentionally leaves the
realised weights in place (that *is* the deployment), so the
``multi_trial`` context manager, which restores on exit, is not used; the
returned :class:`DeploymentReport` records what the hardware did to every
parameter.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field

import numpy as np

from ..execution import EvalContext, resolve_backend
from ..fault.drift import DriftModel
from ..fault.injector import FaultInjector
from ..nn.module import Module
from ..nn.layers import Linear
from ..nn.tensor import Tensor
from ..utils.rng import get_rng
from .crossbar import CrossbarArray
from .device import DeviceConfig, DeviceVariationModel

__all__ = ["ReRAMLinear", "CrossbarRealization", "DeploymentReport", "deploy_on_reram"]


class ReRAMLinear(Module):
    """A Linear layer whose matmul is computed by a simulated crossbar array.

    Inference only (the crossbar holds fixed programmed weights); used in the
    hardware-deployment example to show activation-level noise rather than
    the weight-level abstraction.  Batches are computed with one dense
    :meth:`~repro.reram.crossbar.CrossbarArray.matmat` per tile (one analog
    read cycle per batch), not a per-row ``matvec`` loop.
    """

    def __init__(self, linear: Linear, config: DeviceConfig | None = None,
                 deployment_time: float = 1.0, rng=None):
        super().__init__()
        self.in_features = linear.in_features
        self.out_features = linear.out_features
        self.config = config or DeviceConfig()
        self.array = CrossbarArray(linear.weight.data, config=self.config,
                                   deployment_time=deployment_time, rng=rng)
        self.bias = None if linear.bias is None else linear.bias.data.copy()

    def forward(self, x: Tensor) -> Tensor:
        inputs = x.data if isinstance(x, Tensor) else np.asarray(x, dtype=np.float64)
        outputs = self.array.matmat(inputs)
        if self.bias is not None:
            outputs = outputs + self.bias
        return Tensor(outputs)

    def __repr__(self) -> str:
        return (f"ReRAMLinear(in_features={self.in_features}, "
                f"out_features={self.out_features}, tiles={self.array.num_tiles})")


class CrossbarRealization(DriftModel):
    """The crossbar's weight realisation expressed as a :class:`DriftModel`.

    ``perturb`` maps a clean parameter array to the weights simulated ReRAM
    hardware would actually hold: 2-D-or-higher parameters are flattened to
    a matrix, programmed onto a tiled :class:`CrossbarArray` (differential
    conductance pairs, programming error, process variation, retention
    drift) and read back; 1-D parameters (biases, norm affine parameters)
    are perturbed with the device model's equivalent log-normal factor,
    matching how they would be stored in peripheral ReRAM cells.

    Expressing deployment as a drift model means the generic
    :class:`~repro.fault.injector.FaultInjector` machinery — snapshots,
    pre-drawn trials, per-layer policies, sweep engines — applies to the
    hardware path unchanged.
    """

    def __init__(self, config: DeviceConfig | None = None,
                 deployment_time: float = 1.0,
                 tile_rows: int = 128, tile_cols: int = 128):
        self.config = config or DeviceConfig()
        self.deployment_time = float(deployment_time)
        self.tile_rows = int(tile_rows)
        self.tile_cols = int(tile_cols)
        #: Crossbar tiles programmed so far (bookkeeping for reports).
        self.tiles_programmed = 0

    def perturb(self, weights: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        if weights.ndim >= 2:
            matrix = weights.reshape(weights.shape[0], -1)
            array = CrossbarArray(matrix, tile_rows=self.tile_rows,
                                  tile_cols=self.tile_cols, config=self.config,
                                  deployment_time=self.deployment_time, rng=rng)
            self.tiles_programmed += array.num_tiles
            return array.effective_weights().reshape(weights.shape)
        variation = DeviceVariationModel(self.config, self.deployment_time, rng=rng)
        return weights * variation.sample_log_factors(weights.shape)

    def __repr__(self) -> str:
        return (f"CrossbarRealization(deployment_time={self.deployment_time}, "
                f"tiles={self.tile_rows}x{self.tile_cols})")


@dataclass
class DeploymentReport:
    """SweepReport-style, JSON-serializable record of one hardware deployment.

    Iterating (or calling ``keys``/``values``/``items``/``[]``) walks the
    per-parameter relative errors, so the report is a drop-in replacement
    for the plain ``{name: error}`` dict earlier revisions returned.
    """

    label: str
    parameter_errors: dict = field(default_factory=dict)  # name -> mean |Δw|/|w|
    deployment_time: float = 0.0
    equivalent_sigma: float = 0.0   # Eq.-1 σ implied by the device physics
    crossbar_tiles: int = 0         # tiles programmed across all parameters
    n_parameters: int = 0           # parameter arrays deployed
    trials: int = 1                 # candidate realisations drawn
    selected_trial: int = 0         # which candidate was programmed
    candidate_scores: list = field(default_factory=list)  # per-candidate score
    validation_score: float | None = None  # score of the deployed realisation
    elapsed_seconds: float = 0.0

    def mean_relative_error(self) -> float:
        """Mean of the per-parameter relative errors (0.0 when empty)."""
        if not self.parameter_errors:
            return 0.0
        return float(np.mean(list(self.parameter_errors.values())))

    def as_dict(self) -> dict:
        return {
            "label": self.label,
            "parameter_errors": dict(self.parameter_errors),
            "deployment_time": self.deployment_time,
            "equivalent_sigma": self.equivalent_sigma,
            "crossbar_tiles": self.crossbar_tiles,
            "n_parameters": self.n_parameters,
            "trials": self.trials,
            "selected_trial": self.selected_trial,
            "candidate_scores": list(self.candidate_scores),
            "validation_score": self.validation_score,
            "elapsed_seconds": self.elapsed_seconds,
        }

    def to_json(self, indent: int | None = None) -> str:
        return json.dumps(self.as_dict(), indent=indent)

    @classmethod
    def from_dict(cls, data: dict) -> "DeploymentReport":
        return cls(**data)

    @classmethod
    def from_json(cls, text: str) -> "DeploymentReport":
        return cls.from_dict(json.loads(text))

    # Mapping-style access to the per-parameter errors (backwards compatible
    # with the dict this function used to return).
    def __iter__(self):
        return iter(self.parameter_errors)

    def __getitem__(self, name: str) -> float:
        return self.parameter_errors[name]

    def __contains__(self, name: str) -> bool:
        return name in self.parameter_errors

    def __len__(self) -> int:
        return len(self.parameter_errors)

    def keys(self):
        return self.parameter_errors.keys()

    def values(self):
        return self.parameter_errors.values()

    def items(self):
        return self.parameter_errors.items()


def deploy_on_reram(model: Module, config: DeviceConfig | None = None,
                    deployment_time: float = 1.0, rng=None,
                    tile_rows: int = 128, tile_cols: int = 128,
                    trials: int = 1, validate_data=None,
                    evaluate_fn=None, backend=None,
                    trial_batch: int | None = None) -> DeploymentReport:
    """Overwrite ``model``'s parameters with crossbar-realised values.

    Each realisation is drawn as a :meth:`FaultInjector.draw_trials` trial
    of a :class:`CrossbarRealization` drift model and written with
    :meth:`FaultInjector.apply_trial`, so the hardware path shares the
    snapshot/trial machinery (and determinism guarantees) of the drift
    sweeps.  The realised weights are left in place; the injector's clean
    snapshot is used only to measure the per-parameter error.

    With ``trials > 1`` the deployment becomes program-and-verify: ``trials``
    independent candidate realisations (programming noise differs per
    attempt) are scored on ``validate_data`` through the pluggable
    :mod:`repro.execution` layer — ``backend`` accepts the same selector as
    :class:`~repro.evaluation.sweep.DriftSweepEngine` (``None``/name/
    instance), so candidates for a deep model can be fanned out over a
    shared-memory worker pool — and the best-scoring candidate is the one
    programmed.  ``evaluate_fn`` defaults to classification accuracy, and
    ``trial_batch`` scores that many candidates per stacked forward pass
    (bit-identically; see :mod:`repro.inference`).  Candidate draws are
    pre-drawn from the seeded injector, so the selected realisation is
    bit-identical for any backend, worker count or trial-batch size.

    Returns a :class:`DeploymentReport` with the per-parameter mean relative
    errors, the device model's equivalent Eq.-1 σ, crossbar bookkeeping and
    (when validated) the per-candidate scores, so callers (and tests) can
    verify the deployment actually perturbed the weights.
    """
    start = time.perf_counter()
    if trials < 1:
        raise ValueError("trials must be at least 1")
    if trials > 1 and validate_data is None:
        raise ValueError(
            "program-and-verify deployment (trials > 1) needs validate_data "
            "to score the candidate realisations")
    config = config or DeviceConfig()
    realization = CrossbarRealization(config, deployment_time,
                                      tile_rows=tile_rows, tile_cols=tile_cols)
    injector = FaultInjector(model, realization, rng=get_rng(rng))
    injector.snapshot()
    batch = injector.draw_trials(trials)
    candidates = [{name: arrays[index] for name, arrays in batch.items()}
                  for index in range(trials)]

    candidate_scores: list[float] = []
    selected = 0
    validation_score = None
    if validate_data is not None:
        if evaluate_fn is None:
            from ..inference import ClassificationAccuracy
            evaluate_fn = ClassificationAccuracy()
        from ..inference import resolve_evaluator
        exec_backend = resolve_backend(backend)
        context = EvalContext(model=model, data=validate_data,
                              evaluate_fn=evaluate_fn,
                              evaluator=resolve_evaluator(trial_batch))
        exec_backend.open(context)
        pending = {f"candidate-{index}": params
                   for index, params in enumerate(candidates)}
        try:
            results = exec_backend.run_trials(pending, injector.apply_trial)
        except Exception as error:
            if not exec_backend.out_of_process:
                raise
            # Same contract as the sweep engine: a broken pool degrades to
            # serial scoring instead of failing the deployment.
            import warnings

            warnings.warn(f"deployment verification fell back to serial "
                          f"evaluation ({type(error).__name__}: {error})",
                          RuntimeWarning, stacklevel=2)
            from ..execution import SerialBackend

            exec_backend.close()
            exec_backend = SerialBackend()
            exec_backend.open(context)
            results = exec_backend.run_trials(pending, injector.apply_trial)
        finally:
            exec_backend.close()
        scores = {result.digest: result.score for result in results}
        candidate_scores = [scores[f"candidate-{index}"]
                            for index in range(trials)]
        selected = int(np.argmax(candidate_scores))
        validation_score = candidate_scores[selected]

    injector.apply_trial(candidates[selected])

    errors: dict[str, float] = {}
    clean = injector.clean_parameters
    for name, parameter in model.named_parameters():
        denom = np.maximum(np.abs(clean[name]), 1e-12)
        errors[name] = float(np.mean(np.abs(parameter.data - clean[name]) / denom))

    return DeploymentReport(
        label=type(model).__name__,
        parameter_errors=errors,
        deployment_time=float(deployment_time),
        equivalent_sigma=DeviceVariationModel(config, deployment_time).effective_sigma(),
        crossbar_tiles=realization.tiles_programmed,
        n_parameters=len(errors),
        trials=int(trials),
        selected_trial=selected,
        candidate_scores=candidate_scores,
        validation_score=validation_score,
        elapsed_seconds=round(time.perf_counter() - start, 6),
    )
