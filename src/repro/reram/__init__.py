"""ReRAM crossbar substrate.

The paper abstracts the ReRAM hardware into the log-normal drift of Eq. (1).
This package models the layer below that abstraction: mapping signed weights
onto differential pairs of memristor conductances, programming error, read
(thermal) noise, conductance quantisation and stuck-at cells, plus a
crossbar-level matrix-vector multiply.  It is used to (a) justify the drift
model — :func:`~repro.reram.device.DeviceVariationModel.effective_sigma`
derives an Eq.-(1) σ from device parameters — and (b) provide an end-to-end
"deploy the trained network on simulated hardware" path for the examples.
"""

from .device import DeviceConfig, DeviceVariationModel
from .conductance import ConductanceMapper
from .crossbar import Crossbar, CrossbarArray
from .deploy import ReRAMLinear, CrossbarRealization, DeploymentReport, deploy_on_reram

__all__ = [
    "DeviceConfig", "DeviceVariationModel",
    "ConductanceMapper",
    "Crossbar", "CrossbarArray",
    "ReRAMLinear", "CrossbarRealization", "DeploymentReport", "deploy_on_reram",
]
