"""Memristor device models.

The physical sources of weight drift listed in the paper's introduction —
thermal noise, electrical noise, process variation and programming error —
are modelled here as independent log-normal factors on the programmed
conductance.  Their combined effect is again (approximately) log-normal,
which is exactly the Eq. (1) abstraction the paper uses, and
:meth:`DeviceVariationModel.effective_sigma` exposes the resulting σ.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..utils.rng import get_rng

__all__ = ["DeviceConfig", "DeviceVariationModel"]


@dataclass
class DeviceConfig:
    """Physical parameters of a memristor cell.

    Attributes
    ----------
    g_min, g_max:
        Conductance range in siemens; weights map linearly onto this range.
    programming_sigma:
        Log-std of the write (programming) error.
    read_noise_sigma:
        Log-std of the per-read thermal/electrical noise.
    process_variation_sigma:
        Log-std of the static device-to-device process variation.
    drift_rate:
        Log-drift accumulated per unit of deployment time (retention loss).
    quantization_bits:
        Number of distinct programmable conductance levels (0 disables
        quantisation).
    stuck_at_rate:
        Fraction of cells stuck at ``g_min`` or ``g_max`` after fabrication.
    """

    g_min: float = 1e-6
    g_max: float = 1e-4
    programming_sigma: float = 0.05
    read_noise_sigma: float = 0.02
    process_variation_sigma: float = 0.05
    drift_rate: float = 0.1
    quantization_bits: int = 0
    stuck_at_rate: float = 0.0

    def __post_init__(self):
        if self.g_min <= 0 or self.g_max <= self.g_min:
            raise ValueError("require 0 < g_min < g_max")
        for name in ("programming_sigma", "read_noise_sigma",
                     "process_variation_sigma", "drift_rate", "stuck_at_rate"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")
        if self.quantization_bits < 0:
            raise ValueError("quantization_bits must be non-negative")


class DeviceVariationModel:
    """Samples multiplicative conductance perturbations from device physics."""

    def __init__(self, config: DeviceConfig, deployment_time: float = 1.0, rng=None):
        if deployment_time < 0:
            raise ValueError("deployment_time must be non-negative")
        self.config = config
        self.deployment_time = float(deployment_time)
        self.rng = get_rng(rng)

    def effective_sigma(self) -> float:
        """Combined log-normal σ equivalent to Eq. (1) of the paper.

        Independent log-normal factors multiply, so their log-variances add:
        σ² = σ_prog² + σ_read² + σ_process² + (drift_rate·t)².
        """
        c = self.config
        variance = (c.programming_sigma ** 2 + c.read_noise_sigma ** 2
                    + c.process_variation_sigma ** 2
                    + (c.drift_rate * self.deployment_time) ** 2)
        return float(np.sqrt(variance))

    def sample_log_factors(self, shape: tuple) -> np.ndarray:
        """Sample the total multiplicative factor exp(λ) for an array of cells."""
        lam = self.rng.normal(0.0, self.effective_sigma(), size=shape)
        return np.exp(lam)

    def perturb_conductance(self, conductance: np.ndarray) -> np.ndarray:
        """Apply variation, clipping to the physical conductance range."""
        c = self.config
        perturbed = conductance * self.sample_log_factors(conductance.shape)
        if c.stuck_at_rate > 0:
            stuck = self.rng.random(conductance.shape) < c.stuck_at_rate
            stuck_low = self.rng.random(conductance.shape) < 0.5
            perturbed = np.where(stuck, np.where(stuck_low, c.g_min, c.g_max), perturbed)
        return np.clip(perturbed, c.g_min, c.g_max)
