"""Crossbar-array simulation.

A :class:`Crossbar` holds one weight matrix as programmed conductances and
performs analog matrix-vector multiplication with read noise.  A
:class:`CrossbarArray` tiles an arbitrarily large weight matrix over multiple
fixed-size crossbars, as a real accelerator would.
"""

from __future__ import annotations

import numpy as np

from ..utils.rng import get_rng
from .conductance import ConductanceMapper
from .device import DeviceConfig, DeviceVariationModel

__all__ = ["Crossbar", "CrossbarArray"]


class Crossbar:
    """A single ReRAM crossbar storing a (rows × cols) weight tile."""

    def __init__(self, weights: np.ndarray, config: DeviceConfig | None = None,
                 deployment_time: float = 1.0, rng=None):
        if weights.ndim != 2:
            raise ValueError("a crossbar stores a 2-D weight tile")
        self.config = config or DeviceConfig()
        self.rng = get_rng(rng)
        self.mapper = ConductanceMapper(self.config)
        self.variation = DeviceVariationModel(self.config, deployment_time, rng=self.rng)
        self.ideal_weights = np.asarray(weights, dtype=np.float64).copy()
        self.program(self.ideal_weights)

    def program(self, weights: np.ndarray) -> None:
        """Write the weights into the crossbar, including programming error."""
        self.ideal_weights = np.asarray(weights, dtype=np.float64).copy()
        g_pos, g_neg = self.mapper.to_conductance(self.ideal_weights)
        self.g_pos = self.variation.perturb_conductance(g_pos)
        self.g_neg = self.variation.perturb_conductance(g_neg)

    def effective_weights(self, read_noise: bool = False) -> np.ndarray:
        """The weights the crossbar actually realises."""
        g_pos, g_neg = self.g_pos, self.g_neg
        if read_noise and self.config.read_noise_sigma > 0:
            noise_p = np.exp(self.rng.normal(0, self.config.read_noise_sigma, g_pos.shape))
            noise_n = np.exp(self.rng.normal(0, self.config.read_noise_sigma, g_neg.shape))
            g_pos = g_pos * noise_p
            g_neg = g_neg * noise_n
        return self.mapper.to_weights(g_pos, g_neg)

    def matvec(self, voltage: np.ndarray, read_noise: bool = True) -> np.ndarray:
        """Analog matrix-vector product ``W_effective @ v``."""
        return self.effective_weights(read_noise=read_noise) @ np.asarray(voltage, dtype=np.float64)

    def matmat(self, voltages: np.ndarray, read_noise: bool = True) -> np.ndarray:
        """Batched analog product: ``voltages @ W_effectiveᵀ``.

        ``voltages`` has shape ``(batch, cols)``; the result has shape
        ``(batch, rows)``.  With ``read_noise`` enabled, one noise
        realisation is drawn for the whole batched read (a single analog
        read cycle), whereas per-row :meth:`matvec` calls draw fresh noise
        for every vector.  With ``read_noise=False`` the result is exactly
        the row-stack of :meth:`matvec` outputs.
        """
        voltages = np.asarray(voltages, dtype=np.float64)
        if voltages.ndim != 2:
            raise ValueError("matmat expects a (batch, cols) voltage matrix")
        return voltages @ self.effective_weights(read_noise=read_noise).T

    def weight_error(self) -> float:
        """Mean absolute relative deviation of realised vs ideal weights."""
        denom = np.maximum(np.abs(self.ideal_weights), 1e-12)
        return float(np.mean(np.abs(self.effective_weights() - self.ideal_weights) / denom))


class CrossbarArray:
    """Tiles a large weight matrix over fixed-size crossbars."""

    def __init__(self, weights: np.ndarray, tile_rows: int = 128, tile_cols: int = 128,
                 config: DeviceConfig | None = None, deployment_time: float = 1.0, rng=None):
        if weights.ndim != 2:
            raise ValueError("CrossbarArray stores a 2-D weight matrix")
        if tile_rows <= 0 or tile_cols <= 0:
            raise ValueError("tile sizes must be positive")
        self.shape = weights.shape
        self.tile_rows = tile_rows
        self.tile_cols = tile_cols
        self.config = config or DeviceConfig()
        rng = get_rng(rng)
        self.tiles: list[list[Crossbar]] = []
        rows, cols = weights.shape
        for r in range(0, rows, tile_rows):
            row_tiles = []
            for c in range(0, cols, tile_cols):
                tile = weights[r:r + tile_rows, c:c + tile_cols]
                row_tiles.append(Crossbar(tile, self.config, deployment_time, rng=rng))
            self.tiles.append(row_tiles)

    @property
    def num_tiles(self) -> int:
        return sum(len(row) for row in self.tiles)

    def effective_weights(self, read_noise: bool = False) -> np.ndarray:
        """Reassemble the full effective weight matrix from all tiles."""
        row_blocks = []
        for row_tiles in self.tiles:
            row_blocks.append(np.concatenate(
                [tile.effective_weights(read_noise=read_noise) for tile in row_tiles], axis=1))
        return np.concatenate(row_blocks, axis=0)

    def matvec(self, voltage: np.ndarray, read_noise: bool = True) -> np.ndarray:
        """Matrix-vector product computed tile by tile (as the hardware would)."""
        voltage = np.asarray(voltage, dtype=np.float64)
        if voltage.shape[0] != self.shape[1]:
            raise ValueError("voltage vector length must equal the number of columns")
        result = np.zeros(self.shape[0])
        for r_index, row_tiles in enumerate(self.tiles):
            row_start = r_index * self.tile_rows
            accum = np.zeros(min(self.tile_rows, self.shape[0] - row_start))
            for c_index, tile in enumerate(row_tiles):
                col_start = c_index * self.tile_cols
                col_end = min(col_start + self.tile_cols, self.shape[1])
                accum += tile.matvec(voltage[col_start:col_end], read_noise=read_noise)
            result[row_start:row_start + accum.shape[0]] = accum
        return result

    def matmat(self, voltages: np.ndarray, read_noise: bool = True) -> np.ndarray:
        """Batched matrix product over all tiles: ``voltages @ Wᵀ``.

        ``voltages`` has shape ``(batch, cols)``; each tile computes its
        whole batch in one dense matmul instead of ``batch`` separate
        :meth:`matvec` calls, which is what makes
        :class:`~repro.reram.deploy.ReRAMLinear` batch-scalable.  Noise
        semantics match :meth:`Crossbar.matmat`: one read-noise realisation
        per tile per batched read; with ``read_noise=False`` the result is
        exactly the row-stack of per-row :meth:`matvec` outputs.
        """
        voltages = np.asarray(voltages, dtype=np.float64)
        if voltages.ndim != 2 or voltages.shape[1] != self.shape[1]:
            raise ValueError("voltages must have shape (batch, cols) with "
                             f"cols == {self.shape[1]}")
        result = np.zeros((voltages.shape[0], self.shape[0]))
        for r_index, row_tiles in enumerate(self.tiles):
            row_start = r_index * self.tile_rows
            rows_here = min(self.tile_rows, self.shape[0] - row_start)
            accum = np.zeros((voltages.shape[0], rows_here))
            for c_index, tile in enumerate(row_tiles):
                col_start = c_index * self.tile_cols
                col_end = min(col_start + self.tile_cols, self.shape[1])
                accum += tile.matmat(voltages[:, col_start:col_end],
                                     read_noise=read_noise)
            result[:, row_start:row_start + rows_here] = accum
        return result
