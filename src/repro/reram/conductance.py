"""Mapping signed neural-network weights onto memristor conductances.

A signed weight is represented differentially by a pair of conductances
``(g_pos, g_neg)`` so that the crossbar computes ``(g_pos - g_neg) · v``.
The mapper also handles conductance quantisation when the device exposes a
finite number of programmable levels.
"""

from __future__ import annotations

import numpy as np

from .device import DeviceConfig

__all__ = ["ConductanceMapper"]


class ConductanceMapper:
    """Converts between weights and differential conductance pairs."""

    def __init__(self, config: DeviceConfig, weight_scale: float | None = None):
        self.config = config
        # Scale chosen so that the largest representable |weight| maps to g_max.
        self.weight_scale = weight_scale

    def fit_scale(self, weights: np.ndarray) -> float:
        """Choose the weight→conductance scale from the array's dynamic range."""
        max_abs = float(np.abs(weights).max())
        if max_abs == 0.0:
            max_abs = 1.0
        self.weight_scale = (self.config.g_max - self.config.g_min) / max_abs
        return self.weight_scale

    def to_conductance(self, weights: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Map signed weights to a (g_pos, g_neg) differential pair."""
        if self.weight_scale is None:
            self.fit_scale(weights)
        c = self.config
        magnitude = np.abs(weights) * self.weight_scale
        magnitude = np.clip(magnitude, 0.0, c.g_max - c.g_min)
        g_pos = np.where(weights >= 0, c.g_min + magnitude, c.g_min)
        g_neg = np.where(weights < 0, c.g_min + magnitude, c.g_min)
        if c.quantization_bits > 0:
            g_pos = self._quantize(g_pos)
            g_neg = self._quantize(g_neg)
        return g_pos, g_neg

    def to_weights(self, g_pos: np.ndarray, g_neg: np.ndarray) -> np.ndarray:
        """Recover signed weights from a differential conductance pair."""
        if self.weight_scale is None:
            raise RuntimeError("call to_conductance or fit_scale before to_weights")
        return (g_pos - g_neg) / self.weight_scale

    def _quantize(self, conductance: np.ndarray) -> np.ndarray:
        c = self.config
        levels = 2 ** c.quantization_bits - 1
        step = (c.g_max - c.g_min) / levels
        return c.g_min + np.round((conductance - c.g_min) / step) * step

    def roundtrip_error(self, weights: np.ndarray) -> float:
        """Mean absolute relative error of an ideal (noise-free) map/unmap cycle."""
        g_pos, g_neg = self.to_conductance(weights)
        recovered = self.to_weights(g_pos, g_neg)
        denom = np.maximum(np.abs(weights), 1e-12)
        return float(np.mean(np.abs(recovered - weights) / denom))
