"""Declarative scenario specifications.

A :class:`ScenarioSpec` is one cell of the experiment matrix the ROADMAP
asks for — a (model × dataset × fault model × severity grid) combination
with its training recipe and seed — expressed as plain data.  Everything
round-trips through JSON, and :meth:`ScenarioSpec.spec_hash` gives each
cell a stable content address that the on-disk
:class:`~repro.scenarios.store.ResultStore` keys results by.

Fault models are referenced by string keys through a registry
(``lognormal``, ``gaussian``, ``uniform``, ``stuckat``, ``bitflip``, plus
``composite`` stacks), following FTT-NAS-style fault matrices: the same
scenario machinery sweeps a severity grid under any registered fault
distribution, not just the paper's Eq. (1) log-normal drift.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Callable

from ..fault.drift import (
    BitFlipFault, CompositeFault, DriftModel, GaussianDrift, LogNormalDrift,
    StuckAtFault, UniformDrift,
)
from ..utils.config import ExperimentConfig

__all__ = [
    "FaultSpec", "ScenarioSpec", "register_fault_model",
    "available_fault_models", "SPEC_SCHEMA_VERSION",
]

#: Bumped whenever the hashed spec layout changes, so stale stores are
#: never silently reused across incompatible schema revisions.
#: v2: cells gained the ``policy`` field (per-layer fault policies as data).
SPEC_SCHEMA_VERSION = 2

# --------------------------------------------------------------------------- #
# Fault-model registry: string key -> builder(severity, **params) -> DriftModel.
# The severity is the scenario's grid variable (the x-axis of every figure);
# what it means — σ, amplitude, probability — is the builder's business.
# --------------------------------------------------------------------------- #
_FAULT_REGISTRY: dict[str, Callable[..., DriftModel]] = {}


def register_fault_model(name: str):
    """Decorator registering ``builder(severity, **params) -> DriftModel``."""

    def _register(builder: Callable[..., DriftModel]):
        key = name.lower()
        if key in _FAULT_REGISTRY:
            raise ValueError(f"fault model {name!r} is already registered")
        _FAULT_REGISTRY[key] = builder
        return builder

    return _register


def available_fault_models() -> list[str]:
    """Registered fault-model kinds (``composite`` is always available)."""
    return sorted(_FAULT_REGISTRY) + ["composite"]


@register_fault_model("lognormal")
def _lognormal(severity: float) -> DriftModel:
    return LogNormalDrift(severity)


@register_fault_model("gaussian")
def _gaussian(severity: float, relative: bool = True) -> DriftModel:
    return GaussianDrift(severity, relative=relative)


@register_fault_model("uniform")
def _uniform(severity: float) -> DriftModel:
    return UniformDrift(severity)


@register_fault_model("stuckat")
def _stuckat(severity: float, stuck_value: float = 0.0) -> DriftModel:
    return StuckAtFault(severity, stuck_value=stuck_value)


@register_fault_model("bitflip")
def _bitflip(severity: float, bits: int = 8) -> DriftModel:
    return BitFlipFault(severity, bits=bits)


@dataclass
class FaultSpec:
    """A fault model as data: registry kind + parameters (+ components).

    ``kind="composite"`` stacks its ``components`` in order (e.g. drift then
    stuck-at), each built at ``severity * component.scale`` — the ``scale``
    lets a composite sweep run σ up to 1.5 while keeping a stuck-at
    probability in [0, 1].
    """

    kind: str = "lognormal"
    params: dict = field(default_factory=dict)
    scale: float = 1.0
    components: tuple = ()

    def __post_init__(self):
        self.kind = self.kind.lower()
        self.components = tuple(
            component if isinstance(component, FaultSpec)
            else FaultSpec.from_dict(component)
            for component in self.components)
        if self.kind == "composite":
            if not self.components:
                raise ValueError("composite fault spec needs at least one component")
        else:
            if self.components:
                raise ValueError("only composite fault specs take components")
            if self.kind not in _FAULT_REGISTRY:
                raise ValueError(f"unknown fault model {self.kind!r}; "
                                 f"available: {available_fault_models()}")

    # ------------------------------------------------------------------ #
    def build(self, severity: float) -> DriftModel:
        """Instantiate the drift model at one severity grid point."""
        severity = float(severity) * self.scale
        if self.kind == "composite":
            return CompositeFault(*(c.build(severity) for c in self.components))
        try:
            return _FAULT_REGISTRY[self.kind](severity, **self.params)
        except TypeError as error:
            raise ValueError(
                f"bad parameters {self.params!r} for fault model "
                f"{self.kind!r}: {error}") from error

    def factory(self) -> Callable[[float], DriftModel]:
        """The ``severity -> DriftModel`` callable the sweep engine expects."""
        return self.build

    # ------------------------------------------------------------------ #
    def to_dict(self) -> dict:
        data: dict = {"kind": self.kind}
        if self.params:
            data["params"] = dict(self.params)
        if self.scale != 1.0:
            data["scale"] = self.scale
        if self.components:
            data["components"] = [c.to_dict() for c in self.components]
        return data

    @classmethod
    def from_dict(cls, data: "dict | str") -> "FaultSpec":
        if isinstance(data, str):
            return cls.parse(data)
        unknown = set(data) - {"kind", "params", "scale", "components"}
        if unknown:
            # A typo'd key (e.g. "parameters") must not silently run a
            # different fault model — same contract as ExperimentConfig.
            raise ValueError(f"unknown FaultSpec fields {sorted(unknown)}")
        return cls(kind=data.get("kind", "lognormal"),
                   params=dict(data.get("params", {})),
                   scale=float(data.get("scale", 1.0)),
                   components=tuple(data.get("components", ())))

    @classmethod
    def parse(cls, text: str) -> "FaultSpec":
        """Parse CLI shorthand: ``"stuckat"`` or ``"composite:lognormal+stuckat"``."""
        text = text.strip().lower()
        if text.startswith("composite:"):
            names = [name for name in text[len("composite:"):].split("+") if name]
            return cls(kind="composite",
                       components=tuple(cls(kind=name) for name in names))
        return cls(kind=text)

    def describe(self) -> str:
        if self.kind == "composite":
            return "composite:" + "+".join(c.describe() for c in self.components)
        return self.kind


@dataclass
class ScenarioSpec:
    """One declarative experiment cell, fully resolvable from registries.

    ``name`` doubles as the sweep label.  ``train`` embeds the
    :class:`~repro.utils.config.ExperimentConfig` losslessly (its
    ``from_dict`` is symmetric with ``to_dict``).  ``context`` carries the
    lineage of figure-harness cells (which figure, which variant, which
    harness seed) — cells with a non-empty context are *produced by* their
    harness and cannot be re-executed from the spec alone.

    **Identity vs scheduling.**  :meth:`spec_hash` covers every field that
    determines the numbers — model, dataset, fault, per-layer ``policy``,
    grid, trials, seed, metric, training recipe, context — and deliberately
    excludes ``workers``, ``max_chunk_trials``, ``backend``,
    ``trial_batch``, ``search_workers`` and ``suggest_batch``: the sweep
    engine and the async search scheduler guarantee bit-identical results
    for any worker count, chunk size, execution backend, trial-batch size
    or search-worker count, so scheduling knobs must never fragment the
    result store.  (``suggest_batch`` *does* change the BO suggestion
    sequence, but it is a scheduling choice of a figure-harness run, not
    part of a declarative cell's identity — harness cells record their
    lineage in ``context``.)
    """

    name: str
    model: str = "mlp"
    dataset: str = "mnist"
    fault: FaultSpec = field(default_factory=FaultSpec)
    sigmas: tuple = (0.0, 0.3, 0.6, 0.9, 1.2, 1.5)
    trials: int = 5
    seed: int = 0
    metric: str = "accuracy"
    image_size: int = 16
    num_classes: int | None = None
    #: Per-layer fault policy as data: ``None`` (the implicit ``uniform``
    #: policy — every parameter gets ``fault``) or a dict with a ``kind``
    #: from the :func:`repro.fault.policy.available_policies` registry plus
    #: that builder's parameters, e.g. ``{"kind": "per_layer_sigma",
    #: "sigma_scales": {r"layers\.0": 2.0}, "default_scale": 1.0}``.
    policy: dict | None = None
    model_kwargs: dict = field(default_factory=dict)
    dataset_kwargs: dict = field(default_factory=dict)
    train: ExperimentConfig = field(default_factory=ExperimentConfig)
    context: dict = field(default_factory=dict)
    # Scheduling knobs — excluded from spec_hash (see class docstring).
    workers: int = 0
    max_chunk_trials: int | None = None
    backend: str | None = None
    trial_batch: int | None = None
    search_workers: int | None = None
    suggest_batch: int | None = None

    _SCHEDULING_EXTRAS = ("sweep_workers", "sweep_chunk_trials",
                          "search_workers", "suggest_batch")

    def __post_init__(self):
        if isinstance(self.fault, (dict, str)):
            self.fault = FaultSpec.from_dict(self.fault)
        if isinstance(self.train, dict):
            self.train = ExperimentConfig.from_dict(self.train)
        self.sigmas = tuple(float(s) for s in self.sigmas)
        if not self.sigmas:
            raise ValueError("a scenario spec needs at least one severity grid point")
        if self.trials < 1:
            raise ValueError("trials must be at least 1")
        if self.metric not in ("accuracy", "map"):
            raise ValueError(f"unknown metric {self.metric!r}; "
                             "expected 'accuracy' or 'map'")
        if self.policy is not None:
            from ..fault.policy import available_policies

            if not isinstance(self.policy, dict) or "kind" not in self.policy:
                raise ValueError(
                    "policy must be None or a dict with a 'kind' key "
                    f"(got {self.policy!r})")
            if self.policy["kind"].lower() not in available_policies():
                raise ValueError(
                    f"unknown fault policy {self.policy['kind']!r}; "
                    f"available: {available_policies()}")

    # ------------------------------------------------------------------ #
    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "model": self.model,
            "dataset": self.dataset,
            "fault": self.fault.to_dict(),
            "sigmas": list(self.sigmas),
            "trials": self.trials,
            "seed": self.seed,
            "metric": self.metric,
            "image_size": self.image_size,
            "num_classes": self.num_classes,
            "policy": None if self.policy is None else dict(self.policy),
            "model_kwargs": dict(self.model_kwargs),
            "dataset_kwargs": dict(self.dataset_kwargs),
            "train": self.train.to_dict(),
            "context": dict(self.context),
            "workers": self.workers,
            "max_chunk_trials": self.max_chunk_trials,
            "backend": self.backend,
            "trial_batch": self.trial_batch,
            "search_workers": self.search_workers,
            "suggest_batch": self.suggest_batch,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ScenarioSpec":
        data = dict(data)
        data.pop("schema_version", None)
        return cls(**data)

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "ScenarioSpec":
        return cls.from_dict(json.loads(text))

    # ------------------------------------------------------------------ #
    def hash_dict(self) -> dict:
        """The identity payload: everything except scheduling knobs.

        Scheduling hints that ride along inside ``train.extra``
        (``sweep_workers`` / ``sweep_chunk_trials``, used by the figure
        harnesses) are stripped for the same reason ``workers`` is.
        """
        data = self.to_dict()
        data.pop("workers")
        data.pop("max_chunk_trials")
        data.pop("backend")
        data.pop("trial_batch")
        data.pop("search_workers")
        data.pop("suggest_batch")
        data["train"]["extra"] = {
            key: value for key, value in data["train"]["extra"].items()
            if key not in self._SCHEDULING_EXTRAS}
        data["schema_version"] = SPEC_SCHEMA_VERSION
        return data

    def spec_hash(self) -> str:
        """Stable content address: key order, tuples-vs-lists never matter."""
        payload = json.dumps(self.hash_dict(), sort_keys=True,
                             separators=(",", ":"))
        return hashlib.sha256(payload.encode()).hexdigest()

    def describe(self) -> str:
        return (f"{self.name}: {self.model}/{self.dataset} "
                f"fault={self.fault.describe()} grid={list(self.sigmas)} "
                f"trials={self.trials} seed={self.seed}")
