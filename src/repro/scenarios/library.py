"""Built-in scenario library and the scenario registry.

Two families of scenarios:

* **grid** scenarios are pure data — a list of
  :class:`~repro.scenarios.spec.ScenarioSpec` cells the runner executes
  declaratively (and resumes from the store).  ``fault_matrix`` is the
  FTT-NAS-style matrix: one model evaluated under every registered fault
  distribution, each on its own severity grid.
* **figure** scenarios wrap the paper's harnesses (``fig2_*``, ``fig3_*``)
  so that the exact published panels are reproducible from the CLI; the
  harness keeps its own RNG threading (curves match the classic code path
  bit for bit) while every sweep it performs flows through the runner's
  store.

``register_scenario`` is open: downstream code can add scenarios the same
way the built-ins do.
"""

from __future__ import annotations

import importlib
from dataclasses import dataclass, field
from typing import Callable

from ..utils.config import ExperimentConfig
from .spec import FaultSpec, ScenarioSpec

__all__ = [
    "Scenario", "register_scenario", "get_scenario", "available_scenarios",
    "run_figure_scenario",
]


@dataclass
class Scenario:
    """A named, documented entry in the scenario registry."""

    name: str
    description: str
    #: Grid scenarios: callable(seed) -> tuple[ScenarioSpec, ...].
    build_specs: Callable | None = None
    #: Figure scenarios: dotted ``module:function`` of the harness.
    figure: str | None = None
    figure_kwargs: dict = field(default_factory=dict)
    default_seed: int = 0
    #: Default ExperimentConfig factory for figure harnesses.
    default_config: Callable[[], ExperimentConfig] = ExperimentConfig.fast

    def cells(self, seed: int | None = None) -> tuple[ScenarioSpec, ...]:
        """The declarative cell list (empty for figure scenarios)."""
        if self.build_specs is None:
            return ()
        return tuple(self.build_specs(self.default_seed if seed is None else seed))

    def kind(self) -> str:
        return "figure" if self.figure is not None else "grid"


_SCENARIOS: dict[str, Scenario] = {}


def register_scenario(scenario: Scenario) -> Scenario:
    if scenario.name in _SCENARIOS:
        raise ValueError(f"scenario {scenario.name!r} is already registered")
    if (scenario.build_specs is None) == (scenario.figure is None):
        raise ValueError("a scenario defines exactly one of build_specs/figure")
    _SCENARIOS[scenario.name] = scenario
    return scenario


def available_scenarios() -> list[str]:
    return sorted(_SCENARIOS)


def get_scenario(name: str) -> Scenario:
    if name not in _SCENARIOS:
        raise ValueError(f"unknown scenario {name!r}; "
                         f"available: {available_scenarios()}")
    return _SCENARIOS[name]


def run_figure_scenario(scenario: Scenario, runner, config=None,
                        seed: int | None = None):
    """Invoke a figure scenario's harness with the runner threaded through."""
    module_name, _, function_name = scenario.figure.partition(":")
    harness = getattr(importlib.import_module(module_name), function_name)
    return harness(config=config or scenario.default_config(),
                   seed=scenario.default_seed if seed is None else seed,
                   runner=runner, **scenario.figure_kwargs)


# --------------------------------------------------------------------------- #
# Grid scenarios.
# --------------------------------------------------------------------------- #
def _smoke_specs(seed: int) -> tuple[ScenarioSpec, ...]:
    train = ExperimentConfig(epochs=4, train_samples=128, test_samples=64,
                             batch_size=32, learning_rate=0.1)
    return (ScenarioSpec(name="smoke-mlp-lognormal", model="mlp",
                         dataset="mnist", fault=FaultSpec("lognormal"),
                         sigmas=(0.0, 0.8), trials=2, seed=seed, train=train),)


register_scenario(Scenario(
    name="smoke",
    description="one tiny MLP/MNIST log-normal cell (~2s; CI and docs)",
    build_specs=_smoke_specs,
))


#: severity grids per fault kind — what "severity" means is the kind's
#: business (σ, amplitude, probability); see the fault registry.
_FAULT_MATRIX_ROWS: tuple[tuple[FaultSpec, tuple], ...] = (
    (FaultSpec("lognormal"), (0.0, 0.4, 0.8, 1.2)),
    (FaultSpec("gaussian"), (0.0, 0.3, 0.6, 0.9)),
    (FaultSpec("uniform"), (0.0, 0.4, 0.8, 1.2)),
    (FaultSpec("stuckat"), (0.0, 0.05, 0.1, 0.2)),
    (FaultSpec("bitflip", params={"bits": 8}), (0.0, 0.01, 0.03, 0.05)),
    # Drift then stuck-at: σ sweeps the drift while the stuck-at probability
    # runs at a tenth of it, staying inside [0, 1] over the whole grid.
    (FaultSpec("composite", components=(
        FaultSpec("lognormal"),
        FaultSpec("stuckat", scale=0.1))), (0.0, 0.4, 0.8, 1.2)),
)


def _fault_matrix_specs(seed: int) -> tuple[ScenarioSpec, ...]:
    train = ExperimentConfig(epochs=3, train_samples=160, test_samples=80,
                             batch_size=32, learning_rate=0.1)
    return tuple(
        ScenarioSpec(name=f"mlp-mnist-{fault.describe()}", model="mlp",
                     dataset="mnist", fault=fault, sigmas=grid, trials=3,
                     seed=seed, train=train)
        for fault, grid in _FAULT_MATRIX_ROWS)


register_scenario(Scenario(
    name="fault_matrix",
    description="MLP/MNIST under every registered fault model "
                "(FTT-NAS-style matrix: drift, noise, stuck-at, bit-flip, "
                "composite)",
    build_specs=_fault_matrix_specs,
))


def _detection_smoke_specs(seed: int) -> tuple[ScenarioSpec, ...]:
    # Fig-3(j)-style mAP sweep as a declarative cell: TinyDetector on the
    # synthetic pedestrians, trained and swept entirely from the spec (the
    # figure harness is no longer the only road to a detection number).
    train = ExperimentConfig(epochs=20, train_samples=48, test_samples=16,
                             batch_size=8, learning_rate=0.01)
    return (ScenarioSpec(name="smoke-detector-lognormal", model="detector",
                         dataset="pedestrians", metric="map",
                         fault=FaultSpec("lognormal"), sigmas=(0.0, 0.5),
                         trials=2, seed=seed, image_size=32, train=train,
                         model_kwargs={"width": 8, "grid_size": 8}),)


register_scenario(Scenario(
    name="detection_smoke",
    description="one tiny declarative detection cell: TinyDetector mAP "
                "under drift on synthetic pedestrians (~5s)",
    build_specs=_detection_smoke_specs,
))


def _dataset_matrix_specs(seed: int) -> tuple[ScenarioSpec, ...]:
    train = ExperimentConfig(epochs=5, train_samples=300, test_samples=100,
                             batch_size=32, learning_rate=0.1)
    return tuple(
        ScenarioSpec(name=f"mlp-{dataset}-lognormal", model="mlp",
                     dataset=dataset, fault=FaultSpec("lognormal"),
                     sigmas=(0.0, 0.5, 1.0), trials=3, seed=seed, train=train)
        for dataset in ("mnist", "cifar", "gtsrb"))


register_scenario(Scenario(
    name="dataset_matrix",
    description="one MLP recipe across all classification datasets under "
                "log-normal drift",
    build_specs=_dataset_matrix_specs,
))


# --------------------------------------------------------------------------- #
# Figure scenarios: the paper's panels through the runner.
# --------------------------------------------------------------------------- #
for _panel, _harness in (
        ("dropout", "run_dropout_ablation"),
        ("normalization", "run_normalization_ablation"),
        ("depth", "run_depth_ablation"),
        ("activation", "run_activation_ablation")):
    register_scenario(Scenario(
        name=f"fig2_{_panel}",
        description=f"Figure 2 {_panel} ablation via its harness "
                    "(sweeps cached in the result store)",
        figure=f"repro.experiments.fig2_ablation:{_harness}",
    ))

# One scenario per Fig. 3 classification panel, e.g. fig3_b_lenet_mnist.
from ..experiments.fig3_classification import FIG3_PANELS as _FIG3_PANELS  # noqa: E402

for _panel in _FIG3_PANELS:
    register_scenario(Scenario(
        name=f"fig3_{_panel}",
        description=f"Figure 3({_panel[0]}) method comparison via the fig3 "
                    "harness (ERM/FTNA/ReRAM-V/AWP/BayesFT)",
        figure="repro.experiments.fig3_classification:"
               "run_classification_comparison",
        figure_kwargs={"panel": _panel},
    ))

register_scenario(Scenario(
    name="fig3_detection",
    description="Figure 3(j) pedestrian-detection mAP comparison "
                "(ERM vs BayesFT) via the detection harness",
    figure="repro.experiments.fig3_detection:run_detection_comparison",
))
