"""Scenario registry + experiment orchestration.

Turns the repro into a queryable experiment matrix: declarative
:class:`ScenarioSpec` cells (model × dataset × fault model × severity
grid), a string-keyed fault-model registry, a :class:`ScenarioRunner` that
executes cells on the sweep engine, and a content-addressed on-disk
:class:`ResultStore` so finished cells are never recomputed.  The
``python -m repro`` CLI (:mod:`repro.scenarios.cli`) drives it all.
"""

from .spec import (
    FaultSpec, ScenarioSpec, available_fault_models, register_fault_model,
)
from .index import StoreIndex
from .query import StoreQuery
from .store import ResultStore, ResultStoreError
from .runner import ScenarioRun, ScenarioRunner
from .library import (
    Scenario, available_scenarios, get_scenario, register_scenario,
)

__all__ = [
    "FaultSpec", "ScenarioSpec", "available_fault_models", "register_fault_model",
    "ResultStore", "ResultStoreError", "StoreIndex", "StoreQuery",
    "ScenarioRun", "ScenarioRunner",
    "Scenario", "available_scenarios", "get_scenario", "register_scenario",
]
