"""Content-addressed on-disk result store for scenario cells.

Each completed cell lives in ``<root>/<hh>/<spec_hash>/`` — a 256-bucket
sharded layout keyed by the first two hex characters of the spec hash, so
no single directory ever holds more than a sliver of a 100k+-cell matrix
— as three files:

* ``spec.json`` — the canonical :class:`~repro.scenarios.spec.ScenarioSpec`;
* ``report.json`` — the *deterministic* part of the
  :class:`~repro.evaluation.sweep.SweepReport` (scores, losses, evaluation
  counts), serialized canonically (sorted keys, fixed indent) so that a
  seeded cell produces **byte-identical** files regardless of worker count
  or chunk size;
* ``meta.json`` — the volatile run record (wall-clock, backend, workers,
  chunk bound, timestamps, which scenario requested the cell).

Splitting report from meta is what makes the determinism contract auditable
on disk: ``diff`` two stores produced with ``workers=0`` and ``workers=2``
and only ``meta.json`` differs.  Legacy flat stores (``<root>/<spec_hash>/``,
the pre-sharding layout) are read through transparently and upgraded in
place by :meth:`ResultStore.migrate` (``python -m repro migrate-store``);
migration moves entries by rename, so every canonical byte is preserved.

Alongside the entries sits ``index.sqlite``
(:class:`~repro.scenarios.index.StoreIndex`): one row per cell with its
hash, scenario, model, dataset, fault label, severity grid, creation
stamp, byte size and worst/best/clean scores.  The index is a **pure
cache** — ``report.json`` stays the source of truth, and
:meth:`ResultStore.reindex` rebuilds identical rows from disk after
corruption, a schema bump, or hand-edits — but it is what makes the store
scale: ``contains``/``missing`` route in O(1) instead of stat'ing files,
``stats``/``gc`` aggregate in SQL instead of walking the tree, and
:meth:`ResultStore.query` answers rich filters (``model=``, ``fault=``,
``worst="<0.5"``) without opening a single JSON file.

Writes are concurrent-writer safe: entries are staged in a unique
directory and published with one atomic rename (no remove-then-rename
crash window), duplicate saves resolve **first-writer-wins** (the losing
writer discards its staging bytes — content addressing makes both reports
byte-identical anyway), and index writes serialize behind SQLite's WAL
locking with a busy-timeout retry.  Re-runs of a finished cell are skipped
by :meth:`ResultStore.contains`, and every read re-validates the entry —
corruption raises a labeled :class:`ResultStoreError` instead of feeding a
half-written report into a comparison.
"""

from __future__ import annotations

import errno
import json
import os
import shutil
import sqlite3
import time
import uuid
import warnings
from pathlib import Path
from typing import Iterator, Sequence

from ..evaluation.sweep import SweepReport
from ..telemetry import current
from .index import INDEX_FILE, StoreIndex
from .query import StoreQuery
from .spec import ScenarioSpec

__all__ = ["ResultStore", "ResultStoreError", "VOLATILE_REPORT_FIELDS"]

#: SweepReport fields that legitimately vary between bit-identical runs
#: (scheduling, shipping and timing); they are moved to ``meta.json``.
#: Defined by the report itself so the store and the backend-equivalence
#: tests can never disagree about what "canonical" means.
VOLATILE_REPORT_FIELDS = SweepReport.VOLATILE_FIELDS

_SPEC_FILE = "spec.json"
_REPORT_FILE = "report.json"
_META_FILE = "meta.json"
_ENTRY_FILES = (_SPEC_FILE, _REPORT_FILE, _META_FILE)

#: One canonical timestamp format for every stamp the store emits — UTC
#: with an explicit ``+0000`` offset, so stamps written on any machine (or
#: recovered from an mtime) sort consistently against each other.
_STAMP_FORMAT = "%Y-%m-%dT%H:%M:%S+0000"


def _utc_stamp(epoch_seconds: float | None = None) -> str:
    when = time.gmtime() if epoch_seconds is None else time.gmtime(epoch_seconds)
    return time.strftime(_STAMP_FORMAT, when)


class ResultStoreError(RuntimeError):
    """A result-store entry is missing, unreadable, or inconsistent."""


def canonical_report_dict(report: SweepReport) -> dict:
    """The deterministic projection of a report (volatile fields removed)."""
    return report.canonical_dict()


def _fault_label(fault: dict) -> str:
    """Human fault label from a raw ``spec.json`` fault dict.

    Mirrors :meth:`FaultSpec.describe` without constructing (and
    validating) a ``FaultSpec`` — reindexing 100k entries must not pay
    registry validation per row, and must tolerate entries written by
    newer fault registries than this process knows about.
    """
    kind = str(fault.get("kind", "lognormal"))
    if kind == "composite":
        return "composite:" + "+".join(
            _fault_label(component) for component in fault.get("components", ()))
    return kind


class ResultStore:
    """Spec-hash keyed store of completed sweep reports.

    Parameters
    ----------
    root:
        Directory holding the sharded entry tree and ``index.sqlite``;
        created on first write.  A legacy flat store is readable as-is and
        indexed automatically the first time it is enumerated.
    """

    def __init__(self, root: str | Path):
        self.root = Path(root)
        self._index = StoreIndex(self.root / INDEX_FILE)

    # ------------------------------------------------------------------ #
    # Entry location: sharded <root>/<hh>/<hash>/ with legacy flat
    # read-through.  Routing is pure hash arithmetic — O(1), no index, no
    # directory scan.
    # ------------------------------------------------------------------ #
    def shard_dir(self, spec_hash: str) -> Path:
        return self.root / spec_hash[:2]

    def entry_dir(self, spec_hash: str) -> Path:
        """Where this hash's entry lives (or would live, for a writer).

        Prefers a complete sharded entry, then a complete legacy flat one,
        then whichever exists at all; defaults to the sharded home.
        """
        sharded = self.shard_dir(spec_hash) / spec_hash
        flat = self.root / spec_hash
        if self._complete(sharded):
            return sharded
        if self._complete(flat):
            return flat
        if sharded.is_dir():
            return sharded
        if flat.is_dir():
            return flat
        return sharded

    def path_for(self, spec: ScenarioSpec) -> Path:
        return self.entry_dir(spec.spec_hash())

    @staticmethod
    def _complete(entry: Path) -> bool:
        return all((entry / name).is_file() for name in _ENTRY_FILES)

    @staticmethod
    def _is_entry_name(name: str) -> bool:
        # Completed entries are bare SHA-256 hex dirs; anything else (e.g.
        # a `<hash>.tmp-<pid>` staging dir left by a crash mid-save) is not
        # an entry and must never surface through hashes()/entries().
        return len(name) == 64 and all(c in "0123456789abcdef" for c in name)

    @staticmethod
    def _is_shard_name(name: str) -> bool:
        return len(name) == 2 and all(c in "0123456789abcdef" for c in name)

    def _scan_disk(self) -> Iterator[tuple[str, Path]]:
        """``(hash, entry_dir)`` for every complete entry, both layouts.

        The slow path: one directory walk, used only by :meth:`reindex`
        and as the fallback when the index is unusable.  Complete sharded
        entries shadow flat duplicates of the same hash.
        """
        if not self.root.is_dir():
            return
        seen: set[str] = set()
        for item in sorted(self.root.iterdir()):
            if not item.is_dir():
                continue
            if self._is_shard_name(item.name):
                for entry in sorted(item.iterdir()):
                    if (entry.is_dir() and self._is_entry_name(entry.name)
                            and self._complete(entry)):
                        seen.add(entry.name)
                        yield entry.name, entry
            elif (self._is_entry_name(item.name) and item.name not in seen
                    and self._complete(item)):
                yield item.name, item

    def _disk_has_entries(self) -> bool:
        for _ in self._scan_disk():
            return True
        return False

    # ------------------------------------------------------------------ #
    # Index plumbing.  Reads recover from a corrupt index file by
    # rebuilding it from disk; writes are best-effort (the entry is
    # already durable — a missing row self-heals on the next lookup).
    # ------------------------------------------------------------------ #
    def _index_read(self, op):
        try:
            return op(self._index)
        except sqlite3.Error:
            self._rebuild_index()
            return op(self._index)

    def _index_write(self, op) -> None:
        try:
            op(self._index)
        except sqlite3.Error as error:
            warnings.warn(f"result-store index write skipped ({error}); "
                          "the row will self-heal on the next lookup "
                          "or reindex()", RuntimeWarning, stacklevel=3)

    def _rebuild_index(self) -> None:
        self._index.delete_file()
        self.reindex()

    def _ensure_indexed(self) -> None:
        """Reindex once when the index is empty but entries exist on disk
        (legacy store, deleted/corrupt index, or schema bump)."""
        def check(index: StoreIndex) -> bool:
            return index.count() == 0

        if self._index_read(check) and self._disk_has_entries():
            self.reindex()

    def reindex(self) -> dict:
        """Rebuild ``index.sqlite`` from the entries on disk.

        The index is a pure cache, so this is always safe and always
        authoritative: rows for vanished entries disappear, hand-added
        entries appear, and query results afterwards are identical to an
        index maintained incrementally.  Unparsable entries are skipped
        (``load_entry`` is the validator that reports them loudly).
        Returns ``{"entries", "skipped"}``.
        """
        rows: list[dict] = []
        skipped = 0
        for spec_hash, entry in self._scan_disk():
            row = self._row_from_entry(spec_hash, entry)
            if row is None:
                skipped += 1
                continue
            rows.append(row)
        try:
            self._index.replace_all(rows)
        except sqlite3.Error:
            # The file itself is broken — recreate it once, then give up
            # loudly (a store with an unwritable index still *works*, every
            # lookup just falls back to disk).
            self._index.delete_file()
            self._index.replace_all(rows)
        current().add("store_reindexes")
        return {"entries": len(rows), "skipped": skipped}

    # ------------------------------------------------------------------ #
    # Index row construction.
    # ------------------------------------------------------------------ #
    @staticmethod
    def _score_summary(report: dict) -> tuple:
        means = report.get("means") or []
        sigmas = report.get("sigmas") or []
        try:
            worst = min(float(m) for m in means) if means else None
            best = max(float(m) for m in means) if means else None
            clean = None
            for sigma, mean in zip(sigmas, means):
                if float(sigma) == 0.0:
                    clean = float(mean)
                    break
        except (TypeError, ValueError):
            return None, None, None
        return worst, best, clean

    def _row_from_payloads(self, spec_hash: str, spec: dict, report: dict,
                           meta: dict, size: int) -> dict:
        worst, best, clean = self._score_summary(report)
        scenario = meta.get("scenario")
        return {
            "hash": spec_hash,
            "name": str(spec.get("name", "")),
            "scenario": None if scenario is None else str(scenario),
            "model": str(spec.get("model", "")),
            "dataset": str(spec.get("dataset", "")),
            "fault": _fault_label(spec.get("fault") or {}),
            "metric": str(spec.get("metric", "accuracy")),
            "sigmas": json.dumps(list(spec.get("sigmas", ())),
                                 separators=(",", ":")),
            "trials": int(spec.get("trials", 0)),
            "seed": int(spec.get("seed", 0)),
            "created_at": str(meta.get("created_at")
                              or self._entry_created_at(spec_hash, meta=meta)),
            "bytes": int(size),
            "worst": worst,
            "best": best,
            "clean": clean,
        }

    def _row_from_entry(self, spec_hash: str, entry: Path) -> dict | None:
        """Index row from an on-disk entry; ``None`` when unparsable."""
        try:
            payloads = {}
            size = 0
            for name in _ENTRY_FILES:
                raw = (entry / name).read_bytes()
                size += len(raw)
                payloads[name] = json.loads(raw)
            if not all(isinstance(p, dict) for p in payloads.values()):
                return None
            return self._row_from_payloads(
                spec_hash, payloads[_SPEC_FILE], payloads[_REPORT_FILE],
                payloads[_META_FILE], size)
        except (OSError, json.JSONDecodeError, UnicodeDecodeError,
                TypeError, ValueError):
            return None

    # ------------------------------------------------------------------ #
    # Membership: O(1) through the index, disk fallback that self-heals
    # the missing row.
    # ------------------------------------------------------------------ #
    def contains(self, spec: ScenarioSpec) -> bool:
        """True when a complete entry exists for this spec's hash."""
        return self.contains_hash(spec.spec_hash())

    def contains_hash(self, spec_hash: str) -> bool:
        """O(1) membership by hash.

        An index hit answers without touching the filesystem — the index
        is trusted as a cache of "a complete entry was saved here".  A row
        can go stale only through out-of-band deletion; a failed
        :meth:`load_entry` evicts it, and :meth:`reindex` restores ground
        truth wholesale.  Misses fall back to a disk check (legacy flat
        stores, index-less stores) and self-heal the index on success.
        """
        try:
            if self._index.has(spec_hash):
                current().add("store_index_hits")
                return True
        except sqlite3.Error:
            pass  # broken index: the disk check below still answers
        entry = self.shard_dir(spec_hash) / spec_hash
        if not self._complete(entry):
            entry = self.root / spec_hash
            if not self._complete(entry):
                return False
        row = self._row_from_entry(spec_hash, entry)
        if row is not None:
            self._index_write(lambda index: index.upsert(row))
        return True

    def missing(self, specs: Sequence[ScenarioSpec]) -> list[ScenarioSpec]:
        """The subset of ``specs`` with no stored entry, in input order.

        The batch form of :meth:`contains` — one index query answers the
        whole matrix, which is what makes a 100k-cell resume O(matrix)
        instead of O(matrix × stat calls).
        """
        hashes = [spec.spec_hash() for spec in specs]
        self._ensure_indexed()
        try:
            present = self._index.intersect(hashes)
        except sqlite3.Error:
            present = set()
        misses = [(spec, spec_hash) for spec, spec_hash
                  in zip(specs, hashes) if spec_hash not in present]
        if len(misses) < len(specs):
            current().add("store_index_hits", len(specs) - len(misses))
        return [spec for spec, spec_hash in misses
                if not self.contains_hash(spec_hash)]

    def missing_hashes(self, hashes: Sequence[str]) -> list[str]:
        """Hash-level :meth:`missing` (benchmarks, services)."""
        self._ensure_indexed()
        try:
            present = self._index.intersect(list(hashes))
        except sqlite3.Error:
            present = set()
        misses = [spec_hash for spec_hash in hashes
                  if spec_hash not in present]
        if len(misses) < len(hashes):
            current().add("store_index_hits", len(hashes) - len(misses))
        return [spec_hash for spec_hash in misses
                if not self.contains_hash(spec_hash)]

    def __len__(self) -> int:
        self._ensure_indexed()
        try:
            return self._index.count()
        except sqlite3.Error:
            return sum(1 for _ in self._scan_disk())

    def hashes(self) -> Iterator[str]:
        """Hashes of every complete entry, in sorted order.

        Served from the index (rebuilt from disk first when it is empty or
        broken while entries exist).  Like :meth:`contains`, an entry
        counts only when all three files were present — partial or corrupt
        directories never surface here.
        """
        self._ensure_indexed()
        try:
            yield from self._index.hashes()
        except sqlite3.Error:
            yield from (spec_hash for spec_hash, _ in self._scan_disk())

    # ------------------------------------------------------------------ #
    def save(self, spec: ScenarioSpec, report: SweepReport,
             metadata: dict | None = None) -> Path:
        """Write one completed cell atomically; returns the entry path.

        Safe under concurrent writers: the entry is staged under a unique
        name and published with a single atomic rename — there is no
        window in which a previously complete entry is absent (the old
        remove-then-rename sequence could lose the entry to a crash
        between the two calls).  When another writer publishes the same
        hash first, **the first writer wins**: this save discards its
        staging bytes and returns the existing entry (content addressing
        makes both reports byte-identical; only volatile meta differed).
        """
        spec_hash = spec.spec_hash()
        shard = self.shard_dir(spec_hash)
        shard.mkdir(parents=True, exist_ok=True)
        token = f"{os.getpid()}-{uuid.uuid4().hex[:8]}"
        staging = shard / f"{spec_hash}.tmp-{token}"
        staging.mkdir()
        report_dict = report.as_dict()
        meta = dict(metadata or {})
        meta.setdefault("created_at", _utc_stamp())
        meta["volatile"] = {key: report_dict.get(key)
                           for key in VOLATILE_REPORT_FIELDS}
        spec_payload = spec.to_dict()
        report_payload = canonical_report_dict(report)
        blobs = {
            _SPEC_FILE: spec.to_json(indent=2) + "\n",
            _REPORT_FILE: json.dumps(report_payload, sort_keys=True,
                                     indent=2) + "\n",
            _META_FILE: json.dumps(meta, sort_keys=True, indent=2) + "\n",
        }
        for name, text in blobs.items():
            (staging / name).write_text(text)
        entry = shard / spec_hash
        try:
            published = self._publish(staging, entry, spec_hash)
        except BaseException:
            shutil.rmtree(staging, ignore_errors=True)
            raise
        if published is None:
            # Lost the duplicate-save race: index the winner's entry.
            shutil.rmtree(staging, ignore_errors=True)
            winner = self.entry_dir(spec_hash)
            row = self._row_from_entry(spec_hash, winner)
            if row is not None:
                self._index_write(lambda index: index.upsert(row))
            return winner
        size = sum(len(text.encode()) for text in blobs.values())
        row = self._row_from_payloads(spec_hash, spec_payload,
                                      report_payload, meta, size)
        self._index_write(lambda index: index.upsert(row))
        return published

    def _publish(self, staging: Path, entry: Path,
                 spec_hash: str) -> Path | None:
        """Atomically move ``staging`` into place; ``None`` = lost the race.

        ``os.replace`` on a directory succeeds only when the target is
        absent (or an empty directory), which is exactly the arbitration
        needed: the first writer's rename lands, every later writer gets
        ``ENOTEMPTY``/``EEXIST`` and backs off.  A *partial* squatter
        (crash leftover that never became a complete entry) is swapped
        away by rename first, so it can never block real results.
        """
        for _ in range(16):
            try:
                os.replace(staging, entry)
                return entry
            except OSError as error:
                if error.errno not in (errno.ENOTEMPTY, errno.EEXIST,
                                       errno.ENOTDIR):
                    raise
            existing = self.entry_dir(spec_hash)
            if self._complete(existing):
                return None  # first writer wins
            doomed = entry.with_name(
                f"{entry.name}.tmp-doomed-{os.getpid()}-{uuid.uuid4().hex[:8]}")
            try:
                os.replace(entry, doomed)
            except FileNotFoundError:
                continue  # squatter vanished; retry the publish
            except OSError:
                continue  # someone else is swapping it; retry
            shutil.rmtree(doomed, ignore_errors=True)
        raise ResultStoreError(
            f"could not publish entry {spec_hash[:16]}… under {self.root}: "
            "the entry directory stayed contended across 16 attempts")

    # ------------------------------------------------------------------ #
    def load(self, spec: ScenarioSpec) -> SweepReport:
        """Load and validate the report stored for this spec."""
        return self.load_entry(spec.spec_hash())[1]

    def load_entry(self, spec_hash: str) -> tuple[ScenarioSpec, SweepReport, dict]:
        """Load and validate one entry by hash: ``(spec, report, meta)``.

        Routing is O(1): the shard is derived from the hash (with a legacy
        flat fallback), never looked up.  A missing or incomplete entry
        evicts any stale index row on the way out, so a hand-deleted entry
        stops answering :meth:`contains` after its first failed load.
        """
        entry = self.entry_dir(spec_hash)

        def corrupted(reason: str) -> ResultStoreError:
            return ResultStoreError(
                f"result store entry {spec_hash[:16]}… at {entry} is "
                f"corrupted: {reason}")

        def evict() -> None:
            self._index_write(lambda index: index.remove(spec_hash))

        if not entry.is_dir():
            evict()
            raise ResultStoreError(
                f"result store has no entry {spec_hash[:16]}… under {self.root}")
        payloads = {}
        for name in _ENTRY_FILES:
            path = entry / name
            if not path.is_file():
                evict()
                raise corrupted(f"missing {name}")
            try:
                payloads[name] = json.loads(path.read_text())
            except (json.JSONDecodeError, UnicodeDecodeError) as error:
                raise corrupted(f"{name} is not valid JSON ({error})") from error
        try:
            spec = ScenarioSpec.from_dict(payloads[_SPEC_FILE])
        except (TypeError, ValueError) as error:
            raise corrupted(f"spec.json does not describe a ScenarioSpec "
                            f"({error})") from error
        if spec.spec_hash() != spec_hash:
            raise corrupted(
                f"spec.json hashes to {spec.spec_hash()[:16]}…, not the "
                "entry's own hash — the spec or the directory was edited")
        try:
            report = SweepReport.from_dict(payloads[_REPORT_FILE])
            # SweepReport is an unvalidating dataclass, so the structural
            # checks below can themselves throw on mistyped fields (e.g. a
            # scalar where a list belongs) — that is corruption too.
            grid_matches = list(report.sigmas) == list(spec.sigmas)
            lengths_agree = len(report.means) == len(report.sigmas)
        except TypeError as error:
            raise corrupted(f"report.json does not describe a SweepReport "
                            f"({error})") from error
        if not grid_matches:
            raise corrupted(
                f"report grid {report.sigmas} does not match the spec grid "
                f"{list(spec.sigmas)}")
        if not lengths_agree:
            raise corrupted("report means/sigmas lengths disagree")
        return spec, report, payloads[_META_FILE]

    def entries(self) -> Iterator[tuple[ScenarioSpec, SweepReport, dict]]:
        """Iterate every stored cell, validating each on the way out."""
        for spec_hash in list(self.hashes()):
            yield self.load_entry(spec_hash)

    # ------------------------------------------------------------------ #
    # Rich queries — answered entirely from the index.
    # ------------------------------------------------------------------ #
    def query(self, **filters) -> list[dict]:
        """Filtered index rows, no JSON files opened.

        Keyword filters: exact matches ``model=``, ``dataset=``,
        ``fault=``, ``scenario=``, ``metric=``; wildcard ``name=`` (``*``
        matches anything); score bounds ``worst=``/``best=``/``clean=``
        as comparison strings (``"<0.5"``, ``">=0.9"``) or bare numbers;
        ``limit=``.  Rows come back in stable ``(name, hash)`` order with
        the columns of :data:`repro.scenarios.index.COLUMNS` (``sigmas``
        decoded back to a list) — deleting ``index.sqlite`` and
        reindexing returns identical results.
        """
        store_query = StoreQuery(**filters)
        where_sql, params = store_query.where()
        self._ensure_indexed()
        rows = self._index_read(
            lambda index: index.select(where_sql, params))
        if store_query.limit is not None:
            rows = rows[:store_query.limit]
        return rows

    # ------------------------------------------------------------------ #
    # Migration: legacy flat layout -> sharded layout, by rename.
    # ------------------------------------------------------------------ #
    def migrate(self) -> dict:
        """Move flat ``<root>/<hash>/`` entries into their shard buckets.

        Entries move by ``os.rename`` — same filesystem, same inode, every
        canonical byte untouched — and the index is rebuilt afterwards.
        A hash that already has a complete sharded entry keeps it
        (first-writer-wins, as with concurrent saves) and the flat
        duplicate is dropped.  Idempotent: a second run moves nothing.
        Returns ``{"moved", "duplicates", "entries", "skipped"}``.
        """
        moved = duplicates = 0
        if self.root.is_dir():
            for item in sorted(self.root.iterdir()):
                if not (item.is_dir() and self._is_entry_name(item.name)):
                    continue
                target = self.shard_dir(item.name) / item.name
                if self._complete(target):
                    shutil.rmtree(item)
                    duplicates += 1
                    continue
                target.parent.mkdir(parents=True, exist_ok=True)
                if target.is_dir():
                    # Partial sharded squatter: the complete flat entry is
                    # the real result — swap the squatter away.
                    shutil.rmtree(target)
                os.rename(item, target)
                moved += 1
        result = self.reindex()
        return {"moved": moved, "duplicates": duplicates, **result}

    # ------------------------------------------------------------------ #
    # Size accounting and garbage collection.  Long-lived stores (CI
    # caches, shared result dirs) accumulate cells and crash-leftover
    # staging directories forever otherwise; sizes and stamps come from
    # the index, so neither stats() nor gc() walks entry trees.
    # ------------------------------------------------------------------ #
    @staticmethod
    def _tree_bytes(path: Path) -> int:
        return sum(item.stat().st_size
                   for item in path.rglob("*") if item.is_file())

    def _read_meta(self, spec_hash: str) -> dict | None:
        try:
            return json.loads(
                (self.entry_dir(spec_hash) / _META_FILE).read_text())
        except (OSError, json.JSONDecodeError):
            return None

    def _entry_created_at(self, spec_hash: str,
                          meta: dict | None = None) -> str:
        """Sortable creation stamp: meta.json's record, mtime as fallback.

        The fallback is rendered in the same canonical UTC format as
        written stamps (a ``time.localtime`` rendering would sort
        differently on differently-zoned machines).  Callers that already
        hold the entry's parsed ``meta.json`` pass it in to avoid a second
        read.
        """
        if meta is None:
            meta = self._read_meta(spec_hash)
        if meta is not None and "created_at" in meta:
            return str(meta["created_at"])
        entry = self.entry_dir(spec_hash)
        try:
            return _utc_stamp(entry.stat().st_mtime)
        except OSError:
            return _utc_stamp(0)

    def _staging_dirs(self) -> list[Path]:
        """Crash-leftover ``*.tmp-*`` dirs, flat root and shard buckets.

        A name scan over the root plus 256 buckets: the ``.tmp-`` name
        check runs *before* any ``stat``, so complete entries — hex names,
        which can never contain ``.tmp-`` — cost nothing.  Directory
        listings only, no per-entry tree walks.
        """
        if not self.root.is_dir():
            return []
        found = []
        buckets = []
        with os.scandir(self.root) as items:
            for item in items:
                if ".tmp-" in item.name and item.is_dir():
                    found.append(Path(item.path))
                elif self._is_shard_name(item.name) and item.is_dir():
                    buckets.append(item.path)
        for bucket in buckets:
            with os.scandir(bucket) as items:
                found.extend(Path(item.path) for item in items
                             if ".tmp-" in item.name and item.is_dir())
        return sorted(found)

    def stats(self) -> dict:
        """Size accounting: entries, bytes, stamps, per-scenario counts.

        Aggregates come straight from the index (one SQL query), so this
        stays flat-cost on stores with hundreds of thousands of cells;
        only stale staging directories — normally zero — are walked.
        """
        self._ensure_indexed()
        summary = self._index_read(lambda index: index.summary())
        staging = self._staging_dirs()
        return {
            "root": str(self.root),
            "entries": summary["entries"],
            "total_bytes": summary["total_bytes"],
            "oldest": summary["oldest"],
            "newest": summary["newest"],
            "by_scenario": summary["by_scenario"],
            "stale_staging_dirs": len(staging),
            "stale_staging_bytes": sum(self._tree_bytes(item)
                                       for item in staging),
            "index": {"path": str(self._index.path),
                      "entries": summary["entries"]},
        }

    def gc(self, keep_latest: int | None = None,
           dry_run: bool = False) -> dict:
        """Collect garbage: stale staging dirs always, old entries on request.

        ``keep_latest=N`` keeps the ``N`` most recently created complete
        entries (by ``meta.json`` stamp, hash as tie-break) and removes the
        rest; ``None`` touches no complete entry.  Ranking and sizes come
        from the index — edit metadata by hand and :meth:`reindex` before
        trusting gc's ordering.  Crash-leftover ``<hash>.tmp-*`` staging
        directories are always collected — they were never visible through
        :meth:`hashes` anyway.  ``dry_run=True`` reports what would be
        removed without deleting.  Returns ``{"removed_entries",
        "removed_staging", "bytes_freed", "entries_kept", "dry_run"}``.
        """
        if keep_latest is not None and keep_latest < 0:
            raise ValueError("keep_latest must be non-negative (or None)")
        self._ensure_indexed()
        ranked = self._index_read(lambda index: index.ranked_by_created())
        doomed = [] if keep_latest is None else ranked[keep_latest:]
        staging = self._staging_dirs()
        bytes_freed = 0
        removed_entries = []
        for _, spec_hash, size in doomed:
            entry = self.entry_dir(spec_hash)
            bytes_freed += size
            removed_entries.append(spec_hash)
            if not dry_run:
                shutil.rmtree(entry, ignore_errors=True)
                self._index_write(lambda index: index.remove(spec_hash))
        removed_staging = []
        for item in staging:
            bytes_freed += self._tree_bytes(item)
            removed_staging.append(item.name)
            if not dry_run:
                shutil.rmtree(item, ignore_errors=True)
        return {
            "removed_entries": removed_entries,
            "removed_staging": removed_staging,
            "bytes_freed": bytes_freed,
            "entries_kept": len(ranked) - len(doomed),
            "dry_run": dry_run,
        }
