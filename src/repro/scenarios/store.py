"""Content-addressed on-disk result store for scenario cells.

Each completed cell lives in ``<root>/<spec_hash>/`` as three files:

* ``spec.json`` — the canonical :class:`~repro.scenarios.spec.ScenarioSpec`;
* ``report.json`` — the *deterministic* part of the
  :class:`~repro.evaluation.sweep.SweepReport` (scores, losses, evaluation
  counts), serialized canonically (sorted keys, fixed indent) so that a
  seeded cell produces **byte-identical** files regardless of worker count
  or chunk size;
* ``meta.json`` — the volatile run record (wall-clock, backend, workers,
  chunk bound, timestamps, which scenario requested the cell).

Splitting report from meta is what makes the determinism contract auditable
on disk: ``diff`` two stores produced with ``workers=0`` and ``workers=2``
and only ``meta.json`` differs.  Writes are atomic (temp directory +
rename), re-runs of a finished cell are skipped by
:meth:`ResultStore.contains`, and every read re-validates the entry —
corruption raises a labeled :class:`ResultStoreError` instead of feeding a
half-written report into a comparison.
"""

from __future__ import annotations

import json
import os
import shutil
import time
from pathlib import Path
from typing import Iterator

from ..evaluation.sweep import SweepReport
from .spec import ScenarioSpec

__all__ = ["ResultStore", "ResultStoreError", "VOLATILE_REPORT_FIELDS"]

#: SweepReport fields that legitimately vary between bit-identical runs
#: (scheduling, shipping and timing); they are moved to ``meta.json``.
#: Defined by the report itself so the store and the backend-equivalence
#: tests can never disagree about what "canonical" means.
VOLATILE_REPORT_FIELDS = SweepReport.VOLATILE_FIELDS

_SPEC_FILE = "spec.json"
_REPORT_FILE = "report.json"
_META_FILE = "meta.json"


class ResultStoreError(RuntimeError):
    """A result-store entry is missing, unreadable, or inconsistent."""


def canonical_report_dict(report: SweepReport) -> dict:
    """The deterministic projection of a report (volatile fields removed)."""
    return report.canonical_dict()


class ResultStore:
    """Spec-hash keyed store of completed sweep reports.

    Parameters
    ----------
    root:
        Directory holding one subdirectory per completed cell; created on
        first write.
    """

    def __init__(self, root: str | Path):
        self.root = Path(root)

    # ------------------------------------------------------------------ #
    def path_for(self, spec: ScenarioSpec) -> Path:
        return self.root / spec.spec_hash()

    def contains(self, spec: ScenarioSpec) -> bool:
        """True when a complete entry exists for this spec's hash."""
        entry = self.path_for(spec)
        return all((entry / name).is_file()
                   for name in (_SPEC_FILE, _REPORT_FILE, _META_FILE))

    def __len__(self) -> int:
        return sum(1 for _ in self.hashes())

    @staticmethod
    def _is_entry_name(name: str) -> bool:
        # Completed entries are bare SHA-256 hex dirs; anything else (e.g.
        # a `<hash>.tmp-<pid>` staging dir left by a crash mid-save) is not
        # an entry and must never surface through hashes()/entries().
        return len(name) == 64 and all(c in "0123456789abcdef" for c in name)

    def hashes(self) -> Iterator[str]:
        """Hashes of every (complete-looking) entry on disk."""
        if not self.root.is_dir():
            return
        for entry in sorted(self.root.iterdir()):
            if (entry.is_dir() and self._is_entry_name(entry.name)
                    and (entry / _SPEC_FILE).is_file()):
                yield entry.name

    # ------------------------------------------------------------------ #
    def save(self, spec: ScenarioSpec, report: SweepReport,
             metadata: dict | None = None) -> Path:
        """Write one completed cell atomically; returns the entry path."""
        entry = self.path_for(spec)
        self.root.mkdir(parents=True, exist_ok=True)
        staging = entry.with_name(entry.name + f".tmp-{os.getpid()}")
        if staging.exists():
            shutil.rmtree(staging)
        staging.mkdir(parents=True)
        report_dict = report.as_dict()
        meta = dict(metadata or {})
        meta.setdefault("created_at", time.strftime("%Y-%m-%dT%H:%M:%S%z"))
        meta["volatile"] = {key: report_dict.get(key)
                           for key in VOLATILE_REPORT_FIELDS}
        (staging / _SPEC_FILE).write_text(spec.to_json(indent=2) + "\n")
        (staging / _REPORT_FILE).write_text(
            json.dumps(canonical_report_dict(report), sort_keys=True, indent=2)
            + "\n")
        (staging / _META_FILE).write_text(
            json.dumps(meta, sort_keys=True, indent=2) + "\n")
        if entry.exists():
            shutil.rmtree(entry)
        staging.rename(entry)
        return entry

    # ------------------------------------------------------------------ #
    def load(self, spec: ScenarioSpec) -> SweepReport:
        """Load and validate the report stored for this spec."""
        return self.load_entry(spec.spec_hash())[1]

    def load_entry(self, spec_hash: str) -> tuple[ScenarioSpec, SweepReport, dict]:
        """Load and validate one entry by hash: ``(spec, report, meta)``."""
        entry = self.root / spec_hash

        def corrupted(reason: str) -> ResultStoreError:
            return ResultStoreError(
                f"result store entry {spec_hash[:16]}… at {entry} is "
                f"corrupted: {reason}")

        if not entry.is_dir():
            raise ResultStoreError(
                f"result store has no entry {spec_hash[:16]}… under {self.root}")
        payloads = {}
        for name in (_SPEC_FILE, _REPORT_FILE, _META_FILE):
            path = entry / name
            if not path.is_file():
                raise corrupted(f"missing {name}")
            try:
                payloads[name] = json.loads(path.read_text())
            except (json.JSONDecodeError, UnicodeDecodeError) as error:
                raise corrupted(f"{name} is not valid JSON ({error})") from error
        try:
            spec = ScenarioSpec.from_dict(payloads[_SPEC_FILE])
        except (TypeError, ValueError) as error:
            raise corrupted(f"spec.json does not describe a ScenarioSpec "
                            f"({error})") from error
        if spec.spec_hash() != spec_hash:
            raise corrupted(
                f"spec.json hashes to {spec.spec_hash()[:16]}…, not the "
                "entry's own hash — the spec or the directory was edited")
        try:
            report = SweepReport.from_dict(payloads[_REPORT_FILE])
            # SweepReport is an unvalidating dataclass, so the structural
            # checks below can themselves throw on mistyped fields (e.g. a
            # scalar where a list belongs) — that is corruption too.
            grid_matches = list(report.sigmas) == list(spec.sigmas)
            lengths_agree = len(report.means) == len(report.sigmas)
        except TypeError as error:
            raise corrupted(f"report.json does not describe a SweepReport "
                            f"({error})") from error
        if not grid_matches:
            raise corrupted(
                f"report grid {report.sigmas} does not match the spec grid "
                f"{list(spec.sigmas)}")
        if not lengths_agree:
            raise corrupted("report means/sigmas lengths disagree")
        return spec, report, payloads[_META_FILE]

    def entries(self) -> Iterator[tuple[ScenarioSpec, SweepReport, dict]]:
        """Iterate every stored cell, validating each on the way out."""
        for spec_hash in self.hashes():
            yield self.load_entry(spec_hash)

    # ------------------------------------------------------------------ #
    # Size accounting and garbage collection.  Long-lived stores (CI
    # caches, shared result dirs) accumulate cells and crash-leftover
    # staging directories forever otherwise.
    # ------------------------------------------------------------------ #
    @staticmethod
    def _tree_bytes(path: Path) -> int:
        return sum(item.stat().st_size
                   for item in path.rglob("*") if item.is_file())

    def _read_meta(self, spec_hash: str) -> dict | None:
        try:
            return json.loads((self.root / spec_hash / _META_FILE).read_text())
        except (OSError, json.JSONDecodeError):
            return None

    def _entry_created_at(self, spec_hash: str,
                          meta: dict | None = None) -> str:
        """Sortable creation stamp: meta.json's record, mtime as fallback.

        Callers that already hold the entry's parsed ``meta.json`` pass it
        in to avoid a second read.
        """
        if meta is None:
            meta = self._read_meta(spec_hash)
        if meta is not None and "created_at" in meta:
            return str(meta["created_at"])
        entry = self.root / spec_hash
        return time.strftime("%Y-%m-%dT%H:%M:%S%z",
                             time.localtime(entry.stat().st_mtime))

    def _staging_dirs(self) -> list[Path]:
        if not self.root.is_dir():
            return []
        return [item for item in sorted(self.root.iterdir())
                if item.is_dir() and not self._is_entry_name(item.name)
                and ".tmp-" in item.name]

    def stats(self) -> dict:
        """Size accounting: entries, bytes, stamps, per-scenario counts.

        Pure bookkeeping (one meta read and one size walk per entry, no
        validation, nothing loaded into memory), so it stays cheap on
        stores with thousands of cells.
        """
        entries = []
        by_scenario: dict = {}
        for spec_hash in self.hashes():
            entry = self.root / spec_hash
            meta = self._read_meta(spec_hash)
            scenario = ("(unreadable)" if meta is None
                        else meta.get("scenario") or "(none)")
            created = self._entry_created_at(spec_hash, meta=meta)
            entries.append((created, spec_hash, self._tree_bytes(entry)))
            by_scenario[scenario] = by_scenario.get(scenario, 0) + 1
        staging = self._staging_dirs()
        return {
            "root": str(self.root),
            "entries": len(entries),
            "total_bytes": sum(size for _, _, size in entries),
            "oldest": min((stamp for stamp, _, _ in entries), default=None),
            "newest": max((stamp for stamp, _, _ in entries), default=None),
            "by_scenario": dict(sorted(by_scenario.items())),
            "stale_staging_dirs": len(staging),
            "stale_staging_bytes": sum(self._tree_bytes(item)
                                       for item in staging),
        }

    def gc(self, keep_latest: int | None = None,
           dry_run: bool = False) -> dict:
        """Collect garbage: stale staging dirs always, old entries on request.

        ``keep_latest=N`` keeps the ``N`` most recently created complete
        entries (by ``meta.json`` stamp, hash as tie-break) and removes the
        rest; ``None`` touches no complete entry.  Crash-leftover
        ``<hash>.tmp-<pid>`` staging directories are always collected —
        they were never visible through :meth:`hashes` anyway.
        ``dry_run=True`` reports what would be removed without deleting.
        Returns ``{"removed_entries", "removed_staging", "bytes_freed",
        "entries_kept", "dry_run"}``.
        """
        if keep_latest is not None and keep_latest < 0:
            raise ValueError("keep_latest must be non-negative (or None)")
        ranked = sorted(
            ((self._entry_created_at(spec_hash), spec_hash)
             for spec_hash in self.hashes()), reverse=True)
        doomed = [] if keep_latest is None else ranked[keep_latest:]
        staging = self._staging_dirs()
        bytes_freed = 0
        removed_entries = []
        for _, spec_hash in doomed:
            entry = self.root / spec_hash
            bytes_freed += self._tree_bytes(entry)
            removed_entries.append(spec_hash)
            if not dry_run:
                shutil.rmtree(entry)
        removed_staging = []
        for item in staging:
            bytes_freed += self._tree_bytes(item)
            removed_staging.append(item.name)
            if not dry_run:
                shutil.rmtree(item)
        return {
            "removed_entries": removed_entries,
            "removed_staging": removed_staging,
            "bytes_freed": bytes_freed,
            "entries_kept": len(ranked) - len(doomed),
            "dry_run": dry_run,
        }
