"""Execute scenario specs on the sweep engine, with resume from the store.

:class:`ScenarioRunner` is the orchestration layer between the declarative
:class:`~repro.scenarios.spec.ScenarioSpec` world and the measurement
machinery: it resolves model and dataset names through the registries,
trains the model per the embedded
:class:`~repro.utils.config.ExperimentConfig`, sweeps the severity grid on
:class:`~repro.evaluation.sweep.DriftSweepEngine`, and persists each
completed cell into a :class:`~repro.scenarios.store.ResultStore` keyed by
the spec's content hash — so re-running a scenario skips every finished
cell and cross-scenario comparisons read from disk.

Two entry paths share the sweep/store logic:

* :meth:`run` — fully declarative cells: the runner builds, trains and
  sweeps from the spec alone (each cell is RNG-independent, seeded by
  ``spec.seed``, so cells can be cached, skipped and re-ordered freely);
* :meth:`sweep_trained` — figure-harness cells: the harness owns model
  construction and training (preserving its exact RNG threading, so curves
  match the pre-scenario code paths bit for bit) and routes only the sweep
  through the runner, gaining the cache and the store for free.
"""

from __future__ import annotations

import functools
import time
from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from ..data.loader import train_test_split
from ..data.registry import build_dataset, dataset_info
from ..evaluation.detection_metrics import mean_average_precision
from ..evaluation.sweep import DriftSweepEngine, SweepReport
from ..models.registry import build_model
from ..training.trainer import train_classifier
from .spec import ScenarioSpec
from .store import ResultStore

__all__ = ["ScenarioRunner", "ScenarioRun", "EVALUATION_SEED_OFFSET"]

#: Added to ``spec.seed`` for the default evaluation RNG, matching the
#: fig2 harness convention (training and evaluation streams never mix).
EVALUATION_SEED_OFFSET = 99991


@dataclass
class ScenarioRun:
    """Outcome of one cell: the report, and whether the store answered it."""

    spec: ScenarioSpec
    report: SweepReport
    cached: bool = False
    elapsed_seconds: float = 0.0

    def summary(self) -> dict:
        """One machine-readable row for CLI/benchmark output.

        ``clean`` is the zero-severity accuracy, and ``None`` when the
        grid does not include severity 0 (nothing in that sweep is clean).
        """
        curve = self.report.curve()
        return {
            "name": self.spec.name,
            "model": self.spec.model,
            "dataset": self.spec.dataset,
            "fault": self.spec.fault.describe(),
            "hash": self.spec.spec_hash()[:16],
            "cached": self.cached,
            "clean": (self.report.means[self.report.sigmas.index(0.0)]
                      if 0.0 in self.report.sigmas else None),
            "worst": float(min(self.report.means)),
            "n_evaluations": self.report.n_evaluations,
            "cache_hits": self.report.cache_hits,
            "elapsed_seconds": round(self.elapsed_seconds, 6),
            "sigmas": list(curve.sigmas),
            "means": list(curve.means),
        }


class ScenarioRunner:
    """Resolve, execute and persist scenario cells.

    Parameters
    ----------
    store:
        Optional :class:`ResultStore`; without one every cell is executed
        fresh and nothing is persisted (the figure harnesses default to
        this, keeping them side-effect free).
    workers, max_chunk_trials:
        Scheduling overrides applied to every cell (``None`` defers to the
        spec).  They never change results — the engine's determinism
        contract — and never enter the spec hash.
    progress:
        Optional ``callable(str)`` receiving one line per cell (the CLI
        passes ``print``).
    """

    def __init__(self, store: ResultStore | None = None, *,
                 workers: int | None = None,
                 max_chunk_trials: int | None = None,
                 progress: Callable[[str], None] | None = None):
        self.store = store
        self.workers = workers
        self.max_chunk_trials = max_chunk_trials
        self.progress = progress
        #: Every cell this runner has resolved, in execution order.
        self.runs: list[ScenarioRun] = []

    # ------------------------------------------------------------------ #
    def _log(self, message: str) -> None:
        if self.progress is not None:
            self.progress(message)

    def _engine_kwargs(self, spec: ScenarioSpec) -> dict:
        workers = self.workers if self.workers is not None else spec.workers
        max_chunk = (self.max_chunk_trials if self.max_chunk_trials is not None
                     else spec.max_chunk_trials)
        kwargs = dict(trials=spec.trials, workers=int(workers),
                      max_chunk_trials=max_chunk,
                      drift_factory=spec.fault.factory())
        if spec.metric == "map":
            kwargs["evaluate_fn"] = functools.partial(mean_average_precision,
                                                      iou_threshold=0.5)
        return kwargs

    def _finish(self, spec: ScenarioSpec, report: SweepReport, cached: bool,
                elapsed: float, scenario: str | None) -> ScenarioRun:
        if not cached and self.store is not None:
            metadata = {"scenario": scenario} if scenario else {}
            self.store.save(spec, report, metadata)
        run = ScenarioRun(spec=spec, report=report, cached=cached,
                          elapsed_seconds=elapsed)
        self.runs.append(run)
        state = "cached" if cached else f"ran in {elapsed:.2f}s"
        self._log(f"  [{spec.spec_hash()[:12]}] {spec.name}: {state}")
        return run

    # ------------------------------------------------------------------ #
    def run(self, spec: ScenarioSpec, scenario: str | None = None) -> ScenarioRun:
        """Execute one declarative cell (or answer it from the store)."""
        if spec.context:
            raise ValueError(
                f"cell {spec.name!r} carries figure-harness context "
                f"{sorted(spec.context)} and cannot be re-executed from its "
                "spec alone; run its figure scenario instead")
        start = time.perf_counter()
        if self.store is not None and self.store.contains(spec):
            report = self.store.load(spec)
            return self._finish(spec, report, True,
                                time.perf_counter() - start, scenario)
        report = self._execute(spec)
        return self._finish(spec, report, False,
                            time.perf_counter() - start, scenario)

    def run_specs(self, specs: Sequence[ScenarioSpec],
                  scenario: str | None = None) -> list[ScenarioRun]:
        return [self.run(spec, scenario=scenario) for spec in specs]

    def _execute(self, spec: ScenarioSpec) -> SweepReport:
        info = dataset_info(spec.dataset)
        if info.task != "classification":
            raise ValueError(
                f"declarative cells currently support classification "
                f"datasets only; {spec.dataset!r} is a {info.task} dataset "
                "(detection rides the fig3_detection figure scenario)")
        train = spec.train
        num_classes = spec.num_classes or info.num_classes
        rng = np.random.default_rng(spec.seed)
        total = train.train_samples + train.test_samples
        dataset = build_dataset(spec.dataset, n_samples=total,
                                image_size=spec.image_size,
                                num_classes=num_classes, rng=rng,
                                **spec.dataset_kwargs)
        fraction = train.test_samples / total
        train_set, test_set = train_test_split(dataset, test_fraction=fraction,
                                               rng=rng)
        model = build_model(spec.model, num_classes=num_classes,
                            in_channels=info.in_channels,
                            image_size=spec.image_size, rng=rng,
                            **spec.model_kwargs)
        train_classifier(model, train_set, epochs=train.epochs,
                         batch_size=train.batch_size,
                         learning_rate=train.learning_rate,
                         momentum=train.momentum,
                         weight_decay=train.weight_decay,
                         optimizer=train.optimizer, rng=rng)
        engine = DriftSweepEngine(
            model, test_set,
            rng=np.random.default_rng(spec.seed + EVALUATION_SEED_OFFSET),
            **self._engine_kwargs(spec))
        return engine.run(spec.sigmas, label=spec.name)

    # ------------------------------------------------------------------ #
    def sweep_trained(self, model, data, spec: ScenarioSpec,
                      rng=None, scenario: str | None = None) -> SweepReport:
        """Sweep an already-trained model, consulting the store first.

        The figure harnesses call this with their own evaluation ``rng`` so
        the produced curves are bit-identical to the pre-scenario code path;
        ``spec`` (including its harness ``context``) is only the cell's
        identity for caching.
        """
        start = time.perf_counter()
        if self.store is not None and self.store.contains(spec):
            report = self.store.load(spec)
            self._finish(spec, report, True, time.perf_counter() - start,
                         scenario)
            return report
        if rng is None:
            rng = np.random.default_rng(spec.seed + EVALUATION_SEED_OFFSET)
        engine = DriftSweepEngine(model, data, rng=rng,
                                  **self._engine_kwargs(spec))
        report = engine.run(spec.sigmas, label=spec.name)
        self._finish(spec, report, False, time.perf_counter() - start,
                     scenario)
        return report

    # ------------------------------------------------------------------ #
    def run_scenario(self, scenario, config=None, seed: int | None = None,
                     ) -> list[ScenarioRun]:
        """Run a named or :class:`~repro.scenarios.library.Scenario` object.

        Grid scenarios execute their spec list; figure scenarios invoke
        their harness with this runner threaded through, so every sweep the
        harness performs lands in (or is answered by) the store.  Returns
        the runs this call produced, cached cells included.
        """
        from .library import get_scenario, run_figure_scenario

        if isinstance(scenario, str):
            scenario = get_scenario(scenario)
        first = len(self.runs)
        self._log(f"scenario {scenario.name}: {scenario.description}")
        if scenario.figure is None:
            self.run_specs(scenario.cells(seed=seed), scenario=scenario.name)
        else:
            run_figure_scenario(scenario, self, config=config, seed=seed)
        return self.runs[first:]
