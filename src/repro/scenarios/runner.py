"""Execute scenario specs on the sweep engine, with resume from the store.

:class:`ScenarioRunner` is the orchestration layer between the declarative
:class:`~repro.scenarios.spec.ScenarioSpec` world and the measurement
machinery: it resolves model and dataset names through the registries,
trains the model per the embedded
:class:`~repro.utils.config.ExperimentConfig`, sweeps the severity grid on
:class:`~repro.evaluation.sweep.DriftSweepEngine`, and persists each
completed cell into a :class:`~repro.scenarios.store.ResultStore` keyed by
the spec's content hash — so re-running a scenario skips every finished
cell and cross-scenario comparisons read from disk.

Two entry paths share the sweep/store logic:

* :meth:`run` — fully declarative cells: the runner builds, trains and
  sweeps from the spec alone (each cell is RNG-independent, seeded by
  ``spec.seed``, so cells can be cached, skipped and re-ordered freely);
* :meth:`sweep_trained` — figure-harness cells: the harness owns model
  construction and training (preserving its exact RNG threading, so curves
  match the pre-scenario code paths bit for bit) and routes only the sweep
  through the runner, gaining the cache and the store for free.
"""

from __future__ import annotations

import functools
import os
import time
from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from ..data.loader import train_test_split
from ..data.registry import build_dataset, dataset_info
from ..evaluation.detection_metrics import mean_average_precision
from ..evaluation.sweep import DriftSweepEngine, SweepReport
from ..execution.cells import CELL_BACKENDS, run_cells
from ..fault.policy import build_policy
from ..models.registry import build_model
from ..telemetry import ProgressReporter, current, span_breakdown
from ..training.trainer import train_classifier, train_detector
from .spec import ScenarioSpec
from .store import ResultStore

__all__ = ["ScenarioRunner", "ScenarioRun", "EVALUATION_SEED_OFFSET"]

#: Added to ``spec.seed`` for the default evaluation RNG, matching the
#: fig2 harness convention (training and evaluation streams never mix).
EVALUATION_SEED_OFFSET = 99991


@dataclass
class ScenarioRun:
    """Outcome of one cell: the report, and whether the store answered it."""

    spec: ScenarioSpec
    report: SweepReport
    cached: bool = False
    elapsed_seconds: float = 0.0

    def summary(self) -> dict:
        """One machine-readable row for CLI/benchmark output.

        ``clean`` is the zero-severity accuracy, and ``None`` when the
        grid does not include severity 0 (nothing in that sweep is clean).
        """
        curve = self.report.curve()
        return {
            "name": self.spec.name,
            "model": self.spec.model,
            "dataset": self.spec.dataset,
            "fault": self.spec.fault.describe(),
            "hash": self.spec.spec_hash()[:16],
            "cached": self.cached,
            "clean": (self.report.means[self.report.sigmas.index(0.0)]
                      if 0.0 in self.report.sigmas else None),
            "worst": float(min(self.report.means)),
            "n_evaluations": self.report.n_evaluations,
            "cache_hits": self.report.cache_hits,
            "elapsed_seconds": round(self.elapsed_seconds, 6),
            "sigmas": list(curve.sigmas),
            "means": list(curve.means),
        }


class ScenarioRunner:
    """Resolve, execute and persist scenario cells.

    Parameters
    ----------
    store:
        Optional :class:`ResultStore`; without one every cell is executed
        fresh and nothing is persisted (the figure harnesses default to
        this, keeping them side-effect free).
    workers, max_chunk_trials, backend, trial_batch:
        Scheduling overrides applied to every cell (``None`` defers to the
        spec); ``backend`` names a :mod:`repro.execution` trial backend
        (``serial``/``process``/``shared_memory``), ``trial_batch`` how
        many trials each stacked forward pass evaluates.  They never change
        results — the engine's determinism contract — and never enter the
        spec hash.
    search_workers, suggest_batch:
        Async BO-search scheduling for figure scenarios whose harness runs a
        BayesFT search (fig3): ``suggest_batch`` architectures proposed per
        round, evaluated over ``search_workers`` processes.  Injected into
        the harness config's ``extra`` (and stripped from cell hashes like
        the other scheduling extras).  ``search_workers`` never changes
        seeded results; the canonical trace depends only on
        ``suggest_batch``.
    progress:
        Optional ``callable(str)`` receiving one line per cell (the CLI
        passes ``print``).
    reporter:
        Optional :class:`~repro.telemetry.ProgressReporter` emitting
        ``done/total`` + ETA lines as matrix cells complete (the CLI's
        ``--progress`` flag).  Purely cosmetic — wall-clock only.
    """

    def __init__(self, store: ResultStore | None = None, *,
                 workers: int | None = None,
                 max_chunk_trials: int | None = None,
                 backend: str | None = None,
                 trial_batch: int | None = None,
                 search_workers: int | None = None,
                 suggest_batch: int | None = None,
                 progress: Callable[[str], None] | None = None,
                 reporter: ProgressReporter | None = None):
        self.store = store
        self.workers = workers
        self.max_chunk_trials = max_chunk_trials
        self.backend = backend
        self.trial_batch = trial_batch
        self.search_workers = search_workers
        self.suggest_batch = suggest_batch
        self.progress = progress
        self.reporter = reporter
        #: Every cell this runner has resolved, in execution order.
        self.runs: list[ScenarioRun] = []
        #: Degradation events (pool fallbacks) observed by this runner, in
        #: occurrence order — surfaced in CLI run summaries so a degraded
        #: run is detectable after its RuntimeWarning has scrolled away.
        self.degraded: list[dict] = []

    # ------------------------------------------------------------------ #
    def _log(self, message: str) -> None:
        if self.progress is not None:
            self.progress(message)

    def _engine_kwargs(self, spec: ScenarioSpec) -> dict:
        workers = self.workers if self.workers is not None else spec.workers
        max_chunk = (self.max_chunk_trials if self.max_chunk_trials is not None
                     else spec.max_chunk_trials)
        backend = self.backend if self.backend is not None else spec.backend
        trial_batch = (self.trial_batch if self.trial_batch is not None
                       else spec.trial_batch)
        kwargs = dict(trials=spec.trials, workers=int(workers),
                      max_chunk_trials=max_chunk, backend=backend,
                      trial_batch=trial_batch,
                      drift_factory=self._drift_factory(spec))
        if spec.metric == "map":
            kwargs["evaluate_fn"] = functools.partial(mean_average_precision,
                                                      iou_threshold=0.5)
        return kwargs

    @staticmethod
    def _drift_factory(spec: ScenarioSpec):
        """severity → drift model (or per-layer policy, when the spec asks).

        A cell without a ``policy`` sweeps its fault model uniformly over
        every parameter; with one, each grid point resolves through the
        :mod:`repro.fault.policy` registry so the sweep drifts layers
        selectively (policy parameters are part of the spec hash).
        """
        if spec.policy is None:
            return spec.fault.factory()
        policy = dict(spec.policy)
        kind = policy.pop("kind")

        def _factory(severity: float):
            return build_policy(kind, severity, spec.fault, **policy)

        return _factory

    def _finish(self, spec: ScenarioSpec, report: SweepReport, cached: bool,
                elapsed: float, scenario: str | None,
                telemetry_summary: dict | None = None) -> ScenarioRun:
        if not cached and report.fallback_reason:
            self.degraded.append({"cell": spec.name, "layer": "sweep",
                                  "reason": report.fallback_reason})
        if not cached and self.store is not None:
            metadata = {"scenario": scenario} if scenario else {}
            if telemetry_summary:
                # Volatile by construction (wall timings) — meta.json only,
                # never report.json, so store bytes stay canonical.
                metadata["telemetry"] = telemetry_summary
            self.store.save(spec, report, metadata)
        run = ScenarioRun(spec=spec, report=report, cached=cached,
                          elapsed_seconds=elapsed)
        self.runs.append(run)
        state = "cached" if cached else f"ran in {elapsed:.2f}s"
        self._log(f"  [{spec.spec_hash()[:12]}] {spec.name}: {state}")
        if self.reporter is not None:
            self.reporter.advance(note=f"{spec.name} ({state})")
        return run

    # ------------------------------------------------------------------ #
    def run(self, spec: ScenarioSpec, scenario: str | None = None) -> ScenarioRun:
        """Execute one declarative cell (or answer it from the store)."""
        if spec.context:
            raise ValueError(
                f"cell {spec.name!r} carries figure-harness context "
                f"{sorted(spec.context)} and cannot be re-executed from its "
                "spec alone; run its figure scenario instead")
        start = time.perf_counter()
        if self.store is not None and self.store.contains(spec):
            report = self.store.load(spec)
            return self._finish(spec, report, True,
                                time.perf_counter() - start, scenario)
        telemetry = current()
        with telemetry.span("cell", cell=spec.name,
                            hash=spec.spec_hash()[:12]) as span:
            report = self._execute(spec)
        summary = span_breakdown(span) if telemetry.enabled else None
        return self._finish(spec, report, False,
                            time.perf_counter() - start, scenario,
                            telemetry_summary=summary)

    def run_specs(self, specs: Sequence[ScenarioSpec],
                  scenario: str | None = None, backend: str | None = None,
                  cell_workers: int | None = None) -> list[ScenarioRun]:
        """Execute a batch of declarative cells, optionally fanned out.

        ``backend=None``/``"serial"`` executes the cells one after another
        (the historical behaviour).  ``backend="process"`` ships the cells
        still missing from the store — whole (train → sweep → persist)
        units, each seeded by its own ``spec.seed`` — to ``cell_workers``
        worker processes via :func:`repro.execution.run_cells`; every
        finished cell lands in the store as it completes, so a matrix
        fill-in killed mid-run resumes from exactly the cells that
        finished.  Results (and ``self.runs`` bookkeeping) come back in
        ``specs`` order and are bit-identical to a serial run.
        """
        if backend is None or backend == "serial" or len(specs) < 2:
            return [self.run(spec, scenario=scenario) for spec in specs]
        if backend not in CELL_BACKENDS:
            raise ValueError(
                f"cell fan-out supports backends {list(CELL_BACKENDS)}; "
                f"{backend!r} is a trial-level backend (weight shipping "
                "does not apply to whole declarative cells)")
        for spec in specs:
            if spec.context:
                raise ValueError(
                    f"cell {spec.name!r} carries figure-harness context and "
                    "cannot be fanned out; run its figure scenario instead")
        start = time.perf_counter()
        # Answer everything already stored, fan out only the gaps.  The
        # batch probe is one index query, so resuming a 100k-cell matrix
        # costs O(matrix) hashing, not O(matrix) filesystem stats.
        missing = (list(specs) if self.store is None
                   else self.store.missing(specs))
        workers = cell_workers or min(len(missing), os.cpu_count() or 1) or 1
        executed: dict[str, dict] = {}
        if missing:
            store_root = None if self.store is None else str(self.store.root)
            # Worker-side runners inherit this runner's scheduling
            # overrides, so e.g. --chunk-trials keeps bounding memory and
            # --backend keeps choosing the trial backend inside each cell.
            runner_kwargs = dict(workers=self.workers,
                                 max_chunk_trials=self.max_chunk_trials,
                                 backend=self.backend,
                                 trial_batch=self.trial_batch,
                                 search_workers=self.search_workers,
                                 suggest_batch=self.suggest_batch)
            on_cell = None
            if self.reporter is not None:
                on_cell = lambda payload: self.reporter.advance()  # noqa: E731
            payloads, cell_fallback = run_cells(
                missing, store_root, scenario, workers=workers,
                runner_kwargs=runner_kwargs, progress=on_cell)
            if cell_fallback:
                self.degraded.append({"cell": scenario or "(batch)",
                                      "layer": "cell_fanout",
                                      "reason": cell_fallback})
            executed = {spec.spec_hash(): payload
                        for spec, payload in zip(missing, payloads)}
        runs = []
        for spec in specs:
            payload = executed.get(spec.spec_hash())
            if payload is None:  # answered by the store (cached)
                runs.append(self.run(spec, scenario=scenario))
                continue
            report = SweepReport.from_dict(payload["report"])
            if not payload["cached"] and report.fallback_reason:
                self.degraded.append({"cell": spec.name, "layer": "sweep",
                                      "reason": report.fallback_reason})
            run = ScenarioRun(spec=spec, report=report, cached=payload["cached"],
                              elapsed_seconds=payload["elapsed_seconds"])
            self.runs.append(run)
            self._log(f"  [{spec.spec_hash()[:12]}] {spec.name}: "
                      f"ran in {run.elapsed_seconds:.2f}s (cell worker)")
            runs.append(run)
        self._log(f"  fan-out: {len(missing)} cells over {workers} workers "
                  f"in {time.perf_counter() - start:.2f}s")
        return runs

    def _execute(self, spec: ScenarioSpec) -> SweepReport:
        info = dataset_info(spec.dataset)
        if info.task == "detection":
            return self._execute_detection(spec, info)
        if info.task != "classification":
            raise ValueError(
                f"declarative cells support classification and detection "
                f"datasets; {spec.dataset!r} is a {info.task} dataset")
        train = spec.train
        num_classes = spec.num_classes or info.num_classes
        rng = np.random.default_rng(spec.seed)
        total = train.train_samples + train.test_samples
        dataset = build_dataset(spec.dataset, n_samples=total,
                                image_size=spec.image_size,
                                num_classes=num_classes, rng=rng,
                                **spec.dataset_kwargs)
        fraction = train.test_samples / total
        train_set, test_set = train_test_split(dataset, test_fraction=fraction,
                                               rng=rng)
        model = build_model(spec.model, num_classes=num_classes,
                            in_channels=info.in_channels,
                            image_size=spec.image_size, rng=rng,
                            **spec.model_kwargs)
        train_classifier(model, train_set, epochs=train.epochs,
                         batch_size=train.batch_size,
                         learning_rate=train.learning_rate,
                         momentum=train.momentum,
                         weight_decay=train.weight_decay,
                         optimizer=train.optimizer, rng=rng)
        engine = DriftSweepEngine(
            model, test_set,
            rng=np.random.default_rng(spec.seed + EVALUATION_SEED_OFFSET),
            **self._engine_kwargs(spec))
        return engine.run(spec.sigmas, label=spec.name)

    def _execute_detection(self, spec: ScenarioSpec, info) -> SweepReport:
        """Declarative fig3-detection-style cell: train a detector, sweep mAP.

        Mirrors :meth:`_execute`'s seeding discipline — one ``spec.seed``
        stream for data/model/training, a decoupled evaluation stream — so
        detection cells cache, resume and re-order exactly like
        classification ones.
        """
        if spec.metric != "map":
            raise ValueError(
                f"detection dataset {spec.dataset!r} needs metric='map' "
                f"(cell {spec.name!r} asks for {spec.metric!r})")
        train = spec.train
        rng = np.random.default_rng(spec.seed)
        total = train.train_samples + train.test_samples
        dataset = build_dataset(spec.dataset, n_samples=total,
                                image_size=spec.image_size, rng=rng,
                                **spec.dataset_kwargs)
        fraction = train.test_samples / total
        train_samples, test_samples = dataset.split(test_fraction=fraction,
                                                    rng=rng)
        model = build_model(spec.model, in_channels=info.in_channels,
                            image_size=spec.image_size, rng=rng,
                            **spec.model_kwargs)
        train_detector(model, train_samples, epochs=train.epochs,
                       batch_size=train.batch_size,
                       learning_rate=train.learning_rate, rng=rng)
        engine = DriftSweepEngine(
            model, test_samples,
            rng=np.random.default_rng(spec.seed + EVALUATION_SEED_OFFSET),
            **self._engine_kwargs(spec))
        return engine.run(spec.sigmas, label=spec.name)

    # ------------------------------------------------------------------ #
    def sweep_trained(self, model, data, spec: ScenarioSpec,
                      rng=None, scenario: str | None = None) -> SweepReport:
        """Sweep an already-trained model, consulting the store first.

        The figure harnesses call this with their own evaluation ``rng`` so
        the produced curves are bit-identical to the pre-scenario code path;
        ``spec`` (including its harness ``context``) is only the cell's
        identity for caching.
        """
        start = time.perf_counter()
        if self.store is not None and self.store.contains(spec):
            report = self.store.load(spec)
            self._finish(spec, report, True, time.perf_counter() - start,
                         scenario)
            return report
        if rng is None:
            rng = np.random.default_rng(spec.seed + EVALUATION_SEED_OFFSET)
        telemetry = current()
        with telemetry.span("cell", cell=spec.name,
                            hash=spec.spec_hash()[:12]) as span:
            engine = DriftSweepEngine(model, data, rng=rng,
                                      **self._engine_kwargs(spec))
            report = engine.run(spec.sigmas, label=spec.name)
        summary = span_breakdown(span) if telemetry.enabled else None
        self._finish(spec, report, False, time.perf_counter() - start,
                     scenario, telemetry_summary=summary)
        return report

    # ------------------------------------------------------------------ #
    def run_scenario(self, scenario, config=None, seed: int | None = None,
                     cell_backend: str | None = None,
                     cell_workers: int | None = None) -> list[ScenarioRun]:
        """Run a named or :class:`~repro.scenarios.library.Scenario` object.

        Grid scenarios execute their spec list — fanned out over worker
        processes when ``cell_backend="process"`` (see :meth:`run_specs`);
        figure scenarios invoke their harness with this runner threaded
        through, so every sweep the harness performs lands in (or is
        answered by) the store.  Returns the runs this call produced,
        cached cells included.
        """
        from .library import get_scenario, run_figure_scenario

        if isinstance(scenario, str):
            scenario = get_scenario(scenario)
        first = len(self.runs)
        self._log(f"scenario {scenario.name}: {scenario.description}")
        if scenario.figure is None:
            self.run_specs(scenario.cells(seed=seed), scenario=scenario.name,
                           backend=cell_backend, cell_workers=cell_workers)
        else:
            if cell_backend not in (None, "serial"):
                raise ValueError(
                    f"figure scenario {scenario.name!r} cannot fan out cells: "
                    "its harness threads one RNG through all variants")
            if self.search_workers is not None or self.suggest_batch is not None:
                # Harnesses read async-search scheduling from config.extra;
                # explicit keys already in the config win over overrides.
                config = config or scenario.default_config()
                if self.search_workers is not None:
                    config.extra.setdefault("search_workers", self.search_workers)
                if self.suggest_batch is not None:
                    config.extra.setdefault("suggest_batch", self.suggest_batch)
            run_figure_scenario(scenario, self, config=config, seed=seed)
        return self.runs[first:]
