"""``python -m repro`` — the scenario command line.

Subcommands:

* ``list`` — scenarios, fault models, models, datasets and execution
  backends;
* ``run`` — execute a scenario into an on-disk result store (finished
  cells are skipped on re-runs; ``--backend`` picks the trial execution
  backend, ``--cell-workers`` fans a grid scenario's cells over worker
  processes, ``--trace out.jsonl`` captures a span trace, ``--progress``
  prints live done/total + ETA lines to stderr);
* ``trace summarize`` — human report over a ``--trace`` JSONL file (top
  spans by cumulative time, cache hit rate, bytes shipped, worker
  utilisation);
* ``report`` — tabulate every cell stored under ``--out``;
* ``compare`` — align the stored cells of two or more grid scenarios;
* ``query`` — filter the store's SQLite index (``--model``, ``--fault``,
  ``--worst '<0.5'``, …) without opening any entry files;
* ``migrate-store`` — upgrade a legacy flat store to the sharded layout
  (entries move by rename; every canonical byte preserved);
* ``gc`` — size accounting and garbage collection for long-lived stores.

Everything prints human tables by default and JSON with ``--json``, so the
CLI doubles as a machine interface for the benchmark suite and CI.
"""

from __future__ import annotations

import argparse
import json
import sys

from ..data.registry import available_datasets
from ..evaluation.statistics import curve_auc
from ..execution import available_backends, configure_runtime
from ..models.registry import available_models
from ..telemetry import (
    ProgressReporter,
    Telemetry,
    format_trace_summary,
    summarize_trace,
    using,
    write_trace_jsonl,
)
from ..utils.config import ExperimentConfig
from .library import available_scenarios, get_scenario
from .runner import ScenarioRunner
from .spec import available_fault_models
from .query import QUERY_FIELDS, SCORE_FIELDS, StoreQuery
from .store import ResultStore, ResultStoreError

__all__ = ["main"]


def _emit(payload: dict, as_json: bool, text: str) -> None:
    print(json.dumps(payload, indent=2, sort_keys=True) if as_json else text)


# --------------------------------------------------------------------------- #
def _cmd_list(args) -> int:
    rows = []
    for name in available_scenarios():
        scenario = get_scenario(name)
        cells = len(scenario.cells()) if scenario.figure is None else None
        rows.append({"name": name, "kind": scenario.kind(),
                     "cells": cells, "description": scenario.description})
    payload = {"scenarios": rows,
               "fault_models": available_fault_models(),
               "models": available_models(),
               "datasets": available_datasets(),
               "backends": available_backends()}
    lines = ["scenarios:"]
    for row in rows:
        cells = "harness" if row["cells"] is None else f"{row['cells']} cells"
        lines.append(f"  {row['name']:<22} [{row['kind']}, {cells}] "
                     f"{row['description']}")
    lines.append(f"fault models: {', '.join(payload['fault_models'])}")
    lines.append(f"models:       {', '.join(payload['models'])}")
    lines.append(f"datasets:     {', '.join(payload['datasets'])}")
    lines.append(f"backends:     {', '.join(payload['backends'])}")
    _emit(payload, args.json, "\n".join(lines))
    return 0


# --------------------------------------------------------------------------- #
def _cmd_run(args) -> int:
    if args.cold_runtime:
        configure_runtime(enabled=False)
    store = ResultStore(args.out)
    reporter = None
    if args.progress:
        scenario = get_scenario(args.scenario)
        # Figure scenarios discover their cells as the harness runs;
        # total=0 makes the reporter count without a percentage.
        total = len(scenario.cells(seed=args.seed)) \
            if scenario.figure is None else 0
        reporter = ProgressReporter(
            total, emit=lambda line: print(line, file=sys.stderr))
    runner = ScenarioRunner(store, workers=args.workers,
                            max_chunk_trials=args.chunk_trials,
                            backend=args.backend,
                            trial_batch=args.trial_batch,
                            search_workers=args.search_workers,
                            suggest_batch=args.suggest_batch,
                            progress=None if args.json else print,
                            reporter=reporter)
    # Figure scenarios default to the fast config (scenario.default_config);
    # --full runs the harness at its own full-scale default.  Grid cells
    # embed their training config in the spec and ignore this.
    config = ExperimentConfig() if args.full else None
    cell_backend = "process" if (args.cell_workers or 0) >= 2 else None

    def _run():
        return runner.run_scenario(args.scenario, config=config,
                                   seed=args.seed, cell_backend=cell_backend,
                                   cell_workers=args.cell_workers)

    if args.trace:
        telemetry = Telemetry()
        with using(telemetry):
            runs = _run()
        snapshot = telemetry.snapshot()
        write_trace_jsonl(snapshot, args.trace)
    else:
        runs = _run()
    cached = sum(run.cached for run in runs)
    payload = {"scenario": args.scenario, "store": str(store.root),
               "cells": [run.summary() for run in runs],
               "cells_total": len(runs), "cells_cached": cached,
               "cells_executed": len(runs) - cached,
               "degraded": runner.degraded}
    text = (f"{args.scenario}: {len(runs)} cells, {cached} answered from the "
            f"store, {len(runs) - cached} executed (results in {store.root})")
    if args.trace:
        payload["telemetry"] = {"trace": args.trace,
                                "counters": snapshot["metrics"]["counters"],
                                "gauges": snapshot["metrics"]["gauges"]}
        text += f"\ntrace written to {args.trace} " \
                f"(python -m repro trace summarize {args.trace})"
    for event in runner.degraded:
        text += (f"\nDEGRADED {event['layer']} in {event['cell']}: "
                 f"{event['reason']}")
    _emit(payload, args.json, text)
    return 0


# --------------------------------------------------------------------------- #
def _cmd_trace_summarize(args) -> int:
    summary = summarize_trace(args.path)
    _emit(summary, args.json, format_trace_summary(summary, top=args.top))
    return 0


# --------------------------------------------------------------------------- #
def _curve_stats(report) -> dict:
    curve = report.curve()
    # "clean" is the zero-severity point; grids without one have no clean
    # accuracy to report.
    clean = (curve.means[curve.sigmas.index(0.0)]
             if 0.0 in curve.sigmas else None)
    return {"clean": clean, "worst": float(min(curve.means)),
            "auc": float(curve_auc(curve))}


def _fmt(value: "float | None") -> str:
    return f"{value:6.3f}" if value is not None else "     -"


def _cmd_report(args) -> int:
    store = ResultStore(args.out)
    rows = []
    for spec, report, meta in store.entries():
        rows.append({"hash": spec.spec_hash()[:16], "name": spec.name,
                     "model": spec.model, "dataset": spec.dataset,
                     "fault": spec.fault.describe(),
                     "scenario": meta.get("scenario"),
                     "sigmas": list(spec.sigmas),
                     "means": list(report.means),
                     **_curve_stats(report)})
    rows.sort(key=lambda row: (row["scenario"] or "", row["name"]))
    payload = {"store": str(store.root), "cells": rows}
    lines = [f"result store {store.root}: {len(rows)} cells",
             f"  {'name':<28} {'model':<10} {'dataset':<8} {'fault':<22} "
             f"{'clean':>6} {'worst':>6} {'auc':>6}"]
    for row in rows:
        lines.append(f"  {row['name']:<28} {row['model']:<10} "
                     f"{row['dataset']:<8} {row['fault']:<22} "
                     f"{_fmt(row['clean'])} {row['worst']:6.3f} "
                     f"{row['auc']:6.3f}")
    _emit(payload, args.json, "\n".join(lines))
    return 0


# --------------------------------------------------------------------------- #
def _cmd_compare(args) -> int:
    store = ResultStore(args.out)
    columns = []
    for name in args.scenarios:
        scenario = get_scenario(name)
        if scenario.figure is not None:
            raise SystemExit(
                f"compare works on grid scenarios; {name!r} is a figure "
                "scenario — use `report` to inspect its stored cells")
        for spec in scenario.cells(seed=args.seed):
            if not store.contains(spec):
                raise SystemExit(
                    f"cell {spec.name!r} of scenario {name!r} is not in "
                    f"{store.root}; run `python -m repro run {name} --out "
                    f"{store.root}` first")
            columns.append((name, spec, store.load(spec)))
    payload = {"store": str(store.root), "cells": [
        {"scenario": name, "name": spec.name,
         "fault": spec.fault.describe(), "sigmas": list(spec.sigmas),
         "means": list(report.means), **_curve_stats(report)}
        for name, spec, report in columns]}
    lines = [f"comparing {len(columns)} stored cells from "
             f"{', '.join(args.scenarios)}:",
             f"  {'scenario':<16} {'cell':<28} {'clean':>6} {'worst':>6} "
             f"{'auc':>6}  severity: mean accuracy"]
    for name, spec, report in columns:
        stats = _curve_stats(report)
        curve = " ".join(f"{sigma:g}:{mean:.3f}"
                         for sigma, mean in zip(report.sigmas, report.means))
        lines.append(f"  {name:<16} {spec.name:<28} {_fmt(stats['clean'])} "
                     f"{stats['worst']:6.3f} {stats['auc']:6.3f}  {curve}")
    best = max(columns, key=lambda item: _curve_stats(item[2])["auc"])
    lines.append(f"highest robustness AUC: {best[1].name} "
                 f"({_curve_stats(best[2])['auc']:.3f})")
    _emit(payload, args.json, "\n".join(lines))
    return 0


# --------------------------------------------------------------------------- #
def _cmd_query(args) -> int:
    store = ResultStore(args.out)
    filters = {field: getattr(args, field)
               for field in (*QUERY_FIELDS, "name", *SCORE_FIELDS, "limit")
               if getattr(args, field) is not None}
    try:
        store_query = StoreQuery(**filters)
    except ValueError as error:
        raise SystemExit(f"bad query: {error}") from error
    rows = store.query(**filters)
    payload = {"store": str(store.root),
               "filters": store_query.describe(),
               "matches": len(rows), "cells": rows}
    described = ", ".join(f"{key}={value}" for key, value
                          in payload["filters"].items()) or "no filters"
    lines = [f"result store {store.root}: {len(rows)} cells match "
             f"({described})",
             f"  {'name':<28} {'model':<10} {'dataset':<8} {'fault':<22} "
             f"{'clean':>6} {'worst':>6} {'best':>6}  hash"]
    for row in rows:
        lines.append(f"  {row['name']:<28} {row['model']:<10} "
                     f"{row['dataset']:<8} {row['fault']:<22} "
                     f"{_fmt(row['clean'])} {_fmt(row['worst'])} "
                     f"{_fmt(row['best'])}  {row['hash'][:12]}")
    _emit(payload, args.json, "\n".join(lines))
    return 0


# --------------------------------------------------------------------------- #
def _cmd_migrate_store(args) -> int:
    store = ResultStore(args.out)
    result = store.migrate()
    payload = {"store": str(store.root), **result}
    _emit(payload, args.json,
          f"result store {store.root}: moved {result['moved']} flat entries "
          f"into sharded buckets ({result['duplicates']} flat duplicates "
          f"dropped); index rebuilt over {result['entries']} entries "
          f"({result['skipped']} unparsable skipped)")
    return 0


# --------------------------------------------------------------------------- #
def _fmt_bytes(count: int) -> str:
    size = float(count)
    for unit in ("B", "KiB", "MiB"):
        if size < 1024:
            return f"{count} B" if unit == "B" else f"{size:.1f} {unit}"
        size /= 1024
    return f"{size:.1f} GiB"


def _cmd_gc(args) -> int:
    store = ResultStore(args.out)
    before = store.stats()
    result = store.gc(keep_latest=args.keep_latest, dry_run=args.dry_run)
    after = before if args.dry_run else store.stats()
    payload = {"store": str(store.root), "before": before, "after": after,
               "gc": result}
    verb = "would remove" if args.dry_run else "removed"
    lines = [f"result store {store.root}: {before['entries']} cells, "
             f"{_fmt_bytes(before['total_bytes'])}"
             + (f" (+{before['stale_staging_dirs']} stale staging dirs)"
                if before["stale_staging_dirs"] else "")]
    for scenario, count in before["by_scenario"].items():
        lines.append(f"  {scenario:<24} {count} cells")
    lines.append(f"gc {verb} {len(result['removed_entries'])} cells and "
                 f"{len(result['removed_staging'])} staging dirs, freeing "
                 f"{_fmt_bytes(result['bytes_freed'])} "
                 f"({result['entries_kept']} cells kept)")
    _emit(payload, args.json, "\n".join(lines))
    return 0


# --------------------------------------------------------------------------- #
def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="BayesFT scenario orchestration: declarative "
                    "(model × dataset × fault × severity) experiment cells "
                    "with an on-disk, content-addressed result store.")
    sub = parser.add_subparsers(dest="command", required=True)

    p_list = sub.add_parser("list", help="list scenarios and registries")
    p_list.add_argument("--json", action="store_true")
    p_list.set_defaults(func=_cmd_list)

    p_run = sub.add_parser("run", help="run a scenario (resumes from --out)")
    p_run.add_argument("scenario", choices=available_scenarios())
    p_run.add_argument("--out", default="results",
                       help="result-store directory (default: ./results)")
    p_run.add_argument("--seed", type=int, default=None)
    p_run.add_argument("--workers", type=int, default=None,
                       help="sweep worker processes (never changes results)")
    p_run.add_argument("--chunk-trials", type=int, default=None,
                       dest="chunk_trials",
                       help="bound pre-drawn weight copies per parameter")
    p_run.add_argument("--backend", choices=available_backends(), default=None,
                       help="trial execution backend (never changes results); "
                            "shared_memory ships weights via shared memory "
                            "instead of pickling")
    p_run.add_argument("--trial-batch", type=int, default=None,
                       dest="trial_batch",
                       help="trials evaluated per stacked forward pass "
                            "(never changes results)")
    p_run.add_argument("--cell-workers", type=int, default=None,
                       dest="cell_workers",
                       help="fan a grid scenario's independent cells over N "
                            "worker processes (resumes through the store; "
                            "never changes results)")
    p_run.add_argument("--search-workers", type=int, default=None,
                       dest="search_workers",
                       help="BO search trials evaluated concurrently over N "
                            "worker processes (figure scenarios with a "
                            "BayesFT search; never changes seeded results)")
    p_run.add_argument("--suggest-batch", type=int, default=None,
                       dest="suggest_batch",
                       help="architectures proposed per BO round via "
                            "constant-liar batch suggestion (1 = the "
                            "sequential paper loop)")
    p_run.add_argument("--full", action="store_true",
                       help="figure scenarios: run the harness at its "
                            "full-scale default config instead of the fast "
                            "one (grid scenarios embed their own config)")
    p_run.add_argument("--trace", default=None, metavar="PATH",
                       help="capture a span trace of the whole run to a "
                            "JSON-lines file (never changes results; "
                            "inspect with `trace summarize`)")
    p_run.add_argument("--progress", action="store_true",
                       help="print live done/total + ETA lines to stderr "
                            "as cells complete")
    p_run.add_argument("--cold-runtime", action="store_true",
                       help="opt out of the warm execution runtime: build "
                            "and tear down a fresh worker pool per sweep "
                            "instead of leasing persistent ones (results "
                            "are byte-identical either way)")
    p_run.add_argument("--json", action="store_true")
    p_run.set_defaults(func=_cmd_run)

    p_trace = sub.add_parser("trace", help="inspect a --trace JSONL file")
    trace_sub = p_trace.add_subparsers(dest="trace_command", required=True)
    p_sum = trace_sub.add_parser(
        "summarize", help="span/metric breakdown: top spans by cumulative "
                          "time, cache hit rate, bytes shipped, worker "
                          "utilisation")
    p_sum.add_argument("path", help="JSONL file written by run --trace")
    p_sum.add_argument("--top", type=int, default=12,
                       help="span rows to show (default: 12)")
    p_sum.add_argument("--json", action="store_true")
    p_sum.set_defaults(func=_cmd_trace_summarize)

    p_report = sub.add_parser("report", help="tabulate a result store")
    p_report.add_argument("--out", default="results")
    p_report.add_argument("--json", action="store_true")
    p_report.set_defaults(func=_cmd_report)

    p_compare = sub.add_parser("compare",
                               help="align stored cells of grid scenarios")
    p_compare.add_argument("scenarios", nargs="+")
    p_compare.add_argument("--out", default="results")
    p_compare.add_argument("--seed", type=int, default=None)
    p_compare.add_argument("--json", action="store_true")
    p_compare.set_defaults(func=_cmd_compare)

    p_query = sub.add_parser(
        "query", help="filter the store's index (no entry files opened)")
    p_query.add_argument("--out", default="results")
    p_query.add_argument("--model", default=None,
                         help="exact model registry name, e.g. preact18")
    p_query.add_argument("--dataset", default=None)
    p_query.add_argument("--fault", default=None,
                         help="fault label, e.g. bitflip or "
                              "composite:lognormal+stuckat")
    p_query.add_argument("--scenario", default=None,
                         help="scenario that produced the cell")
    p_query.add_argument("--metric", default=None)
    p_query.add_argument("--name", default=None,
                         help="cell-name filter; * matches anything")
    p_query.add_argument("--worst", default=None,
                         help="bound on the worst per-σ mean score, "
                              "e.g. '<0.5' or '>=0.9'")
    p_query.add_argument("--best", default=None,
                         help="bound on the best per-σ mean score")
    p_query.add_argument("--clean", default=None,
                         help="bound on the σ=0 mean score")
    p_query.add_argument("--limit", type=int, default=None)
    p_query.add_argument("--json", action="store_true")
    p_query.set_defaults(func=_cmd_query)

    p_migrate = sub.add_parser(
        "migrate-store",
        help="move a legacy flat store into the sharded layout "
             "(renames only; canonical bytes untouched; idempotent)")
    p_migrate.add_argument("--out", default="results")
    p_migrate.add_argument("--json", action="store_true")
    p_migrate.set_defaults(func=_cmd_migrate_store)

    p_gc = sub.add_parser("gc", help="result-store size accounting + cleanup")
    p_gc.add_argument("--out", default="results")
    p_gc.add_argument("--keep-latest", type=int, default=None,
                      dest="keep_latest",
                      help="keep only the N most recently created cells "
                           "(default: remove nothing but stale staging dirs)")
    p_gc.add_argument("--dry-run", action="store_true", dest="dry_run",
                      help="report what would be removed without deleting")
    p_gc.add_argument("--json", action="store_true")
    p_gc.set_defaults(func=_cmd_gc)
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except ResultStoreError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    except BrokenPipeError:
        # Downstream pager/head closed the pipe; that is not an error.
        try:
            sys.stdout.close()
        except BrokenPipeError:
            pass
        return 0
