"""SQLite index over a :class:`~repro.scenarios.store.ResultStore`.

``<root>/index.sqlite`` holds one row per completed cell — hash, scenario,
model, dataset, fault label, severity grid, creation stamp, byte size and
worst/best/clean scores — so ``contains``/``missing`` route in O(1),
``stats``/``gc`` aggregate in SQL instead of walking the tree, and the
``query`` API filters rich predicates without opening a single JSON file.

The index is a **pure cache**: ``report.json`` on disk stays the source of
truth, and anything here can be rebuilt from the entries at any time
(:meth:`ResultStore.reindex`).  That contract shapes the failure handling:

* a corrupt or version-mismatched ``index.sqlite`` is discarded and
  rebuilt, never trusted;
* a failed index write never fails the save that triggered it — the entry
  is already durable on disk, and a *missing* row only costs a slower
  (disk-backed) lookup later, which self-heals the row;
* concurrent writers are serialized behind SQLite's own locking (WAL mode
  with a busy timeout), so service workers and cell fan-out processes can
  share one store without coordinating.

Connections are opened lazily and never cross a ``fork()``: every call
site goes through :meth:`StoreIndex.connection`, which re-opens after a
PID change.
"""

from __future__ import annotations

import json
import os
import sqlite3
from pathlib import Path

__all__ = ["StoreIndex", "INDEX_SCHEMA_VERSION", "INDEX_FILE"]

#: Bumped whenever the row layout changes; a mismatched ``index.sqlite``
#: is wiped and rebuilt from disk (it is a cache, not a record).
INDEX_SCHEMA_VERSION = 1

INDEX_FILE = "index.sqlite"

#: Columns of the ``entries`` table, in schema order.  ``sigmas`` is the
#: severity grid as compact JSON; ``fault`` is the human label
#: (``"lognormal"``, ``"composite:lognormal+stuckat"``, …); ``worst`` /
#: ``best`` / ``clean`` summarize ``report.json``'s means track.
COLUMNS = ("hash", "name", "scenario", "model", "dataset", "fault",
           "metric", "sigmas", "trials", "seed", "created_at", "bytes",
           "worst", "best", "clean")

_SCHEMA = f"""
CREATE TABLE IF NOT EXISTS entries (
    hash       TEXT PRIMARY KEY,
    name       TEXT NOT NULL,
    scenario   TEXT,
    model      TEXT NOT NULL,
    dataset    TEXT NOT NULL,
    fault      TEXT NOT NULL,
    metric     TEXT NOT NULL,
    sigmas     TEXT NOT NULL,
    trials     INTEGER NOT NULL,
    seed       INTEGER NOT NULL,
    created_at TEXT NOT NULL,
    bytes      INTEGER NOT NULL,
    worst      REAL,
    best       REAL,
    clean      REAL
);
CREATE INDEX IF NOT EXISTS idx_entries_model    ON entries (model);
CREATE INDEX IF NOT EXISTS idx_entries_dataset  ON entries (dataset);
CREATE INDEX IF NOT EXISTS idx_entries_fault    ON entries (fault);
CREATE INDEX IF NOT EXISTS idx_entries_scenario ON entries (scenario);
CREATE INDEX IF NOT EXISTS idx_entries_created  ON entries (created_at);
PRAGMA user_version = {INDEX_SCHEMA_VERSION};
"""

#: SQLite's historical bound variable limit is 999; stay under it when
#: expanding ``IN (...)`` placeholders so the index works on old builds.
_IN_CHUNK = 500


class StoreIndex:
    """One process's handle on ``<root>/index.sqlite``.

    All methods raise :class:`sqlite3.Error` on a broken database file;
    the owning :class:`~repro.scenarios.store.ResultStore` catches that,
    deletes the file and rebuilds from disk — callers of the store never
    see index corruption.
    """

    def __init__(self, path: str | Path, timeout: float = 30.0):
        self.path = Path(path)
        self.timeout = timeout
        self._conn: sqlite3.Connection | None = None
        self._pid: int | None = None

    # ------------------------------------------------------------------ #
    def connection(self) -> sqlite3.Connection:
        """The live connection, (re)opened lazily and never shared across
        ``fork()`` — a child process gets its own handle."""
        if self._conn is not None and self._pid == os.getpid():
            return self._conn
        self.close()
        self.path.parent.mkdir(parents=True, exist_ok=True)
        conn = sqlite3.connect(str(self.path), timeout=self.timeout)
        conn.execute("PRAGMA journal_mode=WAL")
        conn.execute("PRAGMA synchronous=NORMAL")
        conn.execute(f"PRAGMA busy_timeout={int(self.timeout * 1000)}")
        version = conn.execute("PRAGMA user_version").fetchone()[0]
        if version not in (0, INDEX_SCHEMA_VERSION):
            # Stale schema: the cache is worthless, wipe it.  The store
            # notices the resulting empty index and reindexes from disk.
            conn.executescript("DROP TABLE IF EXISTS entries;")
        conn.executescript(_SCHEMA)
        conn.commit()
        self._conn, self._pid = conn, os.getpid()
        return conn

    def close(self) -> None:
        if self._conn is not None and self._pid == os.getpid():
            try:
                self._conn.close()
            except sqlite3.Error:
                pass
        self._conn = None
        self._pid = None

    def delete_file(self) -> None:
        """Discard the cache entirely (corruption recovery)."""
        self.close()
        for suffix in ("", "-wal", "-shm"):
            try:
                os.unlink(f"{self.path}{suffix}")
            except OSError:
                pass

    # ------------------------------------------------------------------ #
    # Writes — each a single implicit transaction, serialized by SQLite.
    # ------------------------------------------------------------------ #
    def upsert(self, row: dict) -> None:
        """Insert or refresh one entry row (keyed by ``hash``)."""
        conn = self.connection()
        conn.execute(
            f"INSERT OR REPLACE INTO entries ({', '.join(COLUMNS)}) "
            f"VALUES ({', '.join('?' for _ in COLUMNS)})",
            tuple(row[column] for column in COLUMNS))
        conn.commit()

    def remove(self, spec_hash: str) -> None:
        conn = self.connection()
        conn.execute("DELETE FROM entries WHERE hash = ?", (spec_hash,))
        conn.commit()

    def replace_all(self, rows: list[dict]) -> None:
        """Atomically swap the whole table for ``rows`` (reindex)."""
        conn = self.connection()
        with conn:  # one transaction: readers see old-or-new, never half
            conn.execute("DELETE FROM entries")
            conn.executemany(
                f"INSERT OR REPLACE INTO entries ({', '.join(COLUMNS)}) "
                f"VALUES ({', '.join('?' for _ in COLUMNS)})",
                [tuple(row[column] for column in COLUMNS) for row in rows])

    # ------------------------------------------------------------------ #
    # Reads.
    # ------------------------------------------------------------------ #
    def has(self, spec_hash: str) -> bool:
        cursor = self.connection().execute(
            "SELECT 1 FROM entries WHERE hash = ?", (spec_hash,))
        return cursor.fetchone() is not None

    def count(self) -> int:
        return self.connection().execute(
            "SELECT COUNT(*) FROM entries").fetchone()[0]

    def hashes(self) -> list[str]:
        cursor = self.connection().execute(
            "SELECT hash FROM entries ORDER BY hash")
        return [row[0] for row in cursor.fetchall()]

    def intersect(self, hashes: list[str]) -> set[str]:
        """A set answering "is this one of ``hashes`` AND indexed?".

        One query, not N stats.  For large batches (a matrix resume) it is
        faster to pull the whole hash column (a covering-index scan) than
        to expand thousands of placeholders — the result is then a
        *superset* of the true intersection, which is equivalent for the
        membership probes callers perform.
        """
        conn = self.connection()
        if len(hashes) > _IN_CHUNK:
            return {row[0] for row in
                    conn.execute("SELECT hash FROM entries")}
        present: set[str] = set()
        for start in range(0, len(hashes), _IN_CHUNK):
            chunk = hashes[start:start + _IN_CHUNK]
            marks = ", ".join("?" for _ in chunk)
            cursor = conn.execute(
                f"SELECT hash FROM entries WHERE hash IN ({marks})", chunk)
            present.update(row[0] for row in cursor.fetchall())
        return present

    def get(self, spec_hash: str) -> dict | None:
        cursor = self.connection().execute(
            f"SELECT {', '.join(COLUMNS)} FROM entries WHERE hash = ?",
            (spec_hash,))
        row = cursor.fetchone()
        return None if row is None else self._to_dict(row)

    def summary(self) -> dict:
        """The aggregate half of ``store.stats()``, computed in SQL."""
        conn = self.connection()
        entries, total_bytes, oldest, newest = conn.execute(
            "SELECT COUNT(*), COALESCE(SUM(bytes), 0), MIN(created_at), "
            "MAX(created_at) FROM entries").fetchone()
        by_scenario = {
            (scenario if scenario else "(none)"): count
            for scenario, count in conn.execute(
                "SELECT scenario, COUNT(*) FROM entries GROUP BY scenario")}
        return {"entries": entries, "total_bytes": total_bytes,
                "oldest": oldest, "newest": newest,
                "by_scenario": dict(sorted(by_scenario.items()))}

    def ranked_by_created(self) -> list[tuple[str, str, int]]:
        """``(created_at, hash, bytes)`` newest-first — gc's ranking, with
        sizes from the index instead of per-entry tree walks."""
        cursor = self.connection().execute(
            "SELECT created_at, hash, bytes FROM entries "
            "ORDER BY created_at DESC, hash DESC")
        return list(cursor.fetchall())

    def select(self, where_sql: str, params: list) -> list[dict]:
        """Filtered rows in a stable (name, hash) order — the query API."""
        sql = f"SELECT {', '.join(COLUMNS)} FROM entries"
        if where_sql:
            sql += f" WHERE {where_sql}"
        sql += " ORDER BY name, hash"
        cursor = self.connection().execute(sql, params)
        return [self._to_dict(row) for row in cursor.fetchall()]

    # ------------------------------------------------------------------ #
    @staticmethod
    def _to_dict(row: tuple) -> dict:
        record = dict(zip(COLUMNS, row))
        record["sigmas"] = json.loads(record["sigmas"])
        return record
