"""Rich queries over the result-store index.

:class:`StoreQuery` turns keyword filters into one SQL ``WHERE`` clause
against ``index.sqlite`` — so ``store.query(model="preact18",
fault="bitflip", worst="<0.5")`` (and ``python -m repro query``) answers
from the index alone, without opening a single ``spec.json`` or
``report.json``.  Score filters (``worst`` / ``best`` / ``clean``) accept
comparison strings like ``"<0.5"`` or ``">=0.9"``; name filters accept
``*`` wildcards.

Because the index is a pure cache of the on-disk entries, query results
are reproducible by construction: delete ``index.sqlite``, reindex, and
the same filters return the same rows (``tests/test_store.py`` asserts
exactly that).
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

__all__ = ["StoreQuery", "parse_bound", "QUERY_FIELDS", "SCORE_FIELDS"]

#: Exact-match filters (index columns).
QUERY_FIELDS = ("model", "dataset", "fault", "scenario", "metric")
#: Comparison filters over the score summaries.
SCORE_FIELDS = ("worst", "best", "clean")

_BOUND = re.compile(r"^\s*(<=|>=|==|!=|<|>|=)\s*([-+0-9.eE]+)\s*$")
_SQL_OPS = {"<": "<", "<=": "<=", ">": ">", ">=": ">=",
            "=": "=", "==": "=", "!=": "!="}


def parse_bound(text: "str | float | int") -> tuple[str, float]:
    """``"<0.5"`` → ``("<", 0.5)``; a bare number means equality."""
    if isinstance(text, (int, float)) and not isinstance(text, bool):
        return "=", float(text)
    match = _BOUND.match(str(text))
    if match is None:
        raise ValueError(
            f"bad score bound {text!r}; expected e.g. '<0.5', '>=0.9' or a "
            "bare number (operators: <, <=, >, >=, =, !=)")
    op, value = match.groups()
    try:
        return _SQL_OPS[op], float(value)
    except ValueError as error:
        raise ValueError(f"bad score bound {text!r}: {error}") from error


@dataclass
class StoreQuery:
    """One declarative filter set, compiled to SQL by :meth:`where`."""

    model: str | None = None
    dataset: str | None = None
    fault: str | None = None
    scenario: str | None = None
    metric: str | None = None
    #: Cell-name filter; ``*`` matches any run of characters.
    name: str | None = None
    #: Score bounds: comparison strings (``"<0.5"``) or bare numbers.
    worst: "str | float | None" = None
    best: "str | float | None" = None
    clean: "str | float | None" = None
    limit: int | None = None
    _described: dict = field(default_factory=dict, repr=False)

    def __post_init__(self):
        if self.limit is not None and self.limit < 1:
            raise ValueError("limit must be at least 1 (or None)")

    def where(self) -> tuple[str, list]:
        """``(where_sql, params)`` — empty SQL when nothing filters."""
        clauses: list[str] = []
        params: list = []
        described: dict = {}
        for column in QUERY_FIELDS:
            value = getattr(self, column)
            if value is None:
                continue
            clauses.append(f"{column} = ?")
            params.append(str(value))
            described[column] = str(value)
        if self.name is not None:
            clauses.append("name LIKE ? ESCAPE '\\'")
            pattern = (str(self.name).replace("\\", "\\\\")
                       .replace("%", "\\%").replace("_", "\\_")
                       .replace("*", "%"))
            params.append(pattern)
            described["name"] = str(self.name)
        for column in SCORE_FIELDS:
            bound = getattr(self, column)
            if bound is None:
                continue
            op, value = parse_bound(bound)
            clauses.append(f"{column} {op} ?")
            params.append(value)
            described[column] = f"{op}{value:g}"
        self._described = described
        return " AND ".join(clauses), params

    def describe(self) -> dict:
        """The filters as plain data (CLI/JSON echo)."""
        self.where()
        return dict(self._described)
