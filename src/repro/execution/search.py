"""Search-trial fan-out: evaluate independent search trials over a pool.

The third fan-out granularity of the execution layer, one level above
:mod:`repro.execution.cells`: *trials within a search*.  A batched
Bayesian-optimisation step proposes ``q`` architectures at once
(:meth:`~repro.bayesopt.optimizer.BayesianOptimizer.suggest_batch`); each is
an independent train-then-evaluate unit of work — a pure function of
``(architecture, base weights, trial seed)`` — so the batch can be shipped
to worker processes wholesale.  The pool is *persistent*: one search keeps
its workers (and their initializer-shipped model/data/objective context)
alive across every batch, paying the fork-and-ship cost once.

Completion order is explicitly untrusted: :meth:`SearchTrialPool.run_batch`
drains workers as they finish but files every result under its payload
index, so the caller always receives results in submission order no matter
which worker finished first.  The ordered-observation-replay determinism
contract of :class:`~repro.core.scheduler.AsyncTrialScheduler` is built on
that guarantee.
"""

from __future__ import annotations

import pickle
import warnings
from concurrent.futures import BrokenExecutor, ProcessPoolExecutor, as_completed
from typing import Callable

from ..telemetry import MetricsRegistry, current
from .process import _pool_context
from .runtime import get_runtime, read_payload

__all__ = ["SearchTrialPool", "SEARCH_BACKENDS"]

#: Search fan-out ships one pickled base state per trial plus a tiny payload;
#: like cell fan-out only the generic pool applies (``shared_memory`` is a
#: trial-backend concept and still governs each trial's *inner* sweep).
SEARCH_BACKENDS = ("serial", "process")

#: Per-worker state installed by the pool initializer: the task function and
#: the search context (model, datasets, objective, training config) shipped
#: once per worker instead of once per task.
_SEARCH_WORKER_STATE: dict = {}

#: Result-slot sentinel distinguishing "not run yet" from a task that
#: legitimately returned ``None``.
_UNFINISHED = object()


class _PoolBroke(Exception):
    """Internal marker: the *pool* failed, not a trial.

    Same classification rule as :class:`repro.execution.cells._PoolBroke`:
    only failures of submission/fork/worker transport degrade to in-process
    execution; a deterministic error raised by a trial's own training or
    evaluation propagates unchanged (retrying it serially would fail again,
    after wasted work).
    """

    def __init__(self, error: BaseException):
        super().__init__(f"{type(error).__name__}: {error}")
        self.error = error


def _init_search_worker(task_fn: Callable, context: dict) -> None:
    _SEARCH_WORKER_STATE["task_fn"] = task_fn
    _SEARCH_WORKER_STATE["context"] = context


def _run_search_task(payload: dict):
    return _SEARCH_WORKER_STATE["task_fn"](_SEARCH_WORKER_STATE["context"], payload)


def _warm_run_search_task(handle: tuple, payload: dict):
    """Warm-pool task: install the search context once per digest, then run.

    Same digest protocol as the trial backends' warm tasks: a worker that
    already holds this exact ``(task_fn, context)`` pickle skips the
    unpickle; every task re-derives its own per-trial state from the
    context and payload regardless, so a reused context cannot leak one
    trial's state into the next.
    """
    state = _SEARCH_WORKER_STATE
    if state.get("digest") != handle[0]:
        state.pop("digest", None)
        task_fn, context = read_payload(handle)
        state["task_fn"] = task_fn
        state["context"] = context
        state["digest"] = handle[0]
    return state["task_fn"](state["context"], payload)


class SearchTrialPool:
    """Persistent worker pool executing ``task_fn(context, payload)`` tasks.

    Parameters
    ----------
    task_fn:
        Module-level function (it crosses to workers by reference) run once
        per payload.  Must be self-contained: every task re-derives all of
        its state from ``context`` and its own payload, never from what a
        previous task left behind in the worker.
    context:
        Shipped to each worker once at pool creation via the initializer.
    workers:
        ``0``/``1`` executes in-process; ``n >= 2`` forks ``n`` workers.
    backend:
        ``None`` derives ``"process"``/``"serial"`` from ``workers``;
        otherwise a name from :data:`SEARCH_BACKENDS`.

    Attributes
    ----------
    used_backend / tasks_shipped / fell_back / fallback_reason:
        Volatile scheduling accounting (never part of canonical results).
        ``tasks_shipped`` and ``fell_back`` are views over the pool's
        :class:`~repro.telemetry.MetricsRegistry` (``fell_back`` is
        "``pool_fallbacks`` > 0"), so a degraded search is visible both on
        the pool and — when a session is active — in the run's telemetry.
    """

    def __init__(self, task_fn: Callable, context: dict, workers: int = 0,
                 backend: str | None = None):
        if workers < 0:
            raise ValueError("workers must be non-negative")
        if backend is None:
            backend = "process" if workers >= 2 else "serial"
        if backend not in SEARCH_BACKENDS:
            raise ValueError(f"unknown search backend {backend!r}; "
                             f"expected one of {SEARCH_BACKENDS}")
        if backend == "process" and workers < 2:
            backend = "serial"
        self._task_fn = task_fn
        self._context = context
        self.workers = int(workers)
        self.used_backend = backend
        self.metrics = MetricsRegistry()
        self.fallback_reason: str | None = None
        self._pool: ProcessPoolExecutor | None = None
        self._pool_lease = None
        self._context_lease = None
        self._context_handle: tuple | None = None

    @property
    def tasks_shipped(self) -> int:
        return self.metrics.value("tasks_shipped")

    @property
    def fell_back(self) -> bool:
        return self.metrics.value("pool_fallbacks") > 0

    # ------------------------------------------------------------------ #
    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            runtime = get_runtime()
            lease = runtime.lease_pool(self.workers)
            if lease is not None:
                # Warm pool from the runtime: the (task_fn, context) pair
                # ships as a digest-keyed payload installed on first use —
                # a second search over the same model/data re-leases both
                # the pool and the published context.
                self._pool_lease = lease
                self._pool = lease.pool
                self._context_lease = runtime.lease_payload(
                    pickle.dumps((self._task_fn, self._context)))
                self._context_handle = self._context_lease.handle
            else:
                self._pool = ProcessPoolExecutor(
                    max_workers=self.workers, mp_context=_pool_context(),
                    initializer=_init_search_worker,
                    initargs=(self._task_fn, self._context))
        return self._pool

    def _submit(self, pool: ProcessPoolExecutor, payload):
        if self._context_handle is not None:
            return pool.submit(_warm_run_search_task, self._context_handle,
                               payload)
        return pool.submit(_run_search_task, payload)

    def _run_serial(self, payloads: list, results: list) -> list:
        for index, payload in enumerate(payloads):
            if results[index] is _UNFINISHED:
                results[index] = self._task_fn(self._context, payload)
        return results

    def run_batch(self, payloads: list) -> list:
        """Execute one batch; results returned in ``payloads`` order.

        Workers are drained as they complete (any order), but each result is
        filed under its submission index — completion order can never leak
        into what the caller sees.  Pool breakage degrades the unfinished
        remainder to in-process execution with a warning, exactly like the
        trial and cell backends; the pool is not retried afterwards.
        """
        results: list = [_UNFINISHED] * len(payloads)
        if not payloads:
            return results
        if self.used_backend == "serial" or self.fell_back or len(payloads) == 1:
            return self._run_serial(payloads, results)
        try:
            try:
                pool = self._ensure_pool()
                futures = {self._submit(pool, payload): index
                           for index, payload in enumerate(payloads)}
            except Exception as error:  # submission/fork-time failure
                raise _PoolBroke(error) from error
            self.metrics.counter("tasks_shipped").add(len(futures))
            current().add("tasks_shipped", len(futures))
            for future in as_completed(futures):
                try:
                    results[futures[future]] = future.result()
                except BrokenExecutor as error:
                    raise _PoolBroke(error) from error
        except _PoolBroke as broke:
            warnings.warn(f"search-trial fan-out fell back to serial "
                          f"execution ({broke})", RuntimeWarning, stacklevel=2)
            self.metrics.counter("pool_fallbacks").add()
            self.fallback_reason = str(broke)
            # Surface the degradation in the ambient session too, so run
            # summaries can report it after the warning has scrolled away.
            current().add("search_pool_fallbacks")
            self.close()
            self._run_serial(payloads, results)
        return results

    def close(self) -> None:
        """Release the lease or shut the cold pool down (idempotent)."""
        if self._pool_lease is not None:
            self._pool_lease.release()
            self._pool_lease = None
            self._pool = None
        elif self._pool is not None:
            self._pool.shutdown(wait=True, cancel_futures=True)
            self._pool = None
        if self._context_lease is not None:
            self._context_lease.release()
            self._context_lease = None
            self._context_handle = None
