"""In-process execution: the measurement loop's historical behaviour."""

from __future__ import annotations

from typing import Callable

from .base import ExecutionBackend, TrialResult, register_backend

__all__ = ["SerialBackend"]


@register_backend("serial")
class SerialBackend(ExecutionBackend):
    """Evaluate every trial on the live model in the calling process.

    Nothing is shipped anywhere, so ``bytes_shipped`` stays zero and
    evaluation errors propagate to the caller unchanged.  This is both the
    default backend for ``workers <= 1`` and the engine's fallback when an
    out-of-process backend breaks mid-sweep.
    """

    name = "serial"
    out_of_process = False

    def run_trials(self, pending: dict[str, dict],
                   apply_trial: Callable[[dict], None]) -> list[TrialResult]:
        return self._run_in_process(pending, apply_trial)
