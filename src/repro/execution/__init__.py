"""Pluggable execution layer: where fault-trial evaluations actually run.

The measurement layer (:class:`~repro.evaluation.sweep.DriftSweepEngine`)
decides *what* to evaluate — pre-drawn, deduplicated, content-addressed
fault trials — and this package decides *where*:

* :class:`SerialBackend` — in the calling process (the default, and the
  universal fallback);
* :class:`ProcessPoolBackend` — a fork/spawn worker pool with one pickled
  trial per task (model/data shipped once per worker);
* :class:`SharedMemoryBackend` — the same pool, but each chunk's weight
  arrays are published once via ``multiprocessing.shared_memory`` and tasks
  carry only ``(digest, segment, offset-table)`` messages, cutting per-task
  shipping from megabytes to kilobytes on deep models.

Because backends receive fully-materialised weights and consume no
randomness, seeded results are bit-identical across every backend and
worker count.  :func:`resolve_backend` maps configuration (``None``, a
registry name, or an instance) to a backend, and two sibling modules apply
the same idea at coarser granularities: :mod:`repro.execution.cells` fans
independent scenario cells over a worker pool, and
:mod:`repro.execution.search` fans concurrent search trials (train +
evaluate units from batched Bayesian optimisation) over a persistent one.

All of them draw their pools from the process-wide warm
:class:`~repro.execution.runtime.ExecutionRuntime`: pools are leased and
returned still running, and worker context travels as digest-keyed
shared-memory payloads, so back-to-back sweeps (the BO inner loop) stop
paying fork + context shipping per sweep.  ``configure_runtime``,
``REPRO_WARM_RUNTIME=0`` or a backend's ``warm=False`` restore the
historical pool-per-sweep behaviour; results are byte-identical either
way.
"""

from .base import (
    EvalContext, ExecutionBackend, TrialResult,
    available_backends, register_backend, resolve_backend, validate_backend,
)
from .runtime import (
    ExecutionRuntime, configure_runtime, get_runtime, shutdown_runtime,
    using_runtime,
)
from .serial import SerialBackend
from .process import ProcessPoolBackend
from .shared import SharedMemoryBackend
from .cells import run_cells
from .search import SearchTrialPool, SEARCH_BACKENDS

__all__ = [
    "EvalContext", "ExecutionBackend", "TrialResult",
    "available_backends", "register_backend", "resolve_backend",
    "validate_backend",
    "ExecutionRuntime", "configure_runtime", "get_runtime",
    "shutdown_runtime", "using_runtime",
    "SerialBackend", "ProcessPoolBackend", "SharedMemoryBackend",
    "run_cells", "SearchTrialPool", "SEARCH_BACKENDS",
]
