"""The execution-backend contract and registry.

An :class:`ExecutionBackend` answers one question for the measurement
layer: *given a batch of pre-drawn fault trials, evaluate each one and
return its metrics* — nothing more.  Everything that determines the
numbers (drift sampling, chunking, caching, aggregation) stays in
:class:`~repro.evaluation.sweep.DriftSweepEngine`; the backend only decides
*where* the evaluations run (in-process, in a pickled-task worker pool, or
in a worker pool fed through shared memory).  That split is what keeps the
determinism contract — seeded sweeps are bit-identical for any backend and
any worker count — trivially true: backends receive fully-materialised
weight arrays and consume no randomness.

Backends are registered by name (``serial``, ``process``,
``shared_memory``) so scheduling can be chosen from configuration (the
``python -m repro run --backend`` flag, the engine's ``backend=``
parameter) without importing concrete classes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from ..telemetry import MetricsRegistry

__all__ = [
    "EvalContext", "TrialResult", "ExecutionBackend",
    "register_backend", "available_backends", "resolve_backend",
    "validate_backend", "split_metrics",
]


def split_metrics(value) -> tuple[float, float | None]:
    """Normalise an ``evaluate_fn`` result to ``(score, loss-or-None)``.

    An evaluation function may return a bare float (score only, the classic
    accuracy path) or a ``(score, loss)`` pair (the objective path, which
    needs both Eq.-3 losses and figure-ready accuracies from one forward
    pass).
    """
    if isinstance(value, (tuple, list)):
        if len(value) != 2:
            raise TypeError(
                "evaluate_fn must return a float score or a (score, loss) "
                f"pair; got a sequence of length {len(value)}")
        return float(value[0]), float(value[1])
    return float(value), None


@dataclass
class EvalContext:
    """Everything a backend needs to score one trial.

    Trial application is *not* part of the context: in-process execution
    receives an ``apply_trial`` callable with each :meth:`run_trials` batch
    (the engine's already-snapshotted injector), and worker processes build
    their own injector from the clean model they receive at pool start.

    ``evaluator`` is the :class:`~repro.inference.InferenceEvaluator`
    driving the model calls (``None`` means per-trial).  Backends read its
    ``trial_batch`` to group trials into worker tasks and ship the
    evaluator itself to workers, so batching happens worker-side.

    ``trace`` is the one bit of telemetry state that crosses the process
    boundary: the engine sets it from ``telemetry.current().enabled`` so
    workers know whether to capture local spans and ship a snapshot back
    with their results.  It is a plain flag — the parent's tracer object
    never travels — and it carries no entropy, so it cannot perturb the
    determinism contract.
    """

    model: object
    data: object
    evaluate_fn: Callable
    evaluator: object | None = None
    trace: bool = False


@dataclass
class TrialResult:
    """One evaluated trial: content digest plus its metrics and cost.

    ``batched`` records whether the trial was scored inside a stacked
    multi-trial forward pass — bookkeeping for the report's volatile
    ``batched_evaluations`` counter, never part of canonical results.
    """

    digest: str
    score: float
    loss: float | None
    seconds: float
    batched: bool = False


class ExecutionBackend:
    """Base class: evaluate batches of pre-drawn trials.

    Lifecycle: the engine calls :meth:`open` once per sweep (before any
    trials are shipped), :meth:`run_trials` once per deduplicated chunk,
    and :meth:`close` in a ``finally`` block.  A backend instance is
    single-sweep: ``open`` resets the shipping counters.

    Subclasses set :attr:`name` (the registry key) and
    :attr:`out_of_process`.  The engine catches ``run_trials`` failures
    only for out-of-process backends (a broken pool degrades to serial
    evaluation with a warning); in-process evaluation errors propagate,
    exactly like the historical serial path.

    Accounting attributes, all reset by ``open`` and surfaced on
    :class:`~repro.evaluation.sweep.SweepReport` as volatile fields:

    ``used_backend`` / ``workers_used``
        What actually happened — a process backend that never saw a chunk
        with two or more unique trials reports ``("serial", 1)`` because no
        pool was ever engaged.
    ``tasks_shipped`` / ``bytes_shipped``
        Tasks sent to worker processes and the payload bytes they carried
        (array bytes for pickled tasks, the pickled offset-table message
        for shared-memory tasks).  In-process evaluation ships nothing.
        Both are read-only views over the backend's
        :class:`~repro.telemetry.MetricsRegistry` — increment sites go
        through ``self.metrics`` so the shipping stats share the one
        counter implementation with every other layer.
    """

    name = "abstract"
    out_of_process = False

    def __init__(self) -> None:
        self.context: EvalContext | None = None
        self.used_backend = "serial"
        self.workers_used = 1
        self.metrics = MetricsRegistry()

    @property
    def tasks_shipped(self) -> int:
        return self.metrics.value("tasks_shipped")

    @property
    def bytes_shipped(self) -> int:
        return self.metrics.value("bytes_shipped")

    # ------------------------------------------------------------------ #
    def open(self, context: EvalContext) -> None:
        """Bind the sweep's model/data/evaluate_fn and reset the counters."""
        self.context = context
        self.used_backend = "serial"
        self.workers_used = 1
        self.metrics.reset()

    def run_trials(self, pending: dict[str, dict],
                   apply_trial: Callable[[dict], None]) -> list[TrialResult]:
        """Evaluate every ``digest -> {parameter: array}`` trial in ``pending``.

        ``apply_trial`` installs one trial's arrays on the in-process model
        (and resets parameters absent from the trial to the clean
        snapshot); backends that evaluate in the main process must use it,
        worker pools reproduce it remotely.
        """
        raise NotImplementedError

    def close(self) -> None:
        """Release pools, shared-memory segments, any other resources."""

    # ------------------------------------------------------------------ #
    def _evaluator(self):
        """The context's inference evaluator, defaulting to per-trial."""
        if self.context is not None and self.context.evaluator is not None:
            return self.context.evaluator
        from ..inference import PerTrialEvaluator  # leaf-ward; avoids a cycle
        return PerTrialEvaluator()

    def _run_in_process(self, pending: dict[str, dict],
                        apply_trial: Callable[[dict], None]) -> list[TrialResult]:
        """Shared serial path: evaluate each trial on the live model."""
        if self.context is None:
            raise RuntimeError("backend.open() must run before run_trials()")
        return self._evaluator().run(self.context.model, self.context.data,
                                     self.context.evaluate_fn, pending,
                                     apply_trial)


# --------------------------------------------------------------------------- #
# Registry.
# --------------------------------------------------------------------------- #
_BACKEND_REGISTRY: dict[str, Callable[..., ExecutionBackend]] = {}


def register_backend(name: str):
    """Decorator registering a backend class under ``name``."""

    def _register(cls):
        key = name.lower()
        if key in _BACKEND_REGISTRY:
            raise ValueError(f"execution backend {name!r} is already registered")
        _BACKEND_REGISTRY[key] = cls
        return cls

    return _register


def available_backends() -> list[str]:
    """Registered backend names, for CLIs and error messages."""
    return sorted(_BACKEND_REGISTRY)


def validate_backend(backend) -> None:
    """Fail fast on an unknown backend selector without building one.

    The construction-time twin of :func:`resolve_backend`: a pure registry
    lookup, so callers that resolve afresh on every run (the engine) can
    reject a typo'd name at ``__init__`` without paying for — or leaking —
    a throwaway backend instance.
    """
    if backend is None or isinstance(backend, ExecutionBackend):
        return
    key = str(backend).lower()
    if key not in _BACKEND_REGISTRY:
        raise ValueError(f"unknown execution backend {backend!r}; "
                         f"available: {available_backends()}")


def resolve_backend(backend, workers: int = 0) -> ExecutionBackend:
    """Turn a backend selector into a fresh backend instance.

    ``backend`` may be ``None`` (choose from ``workers`` exactly like the
    historical engine: ``workers >= 2`` means the pickled process pool,
    anything less is serial), a registry name, or an already-constructed
    :class:`ExecutionBackend` (returned as-is; its own worker count wins).
    Named pool backends default to two workers when ``workers`` does not ask
    for more — naming a pool backend *is* asking for a pool.
    """
    if isinstance(backend, ExecutionBackend):
        return backend
    if backend is None:
        backend = "process" if workers >= 2 else "serial"
    key = str(backend).lower()
    if key not in _BACKEND_REGISTRY:
        raise ValueError(f"unknown execution backend {backend!r}; "
                         f"available: {available_backends()}")
    cls = _BACKEND_REGISTRY[key]
    if getattr(cls, "out_of_process", False):
        return cls(workers=max(2, int(workers)))
    return cls()
