"""Shared-memory weight shipping: publish trials once, ship offset tables.

The pickled :class:`~repro.execution.process.ProcessPoolBackend` serializes
every trial's full drifted parameter arrays into its task message — for a
PreAct-ResNet that is megabytes per task, and the pickling alone can cost
more than the evaluation.  :class:`SharedMemoryBackend` instead publishes
each chunk's flattened parameter block exactly once via
``multiprocessing.shared_memory`` and ships only ``(digest, segment name,
{parameter: (offset, shape)})`` per task; workers map the segment, copy
their trial's arrays out of it, and evaluate as usual.  The arrays are
bit-identical either way (float64 bytes are copied, never re-encoded), so
the engine's determinism contract holds unchanged.

Segment lifecycle: the main process creates one segment per
``run_trials`` chunk and unlinks it as soon as the chunk's results are in;
workers cache their attachment per segment name (closing the previous one
when a new chunk arrives) and always copy out of the mapping, so no live
array ever aliases an unlinked segment.  Workers also unregister attached
segments from ``multiprocessing.resource_tracker`` — on CPython < 3.13 the
tracker registers mere attachments and would try to double-unlink them at
worker shutdown.
"""

from __future__ import annotations

import pickle
import time
from multiprocessing import shared_memory
from typing import Callable

import numpy as np

from .base import TrialResult, register_backend, split_metrics
from .process import _WORKER_STATE, ProcessPoolBackend

__all__ = ["SharedMemoryBackend"]

#: ``{parameter name: (byte offset into the segment, array shape)}``
OffsetTable = dict


# --------------------------------------------------------------------------- #
# Worker-side plumbing.
# --------------------------------------------------------------------------- #
_ATTACHED: dict[str, shared_memory.SharedMemory] = {}


def _attach(segment_name: str) -> shared_memory.SharedMemory:
    """Attach to (and cache) one published segment, dropping stale ones."""
    segment = _ATTACHED.get(segment_name)
    if segment is None:
        for stale in _ATTACHED.values():
            stale.close()
        _ATTACHED.clear()
        segment = shared_memory.SharedMemory(name=segment_name)
        import multiprocessing
        if "fork" not in multiprocessing.get_all_start_methods():
            # Spawned workers run their own resource tracker, which (on
            # CPython < 3.13) registers mere attachments and would try to
            # unlink the parent's segment again at worker shutdown.  Forked
            # workers share the parent's tracker, where the duplicate
            # registration is a set no-op and unregistering here would make
            # the parent's own unlink fail instead.
            try:
                from multiprocessing import resource_tracker
                resource_tracker.unregister(segment._name, "shared_memory")
            except Exception:
                pass  # tracking semantics differ across versions; never fatal
        _ATTACHED[segment_name] = segment
    return segment


def _run_shared_trial(digest: str, segment_name: str,
                      table: OffsetTable) -> tuple[str, float, float | None, float]:
    segment = _attach(segment_name)
    params = {}
    for name, (offset, shape) in table.items():
        view = np.ndarray(shape, dtype=np.float64, buffer=segment.buf,
                          offset=offset)
        # Copy out of the mapping: apply_trial must never install an array
        # aliasing a segment the main process is about to unlink.
        params[name] = np.array(view)
    _WORKER_STATE["injector"].apply_trial(params)
    start = time.perf_counter()
    value = _WORKER_STATE["evaluate_fn"](_WORKER_STATE["model"],
                                         _WORKER_STATE["data"])
    score, loss = split_metrics(value)
    return digest, score, loss, time.perf_counter() - start


@register_backend("shared_memory")
class SharedMemoryBackend(ProcessPoolBackend):
    """Worker-pool execution that ships offset tables instead of weights.

    Inherits the pool lifecycle (lazy creation, single-trial chunks stay
    in-process, failures degrade the sweep to serial) from
    :class:`ProcessPoolBackend` and replaces only the task payload: per
    chunk, all unique trials' arrays are packed into one shared-memory
    segment, and each task carries a pickled ``(digest, segment name,
    offset table)`` message of a few kilobytes regardless of model depth.
    ``bytes_shipped`` counts those messages, which is exactly what the
    ``BENCH_execution`` benchmark compares against the pickled pool.
    """

    name = "shared_memory"
    out_of_process = True

    def __init__(self, workers: int = 2):
        super().__init__(workers=workers)
        self._segments: list[shared_memory.SharedMemory] = []

    # ------------------------------------------------------------------ #
    def _publish(self, pending: dict[str, dict]
                 ) -> tuple[shared_memory.SharedMemory, dict[str, OffsetTable]]:
        """Pack every pending trial into one segment; return offset tables."""
        total = sum(int(arrays.nbytes) for params in pending.values()
                    for arrays in params.values())
        segment = shared_memory.SharedMemory(create=True, size=max(total, 1))
        self._segments.append(segment)
        tables: dict[str, OffsetTable] = {}
        offset = 0
        for digest, params in pending.items():
            table: OffsetTable = {}
            for name, arrays in params.items():
                block = np.ascontiguousarray(arrays, dtype=np.float64)
                flat = np.ndarray(block.shape, dtype=np.float64,
                                  buffer=segment.buf, offset=offset)
                flat[...] = block
                table[name] = (offset, block.shape)
                offset += block.nbytes
            tables[digest] = table
        return segment, tables

    def _release(self, segment: shared_memory.SharedMemory) -> None:
        segment.close()
        segment.unlink()
        self._segments.remove(segment)

    def run_trials(self, pending: dict[str, dict],
                   apply_trial: Callable[[dict], None]) -> list[TrialResult]:
        if len(pending) < 2:
            return self._run_in_process(pending, apply_trial)
        pool = self._ensure_pool(len(pending))
        segment, tables = self._publish(pending)
        try:
            futures = []
            for digest in pending:
                message = (digest, segment.name, tables[digest])
                self.bytes_shipped += len(pickle.dumps(message))
                futures.append(pool.submit(_run_shared_trial, *message))
            self.tasks_shipped += len(futures)
            results = []
            for future in futures:
                digest, score, loss, seconds = future.result()
                results.append(TrialResult(digest, score, loss, seconds))
        finally:
            self._release(segment)
        self.used_backend = self.name
        self.workers_used = self._pool._max_workers
        return results

    def close(self) -> None:
        super().close()
        # A chunk that died mid-flight can leave its segment behind;
        # closing the backend must never leak shared memory.
        for segment in list(self._segments):
            self._release(segment)
