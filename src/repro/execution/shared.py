"""Shared-memory weight shipping: publish trials once, ship offset tables.

The pickled :class:`~repro.execution.process.ProcessPoolBackend` serializes
every trial's full drifted parameter arrays into its task message — for a
PreAct-ResNet that is megabytes per task, and the pickling alone can cost
more than the evaluation.  :class:`SharedMemoryBackend` instead publishes
each chunk's flattened parameter block exactly once via
``multiprocessing.shared_memory`` and ships only ``(digest, segment name,
{parameter: (offset, shape)})`` per task; workers map the segment, copy
their trial's arrays out of it, and evaluate as usual.  The arrays are
bit-identical either way (float64 bytes are copied, never re-encoded), so
the engine's determinism contract holds unchanged.

Segment lifecycle: the main process creates one segment per
``run_trials`` chunk and unlinks it as soon as the chunk's results are in;
workers cache their attachment per segment name (closing the previous one
when a new chunk arrives) and always copy out of the mapping, so no live
array ever aliases an unlinked segment.  The evaluation dataset rides in a
second, *pinned* segment created with the pool and unlinked only when the
backend closes — its zero-copy worker views outlive every trial chunk.  Workers also unregister attached
segments from ``multiprocessing.resource_tracker`` — on CPython < 3.13 the
tracker registers mere attachments and would try to double-unlink them at
worker shutdown.
"""

from __future__ import annotations

import hashlib
import pickle
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import Callable

import numpy as np

from ..data.loader import Dataset
from ..telemetry import Telemetry, current, using
from .base import TrialResult, register_backend
from .process import (_init_worker, _pool_context, _WORKER_STATE,
                      ProcessPoolBackend)
from .runtime import get_runtime, read_payload

__all__ = ["SharedMemoryBackend"]

#: ``{parameter name: (byte offset into the segment, array shape)}``
OffsetTable = dict


# --------------------------------------------------------------------------- #
# Worker-side plumbing.
# --------------------------------------------------------------------------- #
_ATTACHED: dict[str, shared_memory.SharedMemory] = {}
_PINNED: set[str] = set()


def _attach(segment_name: str, pin: bool = False) -> shared_memory.SharedMemory:
    """Attach to (and cache) one published segment, dropping stale ones.

    Trial segments rotate per chunk, so a new attachment evicts the cached
    previous one.  Pinned segments (the published evaluation dataset, whose
    zero-copy views must stay valid for the pool's lifetime) survive the
    rotation.
    """
    segment = _ATTACHED.get(segment_name)
    if segment is None:
        for stale in [name for name in _ATTACHED if name not in _PINNED]:
            _ATTACHED.pop(stale).close()
        segment = shared_memory.SharedMemory(name=segment_name)
        import multiprocessing
        if "fork" not in multiprocessing.get_all_start_methods():
            # Spawned workers run their own resource tracker, which (on
            # CPython < 3.13) registers mere attachments and would try to
            # unlink the parent's segment again at worker shutdown.  Forked
            # workers share the parent's tracker, where the duplicate
            # registration is a set no-op and unregistering here would make
            # the parent's own unlink fail instead.
            try:
                from multiprocessing import resource_tracker
                resource_tracker.unregister(segment._name, "shared_memory")
            except Exception:
                pass  # tracking semantics differ across versions; never fatal
        _ATTACHED[segment_name] = segment
        if pin:
            _PINNED.add(segment_name)
    return segment


def _run_shared_group(segment_name: str, entries: list) -> dict:
    segment = _attach(segment_name)
    pending = {}
    for digest, table in entries:
        params = {}
        for name, (offset, shape) in table.items():
            view = np.ndarray(shape, dtype=np.float64, buffer=segment.buf,
                              offset=offset)
            # Copy out of the mapping: apply_trial must never install an
            # array aliasing a segment the main process is about to unlink.
            params[name] = np.array(view)
        pending[digest] = params
    state = _WORKER_STATE

    def evaluate() -> list[TrialResult]:
        return state["evaluator"].run(state["model"], state["data"],
                                      state["evaluate_fn"], pending,
                                      state["injector"].apply_trial)

    # Same result/telemetry envelope as the pickled pool's task function:
    # capture local spans only when the parent session asked for them.
    if not state.get("trace"):
        return {"results": evaluate(), "telemetry": None}
    telemetry = Telemetry()
    with using(telemetry):
        with telemetry.span("task", trials=len(entries)):
            results = evaluate()
    return {"results": results, "telemetry": telemetry.snapshot()}


# --------------------------------------------------------------------------- #
# Shared-memory dataset publication.
# --------------------------------------------------------------------------- #
@dataclass
class _DatasetHandle:
    """Pool-initializer stand-in for a published evaluation dataset."""

    segment: str
    inputs_shape: tuple
    labels_shape: tuple
    labels_dtype: str
    labels_offset: int
    num_classes: int


def _attach_dataset(handle: _DatasetHandle) -> Dataset:
    """Rebuild the evaluation dataset over zero-copy views of its segment.

    The views are read-only in practice (evaluation never writes inputs or
    labels) and stay valid because the segment is pinned for the worker's
    lifetime; ``Dataset`` keeps float64 arrays as-is, so no copy is made.
    """
    segment = _attach(handle.segment, pin=True)
    inputs = np.ndarray(handle.inputs_shape, dtype=np.float64,
                        buffer=segment.buf)
    labels = np.ndarray(handle.labels_shape,
                        dtype=np.dtype(handle.labels_dtype),
                        buffer=segment.buf, offset=handle.labels_offset)
    dataset = Dataset(inputs, labels)
    dataset.num_classes = handle.num_classes
    return dataset


def _init_shared_worker(model, data, evaluate_fn, evaluator=None,
                        trace: bool = False) -> None:
    if isinstance(data, _DatasetHandle):
        data = _attach_dataset(data)
    _init_worker(model, data, evaluate_fn, evaluator, trace)


def _release_stale_pins(keep: set) -> None:
    """Close pinned dataset attachments not referenced by the new context.

    With warm pools a worker outlives many contexts; only the dataset
    views of the *currently installed* context are live, so older pinned
    segments can be detached when a new context arrives — bounding the
    worker's mapped memory by one dataset, not one per context ever seen.
    """
    for name in [name for name in _PINNED if name not in keep]:
        _PINNED.discard(name)
        segment = _ATTACHED.pop(name, None)
        if segment is not None:
            segment.close()


def _install_shared_context(handle: tuple, trace: bool) -> None:
    """Shared-memory twin of ``process._install_context``.

    The payload's ``data`` slot may be a :class:`_DatasetHandle` pointing
    at a runtime-owned pinned segment; the worker rebuilds the zero-copy
    dataset over it exactly as the cold initializer does.
    """
    if _WORKER_STATE.get("context_digest") != handle[0]:
        _WORKER_STATE.pop("context_digest", None)
        model, data, evaluate_fn, evaluator = read_payload(handle)
        if isinstance(data, _DatasetHandle):
            _release_stale_pins(keep={data.segment})
            data = _attach_dataset(data)
        _init_worker(model, data, evaluate_fn, evaluator, trace)
        _WORKER_STATE["context_digest"] = handle[0]
    else:
        _WORKER_STATE["trace"] = bool(trace)


def _warm_run_shared_group(handle: tuple, trace: bool,
                           segment_name: str, entries: list) -> dict:
    _install_shared_context(handle, trace)
    return _run_shared_group(segment_name, entries)


def _dataset_digest(data: Dataset) -> str:
    """Content key for a published dataset: shapes, dtypes and raw bytes."""
    inputs = np.ascontiguousarray(data.inputs, dtype=np.float64)
    labels = np.ascontiguousarray(data.labels)
    h = hashlib.blake2b(digest_size=16)
    h.update(repr((inputs.shape, labels.shape, str(labels.dtype),
                   data.num_classes)).encode())
    h.update(inputs.data)
    h.update(labels.data)
    return "dataset:" + h.hexdigest()


@register_backend("shared_memory")
class SharedMemoryBackend(ProcessPoolBackend):
    """Worker-pool execution that ships offset tables instead of weights.

    Inherits the pool lifecycle (lazy creation, single-task chunks stay
    in-process, failures degrade the sweep to serial) and the
    ``trial_batch`` task grouping from :class:`ProcessPoolBackend` and
    replaces only the payloads: per chunk, all unique trials' arrays are
    packed into one shared-memory segment, and each task carries a pickled
    ``(segment name, [(digest, offset table), ...])`` message of a few
    kilobytes regardless of model depth.  The evaluation dataset itself is
    published the same way, once, at pool creation — workers rebuild it
    over zero-copy views of a pinned segment instead of unpickling a full
    copy each.  ``bytes_shipped`` counts the task messages plus the pickled
    dataset handle, which is exactly what the ``BENCH_execution`` benchmark
    compares against the pickled pool.
    """

    name = "shared_memory"
    out_of_process = True

    def __init__(self, workers: int = 2, warm: bool | None = None):
        super().__init__(workers=workers, warm=warm)
        self._segments: list[shared_memory.SharedMemory] = []
        self._data_segment: shared_memory.SharedMemory | None = None
        self._data_lease = None

    # ------------------------------------------------------------------ #
    def _initializer(self):
        return _init_shared_worker

    def _cold_initargs(self) -> tuple:
        context = self.context
        data = context.data
        if isinstance(data, Dataset):
            # Publish the evaluation data once instead of pickling a
            # full copy into every worker's initializer; workers
            # rebuild the dataset over zero-copy views.  Non-Dataset
            # evaluation data (e.g. detection sample lists) still
            # travels pickled.
            segment, handle = self._publish_dataset(data)
            self._data_segment = segment
            self.metrics.counter("bytes_shipped").add(
                len(pickle.dumps(handle)))
            data = handle
        return (context.model, data, context.evaluate_fn,
                context.evaluator, context.trace)

    def _context_payload(self) -> bytes:
        """Warm-path context: the dataset leaves the payload for its own
        digest-keyed pinned segment, so a BO run whose weights change
        every trial re-ships only the model pickle — the dataset segment
        is re-leased by content."""
        context = self.context
        data = context.data
        if isinstance(data, Dataset):
            self._data_lease = get_runtime().lease_segment(
                _dataset_digest(data),
                lambda: self._publish_dataset(data))
            data = self._data_lease.handle
            self.metrics.counter("bytes_shipped").add(
                len(pickle.dumps(data)))
        return pickle.dumps((context.model, data, context.evaluate_fn,
                             context.evaluator))

    def _submit_message(self, pool: ProcessPoolExecutor, message: tuple):
        if self._context_handle is not None:
            return pool.submit(_warm_run_shared_group, self._context_handle,
                               self.context.trace, *message)
        return pool.submit(_run_shared_group, *message)

    def _publish_dataset(self, data: Dataset
                         ) -> tuple[shared_memory.SharedMemory, _DatasetHandle]:
        """Copy the dataset's arrays into one long-lived pinned segment."""
        inputs = np.ascontiguousarray(data.inputs, dtype=np.float64)
        labels = np.ascontiguousarray(data.labels)
        segment = shared_memory.SharedMemory(
            create=True, size=max(inputs.nbytes + labels.nbytes, 1))
        np.ndarray(inputs.shape, dtype=np.float64,
                   buffer=segment.buf)[...] = inputs
        np.ndarray(labels.shape, dtype=labels.dtype, buffer=segment.buf,
                   offset=inputs.nbytes)[...] = labels
        handle = _DatasetHandle(segment.name, inputs.shape, labels.shape,
                                str(labels.dtype), inputs.nbytes,
                                data.num_classes)
        return segment, handle

    def _publish(self, pending: dict[str, dict]
                 ) -> tuple[shared_memory.SharedMemory, dict[str, OffsetTable]]:
        """Pack every pending trial into one segment; return offset tables."""
        total = sum(int(arrays.nbytes) for params in pending.values()
                    for arrays in params.values())
        segment = shared_memory.SharedMemory(create=True, size=max(total, 1))
        self._segments.append(segment)
        tables: dict[str, OffsetTable] = {}
        offset = 0
        for digest, params in pending.items():
            table: OffsetTable = {}
            for name, arrays in params.items():
                block = np.ascontiguousarray(arrays, dtype=np.float64)
                flat = np.ndarray(block.shape, dtype=np.float64,
                                  buffer=segment.buf, offset=offset)
                flat[...] = block
                table[name] = (offset, block.shape)
                offset += block.nbytes
            tables[digest] = table
        return segment, tables

    def _release(self, segment: shared_memory.SharedMemory) -> None:
        segment.close()
        segment.unlink()
        self._segments.remove(segment)

    def run_trials(self, pending: dict[str, dict],
                   apply_trial: Callable[[dict], None]) -> list[TrialResult]:
        groups = self._group_pending(pending)
        if len(groups) < 2:
            return self._run_in_process(pending, apply_trial)
        telemetry = current()
        with telemetry.span("backend", backend=self.name,
                            tasks=len(groups)) as span:
            pool = self._ensure_pool(len(groups))
            segment, tables = self._publish(pending)
            bytes_counter = self.metrics.counter("bytes_shipped")
            try:
                futures = []
                for group in groups:
                    message = (segment.name,
                               [(digest, tables[digest])
                                for digest, _ in group])
                    bytes_counter.add(len(pickle.dumps(message)))
                    futures.append(self._submit_message(pool, message))
                self.metrics.counter("tasks_shipped").add(len(futures))
                results = []
                for future in futures:
                    payload = future.result()
                    results.extend(payload["results"])
                    telemetry.absorb(payload["telemetry"], under=span)
            finally:
                self._release(segment)
            self.used_backend = self.name
            self.workers_used = self._pool_width
        return results

    def close(self) -> None:
        super().close()
        # A chunk that died mid-flight can leave its segment behind;
        # closing the backend must never leak shared memory.
        for segment in list(self._segments):
            self._release(segment)
        if self._data_lease is not None:
            # Runtime-owned dataset segment: hand the lease back (the
            # segment stays published for the next sweep's digest hit).
            self._data_lease.release()
            self._data_lease = None
        if self._data_segment is not None:
            self._data_segment.close()
            self._data_segment.unlink()
            self._data_segment = None
