"""Worker-pool execution with pickled trial payloads.

This is the fork/spawn pool that used to live inside
``DriftSweepEngine._make_pool``, extracted behind the
:class:`~repro.execution.base.ExecutionBackend` interface.  The model and
dataset are shipped once per worker via the pool initializer; each task
then pickles one trial's full drifted parameter arrays — simple and
dependency-free, but for deep models the per-task pickling dominates
(see :class:`~repro.execution.shared.SharedMemoryBackend` for the
shared-memory alternative that ships only an offset table).
"""

from __future__ import annotations

import multiprocessing
import pickle
from concurrent.futures import ProcessPoolExecutor
from typing import Callable

from ..telemetry import Telemetry, current, using
from .base import ExecutionBackend, TrialResult, register_backend
from .runtime import get_runtime, read_payload

__all__ = ["ProcessPoolBackend"]


# --------------------------------------------------------------------------- #
# Worker-process plumbing, module-level so the pool can pickle it.
# --------------------------------------------------------------------------- #
_WORKER_STATE: dict = {}


def _init_worker(model, data, evaluate_fn, evaluator=None,
                 trace: bool = False) -> None:
    # The model arrives clean (the pool is created before any trial is
    # applied), so the worker-local injector snapshots the same clean state
    # as the main process and apply_trial enforces the identical restore
    # invariant: parameters absent from a trial reset to the snapshot, so a
    # worker that just ran a trial drifting a different parameter subset
    # (per-σ policies) cannot leak stale weights into the next one.
    from ..fault.drift import LogNormalDrift
    from ..fault.injector import FaultInjector
    from ..inference import PerTrialEvaluator

    injector = FaultInjector(model, LogNormalDrift(0.0))
    injector.snapshot()
    _WORKER_STATE["model"] = model
    _WORKER_STATE["injector"] = injector
    _WORKER_STATE["data"] = data
    _WORKER_STATE["evaluate_fn"] = evaluate_fn
    _WORKER_STATE["evaluator"] = evaluator or PerTrialEvaluator()
    _WORKER_STATE["trace"] = bool(trace)


def _run_trial_group(group: list) -> dict:
    # The worker runs the same evaluator instance the main process would
    # use in-process — batching logic has exactly one code path — so the
    # per-trial scores a pool returns are the serial path's, bit for bit.
    # When the parent session is tracing, the worker captures its own local
    # spans under a throwaway Telemetry and ships the snapshot back in the
    # same payload as the results; the parent grafts it under the span that
    # submitted the task.
    state = _WORKER_STATE

    def evaluate() -> list[TrialResult]:
        return state["evaluator"].run(state["model"], state["data"],
                                      state["evaluate_fn"], dict(group),
                                      state["injector"].apply_trial)

    if not state.get("trace"):
        return {"results": evaluate(), "telemetry": None}
    telemetry = Telemetry()
    with using(telemetry):
        with telemetry.span("task", trials=len(group)):
            results = evaluate()
    return {"results": results, "telemetry": telemetry.snapshot()}


def _install_context(handle: tuple, trace: bool) -> None:
    """Install a runtime-published context in this worker, once per digest.

    Warm pools carry no initializer, so every task leads with the
    ``(digest, segment, nbytes)`` handle of the context it needs.  A
    digest match skips the unpickle entirely (the worker already holds
    the identical model/data/evaluate_fn — same bytes, same installed
    state, so the restore invariant carries over unchanged); a miss
    attaches the segment, unpickles, and re-runs the same
    :func:`_init_worker` the cold initializer path uses.  ``trace`` is
    deliberately outside the digest: it is per-task telemetry state, not
    evaluation content.
    """
    if _WORKER_STATE.get("context_digest") != handle[0]:
        # Cleared first so a failed install can never leave a stale digest
        # claiming the previous context is still current.
        _WORKER_STATE.pop("context_digest", None)
        model, data, evaluate_fn, evaluator = read_payload(handle)
        _init_worker(model, data, evaluate_fn, evaluator, trace)
        _WORKER_STATE["context_digest"] = handle[0]
    else:
        _WORKER_STATE["trace"] = bool(trace)


def _warm_run_trial_group(handle: tuple, trace: bool, group: list) -> dict:
    _install_context(handle, trace)
    return _run_trial_group(group)


def _pool_context():
    return multiprocessing.get_context(
        "fork" if "fork" in multiprocessing.get_all_start_methods() else None)


@register_backend("process")
class ProcessPoolBackend(ExecutionBackend):
    """Fan trials out over ``workers`` processes, pickled trial groups as tasks.

    The pool is engaged lazily on the first chunk with two or more tasks,
    so no process is forked (and pays the model/data shipping cost)
    without work to do; chunks that fit a single task always evaluate
    in-process.  With the default per-trial evaluator a task is exactly
    one trial — the historical behaviour; a batched evaluator packs
    ``trial_batch`` trials per task.  Any pool failure propagates to the
    engine, which degrades the rest of the sweep to serial evaluation.

    When the warm :class:`~repro.execution.runtime.ExecutionRuntime` is
    enabled (the default), the pool is *leased* rather than built: the
    runtime hands back a persistent bare pool and the context travels as
    a digest-keyed shared-memory payload attached to each task, so
    ``close()`` releases the lease and the workers stay warm for the
    next sweep.  ``warm=False`` (or a disabled runtime) restores the
    historical cold pool with an initializer, torn down at ``close()``.
    Either way the evaluation path in the worker is the same
    ``_run_trial_group``, which is what keeps warm and cold results
    byte-identical.
    """

    name = "process"
    out_of_process = True

    def __init__(self, workers: int = 2, warm: bool | None = None):
        super().__init__()
        if workers < 2:
            raise ValueError("a pool backend needs at least 2 workers; "
                             "use SerialBackend for in-process evaluation")
        self.workers = int(workers)
        self.warm = warm
        self._pool: ProcessPoolExecutor | None = None
        # The configured cap actually applied to the live pool — the
        # ``workers_used`` source of truth (never the executor's privates).
        self._pool_width = 0
        self._pool_lease = None
        self._context_lease = None
        self._context_handle: tuple | None = None

    # ------------------------------------------------------------------ #
    def _context_payload(self) -> bytes:
        """Pickle the full worker context once; its bytes key the segment."""
        context = self.context
        return pickle.dumps((context.model, context.data,
                             context.evaluate_fn, context.evaluator))

    def _lease_context(self, runtime) -> None:
        self._context_lease = runtime.lease_payload(self._context_payload())
        self._context_handle = self._context_lease.handle

    def _submit_group(self, pool: ProcessPoolExecutor, group: list):
        if self._context_handle is not None:
            return pool.submit(_warm_run_trial_group, self._context_handle,
                               self.context.trace, group)
        return pool.submit(_run_trial_group, group)

    def _ensure_pool(self, task_count: int) -> ProcessPoolExecutor:
        if self._pool is None:
            runtime = get_runtime() if self.warm is not False else None
            lease = (runtime.lease_pool(self.workers)
                     if runtime is not None else None)
            if lease is not None:
                self._pool_lease = lease
                self._pool = lease.pool
                self._pool_width = lease.workers
                self._lease_context(runtime)
            else:
                width = min(self.workers, task_count)
                self._pool = ProcessPoolExecutor(
                    max_workers=width,
                    mp_context=_pool_context(),
                    initializer=self._initializer(),
                    initargs=self._cold_initargs())
                self._pool_width = width
        return self._pool

    def _initializer(self):
        return _init_worker

    def _cold_initargs(self) -> tuple:
        context = self.context
        return (context.model, context.data, context.evaluate_fn,
                context.evaluator, context.trace)

    def _group_pending(self, pending: dict[str, dict]) -> list[list]:
        """Group pending trials into worker tasks of ``trial_batch`` trials.

        One trial per task is the historical shipping pattern; a batched
        evaluator widens tasks so workers amortise per-task overhead over
        a whole stacked forward pass.
        """
        size = 1
        if self.context is not None and self.context.evaluator is not None:
            size = max(1, int(getattr(self.context.evaluator,
                                      "trial_batch", 1)))
        items = list(pending.items())
        return [items[start:start + size]
                for start in range(0, len(items), size)]

    @staticmethod
    def _task_bytes(digest: str, params: dict) -> int:
        """Payload size of one pickled task: digest + names + array bytes."""
        return (len(digest)
                + sum(len(name) + arrays.nbytes
                      for name, arrays in params.items()))

    def run_trials(self, pending: dict[str, dict],
                   apply_trial: Callable[[dict], None]) -> list[TrialResult]:
        groups = self._group_pending(pending)
        if len(groups) < 2:
            return self._run_in_process(pending, apply_trial)
        telemetry = current()
        with telemetry.span("backend", backend=self.name,
                            tasks=len(groups)) as span:
            pool = self._ensure_pool(len(groups))
            futures = [self._submit_group(pool, group) for group in groups]
            self.metrics.counter("tasks_shipped").add(len(futures))
            self.metrics.counter("bytes_shipped").add(
                sum(self._task_bytes(digest, params)
                    for digest, params in pending.items()))
            results = []
            for future in futures:
                payload = future.result()
                results.extend(payload["results"])
                telemetry.absorb(payload["telemetry"], under=span)
            self.used_backend = self.name
            self.workers_used = self._pool_width
        return results

    def close(self) -> None:
        if self._pool_lease is not None:
            # Leased warm pool: give it back, leave the workers running.
            # A broken pool is evicted by the runtime on release, so the
            # next sweep forks fresh instead of failing again.
            self._pool_lease.release()
            self._pool_lease = None
            self._pool = None
        elif self._pool is not None:
            self._pool.shutdown()
            self._pool = None
        if self._context_lease is not None:
            self._context_lease.release()
            self._context_lease = None
            self._context_handle = None
        self._pool_width = 0
