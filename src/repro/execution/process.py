"""Worker-pool execution with pickled trial payloads.

This is the fork/spawn pool that used to live inside
``DriftSweepEngine._make_pool``, extracted behind the
:class:`~repro.execution.base.ExecutionBackend` interface.  The model and
dataset are shipped once per worker via the pool initializer; each task
then pickles one trial's full drifted parameter arrays — simple and
dependency-free, but for deep models the per-task pickling dominates
(see :class:`~repro.execution.shared.SharedMemoryBackend` for the
shared-memory alternative that ships only an offset table).
"""

from __future__ import annotations

import multiprocessing
from concurrent.futures import ProcessPoolExecutor
from typing import Callable

from ..telemetry import Telemetry, current, using
from .base import ExecutionBackend, TrialResult, register_backend

__all__ = ["ProcessPoolBackend"]


# --------------------------------------------------------------------------- #
# Worker-process plumbing, module-level so the pool can pickle it.
# --------------------------------------------------------------------------- #
_WORKER_STATE: dict = {}


def _init_worker(model, data, evaluate_fn, evaluator=None,
                 trace: bool = False) -> None:
    # The model arrives clean (the pool is created before any trial is
    # applied), so the worker-local injector snapshots the same clean state
    # as the main process and apply_trial enforces the identical restore
    # invariant: parameters absent from a trial reset to the snapshot, so a
    # worker that just ran a trial drifting a different parameter subset
    # (per-σ policies) cannot leak stale weights into the next one.
    from ..fault.drift import LogNormalDrift
    from ..fault.injector import FaultInjector
    from ..inference import PerTrialEvaluator

    injector = FaultInjector(model, LogNormalDrift(0.0))
    injector.snapshot()
    _WORKER_STATE["model"] = model
    _WORKER_STATE["injector"] = injector
    _WORKER_STATE["data"] = data
    _WORKER_STATE["evaluate_fn"] = evaluate_fn
    _WORKER_STATE["evaluator"] = evaluator or PerTrialEvaluator()
    _WORKER_STATE["trace"] = bool(trace)


def _run_trial_group(group: list) -> dict:
    # The worker runs the same evaluator instance the main process would
    # use in-process — batching logic has exactly one code path — so the
    # per-trial scores a pool returns are the serial path's, bit for bit.
    # When the parent session is tracing, the worker captures its own local
    # spans under a throwaway Telemetry and ships the snapshot back in the
    # same payload as the results; the parent grafts it under the span that
    # submitted the task.
    state = _WORKER_STATE

    def evaluate() -> list[TrialResult]:
        return state["evaluator"].run(state["model"], state["data"],
                                      state["evaluate_fn"], dict(group),
                                      state["injector"].apply_trial)

    if not state.get("trace"):
        return {"results": evaluate(), "telemetry": None}
    telemetry = Telemetry()
    with using(telemetry):
        with telemetry.span("task", trials=len(group)):
            results = evaluate()
    return {"results": results, "telemetry": telemetry.snapshot()}


def _pool_context():
    return multiprocessing.get_context(
        "fork" if "fork" in multiprocessing.get_all_start_methods() else None)


@register_backend("process")
class ProcessPoolBackend(ExecutionBackend):
    """Fan trials out over ``workers`` processes, pickled trial groups as tasks.

    The pool is created lazily on the first chunk with two or more tasks
    and capped by that chunk's task count, so no process is forked (and
    pays the model/data initializer cost) without work to do; chunks that
    fit a single task always evaluate in-process.  With the default
    per-trial evaluator a task is exactly one trial — the historical
    behaviour; a batched evaluator packs ``trial_batch`` trials per task.
    Any pool failure propagates to the engine, which degrades the rest of
    the sweep to serial evaluation.
    """

    name = "process"
    out_of_process = True

    def __init__(self, workers: int = 2):
        super().__init__()
        if workers < 2:
            raise ValueError("a pool backend needs at least 2 workers; "
                             "use SerialBackend for in-process evaluation")
        self.workers = int(workers)
        self._pool: ProcessPoolExecutor | None = None

    # ------------------------------------------------------------------ #
    def _ensure_pool(self, task_count: int) -> ProcessPoolExecutor:
        if self._pool is None:
            context = self.context
            self._pool = ProcessPoolExecutor(
                max_workers=min(self.workers, task_count),
                mp_context=_pool_context(),
                initializer=_init_worker,
                initargs=(context.model, context.data, context.evaluate_fn,
                          context.evaluator, context.trace))
        return self._pool

    def _group_pending(self, pending: dict[str, dict]) -> list[list]:
        """Group pending trials into worker tasks of ``trial_batch`` trials.

        One trial per task is the historical shipping pattern; a batched
        evaluator widens tasks so workers amortise per-task overhead over
        a whole stacked forward pass.
        """
        size = 1
        if self.context is not None and self.context.evaluator is not None:
            size = max(1, int(getattr(self.context.evaluator,
                                      "trial_batch", 1)))
        items = list(pending.items())
        return [items[start:start + size]
                for start in range(0, len(items), size)]

    @staticmethod
    def _task_bytes(digest: str, params: dict) -> int:
        """Payload size of one pickled task: digest + names + array bytes."""
        return (len(digest)
                + sum(len(name) + arrays.nbytes
                      for name, arrays in params.items()))

    def run_trials(self, pending: dict[str, dict],
                   apply_trial: Callable[[dict], None]) -> list[TrialResult]:
        groups = self._group_pending(pending)
        if len(groups) < 2:
            return self._run_in_process(pending, apply_trial)
        telemetry = current()
        with telemetry.span("backend", backend=self.name,
                            tasks=len(groups)) as span:
            pool = self._ensure_pool(len(groups))
            futures = [pool.submit(_run_trial_group, group)
                       for group in groups]
            self.metrics.counter("tasks_shipped").add(len(futures))
            self.metrics.counter("bytes_shipped").add(
                sum(self._task_bytes(digest, params)
                    for digest, params in pending.items()))
            results = []
            for future in futures:
                payload = future.result()
                results.extend(payload["results"])
                telemetry.absorb(payload["telemetry"], under=span)
            self.used_backend = self.name
            self.workers_used = self._pool._max_workers
        return results

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None
