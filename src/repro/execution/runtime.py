"""Warm execution runtime: persistent worker pools + digest-keyed segments.

Every sweep used to build its own worker pool and tear it down at
``backend.close()`` — a BayesFT search (one full sweep per BO trial) paid
fork, initializer shipping and dataset publication dozens of times per
run, which is exactly the overhead-dominated regime where the async BO
fan-out measured *slower* than serial.  :class:`ExecutionRuntime` fixes
that by making the expensive resources process-wide and leased:

* **Warm pools.**  Pools are *bare* ``ProcessPoolExecutor``s (no
  initializer), keyed by ``(workers, multiprocessing start method)``, so
  the same pool serves trial backends, search-trial fan-out and cell
  fan-out alike.  ``lease_pool()`` hands out the cached pool (or forks a
  new one on a cold start); releasing a lease leaves the pool warm for
  the next sweep.
* **Digest-keyed segments.**  Worker context (model weights, evaluation
  data, evaluate_fn, evaluator) no longer rides in a pool initializer —
  it is pickled once, content-hashed, published into a
  ``multiprocessing.shared_memory`` segment and *leased by digest*:
  identical content (the same trained weights across a σ grid, the same
  dataset across every BO trial) is published once and re-leased, and
  only changed payloads are re-shipped.  Workers install a context on
  first use and skip the unpickle entirely when a task arrives with the
  digest they already hold.

Lifecycle rules, all load-bearing:

* **Fork safety.**  A lease never crosses ``fork``: the runtime stamps
  its owning PID and resets itself (dropping — *not* closing — the
  parent's pools and segments) the first time it is touched from a new
  process.  Leases are also only handed out in the main process — worker
  processes exit via ``os._exit`` without running ``atexit`` hooks, so a
  warm pool created inside a worker would leak its grandchildren.
* **Idle TTL.**  Unleased pools and segments older than ``idle_ttl``
  seconds are reaped on the next runtime touch (and idle segments beyond
  ``max_idle_segments`` are evicted oldest-first, bounding ``/dev/shm``
  growth during long BO runs whose weights change every trial).
* **Shutdown.**  ``runtime.shutdown()`` joins every pool and unlinks
  every segment; an ``atexit`` hook (registered when the global runtime
  is first built, PID-guarded) guarantees the same at interpreter exit,
  so no orphan processes or segments survive the owning process.

Counters — ``pool_reuses`` / ``segment_reuses`` / ``cold_starts`` /
``segments_published`` — are kept on the runtime's own
:class:`~repro.telemetry.MetricsRegistry` and mirrored into the ambient
telemetry session, so ``trace summarize`` shows how warm a run actually
ran.  The determinism contract is untouched: the runtime moves *where*
pools and bytes live, never what is evaluated — canonical reports and
golden BO traces are byte-identical with reuse on or off.

Opting out: ``configure_runtime(enabled=False)``, the
``REPRO_WARM_RUNTIME=0`` environment variable, a backend's
``warm=False``, or ``python -m repro run --cold-runtime`` all restore
the historical pool-per-sweep behaviour.
"""

from __future__ import annotations

import atexit
import hashlib
import multiprocessing
import os
import pickle
import time
from concurrent.futures import ProcessPoolExecutor
from contextlib import contextmanager
from dataclasses import dataclass, field
from multiprocessing import shared_memory

from ..telemetry import MetricsRegistry, current

__all__ = [
    "ExecutionRuntime", "PoolLease", "SegmentLease",
    "get_runtime", "configure_runtime", "shutdown_runtime", "using_runtime",
    "read_payload",
]

#: Idle seconds after which an unleased pool or segment is reaped.
DEFAULT_IDLE_TTL = 300.0

#: Idle (unleased) segments kept beyond the newest N are evicted eagerly,
#: TTL notwithstanding — long BO runs publish a new weight payload per
#: trial and must not grow ``/dev/shm`` without bound.
DEFAULT_MAX_IDLE_SEGMENTS = 8

_ENV_KNOB = "REPRO_WARM_RUNTIME"


def _env_enabled() -> bool:
    value = os.environ.get(_ENV_KNOB, "1").strip().lower()
    return value not in ("0", "false", "off", "no")


def _in_main_process() -> bool:
    return multiprocessing.parent_process() is None


def _pool_method() -> str:
    """The start method warm pools use — mirrors ``process._pool_context``."""
    if "fork" in multiprocessing.get_all_start_methods():
        return "fork"
    return multiprocessing.get_start_method(allow_none=False)


def _untrack_attachment(segment: shared_memory.SharedMemory) -> None:
    """Keep a mere attachment out of a spawned process's resource tracker.

    Same rule as ``shared._attach``: on CPython < 3.13 spawned processes
    register attachments with their own tracker and would double-unlink
    the owner's segment at exit; forked processes share the owner's
    tracker, where the duplicate registration is a set no-op.
    """
    if "fork" not in multiprocessing.get_all_start_methods():
        try:
            from multiprocessing import resource_tracker
            resource_tracker.unregister(segment._name, "shared_memory")
        except Exception:
            pass  # tracking semantics differ across versions; never fatal


def read_payload(handle: tuple) -> object:
    """Worker-side: unpickle a published ``(digest, name, nbytes)`` payload.

    Attaches, copies the bytes out and detaches immediately — the caller
    keeps the unpickled objects, never a view into the segment, so a
    later reap/unlink in the owning process cannot invalidate anything.
    """
    digest, name, nbytes = handle
    segment = shared_memory.SharedMemory(name=name)
    try:
        _untrack_attachment(segment)
        return pickle.loads(bytes(segment.buf[:nbytes]))
    finally:
        segment.close()


# --------------------------------------------------------------------------- #
# Cache entries and leases.
# --------------------------------------------------------------------------- #
@dataclass
class _PoolEntry:
    pool: ProcessPoolExecutor
    workers: int
    leases: int = 0
    last_used: float = field(default_factory=time.monotonic)


@dataclass
class _SegmentEntry:
    segment: shared_memory.SharedMemory
    meta: object
    leases: int = 0
    last_used: float = field(default_factory=time.monotonic)


class PoolLease:
    """A borrowed warm pool.  ``release()`` returns it, still running."""

    def __init__(self, runtime: "ExecutionRuntime", key: tuple,
                 entry: _PoolEntry):
        self._runtime = runtime
        self._key = key
        self._entry = entry
        self._released = False

    @property
    def pool(self) -> ProcessPoolExecutor:
        return self._entry.pool

    @property
    def workers(self) -> int:
        return self._entry.workers

    def release(self) -> None:
        if not self._released:
            self._released = True
            self._runtime._release_pool(self._key, self._entry)


class SegmentLease:
    """A borrowed published segment; ``handle`` is its caller-defined meta."""

    def __init__(self, runtime: "ExecutionRuntime", key: str,
                 entry: _SegmentEntry):
        self._runtime = runtime
        self._key = key
        self._entry = entry
        self._released = False

    @property
    def handle(self):
        return self._entry.meta

    def release(self) -> None:
        if not self._released:
            self._released = True
            self._runtime._release_segment(self._key, self._entry)


# --------------------------------------------------------------------------- #
# The runtime.
# --------------------------------------------------------------------------- #
class ExecutionRuntime:
    """Process-wide cache of warm worker pools and published segments.

    Single-threaded by design (like every fan-out entry point in this
    codebase): leases are taken and released from the orchestrating
    process's main thread.  All public methods are fork-guarded — the
    first touch from a forked child resets the child's view instead of
    closing resources the parent still owns.
    """

    def __init__(self, enabled: bool | None = None,
                 idle_ttl: float = DEFAULT_IDLE_TTL,
                 max_idle_segments: int = DEFAULT_MAX_IDLE_SEGMENTS):
        self._enabled = _env_enabled() if enabled is None else bool(enabled)
        self.idle_ttl = float(idle_ttl)
        self.max_idle_segments = int(max_idle_segments)
        self._pid = os.getpid()
        self._pools: dict[tuple, _PoolEntry] = {}
        self._segments: dict[str, _SegmentEntry] = {}
        self.metrics = MetricsRegistry()

    # -- knobs ---------------------------------------------------------- #
    @property
    def enabled(self) -> bool:
        """Warm leasing is on, and this is the process that may own pools."""
        return self._enabled and _in_main_process()

    def configure(self, enabled: bool | None = None,
                  idle_ttl: float | None = None,
                  max_idle_segments: int | None = None) -> "ExecutionRuntime":
        if enabled is not None:
            self._enabled = bool(enabled)
            if not self._enabled:
                self.shutdown()
        if idle_ttl is not None:
            self.idle_ttl = float(idle_ttl)
        if max_idle_segments is not None:
            self.max_idle_segments = int(max_idle_segments)
        return self

    # -- fork / bookkeeping --------------------------------------------- #
    def _fork_check(self) -> None:
        if os.getpid() != self._pid:
            # Forked child: the pools and segments belong to the parent.
            # Drop the references without closing anything.
            self._pools = {}
            self._segments = {}
            self._pid = os.getpid()

    def _count(self, name: str, value: int = 1) -> None:
        self.metrics.counter(name).add(value)
        current().add(name, value)

    def stats(self) -> dict:
        """Introspection for tests and ``trace summarize`` narratives."""
        self._fork_check()
        return {
            "enabled": self.enabled,
            "pools": len(self._pools),
            "segments": len(self._segments),
            "counters": self.metrics.as_dict(),
        }

    # -- pools ---------------------------------------------------------- #
    def lease_pool(self, workers: int) -> PoolLease | None:
        """Lease a warm bare pool of ``workers`` processes, or ``None``.

        ``None`` means the runtime is opted out (or this is a worker
        process) and the caller should build its own cold pool exactly as
        before the runtime existed.
        """
        if workers < 2 or not self.enabled:
            return None
        self._fork_check()
        self._reap_idle()
        key = (int(workers), _pool_method())
        entry = self._pools.get(key)
        if entry is not None and getattr(entry.pool, "_broken", False):
            self._drop_pool(key, entry, wait=False)
            entry = None
        if entry is None:
            pool = ProcessPoolExecutor(
                max_workers=int(workers),
                mp_context=multiprocessing.get_context(_pool_method()))
            entry = _PoolEntry(pool=pool, workers=int(workers))
            self._pools[key] = entry
            self._count("cold_starts")
        else:
            self._count("pool_reuses")
        entry.leases += 1
        entry.last_used = time.monotonic()
        return PoolLease(self, key, entry)

    def _drop_pool(self, key: tuple, entry: _PoolEntry, wait: bool) -> None:
        if self._pools.get(key) is entry:
            del self._pools[key]
        entry.pool.shutdown(wait=wait, cancel_futures=True)

    def _release_pool(self, key: tuple, entry: _PoolEntry) -> None:
        self._fork_check()
        if self._pools.get(key) is not entry:
            return  # reaped, shut down, or a fork artefact — nothing to do
        entry.leases = max(0, entry.leases - 1)
        entry.last_used = time.monotonic()
        if getattr(entry.pool, "_broken", False):
            # A broken pool's workers are already gone; evict so the next
            # lease forks a fresh one instead of failing again.
            self._drop_pool(key, entry, wait=False)
        self._reap_idle()

    # -- segments ------------------------------------------------------- #
    def lease_segment(self, key: str, publish) -> SegmentLease | None:
        """Lease the segment cached under ``key``, publishing on a miss.

        ``publish()`` must return ``(shared_memory.SharedMemory, meta)``;
        ``meta`` (the caller's handle — an offset table, a dataset handle,
        a ``(digest, name, nbytes)`` tuple) is returned verbatim on every
        subsequent hit, so identical content is shipped exactly once.
        """
        if not self.enabled:
            return None
        self._fork_check()
        self._reap_idle()
        entry = self._segments.get(key)
        if entry is None:
            segment, meta = publish()
            entry = _SegmentEntry(segment=segment, meta=meta)
            self._segments[key] = entry
            self._count("segments_published")
        else:
            self._count("segment_reuses")
        entry.leases += 1
        entry.last_used = time.monotonic()
        return SegmentLease(self, key, entry)

    def lease_payload(self, payload: bytes) -> SegmentLease | None:
        """Publish (or re-lease) a pickled payload, keyed by its content.

        The returned lease's ``handle`` is ``(digest, segment name,
        nbytes)`` — exactly what :func:`read_payload` consumes worker-side.
        """
        digest = hashlib.blake2b(payload, digest_size=16).hexdigest()

        def publish():
            segment = shared_memory.SharedMemory(
                create=True, size=max(len(payload), 1))
            segment.buf[:len(payload)] = payload
            return segment, (digest, segment.name, len(payload))

        return self.lease_segment("payload:" + digest, publish)

    def _drop_segment(self, key: str, entry: _SegmentEntry) -> None:
        if self._segments.get(key) is entry:
            del self._segments[key]
        entry.segment.close()
        try:
            entry.segment.unlink()
        except FileNotFoundError:
            pass

    def _release_segment(self, key: str, entry: _SegmentEntry) -> None:
        self._fork_check()
        if self._segments.get(key) is not entry:
            return
        entry.leases = max(0, entry.leases - 1)
        entry.last_used = time.monotonic()
        self._reap_idle()

    # -- reaping / shutdown --------------------------------------------- #
    def _reap_idle(self) -> None:
        now = time.monotonic()
        for key, entry in list(self._pools.items()):
            if entry.leases == 0 and now - entry.last_used > self.idle_ttl:
                self._drop_pool(key, entry, wait=True)
        idle = [(key, entry) for key, entry in self._segments.items()
                if entry.leases == 0]
        for key, entry in idle:
            if now - entry.last_used > self.idle_ttl:
                self._drop_segment(key, entry)
        # Oldest-first eviction beyond the idle-segment cap.
        idle = sorted(((key, entry) for key, entry in self._segments.items()
                       if entry.leases == 0), key=lambda item: item[1].last_used)
        excess = len(idle) - self.max_idle_segments
        for key, entry in idle[:max(0, excess)]:
            self._drop_segment(key, entry)

    def reap(self) -> None:
        """Reap idle pools/segments now (public for tests and long loops)."""
        self._fork_check()
        self._reap_idle()

    def shutdown(self) -> None:
        """Join every pool and unlink every segment.  Idempotent."""
        self._fork_check()
        for key, entry in list(self._pools.items()):
            self._drop_pool(key, entry, wait=True)
        for key, entry in list(self._segments.items()):
            self._drop_segment(key, entry)


# --------------------------------------------------------------------------- #
# The process-wide runtime.
# --------------------------------------------------------------------------- #
_GLOBAL: ExecutionRuntime | None = None


def _atexit_shutdown() -> None:
    runtime = _GLOBAL
    if runtime is not None and os.getpid() == runtime._pid:
        runtime.shutdown()


def get_runtime() -> ExecutionRuntime:
    """The process-wide runtime (built on first use, reaped at exit)."""
    global _GLOBAL
    if _GLOBAL is None:
        _GLOBAL = ExecutionRuntime()
        atexit.register(_atexit_shutdown)
    return _GLOBAL


def configure_runtime(enabled: bool | None = None,
                      idle_ttl: float | None = None,
                      max_idle_segments: int | None = None) -> ExecutionRuntime:
    """Tune the process-wide runtime (``enabled=False`` also shuts it down)."""
    return get_runtime().configure(enabled=enabled, idle_ttl=idle_ttl,
                                   max_idle_segments=max_idle_segments)


def shutdown_runtime() -> None:
    """Shut the process-wide runtime down now (it rebuilds on next use)."""
    if _GLOBAL is not None:
        _GLOBAL.shutdown()


@contextmanager
def using_runtime(runtime: ExecutionRuntime):
    """Swap the process-wide runtime for ``runtime`` within a block.

    The test/benchmark isolation primitive: warm-vs-cold comparisons run
    each arm under its own private runtime without touching (or being
    polluted by) the global one.  The temporary runtime is *not* shut
    down on exit — callers own its lifecycle.
    """
    global _GLOBAL
    previous = _GLOBAL
    get_runtime()  # ensure the atexit hook exists before we start swapping
    _GLOBAL = runtime
    try:
        yield runtime
    finally:
        _GLOBAL = previous
