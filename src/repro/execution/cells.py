"""Scenario-cell fan-out: run independent declarative cells over a pool.

Scenario matrices (``fault_matrix``, ``dataset_matrix``, …) are embarrassingly
parallel: every declarative :class:`~repro.scenarios.spec.ScenarioSpec` cell
is seeded by its own ``spec.seed`` and touches nothing shared except the
content-addressed result store, which is safe under concurrent writers by
construction: each save publishes its staging directory with one atomic
rename (first writer wins on duplicate hashes), and the SQLite index rows
serialize behind WAL locking with a busy-timeout — each worker process
opens its own connection (never inherited across ``fork``), so N workers
hammering one store lose no entries and leave a consistent index
(``tests/test_store.py`` asserts exactly that).  This module ships whole
*cells* —
a few kilobytes of spec JSON each — to worker processes, in contrast to the
trial backends which ship drifted weights; each worker trains, sweeps and
saves its cell into the store, so a matrix fill-in killed at any point
resumes from whatever cells finished.

Kept inside :mod:`repro.execution` (not :mod:`repro.scenarios`) so the two
fan-out granularities — trials within a sweep, cells within a matrix — live
behind one execution layer.
"""

from __future__ import annotations

import warnings
from concurrent.futures import BrokenExecutor, ProcessPoolExecutor, as_completed

from ..telemetry import Telemetry, current, using
from .process import _pool_context
from .runtime import get_runtime

__all__ = ["run_cells", "CELL_BACKENDS"]

#: Cell fan-out ships declarative specs, not weight arrays, so only the
#: generic pool applies; asking for ``shared_memory`` here is a category
#: error the caller should hear about.
CELL_BACKENDS = ("serial", "process")


class _PoolBroke(Exception):
    """Internal marker: the *pool* failed, not a cell.

    Raised around pool construction/submission (fork limits, pickling) and
    on :class:`BrokenExecutor` from a result — the cases where re-running
    the remaining cells in-process can actually succeed.  A deterministic
    error raised *by a cell's own execution* surfaces from
    ``future.result()`` with its original type and must propagate
    unchanged: retrying it serially would only fail again, after wasted
    training.  Classifying by *where* the exception came from (submission
    vs a completed task) rather than by type is what keeps e.g. a cell's
    ``OSError`` (disk full while saving to the store) from being mistaken
    for pool breakage.
    """

    def __init__(self, error: BaseException):
        super().__init__(f"{type(error).__name__}: {error}")
        self.error = error


def _execute_cell(spec_payload: dict, store_root: str | None,
                  scenario: str | None, runner_kwargs: dict,
                  trace: bool = False) -> dict:
    """Worker task: execute one declarative cell, persist it, return it.

    Runs in a child process, so everything crosses as plain data.  The cell
    executes exactly the code path :meth:`ScenarioRunner.run` uses in the
    parent — same registries, same seeding, same store writes, same
    scheduling overrides (``runner_kwargs`` carries the parent runner's
    ``workers``/``max_chunk_trials``/``backend``) — which is what keeps
    fanned-out matrices bit-identical to serial ones.  When the parent
    session is tracing, the worker captures its own span tree (the same
    protocol as the trial backends) and ships the snapshot back with the
    cell result.
    """
    from ..scenarios.runner import ScenarioRunner
    from ..scenarios.spec import ScenarioSpec
    from ..scenarios.store import ResultStore

    spec = ScenarioSpec.from_dict(spec_payload)
    store = None if store_root is None else ResultStore(store_root)
    runner = ScenarioRunner(store, **runner_kwargs)

    def execute() -> dict:
        run = runner.run(spec, scenario=scenario)
        return {"report": run.report.as_dict(), "cached": run.cached,
                "elapsed_seconds": run.elapsed_seconds, "telemetry": None}

    if not trace:
        return execute()
    telemetry = Telemetry()
    with using(telemetry):
        payload = execute()
    payload["telemetry"] = telemetry.snapshot()
    return payload


def run_cells(specs, store_root: str | None, scenario: str | None,
              workers: int, runner_kwargs: dict | None = None,
              progress=None) -> tuple[list[dict], str | None]:
    """Execute cells over ``workers`` processes; results in ``specs`` order.

    A *pool* failure (fork limits, pickling, a dead worker) degrades the
    remaining cells to in-process execution with a warning — the same
    contract as the trial backends — so a matrix run always completes.  An
    error raised by a cell itself is deterministic and propagates unchanged
    (re-running it serially would only fail again, after wasted work).

    Returns ``(results, fallback_reason)``: the second element is ``None``
    for a healthy run and the breakage description when the pool degraded —
    callers surface it in run summaries so degraded matrices are detectable
    after the warning has scrolled away.  ``progress``, when given, is
    called once per finished cell (in completion order) with its result
    dict — the hook behind ``--progress`` ETA lines.
    """
    payloads = [spec.to_dict() for spec in specs]
    runner_kwargs = dict(runner_kwargs or {})
    telemetry = current()
    trace = telemetry.enabled
    results: list[dict | None] = [None] * len(specs)
    fallback_reason: str | None = None
    with telemetry.span("cell_fanout", cells=len(specs),
                        workers=workers) as span:
        # Worker-side sweeps report their own (serial) worker counts; the
        # fan-out's pool width is the figure that makes utilisation honest.
        telemetry.gauge("workers", min(workers, len(specs)))
        def drain(pool) -> None:
            try:
                futures = {pool.submit(_execute_cell, payload,
                                       store_root, scenario,
                                       runner_kwargs, trace):
                           index
                           for index, payload in enumerate(payloads)}
            except Exception as error:  # submission/fork-time failure
                raise _PoolBroke(error) from error
            for future in as_completed(futures):
                try:
                    result = future.result()
                except BrokenExecutor as error:
                    raise _PoolBroke(error) from error
                results[futures[future]] = result
                telemetry.absorb(result.pop("telemetry", None),
                                 under=span)
                if progress is not None:
                    progress(result)

        # Cell tasks are self-contained (spec JSON + plain kwargs), so a
        # warm bare pool from the runtime serves them directly — no
        # context publication needed, and the workers stay up for the
        # next matrix.  With the runtime opted out, the historical
        # pool-per-call behaviour is unchanged.
        lease = get_runtime().lease_pool(min(workers, len(specs)))
        try:
            try:
                if lease is not None:
                    drain(lease.pool)
                else:
                    with ProcessPoolExecutor(
                            max_workers=min(workers, len(specs)),
                            mp_context=_pool_context()) as pool:
                        drain(pool)
            except _PoolBroke:
                raise
            except BrokenExecutor as error:
                # The pool can also break while its context manager shuts
                # down.
                raise _PoolBroke(error) from error
        except _PoolBroke as broke:
            warnings.warn(f"cell fan-out fell back to serial execution "
                          f"({broke})", RuntimeWarning, stacklevel=2)
            fallback_reason = str(broke)
            telemetry.add("cell_pool_fallbacks")
            for index, payload in enumerate(payloads):
                if results[index] is None:
                    # In-process retry: the ambient session is this one, so
                    # the cell's spans land directly without the worker
                    # snapshot protocol.
                    result = _execute_cell(payload, store_root, scenario,
                                           runner_kwargs)
                    result.pop("telemetry", None)
                    results[index] = result
                    if progress is not None:
                        progress(result)
        finally:
            if lease is not None:
                # A broken leased pool is evicted by the runtime here, so
                # the next matrix leases a fresh one.
                lease.release()
    return results, fallback_reason
