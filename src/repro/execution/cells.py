"""Scenario-cell fan-out: run independent declarative cells over a pool.

Scenario matrices (``fault_matrix``, ``dataset_matrix``, …) are embarrassingly
parallel: every declarative :class:`~repro.scenarios.spec.ScenarioSpec` cell
is seeded by its own ``spec.seed`` and touches nothing shared except the
content-addressed result store, whose atomic staging-directory writes are
already safe under concurrent writers.  This module ships whole *cells* —
a few kilobytes of spec JSON each — to worker processes, in contrast to the
trial backends which ship drifted weights; each worker trains, sweeps and
saves its cell into the store, so a matrix fill-in killed at any point
resumes from whatever cells finished.

Kept inside :mod:`repro.execution` (not :mod:`repro.scenarios`) so the two
fan-out granularities — trials within a sweep, cells within a matrix — live
behind one execution layer.
"""

from __future__ import annotations

import warnings
from concurrent.futures import BrokenExecutor, ProcessPoolExecutor

from .process import _pool_context

__all__ = ["run_cells", "CELL_BACKENDS"]

#: Cell fan-out ships declarative specs, not weight arrays, so only the
#: generic pool applies; asking for ``shared_memory`` here is a category
#: error the caller should hear about.
CELL_BACKENDS = ("serial", "process")


class _PoolBroke(Exception):
    """Internal marker: the *pool* failed, not a cell.

    Raised around pool construction/submission (fork limits, pickling) and
    on :class:`BrokenExecutor` from a result — the cases where re-running
    the remaining cells in-process can actually succeed.  A deterministic
    error raised *by a cell's own execution* surfaces from
    ``future.result()`` with its original type and must propagate
    unchanged: retrying it serially would only fail again, after wasted
    training.  Classifying by *where* the exception came from (submission
    vs a completed task) rather than by type is what keeps e.g. a cell's
    ``OSError`` (disk full while saving to the store) from being mistaken
    for pool breakage.
    """

    def __init__(self, error: BaseException):
        super().__init__(f"{type(error).__name__}: {error}")
        self.error = error


def _execute_cell(spec_payload: dict, store_root: str | None,
                  scenario: str | None, runner_kwargs: dict) -> dict:
    """Worker task: execute one declarative cell, persist it, return it.

    Runs in a child process, so everything crosses as plain data.  The cell
    executes exactly the code path :meth:`ScenarioRunner.run` uses in the
    parent — same registries, same seeding, same store writes, same
    scheduling overrides (``runner_kwargs`` carries the parent runner's
    ``workers``/``max_chunk_trials``/``backend``) — which is what keeps
    fanned-out matrices bit-identical to serial ones.
    """
    from ..scenarios.runner import ScenarioRunner
    from ..scenarios.spec import ScenarioSpec
    from ..scenarios.store import ResultStore

    spec = ScenarioSpec.from_dict(spec_payload)
    store = None if store_root is None else ResultStore(store_root)
    runner = ScenarioRunner(store, **runner_kwargs)
    run = runner.run(spec, scenario=scenario)
    return {"report": run.report.as_dict(), "cached": run.cached,
            "elapsed_seconds": run.elapsed_seconds}


def run_cells(specs, store_root: str | None, scenario: str | None,
              workers: int, runner_kwargs: dict | None = None) -> list[dict]:
    """Execute cells over ``workers`` processes; results in ``specs`` order.

    A *pool* failure (fork limits, pickling, a dead worker) degrades the
    remaining cells to in-process execution with a warning — the same
    contract as the trial backends — so a matrix run always completes.  An
    error raised by a cell itself is deterministic and propagates unchanged
    (re-running it serially would only fail again, after wasted work).
    """
    payloads = [spec.to_dict() for spec in specs]
    runner_kwargs = dict(runner_kwargs or {})
    results: list[dict | None] = [None] * len(specs)
    try:
        try:
            with ProcessPoolExecutor(max_workers=min(workers, len(specs)),
                                     mp_context=_pool_context()) as pool:
                try:
                    futures = {pool.submit(_execute_cell, payload, store_root,
                                           scenario, runner_kwargs):
                               index for index, payload in enumerate(payloads)}
                except Exception as error:  # submission/fork-time failure
                    raise _PoolBroke(error) from error
                for future, index in futures.items():
                    try:
                        results[index] = future.result()
                    except BrokenExecutor as error:
                        raise _PoolBroke(error) from error
        except _PoolBroke:
            raise
        except BrokenExecutor as error:
            # The pool can also break while its context manager shuts down.
            raise _PoolBroke(error) from error
    except _PoolBroke as broke:
        warnings.warn(f"cell fan-out fell back to serial execution "
                      f"({broke})", RuntimeWarning, stacklevel=2)
        for index, payload in enumerate(payloads):
            if results[index] is None:
                results[index] = _execute_cell(payload, store_root, scenario,
                                               runner_kwargs)
    return results
