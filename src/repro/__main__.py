"""Entry point for ``python -m repro`` (the scenario CLI)."""

from .scenarios.cli import main

if __name__ == "__main__":
    raise SystemExit(main())
