"""Experiment configuration dataclass shared by the benchmark harnesses."""

from __future__ import annotations

from dataclasses import dataclass, field, fields, asdict


@dataclass
class ExperimentConfig:
    """Parameters controlling one robustness experiment.

    The defaults are scaled down from the paper (which trains full-size
    networks on GPU) so that an experiment completes on CPU in seconds while
    preserving the qualitative comparison between methods.
    """

    seed: int = 0
    epochs: int = 5
    batch_size: int = 64
    learning_rate: float = 0.05
    momentum: float = 0.9
    optimizer: str = "sgd"
    weight_decay: float = 0.0
    train_samples: int = 512
    test_samples: int = 256
    monte_carlo_samples: int = 3
    bo_trials: int = 8
    sigma_grid: tuple = (0.0, 0.3, 0.6, 0.9, 1.2, 1.5)
    drift_trials: int = 5
    extra: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "ExperimentConfig":
        """Rebuild a config from :meth:`to_dict` output (or parsed JSON).

        Symmetric with :meth:`to_dict`: ``from_dict(c.to_dict()) == c`` for
        every config, including one that went through JSON (where
        ``sigma_grid`` arrives as a list — it is normalised back to a tuple).
        Unknown keys raise so that a typo in a stored scenario spec cannot be
        silently dropped.
        """
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ValueError(
                f"unknown ExperimentConfig fields {sorted(unknown)}; "
                f"expected a subset of {sorted(known)}")
        data = dict(data)
        if "sigma_grid" in data:
            data["sigma_grid"] = tuple(data["sigma_grid"])
        if "extra" in data:
            data["extra"] = dict(data["extra"])
        return cls(**data)

    @classmethod
    def fast(cls) -> "ExperimentConfig":
        """A configuration small enough for unit tests and CI."""
        return cls(epochs=2, train_samples=128, test_samples=64,
                   monte_carlo_samples=2, bo_trials=4, drift_trials=3,
                   sigma_grid=(0.0, 0.5, 1.0))
