"""Experiment configuration dataclass shared by the benchmark harnesses."""

from __future__ import annotations

from dataclasses import dataclass, field, asdict


@dataclass
class ExperimentConfig:
    """Parameters controlling one robustness experiment.

    The defaults are scaled down from the paper (which trains full-size
    networks on GPU) so that an experiment completes on CPU in seconds while
    preserving the qualitative comparison between methods.
    """

    seed: int = 0
    epochs: int = 5
    batch_size: int = 64
    learning_rate: float = 0.05
    momentum: float = 0.9
    optimizer: str = "sgd"
    weight_decay: float = 0.0
    train_samples: int = 512
    test_samples: int = 256
    monte_carlo_samples: int = 3
    bo_trials: int = 8
    sigma_grid: tuple = (0.0, 0.3, 0.6, 0.9, 1.2, 1.5)
    drift_trials: int = 5
    extra: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def fast(cls) -> "ExperimentConfig":
        """A configuration small enough for unit tests and CI."""
        return cls(epochs=2, train_samples=128, test_samples=64,
                   monte_carlo_samples=2, bo_trials=4, drift_trials=3,
                   sigma_grid=(0.0, 0.5, 1.0))
