"""Model state serialization to ``.npz`` archives."""

from __future__ import annotations

from pathlib import Path

import numpy as np

__all__ = ["save_state", "load_state"]


def save_state(state: dict, path: str | Path) -> Path:
    """Save a flat ``name -> ndarray`` state dict (e.g. ``Module.state_dict()``)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    np.savez(path, **{key: np.asarray(value) for key, value in state.items()})
    return path if path.suffix == ".npz" else path.with_suffix(path.suffix + ".npz")


def load_state(path: str | Path) -> dict:
    """Load a state dict previously written by :func:`save_state`."""
    path = Path(path)
    if not path.exists() and path.with_suffix(path.suffix + ".npz").exists():
        path = path.with_suffix(path.suffix + ".npz")
    with np.load(path) as archive:
        return {key: archive[key] for key in archive.files}
