"""Centralised random-number-generator management.

Every stochastic component in the library (weight initialisation, dropout,
fault injection, data synthesis, Bayesian-optimisation candidate sampling)
draws from a ``numpy.random.Generator``.  To make experiments reproducible,
components either accept an explicit generator or fall back to the process
global generator managed here.
"""

from __future__ import annotations

import random

import numpy as np

__all__ = ["seed_everything", "get_rng", "spawn_rng"]

_GLOBAL_RNG = np.random.default_rng(0)


def seed_everything(seed: int) -> np.random.Generator:
    """Seed the global generator (and Python's ``random``) and return it."""
    global _GLOBAL_RNG
    _GLOBAL_RNG = np.random.default_rng(seed)
    random.seed(seed)
    np.random.seed(seed % (2 ** 32))
    return _GLOBAL_RNG


def get_rng(rng: np.random.Generator | int | None = None) -> np.random.Generator:
    """Resolve an optional rng argument.

    ``None`` returns the global generator, an integer creates a fresh seeded
    generator, and an existing generator is passed through unchanged.
    """
    if rng is None:
        return _GLOBAL_RNG
    if isinstance(rng, (int, np.integer)):
        return np.random.default_rng(int(rng))
    return rng


def spawn_rng(rng: np.random.Generator | int | None = None) -> np.random.Generator:
    """Create an independent child generator from ``rng`` (or the global one)."""
    parent = get_rng(rng)
    seed = int(parent.integers(0, 2 ** 63 - 1))
    return np.random.default_rng(seed)
