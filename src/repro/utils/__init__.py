"""Shared utilities: random-number management, configuration, serialization."""

from .rng import get_rng, seed_everything, spawn_rng
from .serialization import load_state, save_state
from .config import ExperimentConfig

__all__ = [
    "get_rng", "seed_everything", "spawn_rng",
    "load_state", "save_state",
    "ExperimentConfig",
]
