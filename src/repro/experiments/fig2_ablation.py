"""Figure 2: ablation of architecture factors for fault tolerance.

Four sub-experiments on an MLP / SyntheticMNIST, each sweeping σ and
comparing variants of one architectural factor:

* (a) dropout: none vs Dropout vs AlphaDropout,
* (b) normalisation: none vs Instance vs Batch vs Group vs Layer,
* (c) model complexity: 3-, 6- and 9-layer MLPs,
* (d) activation: ReLU, ELU, GELU, Leaky ReLU.

Each function returns a list of :class:`RobustnessCurve`, one per variant —
the same series the paper plots.
"""

from __future__ import annotations

import numpy as np

from ..data.mnist import SyntheticMNIST
from ..data.loader import train_test_split
from ..evaluation.robustness import RobustnessCurve
from ..evaluation.sweep import DriftSweepEngine
from ..models.mlp import MLP, build_mlp
from ..models.lenet import LeNet5
from ..nn.layers import GroupNorm, InstanceNorm2d
from ..training.trainer import train_classifier
from ..utils.config import ExperimentConfig
from ..utils.rng import get_rng

__all__ = [
    "run_dropout_ablation", "run_normalization_ablation",
    "run_depth_ablation", "run_activation_ablation",
]


def _make_data(config: ExperimentConfig, rng):
    dataset = SyntheticMNIST(n_samples=config.train_samples + config.test_samples,
                             image_size=16, rng=rng)
    fraction = config.test_samples / (config.train_samples + config.test_samples)
    return train_test_split(dataset, test_fraction=fraction, rng=rng)


def _train_and_sweep(model, train_set, test_set, label, config, rng) -> RobustnessCurve:
    train_classifier(model, train_set, epochs=config.epochs,
                     batch_size=config.batch_size, learning_rate=config.learning_rate,
                     momentum=config.momentum, rng=rng)
    # Common random numbers: every variant is evaluated with the same drift
    # samples, so the comparison between curves is paired and low-variance.
    # (The engine pre-draws all samples, so this also holds for any worker
    # count or chunk size — see config.extra["sweep_workers"] and
    # config.extra["sweep_chunk_trials"].)
    evaluation_rng = np.random.default_rng(config.seed + 99991)
    engine = DriftSweepEngine(model, test_set, trials=config.drift_trials,
                              workers=int(config.extra.get("sweep_workers", 0)),
                              max_chunk_trials=config.extra.get("sweep_chunk_trials"),
                              rng=evaluation_rng)
    return engine.run(config.sigma_grid, label=label).curve()


def run_dropout_ablation(config: ExperimentConfig | None = None, seed: int = 0) -> list[RobustnessCurve]:
    """Fig. 2(a): the original model vs Dropout vs AlphaDropout."""
    config = config or ExperimentConfig()
    rng = get_rng(seed)
    train_set, test_set = _make_data(config, rng)
    input_dim = int(np.prod(train_set.inputs.shape[1:]))
    # Alpha dropout is used with a smaller rate: it is designed for SELU
    # networks, and on a ReLU MLP with a short training budget larger rates
    # prevent convergence entirely.
    variants = [
        ("Original Model", {"dropout": "none"}),
        ("DropOut", {"dropout": "dropout", "dropout_rate": 0.3}),
        ("Alpha DropOut", {"dropout": "alpha", "dropout_rate": 0.1}),
    ]
    curves = []
    for label, kwargs in variants:
        model = MLP(input_dim, hidden_dims=(128, 64), num_classes=10, rng=rng, **kwargs)
        curves.append(_train_and_sweep(model, train_set, test_set, label, config, rng))
    return curves


def run_normalization_ablation(config: ExperimentConfig | None = None,
                               seed: int = 0) -> list[RobustnessCurve]:
    """Fig. 2(b): no normalisation vs Instance/Batch/Group/Layer norm.

    Instance and Group normalisation require spatial feature maps, so this
    ablation uses the LeNet convolutional trunk (the paper notes the same
    experiments were run with larger models with similar findings); the
    no-norm / batch / layer variants are also run on the MLP for parity.
    """
    config = config or ExperimentConfig()
    rng = get_rng(seed)
    train_set, test_set = _make_data(config, rng)
    input_dim = int(np.prod(train_set.inputs.shape[1:]))

    curves = []
    for label, norm in [("Without Norm", "none"), ("Batch Norm", "batch"),
                        ("Layer Norm", "layer")]:
        model = MLP(input_dim, hidden_dims=(128, 64), num_classes=10,
                    normalization=norm, dropout="none", rng=rng)
        curves.append(_train_and_sweep(model, train_set, test_set, label, config, rng))

    for label, norm_class in [("Instance Norm", InstanceNorm2d), ("Group Norm", GroupNorm)]:
        model = _lenet_with_norm(norm_class, rng)
        curves.append(_train_and_sweep(model, train_set, test_set, label, config, rng))
    return curves


def _lenet_with_norm(norm_class, rng) -> LeNet5:
    """LeNet with a feature-map normalisation layer inserted after each conv."""
    model = LeNet5(num_classes=10, in_channels=1, image_size=16, rng=rng)
    features = model.features
    # Insert the normalisation module right after each Conv2d in the Sequential.
    from ..nn.layers import Conv2d
    rebuilt = []
    for module in features:
        rebuilt.append(module)
        if isinstance(module, Conv2d):
            channels = module.out_channels
            if norm_class is GroupNorm:
                rebuilt.append(GroupNorm(num_groups=2, num_features=channels))
            else:
                rebuilt.append(norm_class(channels))
    from ..nn.module import Sequential
    model.features = Sequential(*rebuilt)
    return model


def run_depth_ablation(config: ExperimentConfig | None = None, seed: int = 0,
                       depths: tuple = (3, 6, 9)) -> list[RobustnessCurve]:
    """Fig. 2(c): 3- vs 6- vs 9-layer MLP."""
    config = config or ExperimentConfig()
    rng = get_rng(seed)
    train_set, test_set = _make_data(config, rng)
    input_dim = int(np.prod(train_set.inputs.shape[1:]))
    curves = []
    for depth in depths:
        model = build_mlp(input_dim, depth=depth, width=96, num_classes=10,
                          dropout="none", rng=rng)
        curves.append(_train_and_sweep(model, train_set, test_set,
                                       f"{depth}-Layer", config, rng))
    return curves


def run_activation_ablation(config: ExperimentConfig | None = None,
                            seed: int = 0) -> list[RobustnessCurve]:
    """Fig. 2(d): ReLU vs ELU vs GELU vs Leaky ReLU."""
    config = config or ExperimentConfig()
    rng = get_rng(seed)
    train_set, test_set = _make_data(config, rng)
    input_dim = int(np.prod(train_set.inputs.shape[1:]))
    curves = []
    for label, activation in [("ReLU", "relu"), ("ELU", "elu"),
                              ("GELU", "gelu"), ("Leaky ReLU", "leaky_relu")]:
        model = MLP(input_dim, hidden_dims=(128, 64), num_classes=10,
                    activation=activation, dropout="none", rng=rng)
        curves.append(_train_and_sweep(model, train_set, test_set, label, config, rng))
    return curves
