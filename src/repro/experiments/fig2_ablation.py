"""Figure 2: ablation of architecture factors for fault tolerance.

Four sub-experiments on an MLP / SyntheticMNIST, each sweeping σ and
comparing variants of one architectural factor:

* (a) dropout: none vs Dropout vs AlphaDropout,
* (b) normalisation: none vs Instance vs Batch vs Group vs Layer,
* (c) model complexity: 3-, 6- and 9-layer MLPs,
* (d) activation: ReLU, ELU, GELU, Leaky ReLU.

Each function returns a list of :class:`RobustnessCurve`, one per variant —
the same series the paper plots.  Passing a
:class:`~repro.scenarios.runner.ScenarioRunner` routes every sweep through
the scenario subsystem: cells already in the runner's result store are
answered from disk (the curves are bit-identical either way, because the
harness keeps its RNG threading and hands the runner the same evaluation
generator the direct engine path used).
"""

from __future__ import annotations

import numpy as np

from ..data.registry import build_dataset
from ..data.loader import train_test_split
from ..evaluation.robustness import RobustnessCurve
from ..models.mlp import MLP, build_mlp
from ..models.lenet import LeNet5
from ..nn.layers import GroupNorm, InstanceNorm2d
from ..training.trainer import train_classifier
from ..utils.config import ExperimentConfig
from ..utils.rng import get_rng

__all__ = [
    "run_dropout_ablation", "run_normalization_ablation",
    "run_depth_ablation", "run_activation_ablation",
]


def _make_data(config: ExperimentConfig, rng):
    dataset = build_dataset("mnist", n_samples=config.train_samples + config.test_samples,
                            image_size=16, rng=rng)
    fraction = config.test_samples / (config.train_samples + config.test_samples)
    return train_test_split(dataset, test_fraction=fraction, rng=rng)


def _cell_spec(figure: str, label: str, config: ExperimentConfig, seed: int,
               model: str = "mlp", variants: dict | None = None):
    """Identity of one harness cell in the scenario/result-store world.

    The context records the lineage: figure, harness seed, full training
    config, and — crucially — any call-site parameter that changes the
    variant list (``variants``).  The harness threads one RNG through every
    variant's construction and training, so a cell's weights depend on
    *which other variants ran before it*; anything that alters that
    sequence must enter the hash or the store would serve stale curves.
    """
    from ..scenarios.spec import ScenarioSpec

    return ScenarioSpec(
        name=label, model=model, dataset="mnist",
        sigmas=tuple(config.sigma_grid), trials=config.drift_trials,
        seed=config.seed, train=config,
        workers=int(config.extra.get("sweep_workers", 0)),
        max_chunk_trials=config.extra.get("sweep_chunk_trials"),
        context={"figure": figure, "harness_seed": seed,
                 **(variants or {})})


def _train_and_sweep(model, train_set, test_set, label, config, rng,
                     runner=None, figure: str = "fig2", seed: int = 0,
                     model_name: str = "mlp",
                     variants: dict | None = None) -> RobustnessCurve:
    train_classifier(model, train_set, epochs=config.epochs,
                     batch_size=config.batch_size, learning_rate=config.learning_rate,
                     momentum=config.momentum, rng=rng)
    if runner is None:
        from ..scenarios.runner import ScenarioRunner
        runner = ScenarioRunner()  # no store: plain engine sweep
    # Common random numbers: every variant is evaluated with the same drift
    # samples, so the comparison between curves is paired and low-variance.
    # (The engine pre-draws all samples, so this also holds for any worker
    # count or chunk size — see config.extra["sweep_workers"] and
    # config.extra["sweep_chunk_trials"].)
    evaluation_rng = np.random.default_rng(config.seed + 99991)
    spec = _cell_spec(figure, label, config, seed, model=model_name,
                      variants=variants)
    return runner.sweep_trained(model, test_set, spec, rng=evaluation_rng,
                                scenario=figure).curve()


def run_dropout_ablation(config: ExperimentConfig | None = None, seed: int = 0,
                         runner=None) -> list[RobustnessCurve]:
    """Fig. 2(a): the original model vs Dropout vs AlphaDropout."""
    config = config or ExperimentConfig()
    rng = get_rng(seed)
    train_set, test_set = _make_data(config, rng)
    input_dim = int(np.prod(train_set.inputs.shape[1:]))
    # Alpha dropout is used with a smaller rate: it is designed for SELU
    # networks, and on a ReLU MLP with a short training budget larger rates
    # prevent convergence entirely.
    variants = [
        ("Original Model", {"dropout": "none"}),
        ("DropOut", {"dropout": "dropout", "dropout_rate": 0.3}),
        ("Alpha DropOut", {"dropout": "alpha", "dropout_rate": 0.1}),
    ]
    curves = []
    for label, kwargs in variants:
        model = MLP(input_dim, hidden_dims=(128, 64), num_classes=10, rng=rng, **kwargs)
        curves.append(_train_and_sweep(model, train_set, test_set, label, config, rng,
                                       runner=runner, figure="fig2_dropout", seed=seed))
    return curves


def run_normalization_ablation(config: ExperimentConfig | None = None,
                               seed: int = 0, runner=None) -> list[RobustnessCurve]:
    """Fig. 2(b): no normalisation vs Instance/Batch/Group/Layer norm.

    Instance and Group normalisation require spatial feature maps, so this
    ablation uses the LeNet convolutional trunk (the paper notes the same
    experiments were run with larger models with similar findings); the
    no-norm / batch / layer variants are also run on the MLP for parity.
    """
    config = config or ExperimentConfig()
    rng = get_rng(seed)
    train_set, test_set = _make_data(config, rng)
    input_dim = int(np.prod(train_set.inputs.shape[1:]))

    curves = []
    for label, norm in [("Without Norm", "none"), ("Batch Norm", "batch"),
                        ("Layer Norm", "layer")]:
        model = MLP(input_dim, hidden_dims=(128, 64), num_classes=10,
                    normalization=norm, dropout="none", rng=rng)
        curves.append(_train_and_sweep(model, train_set, test_set, label, config, rng,
                                       runner=runner, figure="fig2_normalization",
                                       seed=seed))

    for label, norm_class in [("Instance Norm", InstanceNorm2d), ("Group Norm", GroupNorm)]:
        model = _lenet_with_norm(norm_class, rng)
        curves.append(_train_and_sweep(model, train_set, test_set, label, config, rng,
                                       runner=runner, figure="fig2_normalization",
                                       seed=seed, model_name="lenet"))
    return curves


def _lenet_with_norm(norm_class, rng) -> LeNet5:
    """LeNet with a feature-map normalisation layer inserted after each conv."""
    model = LeNet5(num_classes=10, in_channels=1, image_size=16, rng=rng)
    features = model.features
    # Insert the normalisation module right after each Conv2d in the Sequential.
    from ..nn.layers import Conv2d
    rebuilt = []
    for module in features:
        rebuilt.append(module)
        if isinstance(module, Conv2d):
            channels = module.out_channels
            if norm_class is GroupNorm:
                rebuilt.append(GroupNorm(num_groups=2, num_features=channels))
            else:
                rebuilt.append(norm_class(channels))
    from ..nn.module import Sequential
    model.features = Sequential(*rebuilt)
    return model


def run_depth_ablation(config: ExperimentConfig | None = None, seed: int = 0,
                       depths: tuple = (3, 6, 9), runner=None) -> list[RobustnessCurve]:
    """Fig. 2(c): 3- vs 6- vs 9-layer MLP."""
    config = config or ExperimentConfig()
    rng = get_rng(seed)
    train_set, test_set = _make_data(config, rng)
    input_dim = int(np.prod(train_set.inputs.shape[1:]))
    curves = []
    for depth in depths:
        model = build_mlp(input_dim, depth=depth, width=96, num_classes=10,
                          dropout="none", rng=rng)
        curves.append(_train_and_sweep(model, train_set, test_set,
                                       f"{depth}-Layer", config, rng,
                                       runner=runner, figure="fig2_depth", seed=seed,
                                       variants={"depths": list(depths)}))
    return curves


def run_activation_ablation(config: ExperimentConfig | None = None,
                            seed: int = 0, runner=None) -> list[RobustnessCurve]:
    """Fig. 2(d): ReLU vs ELU vs GELU vs Leaky ReLU."""
    config = config or ExperimentConfig()
    rng = get_rng(seed)
    train_set, test_set = _make_data(config, rng)
    input_dim = int(np.prod(train_set.inputs.shape[1:]))
    curves = []
    for label, activation in [("ReLU", "relu"), ("ELU", "elu"),
                              ("GELU", "gelu"), ("Leaky ReLU", "leaky_relu")]:
        model = MLP(input_dim, hidden_dims=(128, 64), num_classes=10,
                    activation=activation, dropout="none", rng=rng)
        curves.append(_train_and_sweep(model, train_set, test_set, label, config, rng,
                                       runner=runner, figure="fig2_activation",
                                       seed=seed))
    return curves
