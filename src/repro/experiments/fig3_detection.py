"""Figure 3(j): object-detection mAP under drift, ERM vs BayesFT.

The paper compares only ERM and BayesFT on PennFudanPed because the other
baselines do not transfer to detection.  BayesFT for the detector keeps the
same recipe: search the per-layer dropout rates of the TinyDetector for the
best drift-marginalised mAP, alternating with detector training.

Both test-set mAP sweeps run through the scenario runner (metric ``"map"``)
with a common, training-decoupled evaluation RNG, so the ERM-vs-BayesFT
comparison is paired — the same convention as the fig2/fig3 classification
harnesses — and a store-backed runner caches the sweeps.
"""

from __future__ import annotations

import numpy as np

from ..bayesopt.optimizer import BayesianOptimizer
from ..core.search_space import DropoutSearchSpace
from ..data.detection import SyntheticPedestrians
from ..evaluation.detection_metrics import mean_average_precision
from ..evaluation.sweep import DriftSweepEngine
from ..models.detection import TinyDetector
from ..training.trainer import train_detector
from ..utils.config import ExperimentConfig
from ..utils.rng import get_rng

__all__ = ["run_detection_comparison"]

#: Added to the harness seed for the paired evaluation RNG (kept distinct
#: from the fig2/fig3 offsets so the streams never collide).
_EVALUATION_SEED_OFFSET = 55551


def _cell_spec(method_label: str, config: ExperimentConfig, seed: int,
               sigmas: tuple, image_size: int, n_images: int):
    """Identity of one detection sweep for the scenario result store."""
    from ..scenarios.spec import ScenarioSpec

    return ScenarioSpec(
        name=method_label, model="detector", dataset="pedestrians",
        metric="map", sigmas=tuple(sigmas), trials=config.drift_trials,
        seed=seed, train=config, image_size=image_size,
        workers=int(config.extra.get("sweep_workers", 0)),
        max_chunk_trials=config.extra.get("sweep_chunk_trials"),
        context={"figure": "fig3_detection", "harness_seed": seed,
                 "n_images": n_images})


def _drifted_map_objective(detector, samples, sigma, mc_samples, rng) -> float:
    """Monte-Carlo mAP under drift (the detection analogue of Eq. 4).

    Always serial: the objective runs once per BayesOpt trial with only
    ``mc_samples`` (1-2) evaluations, so per-call worker-pool startup would
    dwarf the work; the test-set sweeps below are where workers pay off.
    """
    engine = DriftSweepEngine(detector, samples, trials=mc_samples, rng=rng,
                              evaluate_fn=mean_average_precision)
    return engine.run([sigma]).means[0]


def run_detection_comparison(config: ExperimentConfig | None = None, seed: int = 0,
                             sigmas: tuple = (0.0, 0.2, 0.4, 0.6, 0.8),
                             image_size: int = 32, n_images: int = 48,
                             runner=None) -> dict:
    """Train ERM and BayesFT detectors and sweep mAP over σ."""
    config = config or ExperimentConfig()
    rng = get_rng(seed)
    if runner is None:
        from ..scenarios.runner import ScenarioRunner
        runner = ScenarioRunner()  # no store: plain engine sweeps
    dataset = SyntheticPedestrians(n_samples=n_images, image_size=image_size,
                                   max_pedestrians=2, rng=rng)
    train_samples, test_samples = dataset.split(test_fraction=0.3, rng=rng)
    detector_epochs = int(config.extra.get("detector_epochs", max(4, config.epochs * 2)))

    def _sweep(detector, label):
        # Common random numbers: both methods' sweeps see the same drift
        # samples, decoupled from the training streams.
        spec = _cell_spec(label, config, seed, sigmas, image_size, n_images)
        report = runner.sweep_trained(
            detector, test_samples, spec,
            rng=np.random.default_rng(seed + _EVALUATION_SEED_OFFSET),
            scenario="fig3_detection")
        return {"sigmas": list(report.sigmas), "means": list(report.means),
                "stds": list(report.stds), "label": label}

    # ------------------------------------------------------------------ #
    # ERM detector: plain training, no drift-awareness.
    erm_detector = TinyDetector(image_size=image_size, width=8, grid_size=8, rng=rng)
    train_detector(erm_detector, train_samples, epochs=detector_epochs,
                   learning_rate=0.01, rng=rng)
    erm_curve = _sweep(erm_detector, "ERM")

    # ------------------------------------------------------------------ #
    # BayesFT detector: alternate training with BO over the dropout rates.
    bayesft_detector = TinyDetector(image_size=image_size, width=8, grid_size=8,
                                    dropout_rate=0.0, rng=rng)
    space = DropoutSearchSpace(bayesft_detector)
    optimizer = BayesianOptimizer(space.bounds, rng=rng)
    search_sigma = float(config.extra.get("search_sigma", 0.4))
    best_state = None
    best_value = -np.inf
    epochs_per_trial = max(2, detector_epochs // max(config.bo_trials, 1))
    for _ in range(config.bo_trials):
        alpha = optimizer.suggest()
        space.apply(alpha)
        train_detector(bayesft_detector, train_samples, epochs=epochs_per_trial,
                       learning_rate=0.01, rng=rng)
        value = _drifted_map_objective(bayesft_detector, train_samples, search_sigma,
                                       config.monte_carlo_samples, rng)
        optimizer.observe(alpha, value)
        if value > best_value:
            best_value = value
            best_state = bayesft_detector.state_dict()
            best_alpha = np.asarray(alpha).copy()
    bayesft_detector.load_state_dict(best_state)
    space.apply(best_alpha)
    bayesft_curve = _sweep(bayesft_detector, "BayesFT")

    return {
        "sigmas": list(sigmas),
        "curves": [erm_curve, bayesft_curve],
        "best_alpha": best_alpha.tolist(),
        "search_objective": best_value,
    }
