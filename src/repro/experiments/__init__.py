"""Experiment harnesses: one module per figure of the paper.

Every function returns plain Python data (dicts / lists of
:class:`~repro.evaluation.robustness.RobustnessCurve`) containing exactly
the series the corresponding paper figure plots, so a caller can print,
assert on, or plot them.  The benchmark suite in ``benchmarks/`` wraps these
functions with ``pytest-benchmark`` and records the measured numbers in
EXPERIMENTS.md.
"""

from .fig1_decision_boundary import run_decision_boundary_experiment
from .fig2_ablation import (
    run_dropout_ablation, run_normalization_ablation,
    run_depth_ablation, run_activation_ablation,
)
from .fig3_classification import run_classification_comparison, FIG3_PANELS
from .fig3_detection import run_detection_comparison
from .fig4_detection_visualization import run_detection_visualization
from .ablation_search import run_bo_vs_random_ablation, run_sigma_sensitivity_ablation

__all__ = [
    "run_decision_boundary_experiment",
    "run_dropout_ablation", "run_normalization_ablation",
    "run_depth_ablation", "run_activation_ablation",
    "run_classification_comparison", "FIG3_PANELS",
    "run_detection_comparison", "run_detection_visualization",
    "run_bo_vs_random_ablation", "run_sigma_sensitivity_ablation",
]
