"""Figure 1: decision-boundary shift under memristance drift.

A small MLP is trained on a 2-D binary dataset (two moons); the decision
boundary is then rasterised onto a grid for several drift levels σ,
showing how the boundary deforms and accuracy drops as σ grows — the
paper's motivating visualisation.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..data.toy import ToyDataset
from ..data.loader import train_test_split
from ..evaluation.robustness import accuracy, accuracy_under_drift
from ..fault.drift import LogNormalDrift
from ..fault.injector import fault_injection
from ..models.mlp import MLP
from ..nn.tensor import Tensor, no_grad
from ..training.trainer import train_classifier
from ..utils.rng import get_rng

__all__ = ["run_decision_boundary_experiment"]


def run_decision_boundary_experiment(sigmas: Sequence[float] = (0.0, 0.5, 1.0, 1.5),
                                     n_samples: int = 400, epochs: int = 30,
                                     grid_resolution: int = 40, trials: int = 3,
                                     seed: int = 0) -> dict:
    """Train the Fig.-1 toy classifier and rasterise its boundary per σ.

    Returns a dict with the training data, the grid geometry, one boundary
    map per σ (class-1 probability over the grid) and the accuracy
    degradation curve.
    """
    rng = get_rng(seed)
    dataset = ToyDataset("moons", n_samples=n_samples, noise=0.15, rng=rng)
    train_set, test_set = train_test_split(dataset, test_fraction=0.3, rng=rng)

    model = MLP(input_dim=2, hidden_dims=(32, 32), num_classes=2,
                dropout="dropout", dropout_rate=0.0, rng=rng)
    train_classifier(model, train_set, epochs=epochs, batch_size=32,
                     learning_rate=0.1, rng=rng)

    grid_points, grid_shape = dataset.grid(resolution=grid_resolution)
    boundaries = {}
    accuracies = {}
    for sigma in sigmas:
        model.eval()
        with fault_injection(model, LogNormalDrift(sigma), rng=rng):
            with no_grad():
                logits = model(Tensor(grid_points)).data
            exp = np.exp(logits - logits.max(axis=1, keepdims=True))
            probabilities = exp / exp.sum(axis=1, keepdims=True)
            boundaries[float(sigma)] = probabilities[:, 1].reshape(grid_shape)
        mean, std = accuracy_under_drift(model, test_set, sigma, trials=trials, rng=rng)
        accuracies[float(sigma)] = {"mean": mean, "std": std}

    return {
        "train_points": train_set.inputs,
        "train_labels": train_set.labels,
        "grid_shape": grid_shape,
        "sigmas": [float(s) for s in sigmas],
        "boundaries": boundaries,
        "accuracies": accuracies,
        "clean_accuracy": accuracy(model, test_set),
    }
