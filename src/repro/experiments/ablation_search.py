"""Design-choice ablations for the BayesFT search itself.

Two studies that the DESIGN.md inventory calls out:

* **BO vs random search** over the dropout-rate space with the same trial
  budget — quantifies what the Gaussian-process surrogate buys.
* **Search-σ sensitivity** — how the σ used inside the search objective
  (Eq. 3–4) affects robustness across the evaluation sweep.
"""

from __future__ import annotations

import numpy as np

from ..core.api import BayesFT
from ..data.mnist import SyntheticMNIST
from ..data.loader import train_test_split
from ..evaluation.robustness import robustness_curve
from ..evaluation.statistics import curve_auc
from ..models.registry import build_model
from ..utils.config import ExperimentConfig
from ..utils.rng import get_rng

__all__ = ["run_bo_vs_random_ablation", "run_sigma_sensitivity_ablation"]


def _make_split(config: ExperimentConfig, rng):
    dataset = SyntheticMNIST(n_samples=config.train_samples + config.test_samples,
                             image_size=16, rng=rng)
    fraction = config.test_samples / (config.train_samples + config.test_samples)
    return train_test_split(dataset, test_fraction=fraction, rng=rng)


def run_bo_vs_random_ablation(config: ExperimentConfig | None = None,
                              seed: int = 0) -> dict:
    """Same trial budget, GP-BO vs uniform random search over α."""
    config = config or ExperimentConfig()
    rng = get_rng(seed)
    train_set, test_set = _make_split(config, rng)

    results = {}
    for kind in ("bayes", "random"):
        model = build_model("mlp", num_classes=10, in_channels=1, image_size=16, rng=rng)
        searcher = BayesFT(sigma=0.6, n_trials=config.bo_trials,
                           epochs_per_trial=max(1, config.epochs // 2),
                           monte_carlo_samples=config.monte_carlo_samples,
                           batch_size=config.batch_size,
                           learning_rate=config.learning_rate,
                           optimizer_kind=kind, rng=rng)
        outcome = searcher.fit(model, train_set)
        curve = robustness_curve(model, test_set, sigmas=config.sigma_grid,
                                 trials=config.drift_trials,
                                 label=f"search={kind}", rng=rng)
        results[kind] = {
            "best_objective": outcome.best_objective,
            "objective_trace": list(outcome.trial_objectives),
            "best_alpha": outcome.best_alpha.tolist(),
            "curve": curve,
            "auc": curve_auc(curve),
        }
    return results


def run_sigma_sensitivity_ablation(config: ExperimentConfig | None = None,
                                   search_sigmas: tuple = (0.2, 0.6, 1.0),
                                   seed: int = 0) -> dict:
    """Effect of the σ used inside the search objective on the final curve."""
    config = config or ExperimentConfig()
    rng = get_rng(seed)
    train_set, test_set = _make_split(config, rng)

    results = {"search_sigmas": list(search_sigmas), "curves": [], "aucs": []}
    for sigma in search_sigmas:
        model = build_model("mlp", num_classes=10, in_channels=1, image_size=16, rng=rng)
        searcher = BayesFT(sigma=float(sigma), n_trials=config.bo_trials,
                           epochs_per_trial=max(1, config.epochs // 2),
                           monte_carlo_samples=config.monte_carlo_samples,
                           batch_size=config.batch_size,
                           learning_rate=config.learning_rate, rng=rng)
        searcher.fit(model, train_set)
        curve = robustness_curve(model, test_set, sigmas=config.sigma_grid,
                                 trials=config.drift_trials,
                                 label=f"search_sigma={sigma}", rng=rng)
        results["curves"].append(curve)
        results["aucs"].append(curve_auc(curve))
    best_index = int(np.argmax(results["aucs"]))
    results["best_search_sigma"] = float(search_sigmas[best_index])
    return results
