"""Figure 3(a)-(i): accuracy-vs-σ comparison of all methods on classification.

One function drives every panel: given a panel name (model + dataset
combination) it trains ERM, FTNA, ReRAM-V, AWP and BayesFT models and sweeps
the drift level, returning one :class:`RobustnessCurve` per method — the
lines of the corresponding sub-figure.  Passing a
:class:`~repro.scenarios.runner.ScenarioRunner` routes each method's sweep
through the scenario subsystem's result store (curves are bit-identical
either way; see ``fig2_ablation``).
"""

from __future__ import annotations

import numpy as np

from ..baselines import build_method
from ..core.api import BayesFT
from ..data.registry import build_dataset
from ..data.loader import Dataset, train_test_split
from ..evaluation.robustness import RobustnessCurve
from ..evaluation.sweep import SweepReport
from ..models.registry import build_model
from ..utils.config import ExperimentConfig
from ..utils.rng import get_rng

__all__ = ["FIG3_PANELS", "run_classification_comparison"]


# panel id -> (model name, dataset name, num_classes, in_channels)
FIG3_PANELS = {
    "a_mlp_mnist": ("mlp", "mnist", 10, 1),
    "b_lenet_mnist": ("lenet", "mnist", 10, 1),
    "c_alexnet_cifar": ("alexnet", "cifar", 10, 3),
    "d_resnet18_cifar": ("resnet18", "cifar", 10, 3),
    "e_vgg11_cifar": ("vgg11", "cifar", 10, 3),
    "f_preact18_cifar": ("preact18", "cifar", 10, 3),
    "g_preact50_cifar": ("preact50", "cifar", 10, 3),
    "h_preact152_cifar": ("preact152", "cifar", 10, 3),
    "i_stn_gtsrb": ("stn", "gtsrb", 43, 3),
}

# The paper omits FTNA for the GTSRB/STN panel (Fig. 3i legend has no FTNA).
_PANEL_METHODS = {
    "default": ("erm", "ftna", "reram-v", "awp", "bayesft"),
    "i_stn_gtsrb": ("erm", "reram-v", "awp", "bayesft"),
}


def _make_dataset(name: str, config: ExperimentConfig, num_classes: int, rng) -> Dataset:
    total = config.train_samples + config.test_samples
    return build_dataset(name, n_samples=total, image_size=16,
                         num_classes=num_classes, rng=rng)


def _model_kwargs(model_name: str, config: ExperimentConfig) -> dict:
    kwargs = dict(config.extra.get("model_kwargs", {}))
    # Deep PreAct models get a width small enough for the CPU budget unless
    # the caller overrides it explicitly.
    if model_name in ("preact50", "preact152") and "width" not in kwargs:
        kwargs["width"] = 4
    return kwargs


def _cell_spec(panel: str, method_label: str, model_name: str, dataset_name: str,
               config: ExperimentConfig, seed: int, methods: tuple):
    """Identity of one (panel, method) sweep for the scenario result store.

    ``methods`` is part of the lineage: the harness threads one RNG through
    every method's model construction and training, so a cell's weights
    depend on which methods ran before it — a ``methods=(...)`` subset must
    hash differently from the full panel.
    """
    from ..scenarios.spec import ScenarioSpec

    return ScenarioSpec(
        name=method_label, model=model_name, dataset=dataset_name,
        sigmas=tuple(config.sigma_grid), trials=config.drift_trials,
        seed=seed, train=config,
        workers=int(config.extra.get("sweep_workers", 0)),
        max_chunk_trials=config.extra.get("sweep_chunk_trials"),
        context={"figure": f"fig3_{panel}", "harness_seed": seed,
                 "methods": list(methods)})


def run_classification_comparison(panel: str, config: ExperimentConfig | None = None,
                                  methods: tuple | None = None,
                                  seed: int = 0, runner=None) -> dict:
    """Run one Figure-3 panel and return its curves and summary statistics.

    Parameters
    ----------
    panel:
        One of :data:`FIG3_PANELS` (e.g. ``"a_mlp_mnist"``).
    config:
        Experiment scale; :meth:`ExperimentConfig.fast` keeps a panel under a
        minute on CPU.
    methods:
        Override the method list (default: the paper's set for that panel).
    runner:
        Optional :class:`~repro.scenarios.runner.ScenarioRunner`; its result
        store then caches each method's sweep.
    """
    if panel not in FIG3_PANELS:
        raise ValueError(f"unknown panel {panel!r}; choose from {sorted(FIG3_PANELS)}")
    config = config or ExperimentConfig()
    rng = get_rng(seed)
    if runner is None:
        from ..scenarios.runner import ScenarioRunner
        runner = ScenarioRunner()  # no store: plain engine sweeps
    model_name, dataset_name, num_classes, in_channels = FIG3_PANELS[panel]
    methods = methods or _PANEL_METHODS.get(panel, _PANEL_METHODS["default"])

    dataset = _make_dataset(dataset_name, config, num_classes, rng)
    fraction = config.test_samples / (config.train_samples + config.test_samples)
    train_set, test_set = train_test_split(dataset, test_fraction=fraction, rng=rng)
    model_kwargs = _model_kwargs(model_name, config)

    curves: list[RobustnessCurve] = []
    reports: list[SweepReport] = []
    for method_name in methods:
        model = build_model(model_name, num_classes=num_classes,
                            in_channels=in_channels, image_size=16,
                            rng=rng, **model_kwargs)
        if method_name == "bayesft":
            searcher = BayesFT(sigma=float(config.extra.get("search_sigma", 0.6)),
                               n_trials=config.bo_trials,
                               epochs_per_trial=max(1, config.epochs // 2),
                               monte_carlo_samples=config.monte_carlo_samples,
                               batch_size=config.batch_size,
                               learning_rate=config.learning_rate,
                               momentum=config.momentum,
                               weight_optimizer=config.optimizer,
                               # High dropout on every conv layer can stop the
                               # short CPU training budget from learning at
                               # all; cap the search range accordingly.
                               max_dropout_rate=float(config.extra.get("max_dropout_rate", 0.5)),
                               # Async-search scheduling knobs (never part of
                               # the cell identity; see ScenarioSpec).
                               suggest_batch=int(config.extra.get("suggest_batch", 1)),
                               search_workers=int(config.extra.get("search_workers", 0)),
                               rng=rng)
            searcher.fit(model, train_set)
            label = "BayesFT"
        else:
            method = build_method(method_name, num_classes=num_classes,
                                  config=config, rng=rng)
            model = method.apply(model, train_set)
            label = method.name
        # Common random numbers across methods: every method's sweep sees the
        # same drift samples, making the Figure-3 comparison paired.  The
        # engine pre-draws all samples in the main process, so the pairing is
        # preserved for any sweep_workers or sweep_chunk_trials setting (the
        # latter bounds memory for the deep PreAct panels).
        evaluation_rng = np.random.default_rng(seed + 77771)
        spec = _cell_spec(panel, label, model_name, dataset_name, config, seed,
                          methods)
        reports.append(runner.sweep_trained(model, test_set, spec,
                                            rng=evaluation_rng,
                                            scenario=f"fig3_{panel}"))
        curves.append(reports[-1].curve())

    return {
        "panel": panel,
        "model": model_name,
        "dataset": dataset_name,
        "sigmas": list(config.sigma_grid),
        "curves": curves,
        "sweep_reports": [report.as_dict() for report in reports],
        "summary": {curve.label: {"clean": curve.means[0],
                                  "worst": float(np.min(curve.means))}
                    for curve in curves},
    }
