"""Figure 4: qualitative visualisation of detections under increasing drift.

The paper shows detection outputs of ERM and BayesFT at weight drift 0.1,
0.2 and 0.4; the ERM detector loses pedestrians as drift grows while the
BayesFT detector keeps finding them.  This experiment reproduces the figure
as data: for each method and drift level it records the predicted boxes on a
few held-out images together with recall against the ground truth, plus an
ASCII rendering helper for the examples.
"""

from __future__ import annotations

import numpy as np

from ..data.detection import SyntheticPedestrians
from ..evaluation.detection_metrics import average_precision
from ..fault.drift import LogNormalDrift
from ..fault.injector import fault_injection
from ..models.detection import TinyDetector, box_iou
from ..training.trainer import train_detector
from ..utils.config import ExperimentConfig
from ..utils.rng import get_rng

__all__ = ["run_detection_visualization", "render_ascii_detections"]


def _recall(predictions, truths, iou_threshold=0.5) -> float:
    matched = 0
    for truth in truths:
        if any(box_iou(det.box, truth) >= iou_threshold for det in predictions):
            matched += 1
    return matched / max(len(truths), 1)


def run_detection_visualization(drift_levels: tuple = (0.1, 0.2, 0.4),
                                config: ExperimentConfig | None = None,
                                n_visualized: int = 3, seed: int = 0) -> dict:
    """Train ERM and dropout-hardened detectors; record their boxes per drift level."""
    config = config or ExperimentConfig()
    rng = get_rng(seed)
    dataset = SyntheticPedestrians(n_samples=40, image_size=32, rng=rng)
    train_samples, test_samples = dataset.split(test_fraction=0.3, rng=rng)
    visualized = test_samples[:n_visualized]
    epochs = int(config.extra.get("detector_epochs", max(4, config.epochs * 2)))

    detectors = {
        "ERM": TinyDetector(image_size=32, width=8, grid_size=8, dropout_rate=0.0, rng=rng),
        "BayesFT": TinyDetector(image_size=32, width=8, grid_size=8, dropout_rate=0.2, rng=rng),
    }
    for detector in detectors.values():
        train_detector(detector, train_samples, epochs=epochs, learning_rate=0.01, rng=rng)

    results: dict = {"drift_levels": list(drift_levels), "methods": {}}
    for name, detector in detectors.items():
        per_level = {}
        for sigma in drift_levels:
            with fault_injection(detector, LogNormalDrift(sigma), rng=rng):
                images = np.stack([sample.image for sample in visualized])
                predictions = detector.detect(images, score_threshold=0.3)
                ap = average_precision(
                    detector.detect(np.stack([s.image for s in test_samples]),
                                    score_threshold=0.3),
                    [s.boxes for s in test_samples])
            per_level[float(sigma)] = {
                "boxes": [[det.box.tolist() for det in dets] for dets in predictions],
                "scores": [[det.score for det in dets] for dets in predictions],
                "recall": float(np.mean([_recall(dets, sample.boxes)
                                         for dets, sample in zip(predictions, visualized)])),
                "ap": float(ap),
            }
        results["methods"][name] = per_level
    results["ground_truth"] = [sample.boxes.tolist() for sample in visualized]
    return results


def render_ascii_detections(image: np.ndarray, boxes: list, width: int = 32) -> str:
    """Render an image and its boxes as ASCII art (for terminal examples)."""
    grey = image.mean(axis=0)
    h, w = grey.shape
    chars = " .:-=+*#%@"
    canvas = [[chars[int(grey[r, c] * (len(chars) - 1))] for c in range(w)] for r in range(h)]
    for box in boxes:
        x1, y1, x2, y2 = [int(round(v)) for v in box]
        x1, y1 = max(0, x1), max(0, y1)
        x2, y2 = min(w - 1, x2), min(h - 1, y2)
        for c in range(x1, x2 + 1):
            canvas[y1][c] = "+"
            canvas[y2][c] = "+"
        for r in range(y1, y2 + 1):
            canvas[r][x1] = "+"
            canvas[r][x2] = "+"
    return "\n".join("".join(row) for row in canvas)
