"""Method registry: build any Figure-3 method (baselines + BayesFT) by name."""

from __future__ import annotations

from ..utils.config import ExperimentConfig
from .erm import ERM
from .reram_v import ReRAMV
from .awp import AWP
from .ftna import FTNA

__all__ = ["build_method", "available_methods"]


def available_methods() -> list[str]:
    """Names accepted by :func:`build_method` (BayesFT itself lives in repro.core)."""
    return ["erm", "reram-v", "awp", "ftna"]


def build_method(name: str, num_classes: int = 10,
                 config: ExperimentConfig | None = None, rng=None):
    """Instantiate a baseline robust-training method by its paper name."""
    key = name.lower()
    if key == "erm":
        return ERM(config, rng=rng)
    if key in ("reram-v", "reram_v", "reramv"):
        return ReRAMV(config, rng=rng)
    if key == "awp":
        return AWP(config, rng=rng)
    if key == "ftna":
        return FTNA(num_classes, config, rng=rng)
    raise ValueError(f"unknown method {name!r}; available: {available_methods()}")
