"""FTNA (Liu et al., DAC 2019): error-correcting output codes.

Instead of a softmax over classes, the network predicts a binary codeword;
each class owns a codeword in a codebook, and classification returns the
class whose codeword is closest in Hamming distance to the thresholded
prediction (the paper's cat=10000 / dog=11111 example).  A drifted weight
that flips one code bit can be absorbed by the code's error-correction
margin.

Implementation: :class:`ECOCHead` replaces the final Linear layer of any
classifier in :mod:`repro.models`; its ``forward`` returns, for evaluation
convenience, *negative Hamming-style distances* to each class codeword so
that ``argmax`` gives the decoded class and the standard accuracy code path
works unchanged.  Training uses the per-bit binary cross-entropy.
"""

from __future__ import annotations

import numpy as np

from ..data.loader import Dataset, DataLoader
from ..nn import bce_with_logits
from ..nn.module import Module, Sequential
from ..nn.layers import Linear
from ..nn.optim import SGD
from ..nn.tensor import Tensor
from ..utils.rng import get_rng
from .base import RobustTrainingMethod

__all__ = ["FTNA", "ECOCHead", "build_codebook", "replace_final_linear"]


def build_codebook(num_classes: int, code_length: int, rng=None,
                   min_distance: int = 2) -> np.ndarray:
    """Random binary codebook with pairwise Hamming distance ≥ ``min_distance``.

    Codewords are sampled until the distance constraint holds (or a retry
    budget is exhausted, in which case the best attempt is returned), which
    is sufficient for the small class counts used in the experiments.
    """
    if code_length < int(np.ceil(np.log2(max(num_classes, 2)))):
        raise ValueError("code_length too small to give each class a distinct codeword")
    rng = get_rng(rng)
    best: np.ndarray | None = None
    best_min_dist = -1
    for _ in range(200):
        codebook = rng.integers(0, 2, size=(num_classes, code_length)).astype(np.float64)
        distances = [
            int(np.abs(codebook[i] - codebook[j]).sum())
            for i in range(num_classes) for j in range(i + 1, num_classes)
        ]
        current_min = min(distances) if distances else code_length
        if current_min > best_min_dist:
            best, best_min_dist = codebook, current_min
        if current_min >= min_distance:
            return codebook
    return best


class ECOCHead(Module):
    """Linear layer predicting code bits + Hamming-style decoding to classes."""

    def __init__(self, in_features: int, codebook: np.ndarray, rng=None):
        super().__init__()
        self.codebook = np.asarray(codebook, dtype=np.float64)
        self.num_classes, self.code_length = self.codebook.shape
        self.linear = Linear(in_features, self.code_length, rng=rng)

    def code_logits(self, features: Tensor) -> Tensor:
        """Raw per-bit logits (used by the training loss)."""
        return self.linear(features)

    def forward(self, features: Tensor) -> Tensor:
        """Class scores: negative soft Hamming distance to each codeword."""
        probabilities = self.linear(features).sigmoid()
        # Soft Hamming distance: sum_b |p_b - c_kb| for every class k.
        expanded = probabilities.reshape(probabilities.shape[0], 1, self.code_length)
        codes = Tensor(self.codebook.reshape(1, self.num_classes, self.code_length))
        distances = (expanded - codes).abs().sum(axis=2)
        return -distances


def replace_final_linear(model: Module, head: ECOCHead) -> None:
    """Swap the last Linear layer of ``model`` for the ECOC head, in place."""
    last_owner: Module | None = None
    last_name: str | None = None
    for _, module in model.named_modules():
        for child_name, child in list(module._modules.items()):
            if isinstance(child, Linear):
                last_owner, last_name = module, child_name
    if last_owner is None:
        raise ValueError("model contains no Linear layer to replace")
    final: Linear = last_owner._modules[last_name]
    if final.in_features != head.linear.in_features:
        raise ValueError("ECOC head input width does not match the model's final layer")
    last_owner._modules[last_name] = head
    object.__setattr__(last_owner, last_name, head)
    if isinstance(last_owner, Sequential):
        index = last_owner._ordered.index(final)
        last_owner._ordered[index] = head


class FTNA(RobustTrainingMethod):
    """Error-correcting-output-code baseline.

    Parameters (via ``config.extra``):

    * ``code_length`` — number of code bits (default ``4 × ⌈log2(classes)⌉``).
    """

    name = "FTNA"

    def __init__(self, num_classes: int, config=None, rng=None):
        super().__init__(config, rng)
        self.num_classes = int(num_classes)

    def apply(self, model: Module, dataset: Dataset) -> Module:
        cfg = self.config
        rng = get_rng(self.rng)
        default_length = 4 * int(np.ceil(np.log2(max(self.num_classes, 2))))
        code_length = int(cfg.extra.get("code_length", default_length))
        codebook = build_codebook(self.num_classes, code_length, rng=rng)

        # Find the final Linear layer to learn its input width, then replace it.
        final_width = None
        for _, module in model.named_modules():
            if isinstance(module, Linear):
                final_width = module.in_features
        if final_width is None:
            raise ValueError("model contains no Linear layer")
        head = ECOCHead(final_width, codebook, rng=rng)
        replace_final_linear(model, head)

        optimizer = SGD(model.parameters(), lr=cfg.learning_rate, momentum=cfg.momentum,
                        weight_decay=cfg.weight_decay)
        loader = DataLoader(dataset, batch_size=cfg.batch_size, shuffle=True, rng=rng)
        bit_targets = codebook  # (num_classes, code_length)

        for _ in range(cfg.epochs):
            model.train()
            for inputs, labels in loader:
                targets = bit_targets[labels]
                # Forward through the model but stop at the code logits: the
                # head is the last layer, so running the full model gives the
                # decoded scores; for the loss we need the bit logits, which we
                # obtain by running the model with the head temporarily in
                # "logit mode".
                logits = _forward_code_logits(model, head, Tensor(inputs))
                loss = bce_with_logits(logits, targets)
                optimizer.zero_grad()
                loss.backward()
                optimizer.step()
        return model


def _forward_code_logits(model: Module, head: ECOCHead, inputs: Tensor) -> Tensor:
    """Run ``model`` but capture the ECOC head's raw bit logits."""
    captured: dict[str, Tensor] = {}
    original_forward = head.forward

    def capturing_forward(features: Tensor) -> Tensor:
        logits = head.code_logits(features)
        captured["logits"] = logits
        # Return decoded scores so downstream layers (none, normally) still work.
        return original_forward(features)

    head.forward = capturing_forward
    try:
        model(inputs)
    finally:
        head.forward = original_forward
    return captured["logits"]
