"""Common interface for the robust-training baselines."""

from __future__ import annotations

from ..data.loader import Dataset
from ..nn.module import Module
from ..utils.config import ExperimentConfig

__all__ = ["RobustTrainingMethod"]


class RobustTrainingMethod:
    """A training procedure that hardens a model against weight drift.

    Sub-classes implement :meth:`apply`, which trains the given model (or a
    wrapped version of it) on the dataset and returns the module whose
    robustness should be evaluated.  The returned module must behave like a
    classifier (``forward`` → class scores) so that the same evaluation code
    serves every method.
    """

    name = "base"

    def __init__(self, config: ExperimentConfig | None = None, rng=None):
        self.config = config or ExperimentConfig()
        self.rng = rng

    def apply(self, model: Module, dataset: Dataset) -> Module:
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"
