"""Empirical risk minimisation: the plain-training baseline."""

from __future__ import annotations

from ..data.loader import Dataset
from ..nn.module import Module
from ..training.trainer import train_classifier
from .base import RobustTrainingMethod

__all__ = ["ERM"]


class ERM(RobustTrainingMethod):
    """Standard training with no drift-awareness whatsoever."""

    name = "ERM"

    def apply(self, model: Module, dataset: Dataset) -> Module:
        cfg = self.config
        train_classifier(model, dataset, epochs=cfg.epochs, batch_size=cfg.batch_size,
                         learning_rate=cfg.learning_rate, momentum=cfg.momentum,
                         weight_decay=cfg.weight_decay, optimizer=cfg.optimizer,
                         rng=self.rng)
        return model
