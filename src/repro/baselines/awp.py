"""AWP (Wu et al., NeurIPS 2020): adversarial weight perturbation.

At every training step the weights are pushed a small step in the direction
that *increases* the loss (the adversarial weight perturbation), the
gradient of the task loss is computed at the perturbed point, and the update
is applied to the original weights.  This flattens the loss landscape in
weight space and should, in principle, help robustness to weight drift.

The paper finds AWP performs poorly on this problem — a too-strong
perturbation destabilises training ("the strong adversarial attack on the
neural network parameters caused training failures"); the ``gamma``
parameter reproduces that behaviour when set large.
"""

from __future__ import annotations

import numpy as np

from ..data.loader import Dataset, DataLoader
from ..nn import cross_entropy
from ..nn.module import Module
from ..nn.optim import SGD
from ..nn.tensor import Tensor
from ..utils.rng import get_rng
from .base import RobustTrainingMethod

__all__ = ["AWP"]


class AWP(RobustTrainingMethod):
    """Adversarial-weight-perturbation training.

    Parameters (via ``config.extra``):

    * ``gamma`` — relative magnitude of the adversarial perturbation
      (default 0.02; the perturbation added to a parameter is
      ``gamma · ‖w‖ · g/‖g‖`` per-parameter-tensor).
    * ``awp_warmup`` — number of initial epochs trained without perturbation
      (default 1) so the network first reaches a sensible region.
    """

    name = "AWP"

    def apply(self, model: Module, dataset: Dataset) -> Module:
        cfg = self.config
        rng = get_rng(self.rng)
        gamma = float(cfg.extra.get("gamma", 0.02))
        warmup = int(cfg.extra.get("awp_warmup", 1))
        optimizer = SGD(model.parameters(), lr=cfg.learning_rate,
                        momentum=cfg.momentum, weight_decay=cfg.weight_decay)
        loader = DataLoader(dataset, batch_size=cfg.batch_size, shuffle=True, rng=rng)
        parameters = list(model.parameters())

        for epoch in range(cfg.epochs):
            model.train()
            adversarial = epoch >= warmup
            for inputs, labels in loader:
                batch = Tensor(inputs)
                perturbations: list[np.ndarray] | None = None
                if adversarial:
                    # 1) gradient of the loss at the current weights.
                    loss = cross_entropy(model(batch), labels)
                    optimizer.zero_grad()
                    loss.backward()
                    # 2) ascend: w ← w + γ‖w‖ g/‖g‖ (per parameter tensor).
                    perturbations = []
                    for parameter in parameters:
                        grad = parameter.grad
                        if grad is None:
                            perturbations.append(np.zeros_like(parameter.data))
                            continue
                        grad_norm = np.linalg.norm(grad)
                        weight_norm = np.linalg.norm(parameter.data)
                        if grad_norm < 1e-12 or weight_norm < 1e-12:
                            perturbations.append(np.zeros_like(parameter.data))
                            continue
                        step = gamma * weight_norm * grad / grad_norm
                        parameter.data = parameter.data + step
                        perturbations.append(step)
                # 3) task gradient at the (possibly perturbed) weights.
                loss = cross_entropy(model(batch), labels)
                optimizer.zero_grad()
                loss.backward()
                # 4) remove the perturbation, then apply the SGD update.
                if perturbations is not None:
                    for parameter, step in zip(parameters, perturbations):
                        parameter.data = parameter.data - step
                optimizer.step()
        return model
