"""ReRAM-V (Chen et al., DATE 2017): diagnose-and-readjust training.

The original method measures the *specific* drift pattern of one physical
ReRAM device and then retrains/readjusts the network weights so that, when
programmed through that device's distortion, the effective weights realise
the desired function.  The crucial limitation the paper points out is that
the compensation is tied to the diagnosed pattern: drift that occurs later
(thermal noise, aging, a different device) is not covered, so robustness to
*fresh* drift — what Figure 3 measures — is limited.

Simulation here: after normal training we sample one "diagnosed" drift
pattern per device, fold its inverse into the stored weights (so the
diagnosed device would realise the clean function exactly), and fine-tune
for a few epochs through the diagnosed distortion.  Evaluation then applies
*independent* drift on top, reproducing the qualitative behaviour the paper
reports (ReRAM-V ≈ ERM, sometimes worse at large σ because the compensation
enlarges weight magnitudes).
"""

from __future__ import annotations

import numpy as np

from ..data.loader import Dataset
from ..nn.module import Module
from ..training.trainer import train_classifier, Trainer
from ..utils.rng import get_rng
from .base import RobustTrainingMethod

__all__ = ["ReRAMV"]


class ReRAMV(RobustTrainingMethod):
    """Diagnose-and-readjust baseline.

    Parameters (via ``config.extra``):

    * ``diagnosed_sigma`` — σ of the diagnosed device pattern (default 0.3).
    * ``readjust_epochs`` — fine-tuning epochs after compensation (default 1).
    """

    name = "ReRAM-V"

    def apply(self, model: Module, dataset: Dataset) -> Module:
        cfg = self.config
        rng = get_rng(self.rng)
        diagnosed_sigma = float(cfg.extra.get("diagnosed_sigma", 0.3))
        readjust_epochs = int(cfg.extra.get("readjust_epochs", 1))

        # Phase 1: normal training.
        train_classifier(model, dataset, epochs=cfg.epochs, batch_size=cfg.batch_size,
                         learning_rate=cfg.learning_rate, momentum=cfg.momentum,
                         weight_decay=cfg.weight_decay, optimizer=cfg.optimizer,
                         rng=rng)

        # Phase 2: diagnose one device pattern and compensate for it.
        # The diagnosed multiplicative factor exp(λ) is inverted in the stored
        # weights, i.e. w_stored = w_desired / exp(λ_diagnosed).
        for _, parameter in model.named_parameters():
            diagnosed = np.exp(rng.normal(0.0, diagnosed_sigma, size=parameter.shape))
            parameter.data = parameter.data / diagnosed

        # Phase 3: brief readjustment fine-tuning so the compensated weights
        # still minimise the task loss (the iterative "readjust until
        # convergence" step of the original method, truncated for CPU budget).
        if readjust_epochs > 0:
            trainer = Trainer(model, learning_rate=cfg.learning_rate * 0.5,
                              momentum=cfg.momentum, optimizer=cfg.optimizer, rng=rng)
            trainer.fit(dataset, epochs=readjust_epochs, batch_size=cfg.batch_size)
        return model
