"""Baseline robust-training methods compared against BayesFT in Figure 3.

* :class:`ERM` — plain empirical-risk minimisation.
* :class:`ReRAMV` — Chen et al. (DATE'17): diagnose a device's drift pattern
  and readjust/retrain the weights for that pattern.
* :class:`AWP` — Wu et al. (NeurIPS'20): adversarial weight perturbation.
* :class:`FTNA` — Liu et al. (DAC'19): replace the softmax head with an
  error-correcting output-code scheme.

Each method implements :class:`RobustTrainingMethod`: ``apply(model,
dataset)`` trains (and possibly wraps) the model and returns the network to
be evaluated with :func:`repro.evaluation.robustness_curve`.
"""

from .base import RobustTrainingMethod
from .erm import ERM
from .reram_v import ReRAMV
from .awp import AWP
from .ftna import FTNA, ECOCHead, build_codebook
from .registry import build_method, available_methods

__all__ = [
    "RobustTrainingMethod", "ERM", "ReRAMV", "AWP",
    "FTNA", "ECOCHead", "build_codebook",
    "build_method", "available_methods",
]
