"""Inference evaluators: the model-call side of trial evaluation.

The drift-sweep engine, the BayesFT inner objective and the ReRAM
program-and-verify deployment all end in the same inner loop: *install one
pre-drawn weight trial, run the evaluation function, collect its metrics*.
An :class:`InferenceEvaluator` owns exactly that loop, behind one contract:

``run(model, data, evaluate_fn, pending, apply_trial) -> [TrialResult]``

with ``pending`` the engine's deduplicated ``digest -> {parameter: array}``
mapping.  Two strategies implement it:

* :class:`PerTrialEvaluator` — the historical behaviour: one
  ``apply_trial`` + one full forward pass per trial.
* :class:`TrialBatchedEvaluator` — groups up to ``trial_batch`` trials,
  installs their arrays *stacked* along a leading trial axis (the
  injector's ``apply_trial`` writes arrays verbatim, so the same call
  installs stacked weights), and evaluates the whole group in one tiled
  forward pass through the :func:`repro.nn.functional.trial_batching`
  context.  The per-sample work (im2col, activations, pooling,
  normalisation statistics) is amortised across the group while the GEMMs
  stay per-trial with unchanged operand shapes — so the per-trial scores
  and losses are **bit-identical** to the per-trial evaluator's, and
  ``trial_batch`` is a pure scheduling knob like ``workers`` or
  ``max_chunk_trials``.

Batching requires the evaluation function to advertise the protocol
``evaluate_fn.evaluate_trials(model, data, trials) -> [metrics]`` (see
:mod:`repro.inference.metrics`); functions without it — e.g. the detection
mAP partial — silently fall back to per-trial evaluation, as do trial
groups whose parameter sets differ.

Evaluators run identically in the main process (serial path, serial
fallback) and inside execution-backend workers, which is how worker-side
batching amortises per-task overhead without a second code path.
"""

from __future__ import annotations

import time
from typing import Callable

import numpy as np

from ..execution.base import TrialResult, split_metrics
from ..telemetry import current

__all__ = [
    "InferenceEvaluator", "PerTrialEvaluator", "TrialBatchedEvaluator",
    "resolve_evaluator",
]


class InferenceEvaluator:
    """Contract: evaluate pre-drawn trials, return per-trial results.

    ``trial_batch`` is the scheduling granularity the execution backends
    read when grouping trials into worker tasks (1 = one trial per task,
    the historical shipping pattern).
    """

    name = "abstract"
    trial_batch = 1

    def run(self, model, data, evaluate_fn: Callable, pending: dict,
            apply_trial: Callable[[dict], None]) -> list[TrialResult]:
        """Evaluate every ``digest -> {parameter: array}`` trial in ``pending``.

        ``apply_trial`` installs one trial's arrays on ``model`` (resetting
        parameters absent from the trial to the clean snapshot); the caller
        owns snapshot/restore around the whole run.
        """
        raise NotImplementedError


class PerTrialEvaluator(InferenceEvaluator):
    """One ``apply_trial`` and one full forward pass per trial."""

    name = "per_trial"

    def run(self, model, data, evaluate_fn: Callable, pending: dict,
            apply_trial: Callable[[dict], None]) -> list[TrialResult]:
        telemetry = current()
        results = []
        for digest, params in pending.items():
            with telemetry.span("trial"):
                apply_trial(params)
                start = time.perf_counter()
                value = evaluate_fn(model, data)
                score, loss = split_metrics(value)
            results.append(TrialResult(digest, score, loss,
                                       time.perf_counter() - start))
        return results


class TrialBatchedEvaluator(InferenceEvaluator):
    """Evaluate up to ``trial_batch`` stacked trials per forward pass.

    Falls back to :class:`PerTrialEvaluator` semantics whenever batching
    cannot apply — a singleton group, an evaluation function without the
    ``evaluate_trials`` protocol, or a group whose trials drift different
    parameter subsets (stacking needs one common parameter set).  Per-trial
    ``seconds`` are the group's wall clock split evenly; timing is a
    volatile report field, so the attribution never affects canonical
    results.
    """

    name = "trial_batched"

    def __init__(self, trial_batch: int):
        if trial_batch < 1:
            raise ValueError("trial_batch must be at least 1")
        self.trial_batch = int(trial_batch)

    def run(self, model, data, evaluate_fn: Callable, pending: dict,
            apply_trial: Callable[[dict], None]) -> list[TrialResult]:
        fallback = PerTrialEvaluator()
        if self.trial_batch < 2 or not hasattr(evaluate_fn, "evaluate_trials"):
            return fallback.run(model, data, evaluate_fn, pending, apply_trial)
        items = list(pending.items())
        results = []
        for start in range(0, len(items), self.trial_batch):
            group = items[start:start + self.trial_batch]
            names = set(group[0][1])
            if len(group) == 1 or any(set(params) != names
                                      for _, params in group[1:]):
                results.extend(fallback.run(model, data, evaluate_fn,
                                            dict(group), apply_trial))
                continue
            stacked = {name: np.stack([params[name] for _, params in group])
                       for name in group[0][1]}
            begin = time.perf_counter()
            with current().span("trial_batch", trials=len(group)):
                apply_trial(stacked)
                metrics = evaluate_fn.evaluate_trials(model, data, len(group))
            if len(metrics) != len(group):
                raise RuntimeError(
                    f"{type(evaluate_fn).__name__}.evaluate_trials returned "
                    f"{len(metrics)} results for {len(group)} trials")
            share = (time.perf_counter() - begin) / len(group)
            for (digest, _), value in zip(group, metrics):
                score, loss = split_metrics(value)
                results.append(TrialResult(digest, score, loss, share,
                                           batched=True))
        return results


def resolve_evaluator(trial_batch: int | None) -> InferenceEvaluator:
    """Turn the engine's ``trial_batch`` knob into an evaluator instance."""
    if trial_batch is not None and int(trial_batch) < 1:
        raise ValueError("trial_batch must be at least 1 (or None)")
    if trial_batch is None or int(trial_batch) == 1:
        return PerTrialEvaluator()
    return TrialBatchedEvaluator(int(trial_batch))
