"""Trial-batched inference: who calls the model, and how many trials at once.

This package owns the model-call side of Monte-Carlo fault evaluation —
the :class:`InferenceEvaluator` contract between the measurement layers
(sweep engine, BayesFT objective, ReRAM deploy) and :mod:`repro.nn` — plus
the batched-capable metrics the evaluators drive.  See
:mod:`repro.inference.evaluator` for the determinism story: trial batching
is a scheduling knob, never a results knob.
"""

from .evaluator import (
    InferenceEvaluator, PerTrialEvaluator, TrialBatchedEvaluator,
    resolve_evaluator,
)
from .metrics import AccuracyAndLoss, ClassificationAccuracy

__all__ = [
    "InferenceEvaluator", "PerTrialEvaluator", "TrialBatchedEvaluator",
    "resolve_evaluator", "AccuracyAndLoss", "ClassificationAccuracy",
]
