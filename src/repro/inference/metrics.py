"""Batched-capable evaluation metrics.

These are the evaluation functions the measurement layers pass to the
sweep engine, upgraded with the ``evaluate_trials`` protocol the
:class:`~repro.inference.evaluator.TrialBatchedEvaluator` looks for:

``evaluate_trials(model, data, trials) -> [metrics]``

called *after* the fault injector has installed ``trials`` weight
realisations stacked along a leading trial axis.  The implementation tiles
the evaluation inputs trial-major, runs one forward pass inside
:func:`repro.nn.functional.trial_batching`, and unstacks per-trial scores
— computing each trial's metric from exactly the logits the per-trial call
path would produce, so both paths are bit-identical.

Both metrics are module-level classes with plain-data attributes, so the
process-pool backends can pickle them to workers (the reason the engine's
historical ``functools.partial(classification_accuracy, ...)`` default
became :class:`ClassificationAccuracy`).
"""

from __future__ import annotations

import numpy as np

from ..data.loader import DataLoader
from ..nn import cross_entropy
from ..nn.functional import trial_batching
from ..nn.tensor import Tensor, no_grad

__all__ = ["ClassificationAccuracy", "AccuracyAndLoss"]


class ClassificationAccuracy:
    """Classification accuracy over a dataset, per-trial or trial-batched.

    Calling the instance reproduces
    :func:`repro.evaluation.robustness.accuracy` exactly (same loader, same
    integer-count arithmetic).  ``evaluate_trials`` keeps the same
    per-sample batch boundaries and tiles each batch trial-major, so every
    trial's logits — and therefore its accuracy — match the per-trial path
    bit for bit.
    """

    def __init__(self, batch_size: int = 256):
        self.batch_size = int(batch_size)

    def __call__(self, model, data) -> float:
        model.eval()
        loader = DataLoader(data, batch_size=self.batch_size, shuffle=False)
        correct = 0
        for inputs, labels in loader:
            with no_grad():
                logits = model(Tensor(inputs))
            correct += int((logits.data.argmax(axis=1) == labels).sum())
        return correct / max(len(data), 1)

    def evaluate_trials(self, model, data, trials: int) -> list[float]:
        model.eval()
        loader = DataLoader(data, batch_size=self.batch_size, shuffle=False)
        correct = np.zeros(trials, dtype=np.int64)
        for inputs, labels in loader:
            tiled = np.concatenate([inputs] * trials, axis=0)
            with no_grad(), trial_batching(trials):
                logits = model(Tensor(tiled))
            predictions = logits.data.argmax(axis=1).reshape(trials,
                                                             len(labels))
            correct += (predictions == labels[None, :]).sum(axis=1)
        total = max(len(data), 1)
        return [int(count) / total for count in correct]


class AccuracyAndLoss:
    """Accuracy and cross-entropy from one forward pass per trial (batch).

    The BayesFT inner objective's metric: the engine stores the accuracy as
    the trial score and the loss in the report's loss track, so one sweep
    serves Eq. 3 (``neg_loss``) and the figures (``accuracy``).  Evaluation
    data is one pre-subsampled batch, consumed whole (no loader).  The
    caller owns ``model.eval()``, exactly like the historical
    ``_batch_metrics`` function this class replaces as the engine default.
    """

    def __call__(self, model, batch) -> tuple[float, float]:
        with no_grad():
            logits = model(Tensor(batch.inputs))
        score = float((logits.data.argmax(axis=1) == batch.labels).mean())
        loss = float(cross_entropy(logits, batch.labels).item())
        return score, loss

    def evaluate_trials(self, model, batch,
                        trials: int) -> list[tuple[float, float]]:
        samples = batch.inputs.shape[0]
        tiled = np.concatenate([batch.inputs] * trials, axis=0)
        with no_grad(), trial_batching(trials):
            logits = model(Tensor(tiled))
        results = []
        for index in range(trials):
            block = logits.data[index * samples:(index + 1) * samples]
            score = float((block.argmax(axis=1) == batch.labels).mean())
            loss = float(cross_entropy(Tensor(block), batch.labels).item())
            results.append((score, loss))
        return results
