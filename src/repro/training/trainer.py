"""Generic SGD training loops for classifiers and the TinyDetector."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from ..nn import cross_entropy
from ..nn.module import Module
from ..nn.optim import SGD, Adam, Optimizer
from ..nn.tensor import Tensor, no_grad
from ..data.loader import Dataset, DataLoader
from ..utils.rng import get_rng

__all__ = ["TrainingResult", "Trainer", "train_classifier", "train_detector"]


@dataclass
class TrainingResult:
    """Loss/accuracy history of one training run."""

    train_losses: list = field(default_factory=list)
    train_accuracies: list = field(default_factory=list)
    epochs: int = 0

    @property
    def final_loss(self) -> float:
        return self.train_losses[-1] if self.train_losses else float("nan")

    @property
    def final_accuracy(self) -> float:
        return self.train_accuracies[-1] if self.train_accuracies else float("nan")


class Trainer:
    """Mini-batch trainer for classification models.

    Parameters
    ----------
    model:
        Any module mapping an input batch tensor to class logits.
    learning_rate, momentum, weight_decay:
        SGD hyper-parameters (Algorithm 1 trains θ with SGD).
    optimizer:
        ``"sgd"`` or ``"adam"``.
    loss_hook:
        Optional callable ``(model, inputs, labels, base_loss) -> Tensor``
        letting baselines (e.g. AWP) modify the loss per batch.
    """

    def __init__(self, model: Module, learning_rate: float = 0.05, momentum: float = 0.9,
                 weight_decay: float = 0.0, optimizer: str = "sgd",
                 loss_hook: Callable | None = None, rng=None):
        self.model = model
        self.rng = get_rng(rng)
        self.loss_hook = loss_hook
        if optimizer == "sgd":
            self.optimizer: Optimizer = SGD(model.parameters(), lr=learning_rate,
                                            momentum=momentum, weight_decay=weight_decay)
        elif optimizer == "adam":
            self.optimizer = Adam(model.parameters(), lr=learning_rate,
                                  weight_decay=weight_decay)
        else:
            raise ValueError(f"unknown optimizer {optimizer!r}")

    def train_epoch(self, loader: DataLoader) -> tuple[float, float]:
        """One pass over the loader; returns (mean loss, accuracy)."""
        self.model.train()
        total_loss = 0.0
        total_correct = 0
        total_seen = 0
        for inputs, labels in loader:
            batch = Tensor(inputs)
            logits = self.model(batch)
            loss = cross_entropy(logits, labels)
            if self.loss_hook is not None:
                loss = self.loss_hook(self.model, batch, labels, loss)
            self.optimizer.zero_grad()
            loss.backward()
            self.optimizer.step()
            total_loss += loss.item() * len(labels)
            total_correct += int((logits.data.argmax(axis=1) == labels).sum())
            total_seen += len(labels)
        return total_loss / max(total_seen, 1), total_correct / max(total_seen, 1)

    def fit(self, dataset: Dataset, epochs: int = 5, batch_size: int = 64) -> TrainingResult:
        """Train for ``epochs`` passes over ``dataset``."""
        loader = DataLoader(dataset, batch_size=batch_size, shuffle=True, rng=self.rng)
        result = TrainingResult()
        for _ in range(epochs):
            loss, accuracy = self.train_epoch(loader)
            result.train_losses.append(loss)
            result.train_accuracies.append(accuracy)
            result.epochs += 1
        return result

    def evaluate(self, dataset: Dataset, batch_size: int = 128) -> float:
        """Clean test accuracy of the current weights."""
        self.model.eval()
        loader = DataLoader(dataset, batch_size=batch_size, shuffle=False)
        correct = 0
        for inputs, labels in loader:
            with no_grad():
                logits = self.model(Tensor(inputs))
            correct += int((logits.data.argmax(axis=1) == labels).sum())
        return correct / max(len(dataset), 1)


def train_classifier(model: Module, dataset: Dataset, epochs: int = 5,
                     batch_size: int = 64, learning_rate: float = 0.05,
                     momentum: float = 0.9, weight_decay: float = 0.0,
                     optimizer: str = "sgd", rng=None) -> TrainingResult:
    """Convenience wrapper: build a :class:`Trainer` and fit it."""
    trainer = Trainer(model, learning_rate=learning_rate, momentum=momentum,
                      weight_decay=weight_decay, optimizer=optimizer, rng=rng)
    return trainer.fit(dataset, epochs=epochs, batch_size=batch_size)


def train_detector(detector, samples, epochs: int = 10, batch_size: int = 8,
                   learning_rate: float = 0.01, rng=None) -> list[float]:
    """Train a :class:`~repro.models.detection.TinyDetector` on detection samples.

    Returns the per-epoch mean loss.
    """
    rng = get_rng(rng)
    optimizer = Adam(detector.parameters(), lr=learning_rate)
    losses = []
    indices = np.arange(len(samples))
    for _ in range(epochs):
        rng.shuffle(indices)
        epoch_loss = 0.0
        batches = 0
        detector.train()
        for start in range(0, len(indices), batch_size):
            batch_idx = indices[start:start + batch_size]
            images = np.stack([samples[i].image for i in batch_idx])
            boxes = [samples[i].boxes for i in batch_idx]
            loss = detector.loss(Tensor(images), boxes)
            optimizer.zero_grad()
            loss.backward()
            optimizer.step()
            epoch_loss += loss.item()
            batches += 1
        losses.append(epoch_loss / max(batches, 1))
    return losses
