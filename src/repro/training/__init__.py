"""Training loops shared by the baselines and the BayesFT search."""

from .trainer import Trainer, TrainingResult, train_classifier, train_detector

__all__ = ["Trainer", "TrainingResult", "train_classifier", "train_detector"]
