"""Simple image transforms used for data augmentation and preprocessing."""

from __future__ import annotations

import numpy as np

from ..utils.rng import get_rng

__all__ = ["normalize_images", "random_crop", "random_flip", "add_pixel_noise"]


def normalize_images(images: np.ndarray, mean: float | None = None,
                     std: float | None = None) -> np.ndarray:
    """Standardise images to zero mean and unit variance (per batch)."""
    images = np.asarray(images, dtype=np.float64)
    mean = images.mean() if mean is None else mean
    std = images.std() if std is None else std
    return (images - mean) / (std + 1e-8)


def random_crop(images: np.ndarray, padding: int = 2, rng=None) -> np.ndarray:
    """Pad then randomly crop back to the original size (CIFAR-style augmentation)."""
    rng = get_rng(rng)
    if images.ndim != 4:
        raise ValueError("random_crop expects NCHW images")
    n, c, h, w = images.shape
    padded = np.pad(images, ((0, 0), (0, 0), (padding, padding), (padding, padding)))
    out = np.empty_like(images)
    for i in range(n):
        top = rng.integers(0, 2 * padding + 1)
        left = rng.integers(0, 2 * padding + 1)
        out[i] = padded[i, :, top:top + h, left:left + w]
    return out


def random_flip(images: np.ndarray, probability: float = 0.5, rng=None) -> np.ndarray:
    """Randomly flip each image horizontally."""
    rng = get_rng(rng)
    if images.ndim != 4:
        raise ValueError("random_flip expects NCHW images")
    out = images.copy()
    flips = rng.random(len(images)) < probability
    out[flips] = out[flips][:, :, :, ::-1]
    return out


def add_pixel_noise(images: np.ndarray, sigma: float = 0.05, rng=None) -> np.ndarray:
    """Add clipped Gaussian pixel noise."""
    rng = get_rng(rng)
    noisy = images + rng.normal(0, sigma, size=images.shape)
    return np.clip(noisy, 0.0, 1.0)
