"""Dataset registry: build any evaluation dataset from its name.

The scenario subsystem and the figure harnesses refer to datasets by the
names used in the paper's experiments ("mnist", "cifar", "gtsrb",
"pedestrians"); this registry maps those names to constructors together with
the image metadata (channels, default class count) a model constructor
needs.  Each builder hides the dataset's quirks — e.g. GTSRB bumps the
sample count so that every one of its 43 classes appears — so that the
:class:`~repro.scenarios.runner.ScenarioRunner` and the fig3 harness share
one construction path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from .cifar import SyntheticCIFAR
from .detection import SyntheticPedestrians
from .gtsrb import SyntheticGTSRB
from .mnist import SyntheticMNIST

__all__ = ["DatasetInfo", "build_dataset", "dataset_info", "available_datasets"]


@dataclass(frozen=True)
class DatasetInfo:
    """Registry entry: constructor plus the metadata a model builder needs."""

    builder: Callable
    in_channels: int
    num_classes: int
    task: str = "classification"  # or "detection"


def _build_mnist(n_samples, image_size, num_classes, rng, **kwargs):
    if num_classes not in (None, 10):
        raise ValueError("the MNIST stand-in is fixed at 10 classes")
    return SyntheticMNIST(n_samples=n_samples, image_size=image_size, rng=rng, **kwargs)


def _build_cifar(n_samples, image_size, num_classes, rng, **kwargs):
    return SyntheticCIFAR(n_samples=n_samples, image_size=image_size,
                          num_classes=num_classes or 10, rng=rng, **kwargs)


def _build_gtsrb(n_samples, image_size, num_classes, rng, **kwargs):
    num_classes = num_classes or 43
    # Every class must appear at least a few times or training collapses.
    return SyntheticGTSRB(n_samples=max(n_samples, num_classes * 6),
                          image_size=image_size, num_classes=num_classes,
                          rng=rng, **kwargs)


def _build_pedestrians(n_samples, image_size, num_classes, rng, **kwargs):
    return SyntheticPedestrians(n_samples=n_samples, image_size=image_size,
                                rng=rng, **kwargs)


_REGISTRY: dict[str, DatasetInfo] = {
    "mnist": DatasetInfo(_build_mnist, in_channels=1, num_classes=10),
    "cifar": DatasetInfo(_build_cifar, in_channels=3, num_classes=10),
    "gtsrb": DatasetInfo(_build_gtsrb, in_channels=3, num_classes=43),
    "pedestrians": DatasetInfo(_build_pedestrians, in_channels=3, num_classes=1,
                               task="detection"),
}


def available_datasets() -> list[str]:
    """Names accepted by :func:`build_dataset`."""
    return sorted(_REGISTRY)


def dataset_info(name: str) -> DatasetInfo:
    """Registry metadata (channels, default classes, task) for a dataset."""
    key = name.lower()
    if key not in _REGISTRY:
        raise ValueError(f"unknown dataset {name!r}; available: {available_datasets()}")
    return _REGISTRY[key]


def build_dataset(name: str, n_samples: int, image_size: int = 16,
                  num_classes: int | None = None, rng=None, **kwargs):
    """Instantiate a dataset by name with the registry's per-dataset rules."""
    return dataset_info(name).builder(n_samples=n_samples, image_size=image_size,
                                      num_classes=num_classes, rng=rng, **kwargs)
