"""Synthetic MNIST: procedurally rendered digit glyphs.

Each of the ten classes is a fixed 7x5 binary glyph (the classic seven-segment
style digit shapes) rendered into a 16x16 or 28x28 canvas with random
translation, scaling jitter, stroke-intensity variation and pixel noise.
Classes are visually distinct yet overlapping enough that a small network
does not reach 100% accuracy instantly, mirroring MNIST's role in the paper:
an easy 10-class image task whose accuracy collapses under weight drift.
"""

from __future__ import annotations

import numpy as np

from ..utils.rng import get_rng
from .loader import Dataset

__all__ = ["SyntheticMNIST", "DIGIT_GLYPHS"]


# 7 rows x 5 columns binary templates for the digits 0-9.
DIGIT_GLYPHS = {
    0: ["01110", "10001", "10011", "10101", "11001", "10001", "01110"],
    1: ["00100", "01100", "00100", "00100", "00100", "00100", "01110"],
    2: ["01110", "10001", "00001", "00110", "01000", "10000", "11111"],
    3: ["01110", "10001", "00001", "00110", "00001", "10001", "01110"],
    4: ["00010", "00110", "01010", "10010", "11111", "00010", "00010"],
    5: ["11111", "10000", "11110", "00001", "00001", "10001", "01110"],
    6: ["00110", "01000", "10000", "11110", "10001", "10001", "01110"],
    7: ["11111", "00001", "00010", "00100", "01000", "01000", "01000"],
    8: ["01110", "10001", "10001", "01110", "10001", "10001", "01110"],
    9: ["01110", "10001", "10001", "01111", "00001", "00010", "01100"],
}


def _glyph_array(digit: int) -> np.ndarray:
    rows = DIGIT_GLYPHS[digit]
    return np.array([[float(ch) for ch in row] for row in rows])


def _render_digit(digit: int, image_size: int, rng: np.random.Generator,
                  noise: float, max_shift: int = 2) -> np.ndarray:
    """Render one digit glyph into an image with small placement jitter.

    The glyph is scaled to fill most of the canvas and placed near the
    centre with at most ``max_shift`` pixels of translation jitter — enough
    variation that the task is not trivially memorisable, while keeping it
    learnable by a flattened-input MLP (mirroring real MNIST, whose digits
    are size-normalised and centred).
    """
    glyph = _glyph_array(digit)
    scale = max(1, min((image_size - 2) // glyph.shape[0], (image_size - 2) // glyph.shape[1]))
    scaled = np.kron(glyph, np.ones((scale, scale)))
    canvas = np.zeros((image_size, image_size))
    center_row = (image_size - scaled.shape[0]) // 2
    center_col = (image_size - scaled.shape[1]) // 2
    max_row = image_size - scaled.shape[0]
    max_col = image_size - scaled.shape[1]
    row = int(np.clip(center_row + rng.integers(-max_shift, max_shift + 1), 0, max_row))
    col = int(np.clip(center_col + rng.integers(-max_shift, max_shift + 1), 0, max_col))
    intensity = rng.uniform(0.8, 1.0)
    canvas[row:row + scaled.shape[0], col:col + scaled.shape[1]] = scaled * intensity
    if noise > 0:
        canvas = canvas + rng.normal(0.0, noise, size=canvas.shape)
    return np.clip(canvas, 0.0, 1.0)


class SyntheticMNIST(Dataset):
    """Procedural 10-class digit dataset with NCHW image tensors.

    Parameters
    ----------
    n_samples:
        Total number of images (classes are balanced up to rounding).
    image_size:
        Side length of the square single-channel image (default 16 keeps CPU
        training fast; 28 matches the real MNIST geometry).
    noise:
        Std of the additive pixel noise, controlling task difficulty.
    flatten:
        If True, images are returned as flat vectors (for MLPs).
    """

    num_classes = 10

    def __init__(self, n_samples: int = 1000, image_size: int = 16,
                 noise: float = 0.15, flatten: bool = False, rng=None):
        if n_samples < 10:
            raise ValueError("need at least one sample per class")
        rng = get_rng(rng)
        labels = np.arange(n_samples) % self.num_classes
        rng.shuffle(labels)
        images = np.stack([_render_digit(int(digit), image_size, rng, noise)
                           for digit in labels])
        images = images[:, None, :, :]  # NCHW with one channel
        if flatten:
            images = images.reshape(n_samples, -1)
        super().__init__(images, labels.astype(np.int64))
        self.image_size = image_size
        self.flatten = flatten

    @property
    def input_dim(self) -> int:
        """Flattened input dimensionality (for building MLPs)."""
        return int(np.prod(self.inputs.shape[1:]))
