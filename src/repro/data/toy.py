"""Two-dimensional toy datasets.

Figure 1 of the paper visualises decision-boundary shift on "a simple binary
classification dataset generated with Scikit-Learn".  ``make_moons`` and
``make_blobs`` are re-implemented here (scikit-learn is not installed) with
the same semantics.
"""

from __future__ import annotations

import numpy as np

from ..utils.rng import get_rng
from .loader import Dataset

__all__ = ["make_moons", "make_blobs", "ToyDataset"]


def make_moons(n_samples: int = 400, noise: float = 0.1, rng=None) -> tuple[np.ndarray, np.ndarray]:
    """Two interleaving half-circles (the scikit-learn "moons" dataset)."""
    rng = get_rng(rng)
    n_outer = n_samples // 2
    n_inner = n_samples - n_outer
    outer_angle = np.pi * rng.random(n_outer)
    inner_angle = np.pi * rng.random(n_inner)
    outer = np.stack([np.cos(outer_angle), np.sin(outer_angle)], axis=1)
    inner = np.stack([1.0 - np.cos(inner_angle), 0.5 - np.sin(inner_angle)], axis=1)
    points = np.concatenate([outer, inner], axis=0)
    labels = np.concatenate([np.zeros(n_outer, dtype=np.int64),
                             np.ones(n_inner, dtype=np.int64)])
    if noise > 0:
        points = points + rng.normal(0.0, noise, size=points.shape)
    return points, labels


def make_blobs(n_samples: int = 400, centers: int = 2, spread: float = 0.6,
               box: float = 4.0, rng=None) -> tuple[np.ndarray, np.ndarray]:
    """Isotropic Gaussian blobs with ``centers`` classes."""
    rng = get_rng(rng)
    centroids = rng.uniform(-box, box, size=(centers, 2))
    labels = rng.integers(0, centers, size=n_samples)
    points = centroids[labels] + rng.normal(0.0, spread, size=(n_samples, 2))
    return points, labels.astype(np.int64)


class ToyDataset(Dataset):
    """A 2-D dataset wrapper with a grid helper for decision-boundary plots."""

    def __init__(self, kind: str = "moons", n_samples: int = 400, noise: float = 0.1,
                 centers: int = 2, rng=None):
        if kind == "moons":
            points, labels = make_moons(n_samples, noise, rng=rng)
        elif kind == "blobs":
            points, labels = make_blobs(n_samples, centers=centers, rng=rng)
        else:
            raise ValueError(f"unknown toy dataset kind {kind!r}")
        self.kind = kind
        super().__init__(points, labels)

    def grid(self, resolution: int = 50, margin: float = 0.5) -> tuple[np.ndarray, tuple]:
        """Return a flattened (resolution², 2) grid covering the data extent.

        Used by the Figure-1 experiment to rasterise the decision boundary.
        """
        x_min, y_min = self.inputs.min(axis=0) - margin
        x_max, y_max = self.inputs.max(axis=0) + margin
        xs = np.linspace(x_min, x_max, resolution)
        ys = np.linspace(y_min, y_max, resolution)
        grid_x, grid_y = np.meshgrid(xs, ys)
        points = np.stack([grid_x.ravel(), grid_y.ravel()], axis=1)
        return points, (resolution, resolution)
