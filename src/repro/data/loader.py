"""Dataset and DataLoader abstractions."""

from __future__ import annotations

from typing import Iterator

import numpy as np

from ..utils.rng import get_rng

__all__ = ["Dataset", "DataLoader", "train_test_split"]


class Dataset:
    """A simple in-memory dataset of ``(inputs, labels)`` numpy arrays."""

    def __init__(self, inputs: np.ndarray, labels: np.ndarray):
        inputs = np.asarray(inputs, dtype=np.float64)
        labels = np.asarray(labels)
        if len(inputs) != len(labels):
            raise ValueError("inputs and labels must have the same length")
        self.inputs = inputs
        self.labels = labels
        # Number of classes; subclasses may overwrite (e.g. 43 for GTSRB even
        # if a small sample happens not to contain every class).
        self.num_classes = int(labels.max()) + 1 if len(labels) and labels.dtype.kind in "iu" else 0

    def __len__(self) -> int:
        return len(self.inputs)

    def __getitem__(self, index):
        return self.inputs[index], self.labels[index]

    def subset(self, indices) -> "Dataset":
        """Return a new dataset restricted to ``indices`` (class count preserved)."""
        subset = Dataset(self.inputs[indices], self.labels[indices])
        subset.num_classes = self.num_classes
        return subset


class DataLoader:
    """Mini-batch iterator over a :class:`Dataset`."""

    def __init__(self, dataset: Dataset, batch_size: int = 32, shuffle: bool = True,
                 drop_last: bool = False, rng=None):
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        self.dataset = dataset
        self.batch_size = batch_size
        self.shuffle = shuffle
        self.drop_last = drop_last
        self.rng = get_rng(rng)

    def __len__(self) -> int:
        n = len(self.dataset)
        if self.drop_last:
            return n // self.batch_size
        return (n + self.batch_size - 1) // self.batch_size

    def __iter__(self) -> Iterator[tuple[np.ndarray, np.ndarray]]:
        indices = np.arange(len(self.dataset))
        if self.shuffle:
            self.rng.shuffle(indices)
        for start in range(0, len(indices), self.batch_size):
            batch = indices[start:start + self.batch_size]
            if self.drop_last and len(batch) < self.batch_size:
                break
            yield self.dataset.inputs[batch], self.dataset.labels[batch]


def train_test_split(dataset: Dataset, test_fraction: float = 0.2,
                     rng=None) -> tuple[Dataset, Dataset]:
    """Split a dataset into train/test subsets with shuffling."""
    if not 0.0 < test_fraction < 1.0:
        raise ValueError("test_fraction must lie in (0, 1)")
    rng = get_rng(rng)
    indices = np.arange(len(dataset))
    rng.shuffle(indices)
    cut = int(round(len(dataset) * (1.0 - test_fraction)))
    return dataset.subset(indices[:cut]), dataset.subset(indices[cut:])
