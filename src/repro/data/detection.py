"""Synthetic pedestrian-detection dataset (PennFudanPed stand-in).

PennFudanPed contains street scenes with one or more pedestrians and
per-instance bounding boxes.  The synthetic substitute renders a structured
"street" background (ground plane, sky gradient, building-like rectangles)
and 1–3 bright vertical "pedestrians" of varying height/aspect, returning
the images together with ground-truth boxes in ``(x1, y1, x2, y2)`` pixel
coordinates.  That is everything the paper's Figure 3(j) / Figure 4
comparison needs: a detector whose mAP can be measured while its weights
drift.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..utils.rng import get_rng

__all__ = ["DetectionSample", "SyntheticPedestrians"]


@dataclass
class DetectionSample:
    """One detection example: an image plus its ground-truth boxes."""

    image: np.ndarray          # (3, H, W) float64 in [0, 1]
    boxes: np.ndarray          # (num_objects, 4) as x1, y1, x2, y2 pixels

    @property
    def num_objects(self) -> int:
        return int(self.boxes.shape[0])


def _render_background(image_size: int, rng: np.random.Generator) -> np.ndarray:
    h = w = image_size
    yy = np.linspace(0, 1, h)[:, None] * np.ones((1, w))
    sky = np.stack([0.4 + 0.2 * (1 - yy), 0.5 + 0.2 * (1 - yy), 0.7 * (1 - yy) + 0.2])
    ground = np.stack([0.3 * yy, 0.28 * yy, 0.25 * yy])
    image = np.where(yy[None] < 0.6, sky, ground * 1.5)
    # Building-like dark rectangles.
    for _ in range(rng.integers(1, 4)):
        bw = int(rng.integers(w // 8, w // 3))
        bh = int(rng.integers(h // 6, h // 2))
        x0 = int(rng.integers(0, w - bw))
        y0 = int(rng.integers(0, h // 3))
        colour = rng.uniform(0.1, 0.4, size=3)[:, None, None]
        image[:, y0:y0 + bh, x0:x0 + bw] = colour
    return image


def _render_pedestrian(image: np.ndarray, rng: np.random.Generator) -> np.ndarray:
    """Draw one pedestrian; returns its bounding box (x1, y1, x2, y2)."""
    _, h, w = image.shape
    ped_h = int(rng.integers(h // 3, int(h * 0.7)))
    ped_w = max(2, int(ped_h * rng.uniform(0.25, 0.4)))
    x1 = int(rng.integers(0, max(1, w - ped_w)))
    y1 = int(rng.integers(int(h * 0.25), max(int(h * 0.25) + 1, h - ped_h)))
    x2, y2 = x1 + ped_w, min(h, y1 + ped_h)
    body_colour = rng.uniform(0.6, 1.0, size=3)[:, None, None]
    image[:, y1:y2, x1:x2] = body_colour
    # Head: a brighter square on top third.
    head_h = max(1, (y2 - y1) // 4)
    image[:, y1:y1 + head_h, x1:x2] = np.clip(body_colour * 1.2, 0, 1)
    # Legs: darker split at the bottom third.
    leg_y = y1 + 2 * (y2 - y1) // 3
    mid = x1 + ped_w // 2
    image[:, leg_y:y2, mid:mid + 1] = 0.05
    return np.array([x1, y1, x2, y2], dtype=np.float64)


class SyntheticPedestrians:
    """A list-like dataset of :class:`DetectionSample` items."""

    def __init__(self, n_samples: int = 64, image_size: int = 32,
                 max_pedestrians: int = 2, noise: float = 0.03, rng=None):
        if n_samples <= 0:
            raise ValueError("n_samples must be positive")
        if max_pedestrians < 1:
            raise ValueError("max_pedestrians must be at least 1")
        rng = get_rng(rng)
        self.image_size = image_size
        self.samples: list[DetectionSample] = []
        for _ in range(n_samples):
            image = _render_background(image_size, rng)
            count = int(rng.integers(1, max_pedestrians + 1))
            boxes = np.stack([_render_pedestrian(image, rng) for _ in range(count)])
            if noise > 0:
                image = np.clip(image + rng.normal(0, noise, size=image.shape), 0, 1)
            self.samples.append(DetectionSample(image=image, boxes=boxes))

    def __len__(self) -> int:
        return len(self.samples)

    def __getitem__(self, index: int) -> DetectionSample:
        return self.samples[index]

    def __iter__(self):
        return iter(self.samples)

    def images(self) -> np.ndarray:
        """All images stacked into an (N, 3, H, W) array."""
        return np.stack([sample.image for sample in self.samples])

    def split(self, test_fraction: float = 0.25, rng=None):
        """Split into (train, test) lists of samples."""
        rng = get_rng(rng)
        indices = np.arange(len(self.samples))
        rng.shuffle(indices)
        cut = int(round(len(indices) * (1 - test_fraction)))
        train = [self.samples[i] for i in indices[:cut]]
        test = [self.samples[i] for i in indices[cut:]]
        return train, test
