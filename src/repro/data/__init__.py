"""Synthetic datasets standing in for MNIST, CIFAR-10, GTSRB and PennFudanPed.

This environment has no network access, so the photographic datasets the
paper evaluates on cannot be downloaded.  Each dataset here is generated
procedurally with controllable class structure and difficulty; see DESIGN.md
§2 for why this substitution preserves the paper's comparisons (the
evaluation measures *relative* accuracy degradation under weight drift,
which depends on the architecture and the noise, not on the image corpus).
"""

from .toy import make_moons, make_blobs, ToyDataset
from .mnist import SyntheticMNIST
from .cifar import SyntheticCIFAR
from .gtsrb import SyntheticGTSRB
from .detection import SyntheticPedestrians, DetectionSample
from .loader import Dataset, DataLoader, train_test_split
from .registry import DatasetInfo, build_dataset, dataset_info, available_datasets
from .transforms import normalize_images, random_crop, random_flip, add_pixel_noise

__all__ = [
    "make_moons", "make_blobs", "ToyDataset",
    "SyntheticMNIST", "SyntheticCIFAR", "SyntheticGTSRB",
    "SyntheticPedestrians", "DetectionSample",
    "Dataset", "DataLoader", "train_test_split",
    "DatasetInfo", "build_dataset", "dataset_info", "available_datasets",
    "normalize_images", "random_crop", "random_flip", "add_pixel_noise",
]
