"""Synthetic CIFAR-10: procedurally generated colour-texture object classes.

Each class is defined by a distinctive combination of (a) a dominant colour
palette, (b) a geometric primitive (disc, square, cross, stripes, ...) and
(c) a texture frequency.  Images are 3-channel NCHW arrays.  The dataset is
harder than SyntheticMNIST (colour + texture + background clutter), playing
the role CIFAR-10 plays in the paper: the task where convolutional networks
(AlexNet/VGG/ResNet) are evaluated.
"""

from __future__ import annotations

import numpy as np

from ..utils.rng import get_rng
from .loader import Dataset

__all__ = ["SyntheticCIFAR"]


def _class_prototype(class_index: int, image_size: int) -> dict:
    """Deterministic per-class generative parameters."""
    proto_rng = np.random.default_rng(1000 + class_index)
    palette = proto_rng.uniform(0.2, 1.0, size=3)
    shape = class_index % 5  # disc, square, cross, horizontal stripes, diagonal
    frequency = 1.0 + (class_index % 3)
    center_bias = proto_rng.uniform(0.3, 0.7, size=2)
    return {"palette": palette, "shape": shape, "frequency": frequency,
            "center_bias": center_bias}


def _render_object(prototype: dict, image_size: int, rng: np.random.Generator,
                   noise: float) -> np.ndarray:
    """Render one 3xHxW image from a class prototype with sample-level jitter."""
    h = w = image_size
    yy, xx = np.mgrid[0:h, 0:w] / image_size
    center = prototype["center_bias"] + rng.normal(0, 0.08, size=2)
    radius = rng.uniform(0.2, 0.35)
    shape = prototype["shape"]
    if shape == 0:      # disc
        mask = ((yy - center[0]) ** 2 + (xx - center[1]) ** 2) < radius ** 2
    elif shape == 1:    # square
        mask = (np.abs(yy - center[0]) < radius) & (np.abs(xx - center[1]) < radius)
    elif shape == 2:    # cross
        mask = (np.abs(yy - center[0]) < radius / 2.5) | (np.abs(xx - center[1]) < radius / 2.5)
    elif shape == 3:    # horizontal stripes
        mask = (np.sin(yy * np.pi * 2 * prototype["frequency"] * 2) > 0.2)
    else:               # diagonal texture
        mask = (np.sin((yy + xx) * np.pi * 2 * prototype["frequency"]) > 0.0)
    mask = mask.astype(np.float64)

    background = rng.uniform(0.0, 0.4, size=3)[:, None, None] * np.ones((3, h, w))
    texture = 0.5 + 0.5 * np.sin(xx * np.pi * prototype["frequency"] * 3 + rng.uniform(0, np.pi))
    palette = prototype["palette"] * rng.uniform(0.85, 1.15, size=3)
    foreground = np.clip(palette, 0, 1)[:, None, None] * texture[None, :, :]
    image = background * (1 - mask[None]) + foreground * mask[None]
    if noise > 0:
        image = image + rng.normal(0.0, noise, size=image.shape)
    return np.clip(image, 0.0, 1.0)


class SyntheticCIFAR(Dataset):
    """Procedural 10-class colour-image dataset (3-channel NCHW)."""

    def __init__(self, n_samples: int = 1000, image_size: int = 16,
                 num_classes: int = 10, noise: float = 0.08, rng=None):
        if num_classes < 2:
            raise ValueError("need at least two classes")
        if n_samples < num_classes:
            raise ValueError("need at least one sample per class")
        rng = get_rng(rng)
        self.num_classes = num_classes
        prototypes = [_class_prototype(c, image_size) for c in range(num_classes)]
        labels = np.arange(n_samples) % num_classes
        rng.shuffle(labels)
        images = np.stack([_render_object(prototypes[int(c)], image_size, rng, noise)
                           for c in labels])
        super().__init__(images, labels.astype(np.int64))
        self.num_classes = num_classes
        self.image_size = image_size

    @property
    def input_dim(self) -> int:
        return int(np.prod(self.inputs.shape[1:]))
