"""Synthetic GTSRB: rendered traffic-sign-like images with 43 classes.

The German Traffic Sign Recognition Benchmark has 43 classes of signs whose
discriminative features are the sign's shape (circle / triangle / diamond /
octagon), border colour and an interior glyph.  The synthetic generator
combines those three factors (4 shapes x varying border hues x interior
patterns) to produce 43 distinct classes, rendered with random scale,
translation and illumination — reproducing the "43-class and randomized
input shape classification task" role the dataset plays in the paper.
"""

from __future__ import annotations

import numpy as np

from ..utils.rng import get_rng
from .loader import Dataset

__all__ = ["SyntheticGTSRB"]


def _hue_to_rgb(hue: float) -> np.ndarray:
    """Map a hue in [0, 1) to a saturated RGB triple (simple HSV wheel)."""
    segment = hue * 6.0
    index = int(segment) % 6
    fraction = segment - int(segment)
    ramps = {
        0: (1.0, fraction, 0.0), 1: (1.0 - fraction, 1.0, 0.0),
        2: (0.0, 1.0, fraction), 3: (0.0, 1.0 - fraction, 1.0),
        4: (fraction, 0.0, 1.0), 5: (1.0, 0.0, 1.0 - fraction),
    }
    return np.asarray(ramps[index])


def _sign_prototype(class_index: int) -> dict:
    """Deterministic, well-separated generative parameters for one sign class.

    Classes differ by shape (4 options), border hue (evenly spaced on the hue
    wheel so that neighbouring class indices get very different colours),
    interior glyph orientation (8 quantised angles) and stripe count (1-3),
    giving 43 clearly distinct combinations.
    """
    return {
        "shape": class_index % 4,                     # circle, triangle, diamond, octagon-ish
        "border_hue": _hue_to_rgb((class_index * 0.381966) % 1.0),
        "glyph_angle": (class_index % 8) / 8.0 * np.pi,
        "glyph_bars": 1 + (class_index // 4) % 3,
        "fill": 0.6 + 0.4 * ((class_index * 7) % 11) / 10.0,
    }


def _render_sign(prototype: dict, image_size: int, rng: np.random.Generator,
                 noise: float) -> np.ndarray:
    h = w = image_size
    yy, xx = np.mgrid[0:h, 0:w] / image_size
    center = 0.5 + rng.normal(0, 0.05, size=2)
    radius = rng.uniform(0.3, 0.42)
    dy, dx = yy - center[0], xx - center[1]
    shape = prototype["shape"]
    if shape == 0:      # circle
        mask = dy ** 2 + dx ** 2 < radius ** 2
    elif shape == 1:    # upward triangle
        mask = (dy > -radius) & (np.abs(dx) < (dy + radius) * 0.7) & (dy < radius)
    elif shape == 2:    # diamond
        mask = (np.abs(dy) + np.abs(dx)) < radius
    else:               # octagon approximated by circle ∩ square
        mask = (dy ** 2 + dx ** 2 < (radius * 1.1) ** 2) & \
               (np.abs(dy) < radius) & (np.abs(dx) < radius)
    mask = mask.astype(np.float64)
    border = mask - np.pad(mask, 1)[2:, 1:-1] * np.pad(mask, 1)[:-2, 1:-1] * \
        np.pad(mask, 1)[1:-1, 2:] * np.pad(mask, 1)[1:-1, :-2]
    border = np.clip(border, 0, 1)

    # Interior glyph: rotated bars.
    angle = prototype["glyph_angle"]
    bars = prototype["glyph_bars"]
    rotated = dx * np.cos(angle) + dy * np.sin(angle)
    glyph = (np.sin(rotated * np.pi * 6 * bars) > 0.3).astype(np.float64) * mask

    illumination = rng.uniform(0.6, 1.0)
    background = rng.uniform(0.0, 0.35, size=3)[:, None, None] * np.ones((3, h, w))
    hue = prototype["border_hue"][:, None, None]
    image = background * (1 - mask[None])
    image += prototype["fill"] * illumination * mask[None] * 0.9
    image = image * (1 - border[None]) + hue * border[None]
    image = image * (1 - 0.5 * glyph[None])
    if noise > 0:
        image = image + rng.normal(0.0, noise, size=image.shape)
    return np.clip(image, 0.0, 1.0)


class SyntheticGTSRB(Dataset):
    """Procedural 43-class traffic-sign dataset (3-channel NCHW)."""

    num_classes = 43

    def __init__(self, n_samples: int = 2150, image_size: int = 16,
                 noise: float = 0.06, num_classes: int = 43, rng=None):
        if not 2 <= num_classes <= 43:
            raise ValueError("num_classes must lie in [2, 43]")
        rng = get_rng(rng)
        self.num_classes = num_classes
        prototypes = [_sign_prototype(c) for c in range(num_classes)]
        labels = np.arange(n_samples) % num_classes
        rng.shuffle(labels)
        images = np.stack([_render_sign(prototypes[int(c)], image_size, rng, noise)
                           for c in labels])
        super().__init__(images, labels.astype(np.int64))
        self.num_classes = num_classes
        self.image_size = image_size

    @property
    def input_dim(self) -> int:
        return int(np.prod(self.inputs.shape[1:]))
