"""BayesFT reproduction: Bayesian optimisation for fault-tolerant neural networks.

Reproduces "BayesFT: Bayesian Optimization for Fault Tolerant Neural Network
Architecture" (Ye et al., DAC 2021) end-to-end on a from-scratch numpy
substrate:

* :mod:`repro.nn` — autograd tensor, layers, losses, optimisers;
* :mod:`repro.models` — the paper's model zoo (MLP, LeNet, AlexNet, VGG,
  ResNet, PreAct-ResNets, spatial transformer, TinyDetector);
* :mod:`repro.fault` / :mod:`repro.reram` — memristance-drift fault models
  and a crossbar-level hardware substrate;
* :mod:`repro.bayesopt` — Gaussian-process Bayesian optimisation;
* :mod:`repro.core` — the BayesFT search (Algorithm 1);
* :mod:`repro.baselines` — ERM, ReRAM-V, AWP, FTNA;
* :mod:`repro.data` — synthetic stand-ins for MNIST/CIFAR-10/GTSRB/PennFudanPed;
* :mod:`repro.evaluation` / :mod:`repro.experiments` — robustness sweeps and
  per-figure harnesses;
* :mod:`repro.execution` — pluggable execution backends (serial, process
  pool, shared-memory weight shipping) and scenario-cell fan-out;
* :mod:`repro.telemetry` — unified tracing, metrics and progress across all
  of the above (spans, counters, JSONL export, ``trace summarize``);
* :mod:`repro.scenarios` — declarative experiment cells, the fault-model and
  scenario registries, the on-disk result store and the ``python -m repro``
  CLI.
"""

from . import nn, models, fault, reram, bayesopt, core, baselines, data, evaluation
from . import execution, telemetry, training, experiments, scenarios, utils
from .core import BayesFT
from .utils.config import ExperimentConfig
from .utils.rng import seed_everything

__version__ = "1.1.0"

__all__ = [
    "nn", "models", "fault", "reram", "bayesopt", "core", "baselines", "data",
    "evaluation", "execution", "telemetry", "training", "experiments",
    "scenarios", "utils",
    "BayesFT", "ExperimentConfig", "seed_everything",
    "__version__",
]
