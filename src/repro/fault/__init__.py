"""Fault models for ReRAM-deployed neural networks.

The central model is the multiplicative log-normal *memristance drift* of
Eq. (1) in the paper: ``θ' = θ · exp(λ)`` with ``λ ~ N(0, σ²)``.  The package
also provides additive Gaussian drift, uniform drift, stuck-at faults and
bit-flip faults so that the methodology can be exercised on "other possible
weight drifting distributions" as the paper notes.
"""

from .drift import (
    DriftModel, LogNormalDrift, GaussianDrift, UniformDrift,
    StuckAtFault, BitFlipFault, CompositeFault, drift_array,
)
from .injector import FaultInjector, inject_faults, fault_injection
from .policy import (
    LayerFaultPolicy, UniformPolicy, PerLayerSigmaPolicy,
    available_policies, build_policy, register_policy,
)

__all__ = [
    "DriftModel", "LogNormalDrift", "GaussianDrift", "UniformDrift",
    "StuckAtFault", "BitFlipFault", "CompositeFault", "drift_array",
    "FaultInjector", "inject_faults", "fault_injection",
    "LayerFaultPolicy", "UniformPolicy", "PerLayerSigmaPolicy",
    "available_policies", "build_policy", "register_policy",
]
