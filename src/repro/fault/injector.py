"""Injecting faults into a :class:`~repro.nn.module.Module`.

The paper's experimental protocol is: train the network off-line with clean
weights, then evaluate it with drifted weights to simulate deployment on a
ReRAM device.  :class:`FaultInjector` snapshots the model's parameters,
overwrites them with drifted copies, and restores the originals afterwards —
either explicitly or through the :func:`fault_injection` context manager.
"""

from __future__ import annotations

import contextlib
from typing import Iterable

import numpy as np

from ..nn.module import Module
from ..utils.rng import get_rng
from .drift import DriftModel, LogNormalDrift
from .policy import LayerFaultPolicy, UniformPolicy

__all__ = ["FaultInjector", "inject_faults", "fault_injection"]


class FaultInjector:
    """Applies a drift model (or per-layer policy) to a model's parameters.

    Parameters
    ----------
    model:
        The network whose parameters will be drifted.
    drift:
        Either a single :class:`DriftModel` applied to every parameter or a
        :class:`LayerFaultPolicy` that chooses a model per parameter name.
    skip:
        Iterable of substrings; parameters whose dotted name contains any of
        them are left untouched (e.g. ``("running_mean",)`` — though buffers
        are never drifted anyway since they are not ReRAM-resident weights).
    rng:
        Generator or seed for reproducible drift sampling.
    """

    def __init__(self, model: Module, drift: DriftModel | LayerFaultPolicy,
                 skip: Iterable[str] = (), rng=None):
        self.model = model
        if isinstance(drift, DriftModel):
            drift = UniformPolicy(drift)
        self.policy = drift
        self.skip = tuple(skip)
        self.rng = get_rng(rng)
        self._snapshot: dict[str, np.ndarray] | None = None
        #: Largest number of drifted weight copies per parameter that
        #: :meth:`plan_trials` has materialised at once — the bookkeeping the
        #: chunked pre-drawing tests assert against.
        self.peak_resident_trials = 0

    @property
    def clean_parameters(self) -> dict[str, np.ndarray]:
        """The snapshotted clean parameter arrays (read-only view).

        Raises if no snapshot has been taken yet.
        """
        if self._snapshot is None:
            raise RuntimeError("snapshot() (or multi_trial()) has not run yet")
        return self._snapshot

    # ------------------------------------------------------------------ #
    def snapshot(self) -> None:
        """Record the clean parameter values."""
        self._snapshot = {name: parameter.data.copy()
                          for name, parameter in self.model.named_parameters()}

    def inject(self) -> dict[str, float]:
        """Overwrite parameters with drifted copies.

        Returns a mapping from parameter name to the mean absolute relative
        perturbation applied, useful for diagnostics and tests.
        """
        if self._snapshot is None:
            self.snapshot()
        report: dict[str, float] = {}
        for name, parameter in self.model.named_parameters():
            if any(token in name for token in self.skip):
                continue
            clean = self._snapshot[name]
            model = self.policy.model_for(name)
            if model is None:
                continue
            drifted = model.perturb(clean, self.rng)
            denom = np.maximum(np.abs(clean), 1e-12)
            report[name] = float(np.mean(np.abs(drifted - clean) / denom))
            parameter.data = drifted
        return report

    def restore(self) -> None:
        """Put the clean weights back."""
        if self._snapshot is None:
            return
        for name, parameter in self.model.named_parameters():
            if name in self._snapshot:
                parameter.data = self._snapshot[name].copy()

    # ------------------------------------------------------------------ #
    # Multi-trial mode: snapshot once, apply many drifted copies.
    # ------------------------------------------------------------------ #
    @contextlib.contextmanager
    def multi_trial(self):
        """Snapshot once and guarantee restoration, even on exceptions.

        Inside the block the caller may repeatedly :meth:`draw_trials` /
        :meth:`apply_trial` (or :meth:`inject`) without paying a re-snapshot
        per trial; the clean weights are restored when the block exits for
        any reason, so an exception mid-sweep never leaks drifted weights.
        """
        self.snapshot()
        try:
            yield self
        finally:
            self.clear()

    def draw_trials(self, n: int, drift: DriftModel | LayerFaultPolicy | None = None
                    ) -> dict[str, np.ndarray]:
        """Pre-draw ``n`` drifted copies of every faultable parameter.

        One vectorized :meth:`DriftModel.sample_batch` RNG call per parameter
        produces a mapping ``name -> (n,) + shape`` array; slicing the leading
        axis yields one trial.  ``drift`` overrides the injector's policy for
        this draw (used by σ-sweeps where each grid point has its own model).
        Parameters skipped by ``skip`` or the policy are absent from the
        result and stay clean under :meth:`apply_trial`.

        Equivalent to consuming :meth:`plan_trials` with an unbounded chunk
        size, so all ``n`` copies are materialised at once; large models
        should iterate :meth:`plan_trials` with ``max_chunk`` instead.
        """
        batch: dict[str, np.ndarray] = {}
        for _, chunk in self.plan_trials(n, drift):
            batch = chunk
        return batch

    def plan_trials(self, n: int, drift: DriftModel | LayerFaultPolicy | None = None,
                    max_chunk: int | None = None):
        """Pre-draw ``n`` trials in memory-bounded chunks.

        Yields ``(count, batch)`` pairs where ``batch`` maps each faultable
        parameter name to a ``(count,) + shape`` array of drifted copies and
        the counts sum to ``n``.  At most ``max_chunk`` copies per parameter
        are materialised at once (``None`` draws everything in one chunk), so
        PreAct-ResNet-depth models can sweep without holding
        ``trials × |σ-grid|`` full weight sets in memory.

        **Determinism contract** — each parameter draws from its own child
        generator, spawned deterministically from ``self.rng`` when the plan
        is created.  Because every :class:`DriftModel` consumes its RNG in
        trial-major order, splitting ``n`` draws across sequential
        ``sample_batch`` calls on one stream reproduces the single-call
        stream exactly; together these make the drawn trials bit-identical
        for *any* ``max_chunk``.  The injector records the largest chunk it
        materialised in :attr:`peak_resident_trials`.
        """
        if n < 1:
            raise ValueError("n must be at least 1")
        if max_chunk is not None and max_chunk < 1:
            raise ValueError("max_chunk must be at least 1 (or None for unbounded)")
        policy = self.policy
        if drift is not None:
            policy = UniformPolicy(drift) if isinstance(drift, DriftModel) else drift
        if self._snapshot is None:
            self.snapshot()
        names = [name for name in self._snapshot
                 if not any(token in name for token in self.skip)
                 and policy.model_for(name) is not None]
        streams = self._spawn_streams(len(names))
        chunk_size = n if max_chunk is None else min(int(max_chunk), n)

        def _iterate():
            drawn = 0
            while drawn < n:
                count = min(chunk_size, n - drawn)
                batch = {name: policy.model_for(name).sample_batch(
                             self._snapshot[name], count, stream)
                         for name, stream in zip(names, streams)}
                self.peak_resident_trials = max(self.peak_resident_trials, count)
                drawn += count
                yield count, batch

        return _iterate()

    def _spawn_streams(self, count: int) -> list[np.random.Generator]:
        """Deterministic independent child generators, one per parameter."""
        if count == 0:
            return []
        try:
            return list(self.rng.spawn(count))
        except (AttributeError, TypeError):
            # Generators without a seed sequence (or pre-spawn numpy) fall
            # back to stream-derived seeds; still deterministic and still
            # chunk-invariant because the seeds are drawn once per plan.
            seeds = self.rng.integers(0, 2 ** 63 - 1, size=count)
            return [np.random.default_rng(int(seed)) for seed in seeds]

    def apply_trial(self, drifted: dict[str, np.ndarray]) -> None:
        """Overwrite parameters with one pre-drawn trial's arrays.

        Parameters without an entry in ``drifted`` are reset to their clean
        snapshot values, so consecutive trials with different policies never
        see each other's leftovers.
        """
        if self._snapshot is None:
            raise RuntimeError("snapshot() (or multi_trial()) must run before apply_trial()")
        for name, parameter in self.model.named_parameters():
            if name in drifted:
                parameter.data = np.asarray(drifted[name], dtype=np.float64)
            elif name in self._snapshot:
                parameter.data = self._snapshot[name].copy()

    def clear(self) -> None:
        """Drop the stored snapshot (restores first if still drifted)."""
        self.restore()
        self._snapshot = None


def inject_faults(model: Module, sigma: float, rng=None,
                  skip: Iterable[str] = ()) -> FaultInjector:
    """Inject Eq. (1) log-normal drift of strength ``sigma`` into ``model``.

    Returns the injector so that the caller can ``restore()`` the weights.
    """
    injector = FaultInjector(model, LogNormalDrift(sigma), skip=skip, rng=rng)
    injector.inject()
    return injector


@contextlib.contextmanager
def fault_injection(model: Module, drift: DriftModel | LayerFaultPolicy | float,
                    rng=None, skip: Iterable[str] = ()):
    """Context manager: drift the model inside the block, restore on exit.

    ``drift`` may be a float (interpreted as the log-normal σ), a
    :class:`DriftModel`, or a :class:`LayerFaultPolicy`.
    """
    if isinstance(drift, (int, float)):
        drift = LogNormalDrift(float(drift))
    injector = FaultInjector(model, drift, skip=skip, rng=rng)
    injector.inject()
    try:
        yield injector
    finally:
        injector.restore()
