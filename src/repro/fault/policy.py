"""Per-layer fault policies.

A policy decides which :class:`~repro.fault.drift.DriftModel` applies to each
named parameter.  The paper drifts every weight identically (a
:class:`UniformPolicy`), but per-layer policies are useful for the ablation
benches (e.g. "what if only the first layer drifts?") and for modelling
heterogeneous crossbars.

Policies are also reachable *as data*: the string-keyed registry at the
bottom (``uniform``, ``per_layer_sigma``) builds a policy from a severity
grid point plus plain-JSON parameters, which is how a
:class:`~repro.scenarios.spec.ScenarioSpec`'s ``policy`` field turns into
the per-layer behaviour its sweep runs under.
"""

from __future__ import annotations

import re
from typing import Callable, Mapping

from .drift import DriftModel, LogNormalDrift

__all__ = [
    "LayerFaultPolicy", "UniformPolicy", "PerLayerSigmaPolicy",
    "register_policy", "available_policies", "build_policy",
]


class LayerFaultPolicy:
    """Base class mapping parameter names to drift models."""

    def model_for(self, parameter_name: str) -> DriftModel | None:
        """Return the drift model for this parameter, or ``None`` to skip it."""
        raise NotImplementedError


class UniformPolicy(LayerFaultPolicy):
    """Apply the same drift model to every parameter (the paper's setting)."""

    def __init__(self, model: DriftModel):
        self.model = model

    def model_for(self, parameter_name: str) -> DriftModel | None:
        return self.model

    def __repr__(self) -> str:
        return f"UniformPolicy({self.model!r})"


class PerLayerSigmaPolicy(LayerFaultPolicy):
    """Log-normal drift whose σ depends on the parameter name.

    Parameters
    ----------
    sigma_map:
        Mapping from regular-expression pattern to σ.  The first pattern that
        matches (``re.search``) the parameter name wins.
    default_sigma:
        σ used when no pattern matches; ``None`` leaves unmatched parameters
        clean.
    """

    def __init__(self, sigma_map: Mapping[str, float], default_sigma: float | None = None):
        self._rules = [(re.compile(pattern), LogNormalDrift(sigma))
                       for pattern, sigma in sigma_map.items()]
        self._default = None if default_sigma is None else LogNormalDrift(default_sigma)

    def model_for(self, parameter_name: str) -> DriftModel | None:
        for pattern, model in self._rules:
            if pattern.search(parameter_name):
                return model
        return self._default

    def __repr__(self) -> str:
        rules = {p.pattern: m.sigma for p, m in self._rules}
        return f"PerLayerSigmaPolicy({rules}, default={self._default!r})"


# --------------------------------------------------------------------------- #
# Policy registry: string key -> builder(severity, fault, **params) -> policy.
# ``severity`` is the scenario grid variable; ``fault`` is the cell's
# FaultSpec, so a policy can defer "which distribution" to the fault registry
# while deciding "which parameters, how strongly" itself.
# --------------------------------------------------------------------------- #
_POLICY_REGISTRY: dict[str, Callable[..., LayerFaultPolicy]] = {}


def register_policy(name: str):
    """Decorator registering ``builder(severity, fault, **params) -> policy``."""

    def _register(builder: Callable[..., LayerFaultPolicy]):
        key = name.lower()
        if key in _POLICY_REGISTRY:
            raise ValueError(f"fault policy {name!r} is already registered")
        _POLICY_REGISTRY[key] = builder
        return builder

    return _register


def available_policies() -> list[str]:
    """Registered policy kinds accepted by :func:`build_policy`."""
    return sorted(_POLICY_REGISTRY)


def build_policy(kind: str, severity: float, fault, **params) -> LayerFaultPolicy:
    """Instantiate a registered policy at one severity grid point."""
    key = kind.lower()
    if key not in _POLICY_REGISTRY:
        raise ValueError(f"unknown fault policy {kind!r}; "
                         f"available: {available_policies()}")
    try:
        return _POLICY_REGISTRY[key](float(severity), fault, **params)
    except TypeError as error:
        raise ValueError(f"bad parameters {params!r} for fault policy "
                         f"{kind!r}: {error}") from error


@register_policy("uniform")
def _uniform(severity: float, fault) -> LayerFaultPolicy:
    """Every parameter gets the cell's fault model — the paper's setting."""
    return UniformPolicy(fault.build(severity))


@register_policy("per_layer_sigma")
def _per_layer_sigma(severity: float, fault, sigma_scales: Mapping[str, float],
                     default_scale: float | None = None) -> LayerFaultPolicy:
    """Eq.-1 drift whose σ is the grid severity scaled per layer pattern.

    ``sigma_scales`` maps regex patterns to multipliers: a parameter whose
    dotted name matches pattern ``p`` drifts with ``LogNormalDrift(severity
    * sigma_scales[p])`` (first match wins); unmatched parameters use
    ``severity * default_scale``, or stay clean when ``default_scale`` is
    ``None``.  Scaling the *grid variable* keeps severity the x-axis of the
    resulting curves.  Log-normal by construction, so the cell's fault kind
    must be ``lognormal`` — any other kind would silently not be what the
    sweep measures.
    """
    if fault is not None and getattr(fault, "kind", "lognormal") != "lognormal":
        raise ValueError(
            "per_layer_sigma is Eq.-1 log-normal drift with per-layer σ "
            f"scaling; it cannot represent fault kind {fault.kind!r}")
    sigma_map = {pattern: severity * float(scale)
                 for pattern, scale in sigma_scales.items()}
    default = None if default_scale is None else severity * float(default_scale)
    return PerLayerSigmaPolicy(sigma_map, default_sigma=default)
