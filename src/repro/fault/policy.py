"""Per-layer fault policies.

A policy decides which :class:`~repro.fault.drift.DriftModel` applies to each
named parameter.  The paper drifts every weight identically (a
:class:`UniformPolicy`), but per-layer policies are useful for the ablation
benches (e.g. "what if only the first layer drifts?") and for modelling
heterogeneous crossbars.
"""

from __future__ import annotations

import re
from typing import Mapping

from .drift import DriftModel, LogNormalDrift

__all__ = ["LayerFaultPolicy", "UniformPolicy", "PerLayerSigmaPolicy"]


class LayerFaultPolicy:
    """Base class mapping parameter names to drift models."""

    def model_for(self, parameter_name: str) -> DriftModel | None:
        """Return the drift model for this parameter, or ``None`` to skip it."""
        raise NotImplementedError


class UniformPolicy(LayerFaultPolicy):
    """Apply the same drift model to every parameter (the paper's setting)."""

    def __init__(self, model: DriftModel):
        self.model = model

    def model_for(self, parameter_name: str) -> DriftModel | None:
        return self.model

    def __repr__(self) -> str:
        return f"UniformPolicy({self.model!r})"


class PerLayerSigmaPolicy(LayerFaultPolicy):
    """Log-normal drift whose σ depends on the parameter name.

    Parameters
    ----------
    sigma_map:
        Mapping from regular-expression pattern to σ.  The first pattern that
        matches (``re.search``) the parameter name wins.
    default_sigma:
        σ used when no pattern matches; ``None`` leaves unmatched parameters
        clean.
    """

    def __init__(self, sigma_map: Mapping[str, float], default_sigma: float | None = None):
        self._rules = [(re.compile(pattern), LogNormalDrift(sigma))
                       for pattern, sigma in sigma_map.items()]
        self._default = None if default_sigma is None else LogNormalDrift(default_sigma)

    def model_for(self, parameter_name: str) -> DriftModel | None:
        for pattern, model in self._rules:
            if pattern.search(parameter_name):
                return model
        return self._default

    def __repr__(self) -> str:
        rules = {p.pattern: m.sigma for p, m in self._rules}
        return f"PerLayerSigmaPolicy({rules}, default={self._default!r})"
