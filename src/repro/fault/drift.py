"""Weight-drift distributions.

Each :class:`DriftModel` maps a clean weight array to a perturbed copy.
``LogNormalDrift`` is the paper's Eq. (1); the other models exist for the
"other possible weight drifting distributions" extension mentioned in §II-B
and for ablation benchmarks.
"""

from __future__ import annotations

import numpy as np

from ..utils.rng import get_rng

__all__ = [
    "DriftModel", "LogNormalDrift", "GaussianDrift", "UniformDrift",
    "StuckAtFault", "BitFlipFault", "CompositeFault", "drift_array",
]


class DriftModel:
    """Base class: a stochastic transformation of a weight array."""

    def perturb(self, weights: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        """Return a drifted copy of ``weights`` (the input is never modified)."""
        raise NotImplementedError

    def sample_batch(self, weights: np.ndarray, n: int,
                     rng: np.random.Generator | None = None) -> np.ndarray:
        """Return ``n`` independent drifted copies of ``weights`` at once.

        The result has shape ``(n,) + weights.shape``; ``result[i]`` is one
        Monte-Carlo trial.  Validation and normalisation happen here;
        subclasses override :meth:`_sample_batch_impl` with a single
        vectorized RNG call.  Models whose transformation is not elementwise
        (e.g. :class:`BitFlipFault`, whose quantisation range depends on the
        whole array) keep the default implementation, which stacks ``n``
        :meth:`perturb` calls and therefore draws the identical random
        stream.

        **Stream contract** — implementations must consume the generator in
        trial-major order (trial ``i``'s numbers before trial ``i+1``'s), so
        that ``sample_batch(w, a, rng)`` followed by ``sample_batch(w, b,
        rng)`` draws exactly the trials ``sample_batch(w, a + b, rng)``
        would.  Vectorized draws of shape ``(n,) + weights.shape`` satisfy
        this automatically (numpy fills arrays from the stream in C order),
        as does stacking sequential ``perturb`` calls.  The chunked
        pre-drawing in :meth:`FaultInjector.plan_trials
        <repro.fault.injector.FaultInjector.plan_trials>` relies on this to
        keep sweeps bit-identical for any chunk size.
        """
        if n < 1:
            raise ValueError("n must be at least 1")
        return self._sample_batch_impl(np.asarray(weights, dtype=np.float64),
                                       int(n), get_rng(rng))

    def _sample_batch_impl(self, weights: np.ndarray, n: int,
                           rng: np.random.Generator) -> np.ndarray:
        return np.stack([self.perturb(weights, rng) for _ in range(n)])

    def __call__(self, weights: np.ndarray, rng=None) -> np.ndarray:
        return self.perturb(np.asarray(weights, dtype=np.float64), get_rng(rng))

    def is_deterministic(self) -> bool:
        """True when every trial is bit-identical (no randomness is drawn).

        A σ=0 drift, for instance, maps weights to themselves.  The sweep
        engine uses this to draw, hash and evaluate such a grid point once
        instead of ``trials`` times; the answer is unchanged because the
        trials would have deduplicated to one evaluation anyway.
        """
        return False

    def expected_relative_error(self) -> float:
        """Analytic (or approximate) expected relative weight error, if known."""
        raise NotImplementedError(f"{type(self).__name__} has no closed-form error")

    @staticmethod
    def _clean_batch(weights: np.ndarray, n: int) -> np.ndarray:
        """``n`` stacked copies of the clean weights (the zero-drift batch)."""
        return np.broadcast_to(weights, (n,) + weights.shape).copy()


class LogNormalDrift(DriftModel):
    """Multiplicative log-normal memristance drift, Eq. (1) of the paper.

    ``θ' = θ · exp(λ)`` with ``λ ~ N(0, σ²)``.  ``σ`` ("resistance variation")
    is the x-axis of every robustness figure in the paper.
    """

    def __init__(self, sigma: float):
        if sigma < 0:
            raise ValueError("sigma must be non-negative")
        self.sigma = float(sigma)

    def perturb(self, weights: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        if self.sigma == 0.0:
            return weights.copy()
        lam = rng.normal(0.0, self.sigma, size=weights.shape)
        return weights * np.exp(lam)

    def _sample_batch_impl(self, weights: np.ndarray, n: int,
                           rng: np.random.Generator) -> np.ndarray:
        if self.sigma == 0.0:
            return self._clean_batch(weights, n)
        lam = rng.normal(0.0, self.sigma, size=(n,) + weights.shape)
        return weights[None] * np.exp(lam)

    def expected_relative_error(self) -> float:
        """E|exp(λ) - 1| for λ ~ N(0, σ²) via the folded-lognormal mean."""
        from scipy.stats import norm
        sigma = self.sigma
        if sigma == 0.0:
            return 0.0
        # E[exp(λ)] = exp(σ²/2);   E|exp(λ)-1| has a closed form via the CDF.
        return float(2 * norm.cdf(sigma / 2) - 1
                     + np.exp(sigma ** 2 / 2) * (2 * norm.cdf(sigma / 2) - 1))

    def is_deterministic(self) -> bool:
        return self.sigma == 0.0

    def __repr__(self) -> str:
        return f"LogNormalDrift(sigma={self.sigma})"


class GaussianDrift(DriftModel):
    """Additive Gaussian drift relative to the weight magnitude.

    ``θ' = θ + σ·|θ|·ε`` with ``ε ~ N(0, 1)``.
    """

    def __init__(self, sigma: float, relative: bool = True):
        if sigma < 0:
            raise ValueError("sigma must be non-negative")
        self.sigma = float(sigma)
        self.relative = relative

    def perturb(self, weights: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        if self.sigma == 0.0:
            return weights.copy()
        noise = rng.normal(0.0, self.sigma, size=weights.shape)
        scale = np.abs(weights) if self.relative else 1.0
        return weights + scale * noise

    def _sample_batch_impl(self, weights: np.ndarray, n: int,
                           rng: np.random.Generator) -> np.ndarray:
        if self.sigma == 0.0:
            return self._clean_batch(weights, n)
        noise = rng.normal(0.0, self.sigma, size=(n,) + weights.shape)
        scale = np.abs(weights)[None] if self.relative else 1.0
        return weights[None] + scale * noise

    def is_deterministic(self) -> bool:
        return self.sigma == 0.0

    def __repr__(self) -> str:
        return f"GaussianDrift(sigma={self.sigma}, relative={self.relative})"


class UniformDrift(DriftModel):
    """Multiplicative uniform drift ``θ' = θ·(1 + U(-a, a))``."""

    def __init__(self, amplitude: float):
        if amplitude < 0:
            raise ValueError("amplitude must be non-negative")
        self.amplitude = float(amplitude)

    def perturb(self, weights: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        if self.amplitude == 0.0:
            return weights.copy()
        factor = 1.0 + rng.uniform(-self.amplitude, self.amplitude, size=weights.shape)
        return weights * factor

    def _sample_batch_impl(self, weights: np.ndarray, n: int,
                           rng: np.random.Generator) -> np.ndarray:
        if self.amplitude == 0.0:
            return self._clean_batch(weights, n)
        factor = 1.0 + rng.uniform(-self.amplitude, self.amplitude,
                                   size=(n,) + weights.shape)
        return weights[None] * factor

    def is_deterministic(self) -> bool:
        return self.amplitude == 0.0

    def __repr__(self) -> str:
        return f"UniformDrift(amplitude={self.amplitude})"


class StuckAtFault(DriftModel):
    """Stuck-at faults: each cell is stuck at a fixed value with some probability.

    Models ReRAM cells whose conductance is pinned at the high-resistance
    (``stuck_value=0``) or low-resistance extreme after programming failure.
    """

    def __init__(self, probability: float, stuck_value: float = 0.0):
        if not 0.0 <= probability <= 1.0:
            raise ValueError("probability must lie in [0, 1]")
        self.probability = float(probability)
        self.stuck_value = float(stuck_value)

    def perturb(self, weights: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        if self.probability == 0.0:
            return weights.copy()
        mask = rng.random(weights.shape) < self.probability
        drifted = weights.copy()
        drifted[mask] = self.stuck_value
        return drifted

    def _sample_batch_impl(self, weights: np.ndarray, n: int,
                           rng: np.random.Generator) -> np.ndarray:
        drifted = self._clean_batch(weights, n)
        if self.probability == 0.0:
            return drifted
        mask = rng.random((n,) + weights.shape) < self.probability
        drifted[mask] = self.stuck_value
        return drifted

    def is_deterministic(self) -> bool:
        return self.probability == 0.0

    def __repr__(self) -> str:
        return f"StuckAtFault(probability={self.probability}, stuck_value={self.stuck_value})"


class BitFlipFault(DriftModel):
    """Bit-flip faults on a fixed-point representation of the weights.

    Weights are quantised to signed ``bits``-bit fixed point over the range
    ``[-max_abs, max_abs]`` (``max_abs`` defaults to the array's maximum
    magnitude), random bits are flipped with probability ``flip_probability``
    per bit, and the result is dequantised.
    """

    def __init__(self, flip_probability: float, bits: int = 8):
        if not 0.0 <= flip_probability <= 1.0:
            raise ValueError("flip_probability must lie in [0, 1]")
        if bits < 2 or bits > 16:
            raise ValueError("bits must be between 2 and 16")
        self.flip_probability = float(flip_probability)
        self.bits = int(bits)

    def perturb(self, weights: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        if self.flip_probability == 0.0:
            return weights.copy()
        max_abs = np.abs(weights).max()
        if max_abs == 0.0:
            return weights.copy()
        levels = 2 ** (self.bits - 1) - 1
        quantised = np.clip(np.round(weights / max_abs * levels), -levels, levels)
        as_int = quantised.astype(np.int64) + levels  # shift to unsigned range
        flips = np.zeros_like(as_int)
        for bit in range(self.bits):
            flip_mask = rng.random(weights.shape) < self.flip_probability
            flips += flip_mask.astype(np.int64) << bit
        corrupted = (as_int ^ flips) - levels
        return corrupted.astype(np.float64) / levels * max_abs

    def is_deterministic(self) -> bool:
        return self.flip_probability == 0.0

    def __repr__(self) -> str:
        return f"BitFlipFault(flip_probability={self.flip_probability}, bits={self.bits})"


class CompositeFault(DriftModel):
    """Apply several drift models in sequence (e.g. drift then stuck-at)."""

    def __init__(self, *models: DriftModel):
        if not models:
            raise ValueError("CompositeFault needs at least one model")
        self.models = tuple(models)

    def perturb(self, weights: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        drifted = weights
        for model in self.models:
            drifted = model.perturb(np.asarray(drifted, dtype=np.float64), rng)
        return drifted

    def is_deterministic(self) -> bool:
        return all(model.is_deterministic() for model in self.models)

    def __repr__(self) -> str:
        inner = ", ".join(repr(m) for m in self.models)
        return f"CompositeFault({inner})"


def drift_array(weights: np.ndarray, sigma: float, rng=None) -> np.ndarray:
    """Convenience helper: apply Eq. (1) log-normal drift to a raw array."""
    return LogNormalDrift(sigma)(weights, rng)
