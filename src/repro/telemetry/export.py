"""Trace exporters: JSON-lines files and human-readable summaries.

The on-disk format is one JSON object per line, written pre-order so a
trace is streamable and greppable:

    {"type": "span", "id": 3, "parent": 2, "name": "chunk",
     "start": 0.01234, "seconds": 0.4, "attrs": {"trials": 50}}
    ...
    {"type": "metrics", "counters": {...}, "gauges": {...}}

``id``/``parent`` reconstruct the nesting, so :func:`read_trace_jsonl`
round-trips exactly what :meth:`Telemetry.snapshot` produced.
:func:`summarize_trace` accepts either a snapshot dict or a trace path and
computes the report behind ``python -m repro trace summarize``: per-name
cumulative and self time (self = cumulative minus direct children, i.e.
time a layer spent that no deeper instrumented layer accounts for), cache
hit rates, bytes shipped, and worker utilisation (busy-seconds shipped
back from workers over the traced wall-clock).

Trace files are volatile observability artifacts — nothing here feeds
canonical reports, spec hashes or golden BO traces.
"""

from __future__ import annotations

import json
from pathlib import Path

from .tracer import Span

__all__ = [
    "write_trace_jsonl",
    "read_trace_jsonl",
    "summarize_trace",
    "format_trace_summary",
    "span_breakdown",
]


# --------------------------------------------------------------------- #
# JSON-lines round trip
# --------------------------------------------------------------------- #

def write_trace_jsonl(snapshot: dict, path) -> Path:
    """Write a :meth:`Telemetry.snapshot` as a JSON-lines trace file."""
    path = Path(path)
    lines: list[str] = []
    next_id = [0]

    def emit(span: dict, parent: int | None) -> None:
        span_id = next_id[0]
        next_id[0] += 1
        row = {"type": "span", "id": span_id, "parent": parent,
               "name": span["name"], "start": span.get("start", 0.0),
               "seconds": span.get("seconds", 0.0),
               "attrs": span.get("attrs", {})}
        lines.append(json.dumps(row, sort_keys=True))
        for child in span.get("children", ()):
            emit(child, span_id)

    for root in snapshot.get("spans", ()):
        emit(root, None)
    metrics = snapshot.get("metrics", {})
    lines.append(json.dumps({"type": "metrics",
                             "counters": metrics.get("counters", {}),
                             "gauges": metrics.get("gauges", {})},
                            sort_keys=True))
    path.write_text("\n".join(lines) + "\n", encoding="utf-8")
    return path


def read_trace_jsonl(path) -> dict:
    """Load a trace file back into snapshot form (nested spans + metrics)."""
    spans_by_id: dict[int, dict] = {}
    roots: list[dict] = []
    metrics = {"counters": {}, "gauges": {}}
    for line in Path(path).read_text(encoding="utf-8").splitlines():
        if not line.strip():
            continue
        row = json.loads(line)
        if row.get("type") == "metrics":
            metrics = {"counters": row.get("counters", {}),
                       "gauges": row.get("gauges", {})}
            continue
        span = {"name": row["name"], "start": row.get("start", 0.0),
                "seconds": row.get("seconds", 0.0),
                "attrs": row.get("attrs", {}), "children": []}
        spans_by_id[row["id"]] = span
        parent = row.get("parent")
        if parent is None:
            roots.append(span)
        else:
            spans_by_id[parent]["children"].append(span)
    return {"spans": roots, "metrics": metrics}


# --------------------------------------------------------------------- #
# Summaries
# --------------------------------------------------------------------- #

def _walk(span: dict):
    yield span
    for child in span.get("children", ()):
        yield from _walk(child)


def span_breakdown(span: Span | dict) -> dict:
    """Aggregate a span subtree by name: ``{name: {count, seconds}}``.

    This is the compact per-cell summary persisted into the store's
    volatile ``meta.json`` — enough to see where a cell spent its time
    without shipping the whole trace.
    """
    if isinstance(span, Span):
        span = span.to_dict()
    table: dict[str, dict] = {}
    for node in _walk(span):
        row = table.setdefault(node["name"], {"count": 0, "seconds": 0.0})
        row["count"] += 1
        row["seconds"] += node.get("seconds", 0.0)
    return {name: {"count": row["count"],
                   "seconds": round(row["seconds"], 6)}
            for name, row in sorted(table.items())}


def summarize_trace(source) -> dict:
    """Build the summary report from a snapshot dict or a trace file path."""
    snapshot = source if isinstance(source, dict) else read_trace_jsonl(source)
    roots = snapshot.get("spans", [])
    counters = dict(snapshot.get("metrics", {}).get("counters", {}))
    gauges = dict(snapshot.get("metrics", {}).get("gauges", {}))

    by_name: dict[str, dict] = {}
    remote_busy = 0.0
    span_count = 0
    wall_end = 0.0
    for root in roots:
        for node in _walk(root):
            span_count += 1
            seconds = node.get("seconds", 0.0)
            wall_end = max(wall_end, node.get("start", 0.0) + seconds)
            row = by_name.setdefault(
                node["name"], {"count": 0, "seconds": 0.0, "self_seconds": 0.0})
            row["count"] += 1
            row["seconds"] += seconds
            row["self_seconds"] += seconds - sum(
                child.get("seconds", 0.0) for child in node.get("children", ()))
        # Worker busy time: the roots a parent grafted are tagged remote;
        # count only the outermost remote span of each shipped task.
        for node in _walk(root):
            for child in node.get("children", ()):
                if isinstance(child, dict) and child.get("attrs", {}).get("remote"):
                    remote_busy += child.get("seconds", 0.0)

    spans = [{"name": name,
              "count": row["count"],
              "seconds": round(row["seconds"], 6),
              "self_seconds": round(max(row["self_seconds"], 0.0), 6)}
             for name, row in sorted(by_name.items(),
                                     key=lambda item: -item[1]["seconds"])]

    evaluations = counters.get("evaluations_total", 0)
    cache_hits = counters.get("cache_hits_total", 0)
    lookups = evaluations + cache_hits
    workers = max(int(gauges.get("workers", 0)), 1)
    wall = wall_end
    summary = {
        "wall_seconds": round(wall, 6),
        "span_count": span_count,
        "spans": spans,
        "counters": dict(sorted(counters.items())),
        "gauges": dict(sorted(gauges.items())),
        "cache_hit_rate": round(cache_hits / lookups, 6) if lookups else None,
        "worker_busy_seconds": round(remote_busy, 6),
        "worker_utilization": (round(remote_busy / (wall * workers), 6)
                               if wall > 0 and remote_busy > 0 else None),
    }
    return summary


def format_trace_summary(summary: dict, top: int = 12) -> str:
    """Render :func:`summarize_trace` output as an aligned text report."""
    lines = [
        f"trace: {summary['span_count']} spans, "
        f"wall {summary['wall_seconds']:.3f}s",
        "",
        f"{'span':<16} {'count':>7} {'total s':>10} {'self s':>10} {'% wall':>7}",
    ]
    wall = summary["wall_seconds"] or 1.0
    for row in summary["spans"][:top]:
        lines.append(
            f"{row['name']:<16} {row['count']:>7} {row['seconds']:>10.3f} "
            f"{row['self_seconds']:>10.3f} {100.0 * row['seconds'] / wall:>6.1f}%")
    if len(summary["spans"]) > top:
        lines.append(f"... {len(summary['spans']) - top} more span kinds")
    lines.append("")
    if summary.get("cache_hit_rate") is not None:
        lines.append(f"cache hit rate     {100.0 * summary['cache_hit_rate']:.1f}% "
                     f"({summary['counters'].get('cache_hits_total', 0)} hits / "
                     f"{summary['counters'].get('evaluations_total', 0)} evaluations)")
    bytes_shipped = summary["counters"].get("bytes_shipped")
    if bytes_shipped is not None:
        lines.append(f"bytes shipped      {bytes_shipped}")
    tasks_shipped = summary["counters"].get("tasks_shipped")
    if tasks_shipped is not None:
        lines.append(f"tasks shipped      {tasks_shipped}")
    if any(summary["counters"].get(name)
           for name in ("pool_reuses", "cold_starts", "segment_reuses")):
        # How warm the run actually ran: pools forked vs re-leased, and
        # published segments answered by digest instead of re-shipping.
        lines.append(
            f"warm runtime       "
            f"{summary['counters'].get('pool_reuses', 0)} pool reuses / "
            f"{summary['counters'].get('cold_starts', 0)} cold starts, "
            f"{summary['counters'].get('segment_reuses', 0)} segment reuses")
    if summary.get("worker_utilization") is not None:
        lines.append(f"worker busy        {summary['worker_busy_seconds']:.3f}s "
                     f"(utilization {100.0 * summary['worker_utilization']:.1f}%)")
    fallbacks = [(name, value) for name, value in summary["counters"].items()
                 if name.endswith("fallbacks") and value]
    for name, value in fallbacks:
        lines.append(f"DEGRADED           {name} = {value}")
    return "\n".join(lines)
