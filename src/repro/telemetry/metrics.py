"""One counter implementation for the whole system.

Before this module existed every layer kept its own ad-hoc volatile
counters — ``evaluations_total``/``cache_hits_total`` on the BayesFT
objective, ``tasks_shipped``/``bytes_shipped`` on the execution backends,
``batched_evaluations`` on the sweep engine, ``search_stats`` on the async
search pool.  They are all the same thing: a named, monotonically growing
number that describes scheduling work and never enters canonical results.
:class:`MetricsRegistry` is the single implementation they now share; the
old attribute names survive as properties (views) over a registry, so no
report field or external API broke in the migration.

Two metric kinds cover everything the system records:

* :class:`Counter` — add-only (evaluations run, cache hits, bytes shipped,
  pool fallbacks).  Merging two counters sums them, which is exactly the
  parent-side semantics for counters shipped back from worker processes.
* :class:`Gauge` — last-written level (worker count, trial-batch size).
  Merging keeps the maximum, so a parent absorbing many workers reports
  the widest configuration any of them saw.

Registries are plain dictionaries of slotted objects: incrementing a
counter costs one attribute add, the same as the ``self.x += n`` lines it
replaced, so always-on metrics impose no measurable overhead (asserted by
``benchmarks/test_telemetry_bench.py``).
"""

from __future__ import annotations

__all__ = ["Counter", "Gauge", "MetricsRegistry"]


class Counter:
    """A named add-only metric."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def add(self, amount: int | float = 1) -> None:
        self.value += amount

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Counter({self.name}={self.value})"


class Gauge:
    """A named last-written level."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def set(self, value: int | float) -> None:
        self.value = value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Gauge({self.name}={self.value})"


class MetricsRegistry:
    """Named counters and gauges with snapshot/merge for worker shipping.

    ``counter(name)`` / ``gauge(name)`` create on first use and return the
    same object afterwards, so call sites can cache the metric outside a
    hot loop or re-resolve it by name — both hit the same storage.  A name
    registered as one kind cannot be re-registered as the other: that
    would silently change merge semantics.
    """

    __slots__ = ("_counters", "_gauges")

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}

    # ------------------------------------------------------------------ #
    def counter(self, name: str) -> Counter:
        metric = self._counters.get(name)
        if metric is None:
            if name in self._gauges:
                raise ValueError(f"metric {name!r} is already a gauge")
            metric = self._counters[name] = Counter(name)
        return metric

    def gauge(self, name: str) -> Gauge:
        metric = self._gauges.get(name)
        if metric is None:
            if name in self._counters:
                raise ValueError(f"metric {name!r} is already a counter")
            metric = self._gauges[name] = Gauge(name)
        return metric

    def value(self, name: str, default: int | float = 0) -> int | float:
        """Current value of a metric by name (``default`` if never touched)."""
        metric = self._counters.get(name) or self._gauges.get(name)
        return default if metric is None else metric.value

    def reset(self) -> None:
        """Zero every registered metric (a backend does this per sweep)."""
        for metric in self._counters.values():
            metric.value = 0
        for metric in self._gauges.values():
            metric.value = 0

    # ------------------------------------------------------------------ #
    def as_dict(self) -> dict:
        """Flat ``{name: value}`` view over both kinds, sorted by name."""
        merged = {name: metric.value for name, metric in self._counters.items()}
        merged.update({name: metric.value
                       for name, metric in self._gauges.items()})
        return dict(sorted(merged.items()))

    def snapshot(self) -> dict:
        """Kind-preserving serialisation (what worker processes ship back)."""
        return {
            "counters": {name: metric.value
                         for name, metric in sorted(self._counters.items())},
            "gauges": {name: metric.value
                       for name, metric in sorted(self._gauges.items())},
        }

    def merge(self, snapshot: dict) -> None:
        """Absorb a :meth:`snapshot`: counters sum, gauges keep the max."""
        for name, value in snapshot.get("counters", {}).items():
            self.counter(name).add(value)
        for name, value in snapshot.get("gauges", {}).items():
            gauge = self.gauge(name)
            gauge.set(max(gauge.value, value))

    def __len__(self) -> int:
        return len(self._counters) + len(self._gauges)
