"""Nested wall-clock spans with a zero-cost no-op default.

A :class:`Span` is a context manager recording a name, attributes, a start
offset and a duration; spans opened while another span is active become its
children, so a traced run yields a forest that mirrors the call structure:

    cell → train → sweep → sigma → chunk → backend → task → trial_batch
    bo_batch → suggest_batch / search_trial → train → evaluate

Timing uses :func:`time.perf_counter` (monotonic); every ``start`` is
recorded relative to the tracer's epoch so a trace is self-contained and
position-independent — which is what makes :meth:`Tracer.graft` possible:
a worker process runs its own tracer from its own epoch, ships the
serialised spans back with the task results, and the parent grafts them
under the span that submitted the task, rebasing the offsets onto its own
timeline.  Durations are never rewritten: summarisation accounts time by
``seconds``, so a graft can only mis-place a span horizontally, never
change how much time it is charged.

The default tracer everywhere is :data:`NULL_TRACER`: its ``span()``
returns one shared, pre-allocated no-op context manager, so untraced code
pays one method call per span site and allocates nothing.  The determinism
benchmark (``benchmarks/test_telemetry_bench.py``) pins this down.
"""

from __future__ import annotations

import time

__all__ = ["Span", "Tracer", "NullTracer", "NULL_TRACER"]


class Span:
    """One timed region.  Use via ``with tracer.span(name, **attrs):``."""

    __slots__ = ("name", "attrs", "start", "seconds", "children", "_tracer")

    def __init__(self, tracer: "Tracer", name: str, attrs: dict):
        self.name = name
        self.attrs = attrs
        self.start = 0.0
        self.seconds = 0.0
        self.children: list = []   # Span objects and grafted span dicts
        self._tracer = tracer

    def set(self, **attrs) -> None:
        """Attach attributes discovered mid-span (e.g. dedupe counts)."""
        self.attrs.update(attrs)

    def __enter__(self) -> "Span":
        tracer = self._tracer
        self.start = time.perf_counter() - tracer.epoch
        stack = tracer._stack
        (stack[-1].children if stack else tracer.roots).append(self)
        stack.append(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.seconds = time.perf_counter() - self._tracer.epoch - self.start
        stack = self._tracer._stack
        # Tolerate exception-driven unwinding that skipped inner __exit__s.
        while stack and stack.pop() is not self:
            pass
        return False

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "start": round(self.start, 9),
            "seconds": round(self.seconds, 9),
            "attrs": dict(self.attrs),
            "children": [child if isinstance(child, dict) else child.to_dict()
                         for child in self.children],
        }


def _rebase(span: dict, offset: float) -> dict:
    """Shift a serialised span tree's offsets by ``offset`` (new dicts)."""
    shifted = dict(span)
    shifted["start"] = span.get("start", 0.0) + offset
    shifted["children"] = [_rebase(child, offset)
                          for child in span.get("children", ())]
    return shifted


class Tracer:
    """Collects a forest of :class:`Span` trees against one epoch."""

    enabled = True

    __slots__ = ("epoch", "roots", "_stack")

    def __init__(self) -> None:
        self.epoch = time.perf_counter()
        self.roots: list = []
        self._stack: list[Span] = []

    def span(self, name: str, **attrs) -> Span:
        return Span(self, name, attrs)

    def current_span(self) -> Span | None:
        return self._stack[-1] if self._stack else None

    def graft(self, spans: list, under: Span | None = None) -> None:
        """Adopt serialised worker spans under ``under`` (or as roots).

        Worker offsets are relative to the *worker's* epoch; rebasing them
        onto the receiving span's start keeps the picture "this work
        happened while the submitting span was open".  Roots are tagged
        ``remote`` so summaries can compute worker busy-time.
        """
        offset = under.start if under is not None else 0.0
        target = under.children if under is not None else self.roots
        for span in spans:
            adopted = _rebase(span, offset)
            adopted.setdefault("attrs", {})["remote"] = True
            target.append(adopted)

    def export(self) -> list[dict]:
        """Serialise the forest (open spans export with their current state)."""
        return [root.to_dict() for root in self.roots]


class _NullSpan:
    """Shared do-nothing span; one instance serves every disabled call site."""

    __slots__ = ()

    def set(self, **attrs) -> None:
        pass

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class NullTracer:
    """The default tracer: every operation is a constant-time no-op."""

    enabled = False

    __slots__ = ()

    def span(self, name: str, **attrs) -> _NullSpan:
        return _NULL_SPAN

    def current_span(self) -> None:
        return None

    def graft(self, spans: list, under=None) -> None:
        pass

    def export(self) -> list[dict]:
        return []


NULL_TRACER = NullTracer()
