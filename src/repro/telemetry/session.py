"""The ambient telemetry session: one object bundling tracer + metrics.

Instrumented code never threads a telemetry handle through its signatures
— call stacks here cross process boundaries (engine → backend → worker →
evaluator) and every signature is part of a determinism contract.  Instead
a module-level stack holds the active session: :func:`current` returns the
top (by default :data:`NULL_TELEMETRY`, whose every operation is a no-op),
and :func:`using` pushes a live :class:`Telemetry` for the duration of a
``with`` block.  The CLI activates one session per run; worker processes
activate their own local session per task when the parent's session is
enabled, and ship the snapshot back with the results.

The worker merge protocol is deliberately one-directional and value-only:

1. parent opens a submitting span (``backend``/``bo_batch``) and, because
   ``current().enabled`` is true, sets a plain ``trace`` flag in the
   shipped context;
2. worker sees the flag, builds a throwaway ``Telemetry()``, runs the task
   under ``using(...)``, and returns ``snapshot()`` (pure dicts — cheap to
   pickle, nothing process-specific) alongside the task results;
3. parent calls :meth:`Telemetry.absorb`: spans are grafted under the
   submitting span (offsets rebased, roots tagged ``remote``), counters
   sum, gauges keep the max.

Results and telemetry travel in the same task payload, so a dropped task
drops its telemetry with it — the trace never claims work that did not
report back.
"""

from __future__ import annotations

from contextlib import contextmanager

from .metrics import MetricsRegistry
from .tracer import NULL_TRACER, Span, Tracer

__all__ = ["Telemetry", "NullTelemetry", "NULL_TELEMETRY", "current", "using"]


class Telemetry:
    """A live session: a :class:`Tracer` plus a :class:`MetricsRegistry`."""

    enabled = True

    __slots__ = ("tracer", "metrics")

    def __init__(self) -> None:
        self.tracer = Tracer()
        self.metrics = MetricsRegistry()

    # ------------------------------------------------------------ spans
    def span(self, name: str, **attrs):
        return self.tracer.span(name, **attrs)

    # ---------------------------------------------------------- metrics
    def add(self, name: str, amount: int | float = 1) -> None:
        self.metrics.counter(name).add(amount)

    def gauge(self, name: str, value: int | float) -> None:
        gauge = self.metrics.gauge(name)
        gauge.set(max(gauge.value, value))

    # ------------------------------------------------- worker protocol
    def snapshot(self) -> dict:
        """Everything a worker ships back: pure dicts, stable ordering."""
        return {"spans": self.tracer.export(),
                "metrics": self.metrics.snapshot()}

    def absorb(self, snapshot: dict | None, under: Span | None = None) -> None:
        """Merge a worker :meth:`snapshot` into this session."""
        if not snapshot:
            return
        self.tracer.graft(snapshot.get("spans", ()), under)
        self.metrics.merge(snapshot.get("metrics", {}))


class NullTelemetry:
    """Disabled session — the default.  Every operation is a no-op."""

    enabled = False

    tracer = NULL_TRACER

    __slots__ = ()

    def span(self, name: str, **attrs):
        return NULL_TRACER.span(name)

    def add(self, name: str, amount: int | float = 1) -> None:
        pass

    def gauge(self, name: str, value: int | float) -> None:
        pass

    def snapshot(self) -> dict:
        return {"spans": [], "metrics": {"counters": {}, "gauges": {}}}

    def absorb(self, snapshot, under=None) -> None:
        pass


NULL_TELEMETRY = NullTelemetry()

_STACK: list = [NULL_TELEMETRY]


def current():
    """The active session (:data:`NULL_TELEMETRY` unless inside `using`)."""
    return _STACK[-1]


@contextmanager
def using(telemetry):
    """Make ``telemetry`` the ambient session for the duration of the block."""
    _STACK.append(telemetry)
    try:
        yield telemetry
    finally:
        _STACK.pop()
