"""Live progress lines for matrix runs (``python -m repro run --progress``).

A :class:`ProgressReporter` prints one line per completed cell — done/total
count, percentage, elapsed wall-clock and a remaining-time estimate from
the mean pace so far.  It writes to a supplied ``emit`` callable (the CLI
passes ``print`` to stderr) so tests can capture lines without touching
real output streams, and it is wall-clock-only: nothing it computes feeds
canonical results.
"""

from __future__ import annotations

import time

__all__ = ["ProgressReporter"]


def _fmt_seconds(seconds: float) -> str:
    if seconds >= 3600:
        return f"{seconds / 3600:.1f}h"
    if seconds >= 60:
        return f"{seconds / 60:.1f}m"
    return f"{seconds:.1f}s"


class ProgressReporter:
    """Counts completed work items and formats ``done/total`` + ETA lines."""

    def __init__(self, total: int, label: str = "cells", emit=None):
        self.total = max(int(total), 0)
        self.label = label
        self.emit = emit
        self.done = 0
        self._started = time.perf_counter()

    def advance(self, n: int = 1, note: str = "") -> str:
        """Record ``n`` completions; format, emit and return the line."""
        self.done += n
        elapsed = time.perf_counter() - self._started
        if self.total:
            pct = 100.0 * self.done / self.total
            line = (f"[{self.done}/{self.total}] {pct:.0f}% {self.label} "
                    f"elapsed {_fmt_seconds(elapsed)}")
        else:
            # total=0 means "unknown" (figure-harness scenarios discover
            # their cells as they go): count without percentage or ETA.
            line = (f"[{self.done}] {self.label} "
                    f"elapsed {_fmt_seconds(elapsed)}")
        if self.total and self.done and self.total > self.done:
            eta = elapsed / self.done * (self.total - self.done)
            line += f" eta {_fmt_seconds(eta)}"
        if note:
            line += f" {note}"
        if self.emit is not None:
            self.emit(line)
        return line
