"""repro.telemetry — unified tracing, metrics and progress.

One observability layer for the whole system: nested wall-clock spans
(:mod:`.tracer`), a single counter/gauge implementation behind every
volatile stat (:mod:`.metrics`), an ambient session with a worker-side
capture/parent-side merge protocol (:mod:`.session`), JSON-lines export
and human summaries (:mod:`.export`), and live matrix-run progress lines
(:mod:`.progress`).

The contract that shapes everything here: telemetry is **zero-cost when
off** (the default session is a shared no-op object) and **never touches
canonical output** — canonical reports, golden BO traces and spec hashes
are byte-identical with tracing on or off, across every backend and
worker count (``tests/test_telemetry.py``).
"""

from .export import (
    format_trace_summary,
    read_trace_jsonl,
    span_breakdown,
    summarize_trace,
    write_trace_jsonl,
)
from .metrics import Counter, Gauge, MetricsRegistry
from .progress import ProgressReporter
from .session import NULL_TELEMETRY, NullTelemetry, Telemetry, current, using
from .tracer import NULL_TRACER, NullTracer, Span, Tracer

__all__ = [
    "Counter",
    "Gauge",
    "MetricsRegistry",
    "Span",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "Telemetry",
    "NullTelemetry",
    "NULL_TELEMETRY",
    "current",
    "using",
    "write_trace_jsonl",
    "read_trace_jsonl",
    "summarize_trace",
    "format_trace_summary",
    "span_breakdown",
    "ProgressReporter",
]
