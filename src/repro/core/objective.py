"""The drift-marginalised objective of Eq. (3)–(4).

``u(α, θ) = −E_{θ̃~p(θ̃)}[ℓ(f_{α,θ̃}(x), y)]`` is intractable; the paper
estimates it with ``T`` Monte-Carlo samples of the drifted weights
(Eq. 4).  For reporting, an accuracy-based variant (mean accuracy under
drift) is also provided — it is the quantity actually plotted in the
paper's figures and is bounded in [0, 1], which keeps the GP surrogate well
behaved.
"""

from __future__ import annotations

import numpy as np

from ..nn import cross_entropy
from ..nn.module import Module
from ..nn.tensor import Tensor, no_grad
from ..data.loader import Dataset
from ..fault.drift import LogNormalDrift
from ..fault.injector import fault_injection
from ..utils.rng import get_rng

__all__ = ["DriftMarginalizedObjective"]


class DriftMarginalizedObjective:
    """Monte-Carlo estimator of the drift-marginalised utility.

    Parameters
    ----------
    dataset:
        Validation data on which the utility is estimated.
    sigma:
        Drift level σ used during the search.  The paper searches at a
        representative σ and evaluates over the full sweep.
    monte_carlo_samples:
        ``T`` in Eq. (4).
    metric:
        ``"neg_loss"`` (the paper's Eq. 3) or ``"accuracy"``.
    max_batch:
        Evaluation subsample size per Monte-Carlo draw, to bound CPU cost.
    """

    def __init__(self, dataset: Dataset, sigma: float = 0.6,
                 monte_carlo_samples: int = 5, metric: str = "neg_loss",
                 max_batch: int = 512, rng=None):
        if monte_carlo_samples < 1:
            raise ValueError("monte_carlo_samples must be at least 1")
        if metric not in ("neg_loss", "accuracy"):
            raise ValueError("metric must be 'neg_loss' or 'accuracy'")
        self.dataset = dataset
        self.sigma = float(sigma)
        self.monte_carlo_samples = int(monte_carlo_samples)
        self.metric = metric
        self.max_batch = int(max_batch)
        self.rng = get_rng(rng)

    # ------------------------------------------------------------------ #
    def _evaluation_batch(self) -> tuple[np.ndarray, np.ndarray]:
        n = len(self.dataset)
        if n <= self.max_batch:
            return self.dataset.inputs, self.dataset.labels
        indices = self.rng.choice(n, size=self.max_batch, replace=False)
        return self.dataset.inputs[indices], self.dataset.labels[indices]

    def _score_once(self, model: Module, inputs: np.ndarray, labels: np.ndarray) -> float:
        with no_grad():
            logits = model(Tensor(inputs))
        if self.metric == "accuracy":
            return float((logits.data.argmax(axis=1) == labels).mean())
        loss = cross_entropy(logits, labels)
        return -float(loss.item())

    def evaluate(self, model: Module) -> float:
        """Estimate u(α, θ) for the model's current architecture and weights."""
        model.eval()
        inputs, labels = self._evaluation_batch()
        scores = []
        for _ in range(self.monte_carlo_samples):
            with fault_injection(model, LogNormalDrift(self.sigma), rng=self.rng):
                scores.append(self._score_once(model, inputs, labels))
        return float(np.mean(scores))

    def evaluate_clean(self, model: Module) -> float:
        """The same metric without any drift (diagnostic)."""
        model.eval()
        inputs, labels = self._evaluation_batch()
        return self._score_once(model, inputs, labels)

    def __call__(self, model: Module) -> float:
        return self.evaluate(model)
