"""The drift-marginalised objective of Eq. (3)–(4), routed through the sweep engine.

``u(α, θ) = −E_{θ̃~p(θ̃)}[ℓ(f_{α,θ̃}(x), y)]`` is intractable; the paper
estimates it with ``T`` Monte-Carlo samples of the drifted weights
(Eq. 4).  For reporting, an accuracy-based variant (mean accuracy under
drift) is also provided — it is the quantity actually plotted in the
paper's figures and is bounded in [0, 1], which keeps the GP surrogate well
behaved.

This is the hottest path of the whole system: the estimate runs once per
Bayesian-optimisation trial (Algorithm 1, line 8).  Instead of a private
per-draw loop, the ``T`` drift draws are pre-drawn vectorized and evaluated
through :class:`~repro.evaluation.sweep.DriftSweepEngine`, which gives the
search three things for free:

* an **inference cache** — bit-identical drifted weight sets (every clean
  σ=0 draw, and any repeat across BO trials via the persistent
  ``shared_cache``) are evaluated exactly once;
* **deterministic seeding** — results are bit-identical for any
  ``sweep_workers`` count and any ``max_chunk_trials`` chunk size, because
  all randomness is consumed in the main process before evaluation is
  scheduled;
* optional **process-parallel fan-out** of the Monte-Carlo draws.
"""

from __future__ import annotations

import numpy as np

from ..data.loader import Dataset
from ..evaluation.sweep import DriftSweepEngine, SweepReport
from ..inference import AccuracyAndLoss
from ..nn.module import Module
from ..telemetry import MetricsRegistry
from ..utils.rng import get_rng

__all__ = ["DriftMarginalizedObjective"]

#: Accuracy and cross-entropy from one forward pass (per trial or per
#: stacked trial batch).  The engine stores the accuracy as the trial score
#: and the loss in the report's loss track, so one sweep serves Eq. 3
#: (``neg_loss``) and the figures (``accuracy``).  A module-level instance
#: so the process-parallel backends can pickle it.
_batch_metrics = AccuracyAndLoss()


class DriftMarginalizedObjective:
    """Monte-Carlo estimator of the drift-marginalised utility.

    Parameters
    ----------
    dataset:
        Validation data on which the utility is estimated.
    sigma:
        Drift level σ used during the search.  The paper searches at a
        representative σ and evaluates over the full sweep.
    monte_carlo_samples:
        ``T`` in Eq. (4).
    metric:
        ``"neg_loss"`` (the paper's Eq. 3) or ``"accuracy"``.
    max_batch:
        Evaluation subsample size per Monte-Carlo draw, to bound CPU cost.
    sweep_workers:
        Worker processes for the inner sweep: ``0``/``1`` evaluates the
        Monte-Carlo draws serially, ``n >= 2`` fans them out over ``n``
        processes.  Seeded results are bit-identical either way.
    sweep_backend:
        Execution backend for the inner sweep (``None`` derives it from
        ``sweep_workers``; otherwise a :mod:`repro.execution` registry name
        such as ``"shared_memory"`` or a backend instance).  Never changes
        results — the deep-model search uses shared-memory shipping so each
        BO trial's ``T`` weight copies cross to the workers as offset
        tables, not pickled arrays.
    max_chunk_trials:
        Bound on how many drifted weight copies are materialised at once
        while pre-drawing the ``T`` samples (``None`` = all at once); lets
        PreAct-ResNet-depth models run the search in bounded memory without
        changing any result.
    trial_batch:
        Trials per stacked forward pass in the inner sweep (``None``/``1``
        evaluates the Monte-Carlo draws one at a time).  Like
        ``sweep_workers`` and ``max_chunk_trials`` this never changes
        results — batched evaluation is bit-identical (see
        :mod:`repro.inference`) — it only amortises per-draw dispatch
        overhead across the ``T`` samples.

    Attributes
    ----------
    evaluations_total / cache_hits_total:
        Running counters over every engine run this objective has issued —
        ``cache_hits_total`` is the number of model evaluations the
        inference cache saved the Bayesian-optimisation loop.  Both are
        read-only views over the objective's
        :class:`~repro.telemetry.MetricsRegistry` (``self.metrics``).
    """

    def __init__(self, dataset: Dataset, sigma: float = 0.6,
                 monte_carlo_samples: int = 5, metric: str = "neg_loss",
                 max_batch: int = 512, rng=None, sweep_workers: int = 0,
                 max_chunk_trials: int | None = None, sweep_backend=None,
                 trial_batch: int | None = None):
        if monte_carlo_samples < 1:
            raise ValueError("monte_carlo_samples must be at least 1")
        if metric not in ("neg_loss", "accuracy"):
            raise ValueError("metric must be 'neg_loss' or 'accuracy'")
        if sweep_workers < 0:
            raise ValueError("sweep_workers must be non-negative")
        self.dataset = dataset
        self.sigma = float(sigma)
        self.monte_carlo_samples = int(monte_carlo_samples)
        self.metric = metric
        self.max_batch = int(max_batch)
        self.rng = get_rng(rng)
        self.sweep_workers = int(sweep_workers)
        self.max_chunk_trials = max_chunk_trials
        self.sweep_backend = sweep_backend
        self.trial_batch = trial_batch
        # Digest -> (accuracy, loss), persisted across evaluate() calls so
        # repeated weight states across BO trials are never re-evaluated.
        self._shared_cache: dict = {}
        self.metrics = MetricsRegistry()
        self.last_report: SweepReport | None = None

    @property
    def evaluations_total(self) -> int:
        return self.metrics.value("evaluations_total")

    @property
    def cache_hits_total(self) -> int:
        return self.metrics.value("cache_hits_total")

    # ------------------------------------------------------------------ #
    def clone(self, rng=None) -> "DriftMarginalizedObjective":
        """A fresh objective with this configuration, its own RNG and cache.

        The async search scheduler gives every concurrent trial a clone
        seeded from the trial's own spawned stream: trials running in
        different worker processes cannot share the in-process
        ``_shared_cache`` or an RNG, so each trial gets private ones and the
        evaluation becomes a pure function of ``(model state, trial seed)``
        — the property that makes seeded async searches bit-identical for
        any worker count.  Counters start at zero; the scheduler aggregates
        them back into ``BayesFTResult.objective_stats``.
        """
        return DriftMarginalizedObjective(
            self.dataset, sigma=self.sigma,
            monte_carlo_samples=self.monte_carlo_samples, metric=self.metric,
            max_batch=self.max_batch, rng=rng,
            sweep_workers=self.sweep_workers,
            max_chunk_trials=self.max_chunk_trials,
            sweep_backend=self.sweep_backend, trial_batch=self.trial_batch)

    def _evaluation_batch(self) -> tuple[np.ndarray, np.ndarray]:
        return self._evaluation_data()[:]

    def _evaluation_data(self) -> Dataset:
        n = len(self.dataset)
        if n <= self.max_batch:
            return self.dataset
        # A fresh subsample invalidates the cross-call cache: its entries
        # were measured on a different evaluation batch, so identical
        # weights would no longer produce identical metrics.
        self._shared_cache.clear()
        indices = self.rng.choice(n, size=self.max_batch, replace=False)
        return self.dataset.subset(indices)

    def _engine(self, model: Module, batch: Dataset) -> DriftSweepEngine:
        return DriftSweepEngine(model, batch, trials=self.monte_carlo_samples,
                                workers=self.sweep_workers,
                                backend=self.sweep_backend,
                                max_chunk_trials=self.max_chunk_trials,
                                trial_batch=self.trial_batch,
                                rng=self.rng, evaluate_fn=_batch_metrics,
                                shared_cache=self._shared_cache)

    def _utility(self, report: SweepReport, row: int) -> float:
        if self.metric == "accuracy":
            return float(np.mean(report.trial_scores[row]))
        return -float(np.mean(report.trial_losses[row]))

    def _record(self, report: SweepReport) -> None:
        self.metrics.counter("evaluations_total").add(report.n_evaluations)
        self.metrics.counter("cache_hits_total").add(report.cache_hits)
        self.last_report = report

    # ------------------------------------------------------------------ #
    def evaluate(self, model: Module) -> float:
        """Estimate u(α, θ) for the model's current architecture and weights."""
        model.eval()
        report = self._engine(model, self._evaluation_data()).run(
            (self.sigma,), label="objective")
        self._record(report)
        return self._utility(report, 0)

    def evaluate_with_clean(self, model: Module) -> tuple[float, float, SweepReport]:
        """Drifted and clean utility from one engine run over (0, σ).

        The σ=0 row's ``T`` trials are bit-identical, so the inference cache
        collapses them to a single model evaluation — the clean diagnostic
        the search loop logs every trial is nearly free.  Returns
        ``(u_drifted, u_clean, report)``.
        """
        model.eval()
        report = self._engine(model, self._evaluation_data()).run(
            (0.0, self.sigma), label="objective")
        self._record(report)
        return self._utility(report, 1), self._utility(report, 0), report

    def evaluate_clean(self, model: Module) -> float:
        """The same metric without any drift (diagnostic; one forward pass)."""
        model.eval()
        score, loss = _batch_metrics(model, self._evaluation_data())
        return score if self.metric == "accuracy" else -loss

    def __call__(self, model: Module) -> float:
        return self.evaluate(model)
