"""The BayesFT search space: per-layer dropout rates of an existing model.

The paper's key search-space simplification (§III-B) is to keep the network
topology fixed, append a dropout layer after every layer except the output
head, and search only over the vector of dropout rates
``α ∈ [0, 1]^(K-1)``.  All models in :mod:`repro.models` are built with
:class:`~repro.nn.layers.dropout.Dropout` modules already in place (rate 0
by default), so the search space simply enumerates those modules and
re-configures their rates.
"""

from __future__ import annotations

import numpy as np

from ..nn.module import Module
from ..nn.layers.dropout import Dropout, AlphaDropout

__all__ = ["DropoutSearchSpace"]


class DropoutSearchSpace:
    """Maps a vector α of dropout rates onto a model's dropout layers.

    Parameters
    ----------
    model:
        The network whose dropout layers define the search dimensions.
    max_rate:
        Upper bound of each dropout rate.  The paper searches on [0, 1];
        rates very close to 1 destroy all signal, so the default caps the
        range at 0.9 (the cap is configurable to reproduce the exact paper
        setting).
    include_alpha_dropout:
        Whether :class:`AlphaDropout` layers are also part of the space.
    """

    def __init__(self, model: Module, max_rate: float = 0.9,
                 include_alpha_dropout: bool = True):
        if not 0.0 < max_rate < 1.0:
            raise ValueError("max_rate must lie in (0, 1)")
        self.model = model
        self.max_rate = float(max_rate)
        self.include_alpha_dropout = bool(include_alpha_dropout)
        kinds = (Dropout, AlphaDropout) if include_alpha_dropout else (Dropout,)
        self._layers = [(name, module) for name, module in model.named_modules()
                        if isinstance(module, kinds)]
        if not self._layers:
            raise ValueError(
                "model has no dropout layers; build it with dropout modules "
                "(all repro.models classifiers insert them automatically)")

    # ------------------------------------------------------------------ #
    @property
    def dim(self) -> int:
        """Number of search dimensions (dropout layers)."""
        return len(self._layers)

    @property
    def layer_names(self) -> list[str]:
        """Dotted module names of the dropout layers, in model order."""
        return [name for name, _ in self._layers]

    @property
    def bounds(self) -> list[tuple[float, float]]:
        """Box bounds for the Bayesian optimiser."""
        return [(0.0, self.max_rate)] * self.dim

    # ------------------------------------------------------------------ #
    def get_rates(self) -> np.ndarray:
        """Current dropout-rate vector of the model."""
        return np.array([module.rate for _, module in self._layers])

    def apply(self, alpha: np.ndarray) -> None:
        """Write the rate vector α into the model's dropout layers."""
        alpha = np.asarray(alpha, dtype=np.float64).ravel()
        if alpha.shape[0] != self.dim:
            raise ValueError(f"alpha must have {self.dim} entries, got {alpha.shape[0]}")
        clipped = np.clip(alpha, 0.0, self.max_rate)
        for (_, module), rate in zip(self._layers, clipped):
            module.set_rate(float(rate))

    def sample(self, rng: np.random.Generator) -> np.ndarray:
        """Uniform random α (Algorithm 1's initialisation)."""
        return rng.uniform(0.0, self.max_rate, size=self.dim)

    def describe(self) -> dict:
        """Human-readable summary used by the examples."""
        return {name: float(module.rate) for name, module in self._layers}
