"""BayesFT core: the paper's primary contribution.

* :class:`DropoutSearchSpace` — the architecture search space of §III-B:
  one dropout rate per layer of an existing network.
* :class:`DriftMarginalizedObjective` — Eq. (3)–(4): the Monte-Carlo
  estimate of the negative loss (or accuracy) marginalised over drifted
  weights.
* :class:`BayesFTSearch` — Algorithm 1: alternating SGD on the weights and
  Gaussian-process Bayesian optimisation on the dropout rates.
* :class:`BayesFT` — the high-level "train me a fault-tolerant network" API
  used by the examples and benchmarks.
"""

from .search_space import DropoutSearchSpace
from .objective import DriftMarginalizedObjective
from .algorithm import BayesFTSearch, BayesFTResult
from .api import BayesFT

__all__ = [
    "DropoutSearchSpace", "DriftMarginalizedObjective",
    "BayesFTSearch", "BayesFTResult", "BayesFT",
]
