"""BayesFT core: the paper's primary contribution.

* :class:`DropoutSearchSpace` — the architecture search space of §III-B:
  one dropout rate per layer of an existing network.
* :class:`DriftMarginalizedObjective` — Eq. (3)–(4): the Monte-Carlo
  estimate of the negative loss (or accuracy) marginalised over drifted
  weights.
* :class:`BayesFTSearch` — Algorithm 1: alternating SGD on the weights and
  Gaussian-process Bayesian optimisation on the dropout rates.
* :class:`AsyncTrialScheduler` — batch-synchronous concurrent search:
  constant-liar ``q``-point suggestion fanned over worker processes with
  ordered observation replay (seeded traces depend on ``q``, never on the
  worker count).
* :class:`BayesFT` — the high-level "train me a fault-tolerant network" API
  used by the examples and benchmarks.
"""

from .search_space import DropoutSearchSpace
from .objective import DriftMarginalizedObjective
from .algorithm import BayesFTSearch, BayesFTResult
from .scheduler import AsyncTrialScheduler
from .api import BayesFT

__all__ = [
    "DropoutSearchSpace", "DriftMarginalizedObjective",
    "BayesFTSearch", "BayesFTResult", "AsyncTrialScheduler", "BayesFT",
]
