"""High-level BayesFT API: the one-call entry point used by examples/benches."""

from __future__ import annotations

import numpy as np

from ..data.loader import Dataset, train_test_split
from ..nn.module import Module
from ..utils.rng import get_rng
from .algorithm import BayesFTSearch, BayesFTResult
from .objective import DriftMarginalizedObjective
from .search_space import DropoutSearchSpace

__all__ = ["BayesFT"]


class BayesFT:
    """Search for a fault-tolerant configuration of an existing model.

    Typical use::

        model = build_model("mlp", num_classes=10, image_size=16)
        bayesft = BayesFT(sigma=0.6, n_trials=10, epochs_per_trial=2)
        result = bayesft.fit(model, train_set)
        print(result.best_alpha)          # per-layer dropout rates
        # `model` now carries the best dropout rates and trained weights.

    Parameters
    ----------
    sigma:
        Drift level used inside the search objective (Eq. 3–4).
    n_trials:
        Number of Bayesian-optimisation trials (outer iterations of
        Algorithm 1).
    epochs_per_trial:
        SGD epochs per trial (``E`` in Algorithm 1).
    monte_carlo_samples:
        ``T`` in Eq. (4).
    metric:
        ``"accuracy"`` (default, bounded and well-scaled for the GP) or
        ``"neg_loss"`` (the paper's literal Eq. 3).
    validation_fraction:
        Portion of the training data held out for the drifted objective.
    optimizer_kind:
        ``"bayes"`` or ``"random"`` (the ablation baseline).
    sweep_workers:
        Worker processes for the inner Monte-Carlo objective, forwarded to
        :class:`~repro.evaluation.sweep.DriftSweepEngine`: ``0``/``1``
        evaluates serially, ``n >= 2`` fans the drift draws out over ``n``
        processes.  Seeded search results are bit-identical either way.
    max_chunk_trials:
        Bound on how many drifted weight copies the inner objective
        materialises at once (``None`` = all ``monte_carlo_samples``);
        bounds memory for deep models without changing any seeded result.
    sweep_backend:
        Execution backend for the inner objective's sweeps (``None``
        derives it from ``sweep_workers``; or a :mod:`repro.execution`
        name such as ``"shared_memory"``, which ships each trial's weight
        copies to the workers as shared-memory offset tables instead of
        pickled arrays).  Never changes seeded results.
    trial_batch:
        Monte-Carlo draws per stacked forward pass in the inner objective
        (``None``/``1`` evaluates draws one at a time).  Batched evaluation
        is bit-identical (see :mod:`repro.inference`), so like the other
        scheduling knobs this never changes seeded results.
    warm_start:
        If True (default) each trial fine-tunes the current weights; if
        False every trial retrains from the initial weights.
    suggest_batch:
        ``q``: architectures proposed per round via constant-liar batch
        suggestion (``1`` keeps the sequential loop, bit-identical to the
        pre-async implementation).
    search_workers:
        ``k``: worker processes evaluating a suggestion batch concurrently.
        Never changes seeded results — the canonical trace depends only on
        ``suggest_batch``.
    search_backend:
        ``None`` derives ``"process"``/``"serial"`` from ``search_workers``;
        or a :data:`~repro.execution.search.SEARCH_BACKENDS` name.  Never
        changes seeded results.
    early_stop_margin:
        Async-mode early termination: a trial whose clean (σ=0) utility
        falls more than this margin below the best committed objective
        skips the drifted sweep (``None`` disables).
    rng:
        Seed or ``numpy.random.Generator`` shared by training, the search
        and the objective; a fixed seed makes the whole search reproducible.
    """

    def __init__(self, sigma: float = 0.6, n_trials: int = 10, epochs_per_trial: int = 2,
                 monte_carlo_samples: int = 3, metric: str = "accuracy",
                 validation_fraction: float = 0.25, batch_size: int = 64,
                 learning_rate: float = 0.05, momentum: float = 0.9,
                 weight_optimizer: str = "sgd",
                 max_dropout_rate: float = 0.9, optimizer_kind: str = "bayes",
                 sweep_workers: int = 0, max_chunk_trials: int | None = None,
                 sweep_backend=None, trial_batch: int | None = None,
                 warm_start: bool = True, suggest_batch: int = 1,
                 search_workers: int = 0, search_backend: str | None = None,
                 early_stop_margin: float | None = None, rng=None):
        if not 0.0 < validation_fraction < 1.0:
            raise ValueError("validation_fraction must lie in (0, 1)")
        self.sigma = sigma
        self.n_trials = n_trials
        self.epochs_per_trial = epochs_per_trial
        self.monte_carlo_samples = monte_carlo_samples
        self.metric = metric
        self.validation_fraction = validation_fraction
        self.batch_size = batch_size
        self.learning_rate = learning_rate
        self.momentum = momentum
        self.weight_optimizer = weight_optimizer
        self.max_dropout_rate = max_dropout_rate
        self.optimizer_kind = optimizer_kind
        self.sweep_workers = sweep_workers
        self.max_chunk_trials = max_chunk_trials
        self.sweep_backend = sweep_backend
        self.trial_batch = trial_batch
        self.warm_start = warm_start
        self.suggest_batch = suggest_batch
        self.search_workers = search_workers
        self.search_backend = search_backend
        self.early_stop_margin = early_stop_margin
        self.rng = get_rng(rng)
        self.search_: BayesFTSearch | None = None
        self.result_: BayesFTResult | None = None

    def fit(self, model: Module, dataset: Dataset,
            validation_dataset: Dataset | None = None) -> BayesFTResult:
        """Run the BayesFT search on ``model``; the model is modified in place."""
        if validation_dataset is None:
            train_set, validation_dataset = train_test_split(
                dataset, test_fraction=self.validation_fraction, rng=self.rng)
        else:
            train_set = dataset
        search_space = DropoutSearchSpace(model, max_rate=self.max_dropout_rate)
        objective = DriftMarginalizedObjective(
            validation_dataset, sigma=self.sigma,
            monte_carlo_samples=self.monte_carlo_samples, metric=self.metric,
            sweep_workers=self.sweep_workers,
            max_chunk_trials=self.max_chunk_trials,
            sweep_backend=self.sweep_backend,
            trial_batch=self.trial_batch, rng=self.rng)
        self.search_ = BayesFTSearch(
            search_space, objective, train_set,
            epochs_per_trial=self.epochs_per_trial, batch_size=self.batch_size,
            learning_rate=self.learning_rate, momentum=self.momentum,
            weight_optimizer=self.weight_optimizer,
            optimizer_kind=self.optimizer_kind, warm_start=self.warm_start,
            suggest_batch=self.suggest_batch,
            search_workers=self.search_workers,
            search_backend=self.search_backend,
            early_stop_margin=self.early_stop_margin,
            rng=self.rng)
        self.result_ = self.search_.run(n_trials=self.n_trials)
        return self.result_

    @property
    def best_alpha(self) -> np.ndarray:
        """Per-layer dropout rates of the best trial (after :meth:`fit`)."""
        if self.result_ is None:
            raise RuntimeError("call fit() first")
        return self.result_.best_alpha
