"""Async trial scheduling for batched Bayesian-optimisation search.

:class:`AsyncTrialScheduler` turns the strictly sequential Algorithm-1 loop
into batch-synchronous concurrent search: the optimiser proposes ``q``
architectures at once (constant-liar fantasies,
:meth:`~repro.bayesopt.optimizer.BayesianOptimizer.suggest_batch`), the
batch fans out over a :class:`~repro.execution.search.SearchTrialPool`, and
the results are committed by **ordered observation replay** — observations
enter the GP and the trace in trial-index order, never in worker-completion
order.  Because the suggestion sequence depends only on the committed trace
and ``q`` (each batch slot draws from its own spawned RNG stream), and every
trial is a pure function of ``(α, base state, trial seed)``, a seeded
``(q, k)`` run produces exactly one canonical trace for *any* worker count
``k`` and any backend — the async counterpart of the sweep determinism
contract in :mod:`repro.execution`.

Every worker-side trial rebuilds all of its state from the shipped context
and its payload: the base weights are reloaded, every module-private RNG
(dropout mask generators live *outside* ``state_dict``) is reseeded from the
trial's spawned stream, and the objective is cloned with a private RNG and
cache.  Nothing a previous trial did to that worker can leak forward.

Early termination consumes the σ-grid in order: the σ=0 (clean) row is
nearly free, so it is measured first, and a trial whose clean utility
already sits ``early_stop_margin`` below the best *committed* objective is
dominated and skips the expensive ``T``-sample drifted sweep.  Its recorded
value is strictly below an objective the search has already banked, so a
terminated trial can never be reported as its run's winner.  The cut is a
*heuristic* on the clean reading, though: a pruned trial's drifted utility
is never measured, so with a tight margin the run may keep a different
winner than the exhaustive (no-margin) search would have — the margin
trades search fidelity for wall-clock.
"""

from __future__ import annotations

import numpy as np

from ..telemetry import Telemetry, current, using
from ..training.trainer import Trainer
from .search_space import DropoutSearchSpace

__all__ = ["AsyncTrialScheduler"]


def _reseed_module_rngs(model, seed_seq: np.random.SeedSequence) -> None:
    """Give every RNG-bearing module a fresh stream spawned from ``seed_seq``.

    Dropout mask generators are module state *outside* ``state_dict()``, so
    reloading weights alone would leave each worker's mask streams wherever
    the previous trial advanced them — results would then depend on which
    worker a trial landed on.  ``named_modules()`` enumerates in model order,
    so stream assignment is deterministic.
    """
    bearers = [module for _, module in model.named_modules()
               if hasattr(module, "_rng")]
    for module, child in zip(bearers, seed_seq.spawn(len(bearers))):
        module._rng = np.random.default_rng(child)


def _execute_search_trial(context: dict, payload: dict) -> dict:
    """One search trial: load base weights, train with α, evaluate.

    Module-level so the pool ships it by reference; self-contained so the
    result is a pure function of the context plus this payload.  The three
    spawned sub-streams (module reseed / SGD shuffling / objective) make the
    trial reproducible bit-for-bit wherever it runs.

    When the parent session is tracing (``context["trace"]``), the trial
    captures its own span tree — train / evaluate, with the objective's
    whole sweep hierarchy nested below — and ships the snapshot back inside
    the result dict; the scheduler grafts it under the batch's span.  The
    flag carries no entropy and the snapshot rides outside every canonical
    field, so traced and untraced trials commit identical observations.
    """
    if not context.get("trace"):
        return _search_trial_body(context, payload)
    telemetry = Telemetry()
    with using(telemetry):
        with telemetry.span("search_trial", index=payload["index"]):
            result = _search_trial_body(context, payload)
    result["telemetry"] = telemetry.snapshot()
    return result


def _search_trial_body(context: dict, payload: dict) -> dict:
    model = context["model"]
    space = context.get("_space")
    if space is None:
        space = DropoutSearchSpace(
            model, max_rate=context["max_rate"],
            include_alpha_dropout=context["include_alpha_dropout"])
        context["_space"] = space

    reseed_seq, train_seq, eval_seq = \
        np.random.SeedSequence(payload["seed"]).spawn(3)
    model.load_state_dict(payload["base_state"])
    _reseed_module_rngs(model, reseed_seq)
    space.apply(payload["alpha"])

    trainer = Trainer(model, learning_rate=context["learning_rate"],
                      momentum=context["momentum"],
                      optimizer=context["weight_optimizer"],
                      rng=np.random.default_rng(train_seq))
    telemetry = current()
    with telemetry.span("train", epochs=context["epochs_per_trial"]):
        trainer.fit(context["train_dataset"],
                    epochs=context["epochs_per_trial"],
                    batch_size=context["batch_size"])

    objective = context["objective"].clone(rng=np.random.default_rng(eval_seq))
    baseline = payload.get("baseline")
    margin = context.get("early_stop_margin")
    if baseline is not None and margin is not None:
        with telemetry.span("evaluate", clean_only=True):
            clean = float(objective.evaluate_clean(model))
        # NaN-safe comparison: a diverged trial (NaN clean utility) is
        # dominated too and must terminate rather than run the full sweep.
        if not clean >= baseline - margin:
            telemetry.add("terminated_trials")
            return {"index": payload["index"], "value": clean, "clean": clean,
                    "terminated": True, "state": None,
                    "stats": {"evaluations": 0, "cache_hits": 0}}
    with telemetry.span("evaluate"):
        value, clean, _ = objective.evaluate_with_clean(model)
    return {"index": payload["index"], "value": float(value),
            "clean": float(clean), "terminated": False,
            "state": model.state_dict(),
            "stats": {"evaluations": objective.evaluations_total,
                      "cache_hits": objective.cache_hits_total}}


class AsyncTrialScheduler:
    """Batch-suggest, fan out, commit observations in trial-index order.

    Parameters
    ----------
    optimizer:
        Anything with ``suggest_batch(q)`` / ``observe(point, value)``
        (:class:`~repro.bayesopt.optimizer.BayesianOptimizer` or the random
        baseline).
    pool:
        A :class:`~repro.execution.search.SearchTrialPool` (or any object
        with the same ``run_batch`` contract — results carry an ``index``).
    suggest_batch:
        ``q``, the number of points proposed (and evaluated concurrently)
        per scheduling round.  The canonical trace depends on ``q`` but
        never on the pool's worker count.
    """

    def __init__(self, optimizer, pool, suggest_batch: int = 1):
        if suggest_batch < 1:
            raise ValueError("suggest_batch must be at least 1")
        self.optimizer = optimizer
        self.pool = pool
        self.suggest_batch = int(suggest_batch)
        self.batches_run = 0

    def run(self, n_trials: int, build_payload, commit) -> None:
        """Drive ``n_trials`` trials in batches of ``suggest_batch``.

        ``build_payload(index, alpha)`` is called at batch-build time (so it
        sees only *committed* state — the deterministic baseline for early
        termination and warm starts); ``commit(alpha, result)`` is called
        strictly in trial-index order after the matching observation has
        been replayed into the optimiser.
        """
        telemetry = current()
        completed = 0
        while completed < n_trials:
            q = min(self.suggest_batch, n_trials - completed)
            with telemetry.span("bo_batch", batch=self.batches_run,
                                q=q) as batch_span:
                with telemetry.span("suggest_batch", q=q):
                    alphas = [np.asarray(alpha, dtype=np.float64)
                              for alpha in self.optimizer.suggest_batch(q)]
                payloads = [build_payload(completed + slot, alphas[slot])
                            for slot in range(q)]
                results = self.pool.run_batch(payloads)
                # Ordered observation replay: workers may finish in any
                # order (and a pool may even return them shuffled); the
                # trace is built from trial indices alone.
                for result in sorted(results, key=lambda r: r["index"]):
                    telemetry.absorb(result.pop("telemetry", None),
                                     under=batch_span)
                    slot = result["index"] - completed
                    self.optimizer.observe(alphas[slot], result["value"])
                    commit(alphas[slot], result)
            completed += q
            self.batches_run += 1
