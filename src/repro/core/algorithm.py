"""Algorithm 1: alternating weight training and Bayesian architecture search.

Each outer iteration (a "trial") does:

1. train the network weights θ for ``epochs_per_trial`` epochs of SGD with
   the current dropout rates α (Algorithm 1, lines 5–7);
2. estimate the drift-marginalised objective u(α, θ) with Monte-Carlo
   sampling (Eq. 4);
3. feed (α, u) to the Gaussian-process surrogate and pick the next α by
   maximising the acquisition function (lines 8–9).

The best (α, θ) pair seen — judged by the drifted objective — is returned.

With ``suggest_batch=q`` / ``search_workers=k`` the loop runs *batch-
synchronously*: ``q`` architectures are proposed at once (constant-liar
fantasies) and evaluated concurrently over ``k`` worker processes, with
observations committed by ordered replay (:mod:`repro.core.scheduler`) so
the seeded trace depends on ``q`` but never on ``k``, the backend, or which
worker finished first.  ``q=1, k≤1`` takes the original sequential path,
bit-identical to what it always produced.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field

import numpy as np

from ..bayesopt.optimizer import BayesianOptimizer
from ..bayesopt.acquisition import AcquisitionFunction
from ..bayesopt.random_search import RandomSearchOptimizer
from ..data.loader import Dataset
from ..execution.search import SearchTrialPool
from ..nn.module import Module
from ..telemetry import current
from ..training.trainer import Trainer
from ..utils.rng import get_rng
from .objective import DriftMarginalizedObjective
from .scheduler import AsyncTrialScheduler, _execute_search_trial
from .search_space import DropoutSearchSpace

__all__ = ["BayesFTSearch", "BayesFTResult"]


def _state_sha256(state: dict) -> str:
    """Content digest of a ``state_dict`` (key-sorted, dtype/shape-tagged)."""
    digest = hashlib.sha256()
    for key in sorted(state):
        array = np.ascontiguousarray(state[key])
        digest.update(key.encode())
        digest.update(str(array.dtype).encode())
        digest.update(str(array.shape).encode())
        digest.update(array.tobytes())
    return digest.hexdigest()


@dataclass
class BayesFTResult:
    """Outcome of a BayesFT search.

    ``objective_stats`` summarises the inner Monte-Carlo evaluation work:
    ``evaluations`` is the number of model evaluations the sweep engine
    actually ran and ``cache_hits`` how many trials the inference cache
    answered without running the model (evaluations saved).

    ``trial_terminated`` marks trials the async scheduler cut short from the
    partial σ-grid (clean row only); their recorded objective is the clean
    value, which by construction sits below an already-committed objective,
    so a terminated trial is never the winner.  ``search_stats`` holds
    volatile scheduling accounting (backend, worker count, tasks shipped) —
    like the sweep reports' scheduling fields it is excluded from
    :meth:`canonical_dict`.
    """

    best_alpha: np.ndarray
    best_objective: float
    best_state: dict
    trial_alphas: list = field(default_factory=list)
    trial_objectives: list = field(default_factory=list)
    clean_objectives: list = field(default_factory=list)
    objective_stats: dict = field(default_factory=dict)
    trial_terminated: list = field(default_factory=list)
    search_stats: dict = field(default_factory=dict)

    @property
    def num_trials(self) -> int:
        return len(self.trial_objectives)

    def improvement_over_first(self) -> float:
        """Objective gain of the best trial over the first (random) trial."""
        if not self.trial_objectives:
            return 0.0
        return float(self.best_objective - self.trial_objectives[0])

    def canonical_dict(self) -> dict:
        """Deterministic projection for byte-comparison across schedules.

        Two seeded searches are equivalent iff this dict serialises to the
        same JSON — the ``SweepReport.canonical_dict`` contract lifted to
        whole searches.  The trained weights enter as a content digest so
        the comparison covers them without serialising megabytes.
        """
        return {
            "best_alpha": [float(x) for x in np.asarray(self.best_alpha)],
            "best_objective": float(self.best_objective),
            "best_state_sha256": _state_sha256(self.best_state),
            "trial_alphas": [[float(x) for x in alpha]
                             for alpha in self.trial_alphas],
            "trial_objectives": [float(v) for v in self.trial_objectives],
            "clean_objectives": [float(v) for v in self.clean_objectives],
            "trial_terminated": [bool(t) for t in self.trial_terminated],
            "objective_stats": {key: int(value) for key, value
                                in sorted(self.objective_stats.items())},
        }

    def to_json(self) -> str:
        """Canonical JSON (sorted keys, no whitespace); byte-comparable."""
        return json.dumps(self.canonical_dict(), sort_keys=True,
                          separators=(",", ":"))


class BayesFTSearch:
    """Algorithm 1 of the paper.

    Parameters
    ----------
    search_space:
        A :class:`DropoutSearchSpace` wrapping the model to optimise.
    objective:
        The drift-marginalised objective (Eq. 3–4) on validation data.
    train_dataset:
        Training data for the inner SGD loop.
    epochs_per_trial:
        ``E`` in Algorithm 1.
    optimizer_kind:
        ``"bayes"`` (GP surrogate, the paper) or ``"random"`` (ablation
        baseline: random search over α with the same trial budget).
    warm_start:
        If True (default) each trial fine-tunes the weights from the current
        best state instead of re-initialising, which matches the alternating
        formulation of Algorithm 1 and saves compute.  If False, every trial
        retrains from the stored initial weights.  Under async scheduling
        every trial of a batch starts from the best state *committed before
        the batch was built* (the initial weights for batch 0).
    suggest_batch:
        ``q``: architectures proposed per scheduling round via constant-liar
        batch suggestion.  ``1`` (default) keeps the sequential loop, which
        is bit-identical to the pre-async implementation.
    search_workers:
        ``k``: worker processes evaluating a batch concurrently.  ``0``/``1``
        evaluates the batch in-process.  Never changes seeded results — the
        canonical trace depends only on ``q``.
    search_backend:
        ``None`` derives ``"process"``/``"serial"`` from ``search_workers``;
        otherwise a name from
        :data:`~repro.execution.search.SEARCH_BACKENDS`.  Never changes
        seeded results.
    early_stop_margin:
        If set (async mode only), a trial whose σ=0 clean utility falls more
        than this margin below the best committed objective is terminated
        without running the ``T``-sample drifted sweep; its recorded value
        is then the clean utility, flagged in ``trial_terminated``.  By
        construction a terminated trial can never become the winner.
    """

    def __init__(self, search_space: DropoutSearchSpace,
                 objective: DriftMarginalizedObjective,
                 train_dataset: Dataset, epochs_per_trial: int = 2,
                 batch_size: int = 64, learning_rate: float = 0.05,
                 momentum: float = 0.9, weight_optimizer: str = "sgd",
                 optimizer_kind: str = "bayes",
                 acquisition: AcquisitionFunction | None = None,
                 warm_start: bool = True, rng=None,
                 suggest_batch: int = 1, search_workers: int = 0,
                 search_backend: str | None = None,
                 early_stop_margin: float | None = None):
        if optimizer_kind not in ("bayes", "random"):
            raise ValueError("optimizer_kind must be 'bayes' or 'random'")
        if suggest_batch < 1:
            raise ValueError("suggest_batch must be at least 1")
        if search_workers < 0:
            raise ValueError("search_workers must be non-negative")
        if early_stop_margin is not None and early_stop_margin < 0:
            raise ValueError("early_stop_margin must be non-negative")
        self.search_space = search_space
        self.objective = objective
        self.train_dataset = train_dataset
        self.epochs_per_trial = int(epochs_per_trial)
        self.batch_size = int(batch_size)
        self.learning_rate = float(learning_rate)
        self.momentum = float(momentum)
        self.weight_optimizer = weight_optimizer
        self.warm_start = warm_start
        self.rng = get_rng(rng)
        self.suggest_batch = int(suggest_batch)
        self.search_workers = int(search_workers)
        self.search_backend = search_backend
        self.early_stop_margin = early_stop_margin
        bounds = search_space.bounds
        if optimizer_kind == "bayes":
            self.optimizer = BayesianOptimizer(bounds, acquisition=acquisition,
                                               rng=self.rng)
        else:
            self.optimizer = RandomSearchOptimizer(bounds, rng=self.rng)

    # ------------------------------------------------------------------ #
    @property
    def model(self) -> Module:
        return self.search_space.model

    def _train_weights(self) -> None:
        trainer = Trainer(self.model, learning_rate=self.learning_rate,
                          momentum=self.momentum, optimizer=self.weight_optimizer,
                          rng=self.rng)
        trainer.fit(self.train_dataset, epochs=self.epochs_per_trial,
                    batch_size=self.batch_size)

    def run(self, n_trials: int = 10) -> BayesFTResult:
        """Execute the alternating optimisation for ``n_trials`` trials.

        ``suggest_batch=1`` with at most one worker takes the sequential
        path — bit-identical to the pre-async implementation; anything else
        runs batch-synchronously through :class:`AsyncTrialScheduler`.
        """
        if n_trials < 1:
            raise ValueError("n_trials must be at least 1")
        if self.suggest_batch == 1 and self.search_workers <= 1:
            return self._run_sequential(n_trials)
        return self._run_async(n_trials)

    def _run_sequential(self, n_trials: int) -> BayesFTResult:
        initial_state = self.model.state_dict()
        best_alpha: np.ndarray | None = None
        best_objective = -np.inf
        best_state: dict | None = None
        trial_alphas: list[np.ndarray] = []
        trial_objectives: list[float] = []
        clean_objectives: list[float] = []

        telemetry = current()
        for index in range(n_trials):
            with telemetry.span("bo_trial", index=index):
                with telemetry.span("suggest"):
                    alpha = np.asarray(self.optimizer.suggest(),
                                       dtype=np.float64)
                self.search_space.apply(alpha)
                if not self.warm_start:
                    self.model.load_state_dict(initial_state)
                with telemetry.span("train", epochs=self.epochs_per_trial):
                    self._train_weights()
                # One engine run measures the drifted utility (Eq. 4) and
                # the clean diagnostic together; the inference cache
                # collapses the σ=0 trials to a single model evaluation.
                with telemetry.span("evaluate"):
                    if hasattr(self.objective, "evaluate_with_clean"):
                        value, clean_value, _ = \
                            self.objective.evaluate_with_clean(self.model)
                    else:  # custom objective without the engine fast path
                        value = self.objective.evaluate(self.model)
                        clean_value = self.objective.evaluate_clean(self.model)
            clean_objectives.append(clean_value)
            self.optimizer.observe(alpha, value)
            trial_alphas.append(alpha.copy())
            trial_objectives.append(value)
            if value > best_objective:
                best_objective = value
                best_alpha = alpha.copy()
                best_state = self.model.state_dict()

        # Leave the model configured with the best architecture and weights.
        self.search_space.apply(best_alpha)
        self.model.load_state_dict(best_state)
        stats = {}
        if hasattr(self.objective, "evaluations_total"):
            stats = {"evaluations": self.objective.evaluations_total,
                     "cache_hits": self.objective.cache_hits_total}
        return BayesFTResult(best_alpha=best_alpha, best_objective=best_objective,
                             best_state=best_state, trial_alphas=trial_alphas,
                             trial_objectives=trial_objectives,
                             clean_objectives=clean_objectives,
                             objective_stats=stats,
                             trial_terminated=[False] * len(trial_objectives))

    def _run_async(self, n_trials: int) -> BayesFTResult:
        """Batch-synchronous concurrent search (see :mod:`repro.core.scheduler`).

        All scheduling decisions are functions of *committed* state only:
        the warm-start base and the early-termination baseline for a batch
        are fixed when the batch is built, and observations are replayed in
        trial-index order — which is why the canonical result depends on
        ``suggest_batch`` but not on ``search_workers``, the backend, or
        worker completion order.
        """
        for required in ("clone", "evaluate_with_clean", "evaluate_clean"):
            if not hasattr(self.objective, required):
                raise TypeError(
                    f"async search needs an engine-backed objective with "
                    f"{required}() (e.g. DriftMarginalizedObjective); pass "
                    f"suggest_batch=1, search_workers=0 for custom objectives")
        initial_state = self.model.state_dict()
        # One root draw keeps self.rng's consumption independent of q and k;
        # each trial's work is derived from its own spawned stream.
        root = np.random.SeedSequence(int(self.rng.integers(0, 2 ** 63 - 1)))
        trial_seeds = [int(child.generate_state(1)[0])
                       for child in root.spawn(n_trials)]
        context = {
            "model": self.model,
            "train_dataset": self.train_dataset,
            "objective": self.objective,
            "learning_rate": self.learning_rate,
            "momentum": self.momentum,
            "weight_optimizer": self.weight_optimizer,
            "epochs_per_trial": self.epochs_per_trial,
            "batch_size": self.batch_size,
            "max_rate": self.search_space.max_rate,
            "include_alpha_dropout": getattr(
                self.search_space, "include_alpha_dropout", True),
            "early_stop_margin": self.early_stop_margin,
            # Plain flag, not a tracer: workers build their own session and
            # ship span/counter snapshots back with each trial result.
            "trace": current().enabled,
        }
        pool = SearchTrialPool(_execute_search_trial, context,
                               workers=self.search_workers,
                               backend=self.search_backend)
        # Worker-side sweeps report their own (serial) worker counts; the
        # search pool's width is the figure that makes worker utilisation
        # in `trace summarize` honest.
        current().gauge("workers", pool.workers)
        best_alpha: np.ndarray | None = None
        best_objective = -np.inf
        best_state: dict | None = None
        trial_alphas: list[np.ndarray] = []
        trial_objectives: list[float] = []
        clean_objectives: list[float] = []
        trial_terminated: list[bool] = []
        stats = {"evaluations": 0, "cache_hits": 0}

        def build_payload(index: int, alpha: np.ndarray) -> dict:
            base = initial_state
            if self.warm_start and best_state is not None:
                base = best_state
            baseline = best_objective if best_state is not None else None
            return {"index": index, "alpha": alpha,
                    "seed": trial_seeds[index], "base_state": base,
                    "baseline": baseline}

        def commit(alpha: np.ndarray, result: dict) -> None:
            nonlocal best_alpha, best_objective, best_state
            trial_alphas.append(alpha.copy())
            trial_objectives.append(result["value"])
            clean_objectives.append(result["clean"])
            trial_terminated.append(result["terminated"])
            stats["evaluations"] += result["stats"]["evaluations"]
            stats["cache_hits"] += result["stats"]["cache_hits"]
            if result["value"] > best_objective and result["state"] is not None:
                best_objective = result["value"]
                best_alpha = alpha.copy()
                best_state = result["state"]

        scheduler = AsyncTrialScheduler(self.optimizer, pool,
                                        suggest_batch=self.suggest_batch)
        try:
            scheduler.run(n_trials, build_payload, commit)
        finally:
            pool.close()
        if best_state is None:
            raise ValueError("every trial returned a non-finite objective; "
                             "no winning architecture to report")
        # Leave the model configured with the best architecture and weights.
        self.search_space.apply(best_alpha)
        self.model.load_state_dict(best_state)
        return BayesFTResult(
            best_alpha=best_alpha, best_objective=best_objective,
            best_state=best_state, trial_alphas=trial_alphas,
            trial_objectives=trial_objectives,
            clean_objectives=clean_objectives, objective_stats=stats,
            trial_terminated=trial_terminated,
            search_stats={"used_backend": pool.used_backend,
                          "workers": pool.workers,
                          "tasks_shipped": pool.tasks_shipped,
                          "fell_back": pool.fell_back,
                          "fallback_reason": pool.fallback_reason,
                          "suggest_batch": self.suggest_batch,
                          "batches": scheduler.batches_run,
                          "terminated_trials": int(sum(trial_terminated))})
