"""Algorithm 1: alternating weight training and Bayesian architecture search.

Each outer iteration (a "trial") does:

1. train the network weights θ for ``epochs_per_trial`` epochs of SGD with
   the current dropout rates α (Algorithm 1, lines 5–7);
2. estimate the drift-marginalised objective u(α, θ) with Monte-Carlo
   sampling (Eq. 4);
3. feed (α, u) to the Gaussian-process surrogate and pick the next α by
   maximising the acquisition function (lines 8–9).

The best (α, θ) pair seen — judged by the drifted objective — is returned.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..bayesopt.optimizer import BayesianOptimizer
from ..bayesopt.acquisition import AcquisitionFunction
from ..bayesopt.random_search import RandomSearchOptimizer
from ..data.loader import Dataset
from ..nn.module import Module
from ..training.trainer import Trainer
from ..utils.rng import get_rng
from .objective import DriftMarginalizedObjective
from .search_space import DropoutSearchSpace

__all__ = ["BayesFTSearch", "BayesFTResult"]


@dataclass
class BayesFTResult:
    """Outcome of a BayesFT search.

    ``objective_stats`` summarises the inner Monte-Carlo evaluation work:
    ``evaluations`` is the number of model evaluations the sweep engine
    actually ran and ``cache_hits`` how many trials the inference cache
    answered without running the model (evaluations saved).
    """

    best_alpha: np.ndarray
    best_objective: float
    best_state: dict
    trial_alphas: list = field(default_factory=list)
    trial_objectives: list = field(default_factory=list)
    clean_objectives: list = field(default_factory=list)
    objective_stats: dict = field(default_factory=dict)

    @property
    def num_trials(self) -> int:
        return len(self.trial_objectives)

    def improvement_over_first(self) -> float:
        """Objective gain of the best trial over the first (random) trial."""
        if not self.trial_objectives:
            return 0.0
        return float(self.best_objective - self.trial_objectives[0])


class BayesFTSearch:
    """Algorithm 1 of the paper.

    Parameters
    ----------
    search_space:
        A :class:`DropoutSearchSpace` wrapping the model to optimise.
    objective:
        The drift-marginalised objective (Eq. 3–4) on validation data.
    train_dataset:
        Training data for the inner SGD loop.
    epochs_per_trial:
        ``E`` in Algorithm 1.
    optimizer_kind:
        ``"bayes"`` (GP surrogate, the paper) or ``"random"`` (ablation
        baseline: random search over α with the same trial budget).
    warm_start:
        If True (default) each trial fine-tunes the weights from the current
        best state instead of re-initialising, which matches the alternating
        formulation of Algorithm 1 and saves compute.  If False, every trial
        retrains from the stored initial weights.
    """

    def __init__(self, search_space: DropoutSearchSpace,
                 objective: DriftMarginalizedObjective,
                 train_dataset: Dataset, epochs_per_trial: int = 2,
                 batch_size: int = 64, learning_rate: float = 0.05,
                 momentum: float = 0.9, weight_optimizer: str = "sgd",
                 optimizer_kind: str = "bayes",
                 acquisition: AcquisitionFunction | None = None,
                 warm_start: bool = True, rng=None):
        if optimizer_kind not in ("bayes", "random"):
            raise ValueError("optimizer_kind must be 'bayes' or 'random'")
        self.search_space = search_space
        self.objective = objective
        self.train_dataset = train_dataset
        self.epochs_per_trial = int(epochs_per_trial)
        self.batch_size = int(batch_size)
        self.learning_rate = float(learning_rate)
        self.momentum = float(momentum)
        self.weight_optimizer = weight_optimizer
        self.warm_start = warm_start
        self.rng = get_rng(rng)
        bounds = search_space.bounds
        if optimizer_kind == "bayes":
            self.optimizer = BayesianOptimizer(bounds, acquisition=acquisition,
                                               rng=self.rng)
        else:
            self.optimizer = RandomSearchOptimizer(bounds, rng=self.rng)

    # ------------------------------------------------------------------ #
    @property
    def model(self) -> Module:
        return self.search_space.model

    def _train_weights(self) -> None:
        trainer = Trainer(self.model, learning_rate=self.learning_rate,
                          momentum=self.momentum, optimizer=self.weight_optimizer,
                          rng=self.rng)
        trainer.fit(self.train_dataset, epochs=self.epochs_per_trial,
                    batch_size=self.batch_size)

    def run(self, n_trials: int = 10) -> BayesFTResult:
        """Execute the alternating optimisation for ``n_trials`` trials."""
        if n_trials < 1:
            raise ValueError("n_trials must be at least 1")
        initial_state = self.model.state_dict()
        best_alpha: np.ndarray | None = None
        best_objective = -np.inf
        best_state: dict | None = None
        trial_alphas: list[np.ndarray] = []
        trial_objectives: list[float] = []
        clean_objectives: list[float] = []

        for _ in range(n_trials):
            alpha = np.asarray(self.optimizer.suggest(), dtype=np.float64)
            self.search_space.apply(alpha)
            if not self.warm_start:
                self.model.load_state_dict(initial_state)
            self._train_weights()
            # One engine run measures the drifted utility (Eq. 4) and the
            # clean diagnostic together; the inference cache collapses the
            # σ=0 trials to a single model evaluation.
            if hasattr(self.objective, "evaluate_with_clean"):
                value, clean_value, _ = self.objective.evaluate_with_clean(self.model)
            else:  # custom objective without the engine-backed fast path
                value = self.objective.evaluate(self.model)
                clean_value = self.objective.evaluate_clean(self.model)
            clean_objectives.append(clean_value)
            self.optimizer.observe(alpha, value)
            trial_alphas.append(alpha.copy())
            trial_objectives.append(value)
            if value > best_objective:
                best_objective = value
                best_alpha = alpha.copy()
                best_state = self.model.state_dict()

        # Leave the model configured with the best architecture and weights.
        self.search_space.apply(best_alpha)
        self.model.load_state_dict(best_state)
        stats = {}
        if hasattr(self.objective, "evaluations_total"):
            stats = {"evaluations": self.objective.evaluations_total,
                     "cache_hits": self.objective.cache_hits_total}
        return BayesFTResult(best_alpha=best_alpha, best_objective=best_objective,
                             best_state=best_state, trial_alphas=trial_alphas,
                             trial_objectives=trial_objectives,
                             clean_objectives=clean_objectives,
                             objective_stats=stats)
