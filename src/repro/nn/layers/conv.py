"""2-D convolution layer."""

from __future__ import annotations

import numpy as np

from .. import functional as F
from .. import init
from ..module import Module, Parameter
from ..tensor import Tensor
from ...utils.rng import get_rng

__all__ = ["Conv2d"]


class Conv2d(Module):
    """2-D convolution over NCHW tensors with square kernels.

    Parameters
    ----------
    in_channels, out_channels:
        Channel counts.
    kernel_size:
        Side length of the square kernel.
    stride, padding:
        Convolution stride and symmetric zero padding.
    bias:
        Whether to learn a per-output-channel bias.
    init_scheme:
        ``"xavier"`` or ``"kaiming"``.
    """

    def __init__(self, in_channels: int, out_channels: int, kernel_size: int,
                 stride: int = 1, padding: int = 0, bias: bool = True,
                 init_scheme: str = "kaiming", rng=None):
        super().__init__()
        if kernel_size <= 0 or stride <= 0 or padding < 0:
            raise ValueError("invalid convolution geometry")
        rng = get_rng(rng)
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding
        shape = (out_channels, in_channels, kernel_size, kernel_size)
        if init_scheme == "xavier":
            weight = init.xavier_uniform(shape, rng)
        elif init_scheme == "kaiming":
            weight = init.kaiming_normal(shape, rng)
        else:
            raise ValueError(f"unknown init scheme {init_scheme!r}")
        self.weight = Parameter(weight)
        self.bias = Parameter(np.zeros(out_channels)) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        return F.conv2d(x, self.weight, self.bias,
                        stride=self.stride, padding=self.padding)

    def output_spatial(self, height: int, width: int) -> tuple[int, int]:
        """Spatial size of the output feature map for a given input size."""
        out_h = (height + 2 * self.padding - self.kernel_size) // self.stride + 1
        out_w = (width + 2 * self.padding - self.kernel_size) // self.stride + 1
        return out_h, out_w

    def __repr__(self) -> str:
        return (f"Conv2d({self.in_channels}, {self.out_channels}, "
                f"kernel_size={self.kernel_size}, stride={self.stride}, "
                f"padding={self.padding})")
