"""Fully connected (dense) layer."""

from __future__ import annotations

import numpy as np

from .. import functional as F
from .. import init
from ..module import Module, Parameter
from ..tensor import Tensor
from ...utils.rng import get_rng

__all__ = ["Linear"]


class Linear(Module):
    """Affine layer ``y = x W^T + b`` with PyTorch weight layout.

    Parameters
    ----------
    in_features, out_features:
        Input and output dimensionality.
    bias:
        Whether to learn an additive bias.
    init_scheme:
        ``"xavier"`` (the paper's Algorithm 1 default) or ``"kaiming"``.
    rng:
        Optional ``numpy.random.Generator`` (or integer seed) used for
        initialisation; defaults to the library's global generator.
    """

    def __init__(self, in_features: int, out_features: int, bias: bool = True,
                 init_scheme: str = "xavier", rng=None):
        super().__init__()
        if in_features <= 0 or out_features <= 0:
            raise ValueError("Linear requires positive feature dimensions")
        rng = get_rng(rng)
        self.in_features = in_features
        self.out_features = out_features
        shape = (out_features, in_features)
        if init_scheme == "xavier":
            weight = init.xavier_uniform(shape, rng)
        elif init_scheme == "kaiming":
            weight = init.kaiming_uniform(shape, rng)
        else:
            raise ValueError(f"unknown init scheme {init_scheme!r}")
        self.weight = Parameter(weight)
        self.bias = Parameter(np.zeros(out_features)) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        return F.linear(x, self.weight, self.bias)

    def __repr__(self) -> str:
        return (f"Linear(in_features={self.in_features}, "
                f"out_features={self.out_features}, bias={self.bias is not None})")
