"""Dropout layers.

Dropout is the central architectural knob of BayesFT: the paper's search
space is exactly "one dropout rate per layer", and Figure 2(a) shows that
dropout (and its alpha-dropout variant) is the component that most improves
robustness to memristance drift.  The :attr:`Dropout.rate` attribute is
mutable so the BayesFT search loop can re-configure a trained network's
dropout rates without rebuilding it.
"""

from __future__ import annotations

import numpy as np

from ..module import Module
from ..tensor import Tensor
from ...utils.rng import get_rng, spawn_rng

__all__ = ["Dropout", "AlphaDropout"]


class Dropout(Module):
    """Standard inverted dropout.

    During training each activation is zeroed with probability ``rate`` and
    the survivors are scaled by ``1/(1-rate)``.  During evaluation the layer
    is the identity.
    """

    def __init__(self, rate: float = 0.5, rng=None):
        super().__init__()
        self.rate = float(rate)
        self._rng = spawn_rng(get_rng(rng))
        self._validate()

    def _validate(self) -> None:
        if not 0.0 <= self.rate < 1.0:
            raise ValueError(f"dropout rate must be in [0, 1), got {self.rate}")

    def set_rate(self, rate: float) -> None:
        """Update the dropout rate (used by the BayesFT search loop)."""
        self.rate = float(np.clip(rate, 0.0, 0.95))
        self._validate()

    def forward(self, x: Tensor) -> Tensor:
        if not self.training or self.rate <= 0.0:
            return x
        keep = 1.0 - self.rate
        mask = (self._rng.random(x.shape) < keep).astype(np.float64) / keep
        return x * Tensor(mask)

    def __repr__(self) -> str:
        return f"Dropout(rate={self.rate:.3f})"


class AlphaDropout(Module):
    """Alpha dropout (Klambauer et al., 2017).

    Instead of zeroing activations, dropped units are set to the negative
    saturation value of SELU (``alpha' = -alpha * scale``) and the output is
    affinely rescaled so that the input mean and variance are preserved.
    """

    _ALPHA = 1.6732632423543772
    _SCALE = 1.0507009873554805

    def __init__(self, rate: float = 0.5, rng=None):
        super().__init__()
        if not 0.0 <= rate < 1.0:
            raise ValueError(f"dropout rate must be in [0, 1), got {rate}")
        self.rate = float(rate)
        self._rng = spawn_rng(get_rng(rng))

    def set_rate(self, rate: float) -> None:
        """Update the dropout rate in place."""
        self.rate = float(np.clip(rate, 0.0, 0.95))

    def forward(self, x: Tensor) -> Tensor:
        if not self.training or self.rate <= 0.0:
            return x
        keep = 1.0 - self.rate
        alpha_prime = -self._ALPHA * self._SCALE
        # Affine correction keeping zero mean / unit variance (see the SNN paper).
        a = (keep + alpha_prime ** 2 * keep * (1.0 - keep)) ** -0.5
        b = -a * alpha_prime * (1.0 - keep)
        mask = (self._rng.random(x.shape) < keep).astype(np.float64)
        kept = x * Tensor(mask)
        dropped = Tensor((1.0 - mask) * alpha_prime)
        return (kept + dropped) * a + b

    def __repr__(self) -> str:
        return f"AlphaDropout(rate={self.rate:.3f})"
