"""Feature-normalisation layers.

The paper's Figure 2(b) ablates batch, layer, instance and group
normalisation and finds that adding normalisation generally *hurts*
robustness to memristance drift, because drift on the learned affine
parameters (gamma, beta) is amplified by the normalised activations.  All
four variants are implemented here so that the ablation can be reproduced.
"""

from __future__ import annotations

import numpy as np

from .. import functional as F
from ..module import Module, Parameter
from ..tensor import Tensor

__all__ = ["BatchNorm1d", "BatchNorm2d", "LayerNorm", "InstanceNorm2d", "GroupNorm"]


class _NormBase(Module):
    """Shared affine-parameter handling for all normalisation layers."""

    def __init__(self, num_features: int, eps: float = 1e-5, affine: bool = True):
        super().__init__()
        self.num_features = num_features
        self.eps = eps
        self.affine = affine
        if affine:
            self.weight = Parameter(np.ones(num_features))
            self.bias = Parameter(np.zeros(num_features))
        else:
            self.weight = None
            self.bias = None

    def _affine(self, x: Tensor, channel_axis: int) -> Tensor:
        if not self.affine:
            return x
        if F.trial_count() > 1 and (self.weight.data.ndim == 2
                                    or self.bias.data.ndim == 2):
            return self._affine_trials(x, channel_axis)
        shape = [1] * x.ndim
        shape[channel_axis] = self.num_features
        return x * self.weight.reshape(*shape) + self.bias.reshape(*shape)

    def _affine_trials(self, x: Tensor, channel_axis: int) -> Tensor:
        """Per-trial (gamma, beta) stacked along a leading trial axis.

        Inside a :func:`repro.nn.functional.trial_batching` context the
        fault injector installs affine parameters of shape ``(trials, C)``.
        The batch is viewed trial-major and the scale/shift broadcast per
        trial — elementwise, hence bit-identical to applying each trial's
        ``(C,)`` parameters to its own slice of the batch.
        """
        trials = F.trial_count()
        data = x.data
        if data.shape[0] % trials:
            raise ValueError(
                f"trial_batching({trials}) needs the batch tiled trial-major "
                f"to a multiple of {trials} samples; got {data.shape[0]}")
        grouped = data.reshape((trials, data.shape[0] // trials)
                               + data.shape[1:])

        def _spread(values: np.ndarray) -> np.ndarray:
            shape = [1] * grouped.ndim
            shape[channel_axis + 1] = self.num_features
            if values.ndim == 2:
                shape[0] = trials
            return values.reshape(shape)

        out = grouped * _spread(self.weight.data) + _spread(self.bias.data)
        return Tensor(out.reshape(data.shape))


class BatchNorm1d(_NormBase):
    """Batch normalisation over (N, C) activations with running statistics."""

    def __init__(self, num_features: int, eps: float = 1e-5, momentum: float = 0.1,
                 affine: bool = True):
        super().__init__(num_features, eps, affine)
        self.momentum = momentum
        self.register_buffer("running_mean", np.zeros(num_features))
        self.register_buffer("running_var", np.ones(num_features))

    def forward(self, x: Tensor) -> Tensor:
        if x.ndim != 2:
            raise ValueError("BatchNorm1d expects (N, C) input")
        if self.training:
            mean = x.mean(axis=0, keepdims=True)
            var = x.var(axis=0, keepdims=True)
            self.set_buffer("running_mean",
                            (1 - self.momentum) * self.running_mean
                            + self.momentum * mean.data.ravel())
            self.set_buffer("running_var",
                            (1 - self.momentum) * self.running_var
                            + self.momentum * var.data.ravel())
        else:
            mean = Tensor(self.running_mean.reshape(1, -1))
            var = Tensor(self.running_var.reshape(1, -1))
        normalised = (x - mean) / ((var + self.eps) ** 0.5)
        return self._affine(normalised, channel_axis=1)


class BatchNorm2d(_NormBase):
    """Batch normalisation over (N, C, H, W) feature maps."""

    def __init__(self, num_features: int, eps: float = 1e-5, momentum: float = 0.1,
                 affine: bool = True):
        super().__init__(num_features, eps, affine)
        self.momentum = momentum
        self.register_buffer("running_mean", np.zeros(num_features))
        self.register_buffer("running_var", np.ones(num_features))

    def forward(self, x: Tensor) -> Tensor:
        if x.ndim != 4:
            raise ValueError("BatchNorm2d expects (N, C, H, W) input")
        if self.training:
            mean = x.mean(axis=(0, 2, 3), keepdims=True)
            var = x.var(axis=(0, 2, 3), keepdims=True)
            self.set_buffer("running_mean",
                            (1 - self.momentum) * self.running_mean
                            + self.momentum * mean.data.ravel())
            self.set_buffer("running_var",
                            (1 - self.momentum) * self.running_var
                            + self.momentum * var.data.ravel())
        else:
            mean = Tensor(self.running_mean.reshape(1, -1, 1, 1))
            var = Tensor(self.running_var.reshape(1, -1, 1, 1))
        normalised = (x - mean) / ((var + self.eps) ** 0.5)
        return self._affine(normalised, channel_axis=1)


class LayerNorm(_NormBase):
    """Layer normalisation across the feature dimension(s) of each sample."""

    def forward(self, x: Tensor) -> Tensor:
        axes = tuple(range(1, x.ndim))
        mean = x.mean(axis=axes, keepdims=True)
        var = x.var(axis=axes, keepdims=True)
        normalised = (x - mean) / ((var + self.eps) ** 0.5)
        return self._affine(normalised, channel_axis=1)


class InstanceNorm2d(_NormBase):
    """Instance normalisation: per-sample, per-channel spatial normalisation."""

    def forward(self, x: Tensor) -> Tensor:
        if x.ndim != 4:
            raise ValueError("InstanceNorm2d expects (N, C, H, W) input")
        mean = x.mean(axis=(2, 3), keepdims=True)
        var = x.var(axis=(2, 3), keepdims=True)
        normalised = (x - mean) / ((var + self.eps) ** 0.5)
        return self._affine(normalised, channel_axis=1)


class GroupNorm(_NormBase):
    """Group normalisation: channels are split into groups normalised jointly."""

    def __init__(self, num_groups: int, num_features: int, eps: float = 1e-5,
                 affine: bool = True):
        if num_features % num_groups != 0:
            raise ValueError("num_features must be divisible by num_groups")
        super().__init__(num_features, eps, affine)
        self.num_groups = num_groups

    def forward(self, x: Tensor) -> Tensor:
        if x.ndim != 4:
            raise ValueError("GroupNorm expects (N, C, H, W) input")
        n, c, h, w = x.shape
        grouped = x.reshape(n, self.num_groups, c // self.num_groups, h, w)
        mean = grouped.mean(axis=(2, 3, 4), keepdims=True)
        var = grouped.var(axis=(2, 3, 4), keepdims=True)
        normalised = (grouped - mean) / ((var + self.eps) ** 0.5)
        return self._affine(normalised.reshape(n, c, h, w), channel_axis=1)
