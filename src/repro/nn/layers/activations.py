"""Activation-function layers.

Figure 2(d) of the paper ablates ReLU, Leaky ReLU, ELU and GELU and finds no
statistically significant robustness difference between them; all four are
implemented so the ablation is reproducible.
"""

from __future__ import annotations

from .. import functional as F
from ..module import Module
from ..tensor import Tensor

__all__ = ["ReLU", "LeakyReLU", "ELU", "GELU", "Tanh", "Sigmoid", "Identity"]


class ReLU(Module):
    """Rectified linear unit."""

    def forward(self, x: Tensor) -> Tensor:
        return F.relu(x)

    def __repr__(self) -> str:
        return "ReLU()"


class LeakyReLU(Module):
    """Leaky ReLU with configurable negative slope."""

    def __init__(self, negative_slope: float = 0.01):
        super().__init__()
        self.negative_slope = negative_slope

    def forward(self, x: Tensor) -> Tensor:
        return F.leaky_relu(x, self.negative_slope)

    def __repr__(self) -> str:
        return f"LeakyReLU(negative_slope={self.negative_slope})"


class ELU(Module):
    """Exponential linear unit."""

    def __init__(self, alpha: float = 1.0):
        super().__init__()
        self.alpha = alpha

    def forward(self, x: Tensor) -> Tensor:
        return F.elu(x, self.alpha)

    def __repr__(self) -> str:
        return f"ELU(alpha={self.alpha})"


class GELU(Module):
    """Gaussian error linear unit (exact erf formulation)."""

    def forward(self, x: Tensor) -> Tensor:
        return F.gelu(x)

    def __repr__(self) -> str:
        return "GELU()"


class Tanh(Module):
    """Hyperbolic tangent activation."""

    def forward(self, x: Tensor) -> Tensor:
        return x.tanh()

    def __repr__(self) -> str:
        return "Tanh()"


class Sigmoid(Module):
    """Logistic sigmoid activation."""

    def forward(self, x: Tensor) -> Tensor:
        return x.sigmoid()

    def __repr__(self) -> str:
        return "Sigmoid()"


class Identity(Module):
    """No-op layer, useful as a placeholder in ablations."""

    def forward(self, x: Tensor) -> Tensor:
        return x

    def __repr__(self) -> str:
        return "Identity()"


def make_activation(name: str) -> Module:
    """Build an activation layer from its name (used by the ablation harness)."""
    registry = {
        "relu": ReLU,
        "leaky_relu": LeakyReLU,
        "elu": ELU,
        "gelu": GELU,
        "tanh": Tanh,
        "sigmoid": Sigmoid,
        "identity": Identity,
    }
    key = name.lower()
    if key not in registry:
        raise ValueError(f"unknown activation {name!r}; choose from {sorted(registry)}")
    return registry[key]()
