"""Shape-manipulation layers."""

from __future__ import annotations

from ..module import Module
from ..tensor import Tensor

__all__ = ["Flatten"]


class Flatten(Module):
    """Flatten all dimensions after ``start_dim`` into one."""

    def __init__(self, start_dim: int = 1):
        super().__init__()
        self.start_dim = start_dim

    def forward(self, x: Tensor) -> Tensor:
        return x.flatten(self.start_dim)

    def __repr__(self) -> str:
        return f"Flatten(start_dim={self.start_dim})"
