"""Spatial pooling layers."""

from __future__ import annotations

from .. import functional as F
from ..module import Module
from ..tensor import Tensor

__all__ = ["MaxPool2d", "AvgPool2d", "GlobalAvgPool2d"]


class MaxPool2d(Module):
    """Max pooling with a square window."""

    def __init__(self, kernel_size: int, stride: int | None = None):
        super().__init__()
        self.kernel_size = kernel_size
        self.stride = stride or kernel_size

    def forward(self, x: Tensor) -> Tensor:
        return F.max_pool2d(x, self.kernel_size, self.stride)

    def __repr__(self) -> str:
        return f"MaxPool2d(kernel_size={self.kernel_size}, stride={self.stride})"


class AvgPool2d(Module):
    """Average pooling with a square window."""

    def __init__(self, kernel_size: int, stride: int | None = None):
        super().__init__()
        self.kernel_size = kernel_size
        self.stride = stride or kernel_size

    def forward(self, x: Tensor) -> Tensor:
        return F.avg_pool2d(x, self.kernel_size, self.stride)

    def __repr__(self) -> str:
        return f"AvgPool2d(kernel_size={self.kernel_size}, stride={self.stride})"


class GlobalAvgPool2d(Module):
    """Global average pooling, collapsing each channel's feature map to 1x1."""

    def forward(self, x: Tensor) -> Tensor:
        return F.adaptive_avg_pool2d(x, 1)

    def __repr__(self) -> str:
        return "GlobalAvgPool2d()"
