"""Neural-network layers built on the :mod:`repro.nn` autograd engine."""

from .linear import Linear
from .conv import Conv2d
from .pooling import MaxPool2d, AvgPool2d, GlobalAvgPool2d
from .dropout import Dropout, AlphaDropout
from .normalization import BatchNorm1d, BatchNorm2d, LayerNorm, InstanceNorm2d, GroupNorm
from .activations import ReLU, LeakyReLU, ELU, GELU, Tanh, Sigmoid, Identity
from .shape import Flatten

__all__ = [
    "Linear", "Conv2d",
    "MaxPool2d", "AvgPool2d", "GlobalAvgPool2d",
    "Dropout", "AlphaDropout",
    "BatchNorm1d", "BatchNorm2d", "LayerNorm", "InstanceNorm2d", "GroupNorm",
    "ReLU", "LeakyReLU", "ELU", "GELU", "Tanh", "Sigmoid", "Identity",
    "Flatten",
]
