"""Loss functions."""

from __future__ import annotations

import numpy as np

from . import functional as F
from .module import Module
from .tensor import Tensor

__all__ = ["CrossEntropyLoss", "MSELoss", "SmoothL1Loss", "BCEWithLogitsLoss",
           "cross_entropy", "mse_loss", "smooth_l1_loss", "bce_with_logits"]


def cross_entropy(logits: Tensor, targets: np.ndarray) -> Tensor:
    """Mean cross-entropy between logits ``(N, C)`` and integer labels ``(N,)``."""
    targets = np.asarray(targets).astype(np.int64).ravel()
    log_probs = F.log_softmax(logits, axis=-1)
    picked = log_probs[np.arange(targets.shape[0]), targets]
    return -(picked.mean())


def mse_loss(prediction: Tensor, target) -> Tensor:
    """Mean squared error."""
    target = target if isinstance(target, Tensor) else Tensor(target)
    diff = prediction - target
    return (diff * diff).mean()


def smooth_l1_loss(prediction: Tensor, target, beta: float = 1.0) -> Tensor:
    """Huber / smooth-L1 loss used for bounding-box regression."""
    target = target if isinstance(target, Tensor) else Tensor(target)
    diff = prediction - target
    abs_diff = diff.abs()
    quadratic = (diff * diff) * (0.5 / beta)
    linear = abs_diff - 0.5 * beta
    mask = (abs_diff.data < beta).astype(np.float64)
    return (quadratic * Tensor(mask) + linear * Tensor(1.0 - mask)).mean()


def bce_with_logits(logits: Tensor, targets) -> Tensor:
    """Numerically stable binary cross-entropy on raw logits."""
    targets = targets if isinstance(targets, Tensor) else Tensor(targets)
    # log(1 + exp(-|x|)) + max(x, 0) - x*t  is the standard stable form.
    max_part = logits.maximum(0.0)
    stable_log = ((-logits.abs()).exp() + 1.0).log()
    return (max_part - logits * targets + stable_log).mean()


class CrossEntropyLoss(Module):
    """Softmax cross-entropy for multi-class classification."""

    def forward(self, logits: Tensor, targets) -> Tensor:
        return cross_entropy(logits, targets)


class MSELoss(Module):
    """Mean squared error loss."""

    def forward(self, prediction: Tensor, target) -> Tensor:
        return mse_loss(prediction, target)


class SmoothL1Loss(Module):
    """Smooth-L1 (Huber) loss, the standard box-regression loss."""

    def __init__(self, beta: float = 1.0):
        super().__init__()
        self.beta = beta

    def forward(self, prediction: Tensor, target) -> Tensor:
        return smooth_l1_loss(prediction, target, self.beta)


class BCEWithLogitsLoss(Module):
    """Binary cross-entropy on logits (objectness / FTNA code bits)."""

    def forward(self, logits: Tensor, targets) -> Tensor:
        return bce_with_logits(logits, targets)
