"""Module system: parameter containers mirroring ``torch.nn.Module`` semantics.

A :class:`Module` owns named :class:`Parameter` tensors and child modules,
supports train/eval modes, recursive parameter iteration, and state-dict
export/import.  The fault-injection machinery in :mod:`repro.fault` relies on
``named_parameters`` to enumerate every weight that would be stored on a
ReRAM crossbar.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Iterator

import numpy as np

from .tensor import Tensor

__all__ = ["Parameter", "Module", "Sequential", "ModuleList"]


class Parameter(Tensor):
    """A :class:`Tensor` that is registered as a trainable model parameter."""

    def __init__(self, data, requires_grad: bool = True):
        super().__init__(data, requires_grad=requires_grad)

    def __repr__(self) -> str:
        return f"Parameter(shape={self.shape})"


class Module:
    """Base class for all neural-network modules."""

    def __init__(self):
        self._parameters: "OrderedDict[str, Parameter]" = OrderedDict()
        self._modules: "OrderedDict[str, Module]" = OrderedDict()
        self._buffers: "OrderedDict[str, np.ndarray]" = OrderedDict()
        self.training = True

    # ------------------------------------------------------------------ #
    # Attribute registration
    # ------------------------------------------------------------------ #
    def __setattr__(self, name: str, value) -> None:
        if isinstance(value, Parameter):
            self.__dict__.setdefault("_parameters", OrderedDict())[name] = value
        elif isinstance(value, Module):
            self.__dict__.setdefault("_modules", OrderedDict())[name] = value
        object.__setattr__(self, name, value)

    def register_buffer(self, name: str, value: np.ndarray) -> None:
        """Register a non-trainable persistent array (e.g. BatchNorm statistics)."""
        self._buffers[name] = np.asarray(value, dtype=np.float64)
        object.__setattr__(self, name, self._buffers[name])

    def set_buffer(self, name: str, value: np.ndarray) -> None:
        """Update a previously registered buffer in place."""
        if name not in self._buffers:
            raise KeyError(f"buffer {name!r} was never registered")
        self._buffers[name] = np.asarray(value, dtype=np.float64)
        object.__setattr__(self, name, self._buffers[name])

    # ------------------------------------------------------------------ #
    # Iteration
    # ------------------------------------------------------------------ #
    def parameters(self) -> Iterator[Parameter]:
        """Yield every trainable parameter in this module and its children."""
        for _, parameter in self.named_parameters():
            yield parameter

    def named_parameters(self, prefix: str = "") -> Iterator[tuple[str, Parameter]]:
        """Yield ``(dotted_name, parameter)`` pairs recursively."""
        for name, parameter in self._parameters.items():
            yield prefix + name, parameter
        for child_name, child in self._modules.items():
            yield from child.named_parameters(prefix + child_name + ".")

    def modules(self) -> Iterator["Module"]:
        """Yield this module and every descendant module."""
        yield self
        for child in self._modules.values():
            yield from child.modules()

    def named_modules(self, prefix: str = "") -> Iterator[tuple[str, "Module"]]:
        yield prefix.rstrip("."), self
        for child_name, child in self._modules.items():
            yield from child.named_modules(prefix + child_name + ".")

    def children(self) -> Iterator["Module"]:
        yield from self._modules.values()

    def num_parameters(self) -> int:
        """Total number of scalar trainable parameters."""
        return sum(p.size for p in self.parameters())

    # ------------------------------------------------------------------ #
    # Modes
    # ------------------------------------------------------------------ #
    def train(self, mode: bool = True) -> "Module":
        """Switch this module (and children) between train and eval behaviour."""
        self.training = mode
        for child in self._modules.values():
            child.train(mode)
        return self

    def eval(self) -> "Module":
        return self.train(False)

    def zero_grad(self) -> None:
        for parameter in self.parameters():
            parameter.zero_grad()

    # ------------------------------------------------------------------ #
    # State dict
    # ------------------------------------------------------------------ #
    def state_dict(self, prefix: str = "") -> "OrderedDict[str, np.ndarray]":
        """Return a flat mapping of parameter/buffer names to array copies."""
        state: "OrderedDict[str, np.ndarray]" = OrderedDict()
        for name, parameter in self._parameters.items():
            state[prefix + name] = parameter.data.copy()
        for name, buffer in self._buffers.items():
            state[prefix + name] = buffer.copy()
        for child_name, child in self._modules.items():
            state.update(child.state_dict(prefix + child_name + "."))
        return state

    def load_state_dict(self, state: dict, prefix: str = "") -> None:
        """Load arrays produced by :meth:`state_dict` back into the module."""
        for name, parameter in self._parameters.items():
            key = prefix + name
            if key in state:
                parameter.data = np.asarray(state[key], dtype=np.float64).reshape(parameter.shape)
        for name in list(self._buffers):
            key = prefix + name
            if key in state:
                self.set_buffer(name, np.asarray(state[key]).reshape(self._buffers[name].shape))
        for child_name, child in self._modules.items():
            child.load_state_dict(state, prefix + child_name + ".")

    # ------------------------------------------------------------------ #
    # Call protocol
    # ------------------------------------------------------------------ #
    def forward(self, *args, **kwargs):
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    def __repr__(self) -> str:
        child_lines = [f"  ({name}): {child!r}" for name, child in self._modules.items()]
        if not child_lines:
            return f"{type(self).__name__}()"
        body = "\n".join(child_lines)
        return f"{type(self).__name__}(\n{body}\n)"


class Sequential(Module):
    """Container applying child modules in order."""

    def __init__(self, *modules: Module):
        super().__init__()
        self._ordered: list[Module] = []
        for index, module in enumerate(modules):
            self.add(module, name=str(index))

    def add(self, module: Module, name: str | None = None) -> "Sequential":
        """Append a module to the chain."""
        name = name if name is not None else str(len(self._ordered))
        self._modules[name] = module
        self._ordered.append(module)
        return self

    def __iter__(self) -> Iterator[Module]:
        return iter(self._ordered)

    def __len__(self) -> int:
        return len(self._ordered)

    def __getitem__(self, index: int) -> Module:
        return self._ordered[index]

    def forward(self, x):
        for module in self._ordered:
            x = module(x)
        return x


class ModuleList(Module):
    """A list of child modules that are properly registered."""

    def __init__(self, modules=()):
        super().__init__()
        self._ordered: list[Module] = []
        for module in modules:
            self.append(module)

    def append(self, module: Module) -> "ModuleList":
        self._modules[str(len(self._ordered))] = module
        self._ordered.append(module)
        return self

    def __iter__(self) -> Iterator[Module]:
        return iter(self._ordered)

    def __len__(self) -> int:
        return len(self._ordered)

    def __getitem__(self, index: int) -> Module:
        return self._ordered[index]

    def forward(self, *args, **kwargs):
        raise RuntimeError("ModuleList is a container and cannot be called directly")
