"""``repro.nn`` — a from-scratch numpy neural-network substrate.

This package replaces PyTorch for the purposes of the BayesFT reproduction:
it provides a reverse-mode autograd :class:`~repro.nn.tensor.Tensor`, a
:class:`~repro.nn.module.Module` system, the layers the paper's models need,
losses and optimisers.
"""

from . import functional, init
from .tensor import Tensor, no_grad, is_grad_enabled
from .module import Module, Parameter, Sequential, ModuleList
from .layers import (
    Linear, Conv2d, MaxPool2d, AvgPool2d, GlobalAvgPool2d,
    Dropout, AlphaDropout,
    BatchNorm1d, BatchNorm2d, LayerNorm, InstanceNorm2d, GroupNorm,
    ReLU, LeakyReLU, ELU, GELU, Tanh, Sigmoid, Identity, Flatten,
)
from .losses import (
    CrossEntropyLoss, MSELoss, SmoothL1Loss, BCEWithLogitsLoss,
    cross_entropy, mse_loss, smooth_l1_loss, bce_with_logits,
)
from .optim import SGD, Adam, Optimizer

__all__ = [
    "functional", "init",
    "Tensor", "no_grad", "is_grad_enabled",
    "Module", "Parameter", "Sequential", "ModuleList",
    "Linear", "Conv2d", "MaxPool2d", "AvgPool2d", "GlobalAvgPool2d",
    "Dropout", "AlphaDropout",
    "BatchNorm1d", "BatchNorm2d", "LayerNorm", "InstanceNorm2d", "GroupNorm",
    "ReLU", "LeakyReLU", "ELU", "GELU", "Tanh", "Sigmoid", "Identity", "Flatten",
    "CrossEntropyLoss", "MSELoss", "SmoothL1Loss", "BCEWithLogitsLoss",
    "cross_entropy", "mse_loss", "smooth_l1_loss", "bce_with_logits",
    "SGD", "Adam", "Optimizer",
]
