"""First-order optimisers used to train the networks.

Algorithm 1 of the paper optimises the weights with stochastic gradient
descent between Bayesian-optimisation updates of the dropout rates.  SGD
(with optional momentum and weight decay) and Adam are provided.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from .module import Parameter

__all__ = ["Optimizer", "SGD", "Adam"]


class Optimizer:
    """Base class holding a parameter list and a learning rate."""

    def __init__(self, parameters: Iterable[Parameter], lr: float):
        self.parameters = list(parameters)
        if not self.parameters:
            raise ValueError("optimizer received an empty parameter list")
        if lr <= 0:
            raise ValueError("learning rate must be positive")
        self.lr = lr

    def zero_grad(self) -> None:
        """Clear accumulated gradients on all managed parameters."""
        for parameter in self.parameters:
            parameter.zero_grad()

    def step(self) -> None:
        raise NotImplementedError

    def set_lr(self, lr: float) -> None:
        """Update the learning rate (used by schedules)."""
        self.lr = lr


class SGD(Optimizer):
    """Stochastic gradient descent with momentum and decoupled weight decay."""

    def __init__(self, parameters: Iterable[Parameter], lr: float = 0.01,
                 momentum: float = 0.0, weight_decay: float = 0.0,
                 nesterov: bool = False):
        super().__init__(parameters, lr)
        self.momentum = momentum
        self.weight_decay = weight_decay
        self.nesterov = nesterov
        self._velocity = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        for parameter, velocity in zip(self.parameters, self._velocity):
            if parameter.grad is None:
                continue
            grad = parameter.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * parameter.data
            if self.momentum:
                velocity *= self.momentum
                velocity += grad
                update = grad + self.momentum * velocity if self.nesterov else velocity
            else:
                update = grad
            parameter.data = parameter.data - self.lr * update


class Adam(Optimizer):
    """Adam optimiser (Kingma & Ba, 2015)."""

    def __init__(self, parameters: Iterable[Parameter], lr: float = 1e-3,
                 betas: tuple[float, float] = (0.9, 0.999), eps: float = 1e-8,
                 weight_decay: float = 0.0):
        super().__init__(parameters, lr)
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._m = [np.zeros_like(p.data) for p in self.parameters]
        self._v = [np.zeros_like(p.data) for p in self.parameters]
        self._t = 0

    def step(self) -> None:
        self._t += 1
        bias1 = 1.0 - self.beta1 ** self._t
        bias2 = 1.0 - self.beta2 ** self._t
        for parameter, m, v in zip(self.parameters, self._m, self._v):
            if parameter.grad is None:
                continue
            grad = parameter.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * parameter.data
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad * grad
            m_hat = m / bias1
            v_hat = v / bias2
            parameter.data = parameter.data - self.lr * m_hat / (np.sqrt(v_hat) + self.eps)
