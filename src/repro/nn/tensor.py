"""Reverse-mode automatic differentiation on top of numpy arrays.

This module provides the :class:`Tensor` class, the foundation of the
``repro.nn`` neural-network substrate.  The paper's experiments were run on
PyTorch; since PyTorch is unavailable in this environment the same
functionality (define-by-run reverse-mode autodiff over dense numpy arrays)
is implemented here from scratch.

Design notes
------------
* A :class:`Tensor` wraps a ``numpy.ndarray`` (always ``float64`` unless the
  caller passes an integer array explicitly, e.g. for labels).
* Every differentiable operation records a backward closure and its parent
  tensors.  Calling :meth:`Tensor.backward` runs a topological sort of the
  recorded graph and accumulates gradients into ``Tensor.grad``.
* Broadcasting is fully supported; gradients flowing into a broadcast operand
  are reduced back to the operand's shape by :func:`unbroadcast`.
* Gradient tracking can be suspended with :func:`no_grad` (used by fault
  injection and evaluation, matching ``torch.no_grad`` semantics).
"""

from __future__ import annotations

import contextlib
from typing import Callable, Iterable, Sequence

import numpy as np

__all__ = ["Tensor", "no_grad", "is_grad_enabled", "unbroadcast", "as_tensor"]


_GRAD_ENABLED = True


@contextlib.contextmanager
def no_grad():
    """Context manager that disables construction of the autograd graph."""
    global _GRAD_ENABLED
    previous = _GRAD_ENABLED
    _GRAD_ENABLED = False
    try:
        yield
    finally:
        _GRAD_ENABLED = previous


def is_grad_enabled() -> bool:
    """Return ``True`` when operations record the autograd graph."""
    return _GRAD_ENABLED


def unbroadcast(grad: np.ndarray, shape: tuple) -> np.ndarray:
    """Reduce ``grad`` so that it matches ``shape``.

    When an operand of shape ``shape`` was broadcast to a larger shape during
    the forward pass, the incoming gradient must be summed over the broadcast
    axes before being accumulated into the operand.
    """
    if grad.shape == shape:
        return grad
    # Sum over leading axes added by broadcasting.
    extra_dims = grad.ndim - len(shape)
    if extra_dims > 0:
        grad = grad.sum(axis=tuple(range(extra_dims)))
    # Sum over axes that were size-1 in the original shape.
    axes = tuple(i for i, size in enumerate(shape) if size == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


def _to_array(data) -> np.ndarray:
    if isinstance(data, np.ndarray):
        if data.dtype in (np.float32, np.float64):
            return data.astype(np.float64, copy=False)
        if np.issubdtype(data.dtype, np.integer) or data.dtype == np.bool_:
            return data
        return data.astype(np.float64)
    if isinstance(data, Tensor):
        return data.data
    array = np.asarray(data)
    if np.issubdtype(array.dtype, np.integer) or array.dtype == np.bool_:
        return array
    return array.astype(np.float64)


def as_tensor(value, requires_grad: bool = False) -> "Tensor":
    """Convert ``value`` (scalar, array or Tensor) into a :class:`Tensor`."""
    if isinstance(value, Tensor):
        return value
    return Tensor(value, requires_grad=requires_grad)


class Tensor:
    """A numpy-backed array with reverse-mode automatic differentiation."""

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents", "name")

    def __init__(self, data, requires_grad: bool = False, name: str | None = None):
        self.data = _to_array(data)
        self.requires_grad = bool(requires_grad) and _GRAD_ENABLED
        self.grad: np.ndarray | None = None
        self._backward: Callable[[np.ndarray], None] | None = None
        self._parents: tuple["Tensor", ...] = ()
        self.name = name

    # ------------------------------------------------------------------ #
    # Basic introspection
    # ------------------------------------------------------------------ #
    @property
    def shape(self) -> tuple:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def dtype(self):
        return self.data.dtype

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        grad_note = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.shape}{grad_note})"

    def numpy(self) -> np.ndarray:
        """Return the underlying numpy array (no copy)."""
        return self.data

    def item(self) -> float:
        """Return the value of a single-element tensor as a Python float."""
        return float(self.data.reshape(-1)[0]) if self.data.size == 1 else float(self.data)

    def detach(self) -> "Tensor":
        """Return a new tensor sharing data but detached from the graph."""
        return Tensor(self.data, requires_grad=False)

    def copy(self) -> "Tensor":
        """Return a deep copy detached from the graph."""
        return Tensor(self.data.copy(), requires_grad=False)

    def zero_grad(self) -> None:
        """Reset the accumulated gradient."""
        self.grad = None

    # ------------------------------------------------------------------ #
    # Graph construction helpers
    # ------------------------------------------------------------------ #
    @staticmethod
    def _make(data: np.ndarray,
              parents: Sequence["Tensor"],
              backward: Callable[[np.ndarray], None]) -> "Tensor":
        """Create the result tensor of an operation, wiring the graph."""
        requires = _GRAD_ENABLED and any(p.requires_grad for p in parents)
        out = Tensor(data, requires_grad=requires)
        if requires:
            out._parents = tuple(parents)
            out._backward = backward
        return out

    def _accumulate(self, grad: np.ndarray) -> None:
        grad = unbroadcast(np.asarray(grad, dtype=np.float64), self.data.shape)
        if self.grad is None:
            self.grad = grad.copy()
        else:
            self.grad = self.grad + grad

    def backward(self, grad: np.ndarray | float | None = None) -> None:
        """Backpropagate from this tensor through the recorded graph."""
        if not self.requires_grad:
            raise RuntimeError("backward() called on a tensor that does not require grad")
        if grad is None:
            if self.data.size != 1:
                raise RuntimeError("grad must be provided for non-scalar outputs")
            grad = np.ones_like(self.data)
        grad = np.asarray(grad, dtype=np.float64)

        # Topological sort (iterative to avoid recursion limits on deep nets).
        topo: list[Tensor] = []
        visited: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                topo.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if parent.requires_grad and id(parent) not in visited:
                    stack.append((parent, False))

        self._accumulate(grad)
        for node in reversed(topo):
            if node._backward is None or node.grad is None:
                continue
            node._backward(node.grad)

    # ------------------------------------------------------------------ #
    # Arithmetic
    # ------------------------------------------------------------------ #
    def __add__(self, other) -> "Tensor":
        other = as_tensor(other)
        out_data = self.data + other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad)
            if other.requires_grad:
                other._accumulate(grad)

        return Tensor._make(out_data, (self, other), backward)

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(-grad)

        return Tensor._make(-self.data, (self,), backward)

    def __sub__(self, other) -> "Tensor":
        other = as_tensor(other)
        out_data = self.data - other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad)
            if other.requires_grad:
                other._accumulate(-grad)

        return Tensor._make(out_data, (self, other), backward)

    def __rsub__(self, other) -> "Tensor":
        return as_tensor(other).__sub__(self)

    def __mul__(self, other) -> "Tensor":
        other = as_tensor(other)
        out_data = self.data * other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * other.data)
            if other.requires_grad:
                other._accumulate(grad * self.data)

        return Tensor._make(out_data, (self, other), backward)

    __rmul__ = __mul__

    def __truediv__(self, other) -> "Tensor":
        other = as_tensor(other)
        out_data = self.data / other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad / other.data)
            if other.requires_grad:
                other._accumulate(-grad * self.data / (other.data ** 2))

        return Tensor._make(out_data, (self, other), backward)

    def __rtruediv__(self, other) -> "Tensor":
        return as_tensor(other).__truediv__(self)

    def __pow__(self, exponent: float) -> "Tensor":
        if not isinstance(exponent, (int, float)):
            raise TypeError("only scalar exponents are supported")
        out_data = self.data ** exponent

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * exponent * self.data ** (exponent - 1))

        return Tensor._make(out_data, (self,), backward)

    def __matmul__(self, other) -> "Tensor":
        other = as_tensor(other)
        out_data = self.data @ other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                if other.data.ndim == 1:
                    self._accumulate(np.outer(grad, other.data) if grad.ndim == 1
                                     else grad[..., None] * other.data)
                else:
                    self._accumulate(grad @ np.swapaxes(other.data, -1, -2))
            if other.requires_grad:
                if self.data.ndim == 1:
                    other._accumulate(np.outer(self.data, grad))
                else:
                    grad_other = np.swapaxes(self.data, -1, -2) @ grad
                    other._accumulate(grad_other)

        return Tensor._make(out_data, (self, other), backward)

    # ------------------------------------------------------------------ #
    # Comparisons (non-differentiable, return plain numpy bool arrays)
    # ------------------------------------------------------------------ #
    def __gt__(self, other):
        return self.data > (other.data if isinstance(other, Tensor) else other)

    def __lt__(self, other):
        return self.data < (other.data if isinstance(other, Tensor) else other)

    def __ge__(self, other):
        return self.data >= (other.data if isinstance(other, Tensor) else other)

    def __le__(self, other):
        return self.data <= (other.data if isinstance(other, Tensor) else other)

    # ------------------------------------------------------------------ #
    # Elementwise functions
    # ------------------------------------------------------------------ #
    def exp(self) -> "Tensor":
        out_data = np.exp(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * out_data)

        return Tensor._make(out_data, (self,), backward)

    def log(self) -> "Tensor":
        out_data = np.log(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad / self.data)

        return Tensor._make(out_data, (self,), backward)

    def sqrt(self) -> "Tensor":
        return self ** 0.5

    def tanh(self) -> "Tensor":
        out_data = np.tanh(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * (1.0 - out_data ** 2))

        return Tensor._make(out_data, (self,), backward)

    def sigmoid(self) -> "Tensor":
        out_data = 1.0 / (1.0 + np.exp(-self.data))

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * out_data * (1.0 - out_data))

        return Tensor._make(out_data, (self,), backward)

    def abs(self) -> "Tensor":
        out_data = np.abs(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * np.sign(self.data))

        return Tensor._make(out_data, (self,), backward)

    def clip(self, low: float, high: float) -> "Tensor":
        out_data = np.clip(self.data, low, high)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                mask = (self.data >= low) & (self.data <= high)
                self._accumulate(grad * mask)

        return Tensor._make(out_data, (self,), backward)

    def maximum(self, other) -> "Tensor":
        other = as_tensor(other)
        out_data = np.maximum(self.data, other.data)

        def backward(grad: np.ndarray) -> None:
            mask = self.data >= other.data
            if self.requires_grad:
                self._accumulate(grad * mask)
            if other.requires_grad:
                other._accumulate(grad * (~mask))

        return Tensor._make(out_data, (self, other), backward)

    # ------------------------------------------------------------------ #
    # Reductions
    # ------------------------------------------------------------------ #
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.sum(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray) -> None:
            if not self.requires_grad:
                return
            g = np.asarray(grad)
            if axis is not None and not keepdims:
                axes = axis if isinstance(axis, tuple) else (axis,)
                for ax in sorted(a % self.data.ndim for a in axes):
                    g = np.expand_dims(g, ax)
            self._accumulate(np.broadcast_to(g, self.data.shape))

        return Tensor._make(out_data, (self,), backward)

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.data.size
        else:
            axes = axis if isinstance(axis, tuple) else (axis,)
            count = int(np.prod([self.data.shape[a] for a in axes]))
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def var(self, axis=None, keepdims: bool = False) -> "Tensor":
        mean = self.mean(axis=axis, keepdims=True)
        centered = self - mean
        return (centered * centered).mean(axis=axis, keepdims=keepdims)

    def max(self, axis=None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.max(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray) -> None:
            if not self.requires_grad:
                return
            g = np.asarray(grad)
            expanded = self.data.max(axis=axis, keepdims=True)
            if axis is not None and not keepdims:
                axes = axis if isinstance(axis, tuple) else (axis,)
                for ax in sorted(a % self.data.ndim for a in axes):
                    g = np.expand_dims(g, ax)
            mask = (self.data == expanded).astype(np.float64)
            # Split gradient evenly between ties to keep the operation well defined.
            mask /= np.maximum(mask.sum(axis=axis, keepdims=True), 1.0)
            self._accumulate(g * mask)

        return Tensor._make(out_data, (self,), backward)

    def min(self, axis=None, keepdims: bool = False) -> "Tensor":
        return -((-self).max(axis=axis, keepdims=keepdims))

    # ------------------------------------------------------------------ #
    # Shape manipulation
    # ------------------------------------------------------------------ #
    def reshape(self, *shape) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        original_shape = self.data.shape
        out_data = self.data.reshape(shape)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad.reshape(original_shape))

        return Tensor._make(out_data, (self,), backward)

    def flatten(self, start_dim: int = 1) -> "Tensor":
        shape = self.data.shape
        new_shape = shape[:start_dim] + (-1,)
        return self.reshape(*new_shape)

    def transpose(self, *axes) -> "Tensor":
        if not axes:
            axes = tuple(reversed(range(self.data.ndim)))
        elif len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes = tuple(axes[0])
        out_data = self.data.transpose(axes)
        inverse = np.argsort(axes)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad.transpose(inverse))

        return Tensor._make(out_data, (self,), backward)

    def __getitem__(self, index) -> "Tensor":
        out_data = self.data[index]

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                full = np.zeros_like(self.data)
                np.add.at(full, index, grad)
                self._accumulate(full)

        return Tensor._make(out_data, (self,), backward)

    def pad2d(self, padding: int) -> "Tensor":
        """Zero-pad the last two (spatial) dimensions of an NCHW tensor."""
        if padding == 0:
            return self
        pad_width = [(0, 0)] * (self.data.ndim - 2) + [(padding, padding), (padding, padding)]
        out_data = np.pad(self.data, pad_width)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                slices = tuple(slice(None) for _ in range(self.data.ndim - 2)) + (
                    slice(padding, -padding), slice(padding, -padding))
                self._accumulate(grad[slices])

        return Tensor._make(out_data, (self,), backward)

    # ------------------------------------------------------------------ #
    # Construction helpers
    # ------------------------------------------------------------------ #
    @staticmethod
    def zeros(*shape, requires_grad: bool = False) -> "Tensor":
        return Tensor(np.zeros(shape), requires_grad=requires_grad)

    @staticmethod
    def ones(*shape, requires_grad: bool = False) -> "Tensor":
        return Tensor(np.ones(shape), requires_grad=requires_grad)

    @staticmethod
    def randn(*shape, rng: np.random.Generator | None = None,
              requires_grad: bool = False) -> "Tensor":
        rng = rng or np.random.default_rng()
        return Tensor(rng.standard_normal(shape), requires_grad=requires_grad)

    @staticmethod
    def concatenate(tensors: Iterable["Tensor"], axis: int = 0) -> "Tensor":
        tensors = [as_tensor(t) for t in tensors]
        out_data = np.concatenate([t.data for t in tensors], axis=axis)
        sizes = [t.data.shape[axis] for t in tensors]

        def backward(grad: np.ndarray) -> None:
            start = 0
            for tensor, size in zip(tensors, sizes):
                if tensor.requires_grad:
                    slicer = [slice(None)] * grad.ndim
                    slicer[axis] = slice(start, start + size)
                    tensor._accumulate(grad[tuple(slicer)])
                start += size

        return Tensor._make(out_data, tuple(tensors), backward)

    @staticmethod
    def stack(tensors: Iterable["Tensor"], axis: int = 0) -> "Tensor":
        tensors = [as_tensor(t) for t in tensors]
        out_data = np.stack([t.data for t in tensors], axis=axis)

        def backward(grad: np.ndarray) -> None:
            pieces = np.split(grad, len(tensors), axis=axis)
            for tensor, piece in zip(tensors, pieces):
                if tensor.requires_grad:
                    tensor._accumulate(np.squeeze(piece, axis=axis))

        return Tensor._make(out_data, tuple(tensors), backward)
