"""Weight initialisation schemes.

Algorithm 1 of the paper initialises network weights with Xavier (Glorot)
random initialisation; Kaiming initialisation is provided as well because the
ResNet-family models conventionally use it.
"""

from __future__ import annotations

import math

import numpy as np

__all__ = [
    "xavier_uniform", "xavier_normal", "kaiming_uniform", "kaiming_normal",
    "zeros", "ones", "fan_in_and_fan_out",
]


def fan_in_and_fan_out(shape: tuple) -> tuple[int, int]:
    """Compute (fan_in, fan_out) for a weight of the given shape.

    Linear weights use the PyTorch layout ``(out_features, in_features)``;
    convolution weights use ``(out_channels, in_channels, kH, kW)``.
    """
    if len(shape) < 2:
        raise ValueError("fan computation requires at least a 2-D weight")
    receptive_field = int(np.prod(shape[2:])) if len(shape) > 2 else 1
    fan_in = shape[1] * receptive_field
    fan_out = shape[0] * receptive_field
    return fan_in, fan_out


def xavier_uniform(shape: tuple, rng: np.random.Generator, gain: float = 1.0) -> np.ndarray:
    """Glorot uniform initialisation, U(-a, a) with a = gain * sqrt(6/(fan_in+fan_out))."""
    fan_in, fan_out = fan_in_and_fan_out(shape)
    bound = gain * math.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-bound, bound, size=shape)


def xavier_normal(shape: tuple, rng: np.random.Generator, gain: float = 1.0) -> np.ndarray:
    """Glorot normal initialisation, N(0, gain^2 * 2/(fan_in+fan_out))."""
    fan_in, fan_out = fan_in_and_fan_out(shape)
    std = gain * math.sqrt(2.0 / (fan_in + fan_out))
    return rng.normal(0.0, std, size=shape)


def kaiming_uniform(shape: tuple, rng: np.random.Generator, a: float = math.sqrt(5)) -> np.ndarray:
    """He uniform initialisation used by PyTorch's default Linear/Conv reset."""
    fan_in, _ = fan_in_and_fan_out(shape)
    gain = math.sqrt(2.0 / (1.0 + a ** 2))
    bound = gain * math.sqrt(3.0 / fan_in)
    return rng.uniform(-bound, bound, size=shape)


def kaiming_normal(shape: tuple, rng: np.random.Generator) -> np.ndarray:
    """He normal initialisation, N(0, 2/fan_in)."""
    fan_in, _ = fan_in_and_fan_out(shape)
    std = math.sqrt(2.0 / fan_in)
    return rng.normal(0.0, std, size=shape)


def zeros(shape: tuple) -> np.ndarray:
    return np.zeros(shape)


def ones(shape: tuple) -> np.ndarray:
    return np.ones(shape)
