"""Functional neural-network operations on :class:`~repro.nn.tensor.Tensor`.

These free functions implement the forward/backward math used by the layer
classes in :mod:`repro.nn.layers`.  Convolution and pooling use an im2col
lowering so that the heavy lifting is a single BLAS matmul, which keeps CPU
training of the paper's small models tractable.

Trial batching
--------------
Monte-Carlo fault evaluation runs the *same* inputs through ``T``
independently drifted copies of the weights.  Inside a
:func:`trial_batching` context the weighted operations (:func:`linear`,
:func:`conv2d`, and the normalisation layers' affine step) accept
parameters stacked along a leading trial axis — ``(T, out, in)`` instead
of ``(out, in)`` — and an input batch tiled trial-major to ``T * N``
samples.  Everything *per-sample* (activations, pooling, im2col, softmax,
per-sample normalisation statistics) runs once over the whole ``T * N``
batch, amortising numpy dispatch and Python loop overhead; the GEMMs
themselves stay per-trial with exactly the operand shapes, strides and
values of the unbatched path, so a trial-batched forward is **bit-identical**
to ``T`` separate forwards.  That equality is what lets the drift-sweep
engine treat ``trial_batch`` as a pure scheduling knob (see
:mod:`repro.inference`).
"""

from __future__ import annotations

import contextlib
import math

import numpy as np
from scipy.special import erf as _erf

from .tensor import Tensor, is_grad_enabled

__all__ = [
    "relu", "leaky_relu", "elu", "gelu", "softmax", "log_softmax",
    "conv2d", "max_pool2d", "avg_pool2d", "adaptive_avg_pool2d",
    "linear", "dropout_mask", "im2col", "col2im", "one_hot",
    "trial_batching", "trial_count",
]


# --------------------------------------------------------------------------- #
# Trial-batched inference context
# --------------------------------------------------------------------------- #
_TRIAL_COUNT = 1


@contextlib.contextmanager
def trial_batching(count: int):
    """Declare that the forward pass carries ``count`` stacked weight trials.

    Inside the context the input batch must be ``count`` trial-major copies
    of the evaluation batch, and installed parameters may carry a leading
    ``(count,)`` trial axis (parameters without one are shared across
    trials).  Inference-only: the trial-aware operations refuse to run with
    gradient recording enabled.
    """
    global _TRIAL_COUNT
    if count < 1:
        raise ValueError("trial_batching needs at least one trial")
    previous = _TRIAL_COUNT
    _TRIAL_COUNT = int(count)
    try:
        yield
    finally:
        _TRIAL_COUNT = previous


def trial_count() -> int:
    """Number of stacked trials in the active :func:`trial_batching` context."""
    return _TRIAL_COUNT


def _trial_rows(data: np.ndarray, trials: int) -> int:
    if is_grad_enabled():
        raise RuntimeError(
            "trial_batching is an inference-only context; wrap the forward "
            "pass in no_grad()")
    if data.shape[0] % trials:
        raise ValueError(
            f"trial_batching({trials}) needs the batch tiled trial-major to "
            f"a multiple of {trials} samples; got {data.shape[0]}")
    return data.shape[0] // trials


# --------------------------------------------------------------------------- #
# Activations
# --------------------------------------------------------------------------- #
def relu(x: Tensor) -> Tensor:
    """Rectified linear unit, ``max(x, 0)``."""
    out_data = np.maximum(x.data, 0.0)

    def backward(grad: np.ndarray) -> None:
        if x.requires_grad:
            x._accumulate(grad * (x.data > 0))

    return Tensor._make(out_data, (x,), backward)


def leaky_relu(x: Tensor, negative_slope: float = 0.01) -> Tensor:
    """Leaky ReLU with configurable negative slope."""
    out_data = np.where(x.data > 0, x.data, negative_slope * x.data)

    def backward(grad: np.ndarray) -> None:
        if x.requires_grad:
            x._accumulate(grad * np.where(x.data > 0, 1.0, negative_slope))

    return Tensor._make(out_data, (x,), backward)


def elu(x: Tensor, alpha: float = 1.0) -> Tensor:
    """Exponential linear unit."""
    exp_term = alpha * (np.exp(np.minimum(x.data, 0.0)) - 1.0)
    out_data = np.where(x.data > 0, x.data, exp_term)

    def backward(grad: np.ndarray) -> None:
        if x.requires_grad:
            slope = np.where(x.data > 0, 1.0, exp_term + alpha)
            x._accumulate(grad * slope)

    return Tensor._make(out_data, (x,), backward)


def gelu(x: Tensor) -> Tensor:
    """Gaussian error linear unit (exact erf form, as in Hendrycks & Gimpel)."""
    cdf = 0.5 * (1.0 + _erf(x.data / math.sqrt(2.0)))
    out_data = x.data * cdf

    def backward(grad: np.ndarray) -> None:
        if x.requires_grad:
            pdf = np.exp(-0.5 * x.data ** 2) / math.sqrt(2.0 * math.pi)
            x._accumulate(grad * (cdf + x.data * pdf))

    return Tensor._make(out_data, (x,), backward)


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable softmax along ``axis``."""
    shifted = x - Tensor(x.data.max(axis=axis, keepdims=True))
    exp = shifted.exp()
    return exp / exp.sum(axis=axis, keepdims=True)


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable log-softmax along ``axis``."""
    shifted = x - Tensor(x.data.max(axis=axis, keepdims=True))
    return shifted - shifted.exp().sum(axis=axis, keepdims=True).log()


# --------------------------------------------------------------------------- #
# Linear / dropout helpers
# --------------------------------------------------------------------------- #
def linear(x: Tensor, weight: Tensor, bias: Tensor | None = None) -> Tensor:
    """Affine transform ``x @ weight.T + bias`` (PyTorch weight layout).

    Inside a :func:`trial_batching` context ``weight``/``bias`` may carry a
    leading trial axis; each trial's slice of the tiled batch then sees its
    own weights through a per-trial GEMM with the exact operand shapes of
    the unbatched path (bit-identical results).
    """
    if _TRIAL_COUNT > 1:
        return _trial_linear(x, weight, bias)
    out = x @ weight.transpose()
    if bias is not None:
        out = out + bias
    return out


def _trial_linear(x: Tensor, weight: Tensor, bias: Tensor | None) -> Tensor:
    trials = _TRIAL_COUNT
    rows = _trial_rows(x.data, trials)
    weights = weight.data
    biases = None if bias is None else bias.data
    if weights.ndim == 3:
        # Stacked matmul runs the T per-trial GEMMs in one C-level call;
        # each slice is the same dgemm as the unbatched `x @ w.T`, so the
        # result stays bit-identical (unlike one big M-batched GEMM, whose
        # blocking depends on M).
        grouped = x.data.reshape((trials, rows) + x.data.shape[1:])
        out = np.matmul(grouped, weights.transpose(0, 2, 1))
        if biases is not None:
            out = out + (biases[:, None, :] if biases.ndim == 2 else biases)
        return Tensor(out.reshape((trials * rows,) + out.shape[2:]))
    blocks = []
    for index in range(trials):
        block = x.data[index * rows:(index + 1) * rows] @ weights.T
        if biases is not None:
            block = block + (biases[index] if biases.ndim == 2 else biases)
        blocks.append(block)
    return Tensor(np.concatenate(blocks, axis=0))


def dropout_mask(shape: tuple, rate: float, rng: np.random.Generator) -> np.ndarray:
    """Sample an inverted-dropout mask: zeros with probability ``rate``.

    Surviving entries are scaled by ``1 / (1 - rate)`` so the expected
    activation is unchanged (the standard "inverted dropout" convention).
    """
    if rate <= 0.0:
        return np.ones(shape)
    keep = 1.0 - rate
    return (rng.random(shape) < keep).astype(np.float64) / keep


def one_hot(labels: np.ndarray, num_classes: int) -> np.ndarray:
    """Convert integer labels of shape ``(N,)`` to one-hot ``(N, num_classes)``."""
    labels = np.asarray(labels).astype(np.int64)
    encoded = np.zeros((labels.shape[0], num_classes))
    encoded[np.arange(labels.shape[0]), labels] = 1.0
    return encoded


# --------------------------------------------------------------------------- #
# im2col convolution lowering
# --------------------------------------------------------------------------- #
def im2col(data: np.ndarray, kernel_h: int, kernel_w: int,
           stride: int, padding: int) -> tuple[np.ndarray, int, int]:
    """Lower an NCHW array into column form for convolution.

    Returns ``(columns, out_h, out_w)`` where ``columns`` has shape
    ``(N, C * kernel_h * kernel_w, out_h * out_w)``.
    """
    n, c, h, w = data.shape
    out_h = (h + 2 * padding - kernel_h) // stride + 1
    out_w = (w + 2 * padding - kernel_w) // stride + 1
    if padding > 0:
        data = np.pad(data, ((0, 0), (0, 0), (padding, padding), (padding, padding)))

    columns = np.empty((n, c, kernel_h, kernel_w, out_h, out_w))
    for i in range(kernel_h):
        i_end = i + stride * out_h
        for j in range(kernel_w):
            j_end = j + stride * out_w
            columns[:, :, i, j, :, :] = data[:, :, i:i_end:stride, j:j_end:stride]
    return columns.reshape(n, c * kernel_h * kernel_w, out_h * out_w), out_h, out_w


def col2im(columns: np.ndarray, input_shape: tuple, kernel_h: int, kernel_w: int,
           stride: int, padding: int, out_h: int, out_w: int) -> np.ndarray:
    """Inverse of :func:`im2col`: scatter-add columns back to NCHW."""
    n, c, h, w = input_shape
    padded = np.zeros((n, c, h + 2 * padding, w + 2 * padding))
    columns = columns.reshape(n, c, kernel_h, kernel_w, out_h, out_w)
    for i in range(kernel_h):
        i_end = i + stride * out_h
        for j in range(kernel_w):
            j_end = j + stride * out_w
            padded[:, :, i:i_end:stride, j:j_end:stride] += columns[:, :, i, j, :, :]
    if padding > 0:
        return padded[:, :, padding:-padding, padding:-padding]
    return padded


def conv2d(x: Tensor, weight: Tensor, bias: Tensor | None = None,
           stride: int = 1, padding: int = 0) -> Tensor:
    """2-D convolution over an NCHW tensor.

    ``weight`` has shape ``(out_channels, in_channels, kH, kW)``; inside a
    :func:`trial_batching` context it may carry a leading trial axis (the
    shared im2col lowering runs once over the tiled batch, the contraction
    per trial — bit-identical to separate per-trial convolutions).
    """
    if _TRIAL_COUNT > 1:
        return _trial_conv2d(x, weight, bias, stride, padding)
    n, c, h, w = x.shape
    out_channels, in_channels, kernel_h, kernel_w = weight.shape
    if c != in_channels:
        raise ValueError(f"conv2d: input has {c} channels, weight expects {in_channels}")

    columns, out_h, out_w = im2col(x.data, kernel_h, kernel_w, stride, padding)
    weight_matrix = weight.data.reshape(out_channels, -1)
    out_data = np.einsum("ok,nkp->nop", weight_matrix, columns, optimize=True)
    out_data = out_data.reshape(n, out_channels, out_h, out_w)
    if bias is not None:
        out_data = out_data + bias.data.reshape(1, -1, 1, 1)

    parents = (x, weight) if bias is None else (x, weight, bias)

    def backward(grad: np.ndarray) -> None:
        grad_matrix = grad.reshape(n, out_channels, out_h * out_w)
        if weight.requires_grad:
            grad_weight = np.einsum("nop,nkp->ok", grad_matrix, columns, optimize=True)
            weight._accumulate(grad_weight.reshape(weight.shape))
        if bias is not None and bias.requires_grad:
            bias._accumulate(grad.sum(axis=(0, 2, 3)))
        if x.requires_grad:
            grad_columns = np.einsum("ok,nop->nkp", weight_matrix, grad_matrix, optimize=True)
            grad_input = col2im(grad_columns, (n, c, h, w), kernel_h, kernel_w,
                                stride, padding, out_h, out_w)
            x._accumulate(grad_input)

    return Tensor._make(out_data, parents, backward)


def _trial_conv2d(x: Tensor, weight: Tensor, bias: Tensor | None,
                  stride: int, padding: int) -> Tensor:
    trials = _TRIAL_COUNT
    rows = _trial_rows(x.data, trials)
    weights = weight.data
    stacked = weights.ndim == 5
    out_channels, in_channels, kernel_h, kernel_w = weights.shape[-4:]
    if x.data.shape[1] != in_channels:
        raise ValueError(f"conv2d: input has {x.data.shape[1]} channels, "
                         f"weight expects {in_channels}")
    # One im2col over the whole tiled batch (the Python copy loop is the
    # per-sample overhead worth amortising); the contraction stays per trial
    # so its GEMM operands match the unbatched path exactly.
    columns, out_h, out_w = im2col(x.data, kernel_h, kernel_w, stride, padding)
    biases = None if bias is None else bias.data
    if stacked:
        # One batched einsum: the t axis rides along as a batch dimension,
        # so each trial's contraction is the same "ok,nkp->nop" as the
        # unbatched path and the output stays bit-identical.
        grouped = columns.reshape((trials, rows) + columns.shape[1:])
        weight_matrix = weights.reshape(trials, out_channels, -1)
        out = np.einsum("tok,tnkp->tnop", weight_matrix, grouped,
                        optimize=True)
        if biases is not None:
            if biases.ndim == 2:
                out = out + biases[:, None, :, None]
            else:
                out = out + biases[None, None, :, None]
        return Tensor(out.reshape(trials * rows, out_channels, out_h, out_w))
    weight_matrix = weights.reshape(out_channels, -1)
    blocks = []
    for index in range(trials):
        block = np.einsum("ok,nkp->nop", weight_matrix,
                          columns[index * rows:(index + 1) * rows],
                          optimize=True)
        block = block.reshape(rows, out_channels, out_h, out_w)
        if biases is not None:
            b = biases[index] if biases.ndim == 2 else biases
            block = block + b.reshape(1, -1, 1, 1)
        blocks.append(block)
    return Tensor(np.concatenate(blocks, axis=0))


def max_pool2d(x: Tensor, kernel_size: int, stride: int | None = None) -> Tensor:
    """Max pooling over an NCHW tensor with square windows."""
    stride = stride or kernel_size
    n, c, h, w = x.shape
    columns, out_h, out_w = im2col(x.data, kernel_size, kernel_size, stride, 0)
    columns = columns.reshape(n, c, kernel_size * kernel_size, out_h * out_w)
    argmax = columns.argmax(axis=2)
    out_data = np.take_along_axis(columns, argmax[:, :, None, :], axis=2)
    out_data = out_data.reshape(n, c, out_h, out_w)

    def backward(grad: np.ndarray) -> None:
        if not x.requires_grad:
            return
        grad_cols = np.zeros((n, c, kernel_size * kernel_size, out_h * out_w))
        np.put_along_axis(grad_cols, argmax[:, :, None, :],
                          grad.reshape(n, c, 1, out_h * out_w), axis=2)
        grad_cols = grad_cols.reshape(n, c * kernel_size * kernel_size, out_h * out_w)
        grad_input = col2im(grad_cols, (n, c, h, w), kernel_size, kernel_size,
                            stride, 0, out_h, out_w)
        x._accumulate(grad_input)

    return Tensor._make(out_data, (x,), backward)


def avg_pool2d(x: Tensor, kernel_size: int, stride: int | None = None) -> Tensor:
    """Average pooling over an NCHW tensor with square windows."""
    stride = stride or kernel_size
    n, c, h, w = x.shape
    columns, out_h, out_w = im2col(x.data, kernel_size, kernel_size, stride, 0)
    columns = columns.reshape(n, c, kernel_size * kernel_size, out_h * out_w)
    out_data = columns.mean(axis=2).reshape(n, c, out_h, out_w)
    window = kernel_size * kernel_size

    def backward(grad: np.ndarray) -> None:
        if not x.requires_grad:
            return
        grad_cols = np.broadcast_to(grad.reshape(n, c, 1, out_h * out_w) / window,
                                    (n, c, window, out_h * out_w)).copy()
        grad_cols = grad_cols.reshape(n, c * window, out_h * out_w)
        grad_input = col2im(grad_cols, (n, c, h, w), kernel_size, kernel_size,
                            stride, 0, out_h, out_w)
        x._accumulate(grad_input)

    return Tensor._make(out_data, (x,), backward)


def adaptive_avg_pool2d(x: Tensor, output_size: int = 1) -> Tensor:
    """Adaptive average pooling; only ``output_size == 1`` (global) is needed."""
    if output_size != 1:
        raise NotImplementedError("only global (1x1) adaptive pooling is supported")
    return x.mean(axis=(2, 3), keepdims=True)
