"""Quickstart: make an MLP fault-tolerant with BayesFT in ~30 seconds on CPU.

Trains a plain (ERM) MLP and a BayesFT-optimised MLP on the synthetic MNIST
stand-in, then compares their accuracy while the weights drift with the
paper's log-normal memristance model (Eq. 1).

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import BayesFT, seed_everything
from repro.data import SyntheticMNIST, train_test_split
from repro.evaluation import DriftSweepEngine, curve_auc
from repro.models import build_model
from repro.training import train_classifier


def main() -> None:
    seed_everything(0)

    # 1. Data: a procedurally generated 10-class digit dataset (MNIST stand-in).
    dataset = SyntheticMNIST(n_samples=600, image_size=16, rng=0)
    train_set, test_set = train_test_split(dataset, test_fraction=0.25, rng=0)

    # 2. Baseline: ordinary training (empirical risk minimisation).
    erm_model = build_model("mlp", num_classes=10, in_channels=1, image_size=16, rng=0)
    train_classifier(erm_model, train_set, epochs=8, learning_rate=0.1, rng=0)

    # 3. BayesFT: Bayesian optimisation over per-layer dropout rates,
    #    alternating with weight training (Algorithm 1 of the paper).
    bayesft_model = build_model("mlp", num_classes=10, in_channels=1, image_size=16, rng=0)
    searcher = BayesFT(sigma=0.8, n_trials=8, epochs_per_trial=2,
                       monte_carlo_samples=3, learning_rate=0.1, rng=0)
    result = searcher.fit(bayesft_model, train_set)
    print("BayesFT selected per-layer dropout rates:", np.round(result.best_alpha, 3))
    stats = result.objective_stats
    print(f"inner-objective evaluations: {stats['evaluations']} "
          f"(inference cache saved {stats['cache_hits']})")

    # 4. Evaluate both under memristance drift (accuracy vs sigma) with the
    #    DriftSweepEngine: all drift samples are pre-drawn vectorized, the
    #    clean weights are snapshotted once per sweep, bit-identical trials
    #    (every sigma=0 draw) are answered from the inference cache, and
    #    `workers=4` would spread trials over 4 processes — or
    #    `max_chunk_trials=2` bound memory for deep models — with the exact
    #    same seeded numbers.
    sigmas = (0.0, 0.3, 0.6, 0.9, 1.2, 1.5)
    erm_report = DriftSweepEngine(erm_model, test_set, trials=5,
                                  rng=1).run(sigmas, label="ERM")
    bayesft_report = DriftSweepEngine(bayesft_model, test_set, trials=5,
                                      rng=1).run(sigmas, label="BayesFT")
    erm_curve, bayesft_curve = erm_report.curve(), bayesft_report.curve()

    print("\nsigma      ERM    BayesFT")
    for index, sigma in enumerate(sigmas):
        print(f"{sigma:5.2f}   {erm_curve.means[index]:6.3f}   {bayesft_curve.means[index]:8.3f}")
    print(f"\nRobustness AUC — ERM: {curve_auc(erm_curve):.3f}, "
          f"BayesFT: {curve_auc(bayesft_curve):.3f}")
    for report in (erm_report, bayesft_report):
        print(f"{report.label} sweep [{report.backend}]: {report.n_evaluations} "
              f"evaluations ({report.cache_hits} cache hits) "
              f"in {report.elapsed_seconds:.2f}s")
    # SweepReport serializes to JSON for experiment bookkeeping:
    #     open("erm_sweep.json", "w").write(erm_report.to_json(indent=2))


if __name__ == "__main__":
    main()
