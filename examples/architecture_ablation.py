"""Reproduce the paper's Figure 2 ablation: which architecture choices matter?

Sweeps the four architectural factors the paper analyses — dropout,
normalisation, depth and activation function — and prints one accuracy-vs-σ
table per factor, highlighting the paper's conclusions:

* dropout improves drift robustness,
* normalisation hurts it,
* deeper models are more fragile,
* the activation function barely matters.

Run with::

    python examples/architecture_ablation.py
"""

from __future__ import annotations

from repro import ExperimentConfig, seed_everything
from repro.evaluation import curve_auc
from repro.experiments import (
    run_activation_ablation, run_depth_ablation,
    run_dropout_ablation, run_normalization_ablation,
)


def print_table(title: str, curves) -> None:
    print(f"\n--- {title} ---")
    sigmas = curves[0].sigmas
    print("sigma   " + "  ".join(f"{curve.label:>16s}" for curve in curves))
    for index, sigma in enumerate(sigmas):
        row = "  ".join(f"{curve.means[index]:16.3f}" for curve in curves)
        print(f"{sigma:5.2f}   {row}")
    aucs = ", ".join(f"{curve.label}={curve_auc(curve):.3f}" for curve in curves)
    print(f"robustness AUC: {aucs}")


def main() -> None:
    seed_everything(0)
    config = ExperimentConfig(epochs=6, train_samples=360, test_samples=120,
                              drift_trials=3, learning_rate=0.1,
                              sigma_grid=(0.0, 0.3, 0.6, 0.9, 1.2, 1.5))

    print_table("Fig. 2(a) Dropout", run_dropout_ablation(config, seed=0))
    print_table("Fig. 2(b) Normalisation", run_normalization_ablation(config, seed=0))
    print_table("Fig. 2(c) Depth", run_depth_ablation(config, seed=0))
    print_table("Fig. 2(d) Activation", run_activation_ablation(config, seed=0))

    print("\nSummary (expected qualitative outcome):")
    print(" * dropout variants should have the highest AUC in table (a)")
    print(" * 'Without Norm' should lead table (b)")
    print(" * the 3-layer model should lead table (c)")
    print(" * table (d) columns should be close to each other")


if __name__ == "__main__":
    main()
