"""Object detection under weight drift (the paper's Fig. 3(j) / Fig. 4 task).

Trains a TinyDetector on the synthetic pedestrian dataset, with and without
dropout hardening, then shows (a) the mAP-vs-σ comparison and (b) an ASCII
visualisation of the detections on one test image as the drift level grows.

Run with::

    python examples/pedestrian_detection.py
"""

from __future__ import annotations

import numpy as np

from repro import seed_everything
from repro.data import SyntheticPedestrians
from repro.evaluation import map_under_drift
from repro.experiments.fig4_detection_visualization import render_ascii_detections
from repro.fault import LogNormalDrift, fault_injection
from repro.models import TinyDetector
from repro.training import train_detector


def main() -> None:
    seed_everything(0)
    dataset = SyntheticPedestrians(n_samples=48, image_size=32, max_pedestrians=2, rng=0)
    train_samples, test_samples = dataset.split(test_fraction=0.3, rng=0)

    detectors = {
        "ERM": TinyDetector(image_size=32, width=8, grid_size=8, dropout_rate=0.0, rng=0),
        "BayesFT-style (dropout 0.2)": TinyDetector(image_size=32, width=8, grid_size=8,
                                                    dropout_rate=0.2, rng=0),
    }
    for name, detector in detectors.items():
        losses = train_detector(detector, train_samples, epochs=12, learning_rate=0.01, rng=0)
        print(f"{name}: training loss {losses[0]:.3f} -> {losses[-1]:.3f}")

    sigmas = (0.0, 0.2, 0.4, 0.6, 0.8)
    print("\nsigma   " + "   ".join(f"{name:>28s}" for name in detectors))
    curves = {name: map_under_drift(detector, test_samples, sigmas, trials=3, rng=1)
              for name, detector in detectors.items()}
    for index, sigma in enumerate(sigmas):
        row = "   ".join(f"{curves[name]['means'][index]:28.3f}" for name in detectors)
        print(f"{sigma:5.2f}   {row}")

    # Qualitative view (the paper's Figure 4): one image, increasing drift.
    sample = test_samples[0]
    detector = detectors["ERM"]
    for sigma in (0.1, 0.4):
        with fault_injection(detector, LogNormalDrift(sigma), rng=2):
            detections = detector.detect(sample.image[None], score_threshold=0.3)[0]
        boxes = [det.box for det in detections]
        print(f"\nERM detections at drift sigma={sigma} "
              f"({len(boxes)} boxes, ground truth {sample.num_objects}):")
        print(render_ascii_detections(sample.image, boxes))


if __name__ == "__main__":
    main()
