"""Deploying a trained network on simulated ReRAM crossbar hardware.

The paper models ReRAM non-idealities as a single log-normal drift on every
weight (Eq. 1).  This example goes one level deeper: it programs a trained
classifier onto simulated crossbar arrays (differential conductance pairs,
programming error, process variation, retention drift) and shows

* how the device-level parameters translate into an equivalent Eq.-1 σ, and
* how accuracy degrades as the deployment ages (drift accumulates).

Run with::

    python examples/reram_deployment.py
"""

from __future__ import annotations

from repro import seed_everything
from repro.data import SyntheticMNIST, train_test_split
from repro.evaluation import accuracy
from repro.models import build_model
from repro.reram import DeviceConfig, DeviceVariationModel, deploy_on_reram
from repro.training import train_classifier


def main() -> None:
    seed_everything(0)
    dataset = SyntheticMNIST(n_samples=500, image_size=16, rng=0)
    train_set, test_set = train_test_split(dataset, test_fraction=0.25, rng=0)

    model = build_model("mlp", num_classes=10, in_channels=1, image_size=16,
                        dropout_rate=0.25, rng=0)
    train_classifier(model, train_set, epochs=8, learning_rate=0.1, rng=0)
    clean_accuracy = accuracy(model, test_set)
    print(f"Clean (digital) accuracy: {clean_accuracy:.3f}")

    device = DeviceConfig(programming_sigma=0.05, read_noise_sigma=0.02,
                          process_variation_sigma=0.05, drift_rate=0.15,
                          quantization_bits=6, stuck_at_rate=0.002)

    print("\ndeployment_time   equivalent_sigma   accuracy_on_reram")
    baseline_state = model.state_dict()
    for deployment_time in (0.0, 1.0, 3.0, 6.0):
        sigma = DeviceVariationModel(device, deployment_time).effective_sigma()
        model.load_state_dict(baseline_state)
        report = deploy_on_reram(model, config=device,
                                 deployment_time=deployment_time, rng=1)
        hardware_accuracy = accuracy(model, test_set)
        mean_weight_error = sum(report.values()) / len(report)
        print(f"{deployment_time:15.1f}   {sigma:16.3f}   {hardware_accuracy:8.3f}"
              f"   (mean weight error {mean_weight_error:.3f})")
    model.load_state_dict(baseline_state)

    print("\nThe equivalent sigma column is the value to plug into the paper's")
    print("Eq. (1) drift model; BayesFT searches dropout rates at exactly this")
    print("abstraction level (see examples/quickstart.py).")


if __name__ == "__main__":
    main()
