"""Setuptools entry point.

A ``setup.py`` is kept alongside ``pyproject.toml`` so that editable installs
work in fully offline environments where the ``wheel`` package (required by
PEP 517 editable builds with older setuptools) is unavailable.
"""

from setuptools import setup

setup()
