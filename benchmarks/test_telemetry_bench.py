"""Telemetry overhead bench: tracing must be nearly free, off must be free.

Measures the acceptance targets of the telemetry PR on the workload the
tracer instruments most densely — a PreAct-18 drift sweep, where every
trial, chunk, sigma and backend task opens a span.  Three claims:

* **no-op cost** — with no session active (the default), an instrumented
  call site costs one method call returning a shared object; the measured
  per-span-site cost is nanoseconds, recorded for the record;
* **tracing overhead** — a fully traced sweep stays within 5% of the
  untraced wall-clock.  Asserted on the best-of-reps ratio: scheduler
  noise on a shared machine only ever *inflates* a repetition, so the
  minimum of interleaved repetitions is the robust estimate of true cost
  (the median is recorded alongside for the record);
* **zero interference** — the canonical sweep report and the canonical BO
  search result are byte-identical with tracing on and off (recorded in
  the JSON artifact).

Writes ``BENCH_telemetry.json`` at the repo root (CI uploads it).
"""

from __future__ import annotations

import json
import statistics
import time
from pathlib import Path

import numpy as np

from repro.core import (
    BayesFTSearch, DriftMarginalizedObjective, DropoutSearchSpace,
)
from repro.data import SyntheticCIFAR, SyntheticMNIST, train_test_split
from repro.evaluation import DriftSweepEngine
from repro.fault.drift import LogNormalDrift
from repro.models import build_mlp, build_model
from repro.telemetry import Telemetry, current, using
from repro.training import train_classifier

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_telemetry.json"

REPS = 9
NOOP_CALLS = 100_000


def _trained_preact():
    dataset = SyntheticCIFAR(n_samples=60, image_size=8, rng=1)
    rng = np.random.default_rng(1)
    train_set, test_set = train_test_split(dataset, test_fraction=0.3, rng=rng)
    model = build_model("preact18", num_classes=10, in_channels=3,
                        image_size=8, rng=rng)
    train_classifier(model, train_set, epochs=1, batch_size=32,
                     learning_rate=0.05, rng=rng)
    # Small validation slice: the dispatch-bound regime where per-span
    # overhead would show if it existed.
    return model, test_set.subset(np.arange(4))


def _sweep_json(model, data, traced: bool) -> tuple[str, float]:
    engine = DriftSweepEngine(model, data, trials=6,
                              rng=np.random.default_rng(11), trial_batch=2,
                              drift_factory=LogNormalDrift)
    start = time.perf_counter()
    if traced:
        with using(Telemetry()):
            report = engine.run((0.0, 0.4, 0.8), label="bench")
    else:
        report = engine.run((0.0, 0.4, 0.8), label="bench")
    elapsed = time.perf_counter() - start
    return report.to_json(canonical=True), elapsed


def _noop_span_nanos() -> float:
    telemetry = current()
    assert not telemetry.enabled, "bench must start with no session active"
    start = time.perf_counter()
    for _ in range(NOOP_CALLS):
        with telemetry.span("site"):
            pass
    elapsed = time.perf_counter() - start
    return elapsed / NOOP_CALLS * 1e9


def _search_json(traced: bool) -> str:
    dataset = SyntheticMNIST(n_samples=160, image_size=16, rng=3)
    train_set, test_set = train_test_split(dataset, test_fraction=0.25, rng=3)
    model = build_mlp(256, depth=3, width=16, num_classes=10, rng=5)
    objective = DriftMarginalizedObjective(test_set, sigma=0.7,
                                           monte_carlo_samples=2,
                                           metric="accuracy", rng=7)
    search = BayesFTSearch(DropoutSearchSpace(model), objective, train_set,
                           epochs_per_trial=1, learning_rate=0.1, rng=9)
    if traced:
        with using(Telemetry()):
            return search.run(n_trials=3).to_json()
    return search.run(n_trials=3).to_json()


def test_tracing_overhead_and_byte_identity():
    noop_nanos = _noop_span_nanos()

    model, data = _trained_preact()
    untraced_seconds, traced_seconds = [], []
    baseline_json = None
    sweep_identical = True
    for rep in range(REPS):
        # Alternate order each repetition so slow container phases hit both
        # variants equally.
        order = (False, True) if rep % 2 == 0 else (True, False)
        for traced in order:
            blob, elapsed = _sweep_json(model, data, traced)
            (traced_seconds if traced else untraced_seconds).append(elapsed)
            if baseline_json is None:
                baseline_json = blob
            sweep_identical &= blob == baseline_json

    # min-of-reps: external load can only slow a repetition down, so the
    # fastest repetition of each variant is the cleanest overhead estimate.
    ratio = min(traced_seconds) / min(untraced_seconds)
    median_ratio = (statistics.median(traced_seconds)
                    / statistics.median(untraced_seconds))
    search_identical = _search_json(False) == _search_json(True)

    summary = {
        "model": "preact18",
        "reps": REPS,
        "noop_span_nanos": round(noop_nanos, 1),
        "untraced_seconds_median": round(
            statistics.median(untraced_seconds), 4),
        "traced_seconds_median": round(statistics.median(traced_seconds), 4),
        "traced_over_untraced_ratio": round(ratio, 4),
        "traced_over_untraced_ratio_median": round(median_ratio, 4),
        "sweep_canonical_identical": sweep_identical,
        "search_canonical_identical": search_identical,
    }
    BENCH_PATH.write_text(json.dumps(summary, indent=2, sort_keys=True) + "\n")

    print("\n=== telemetry overhead bench (BENCH_telemetry.json) ===")
    print(f"no-op span site: {noop_nanos:.0f} ns/call")
    print(f"preact18 sweep: untraced "
          f"{summary['untraced_seconds_median']:.3f}s, traced "
          f"{summary['traced_seconds_median']:.3f}s, ratio {ratio:.3f} "
          f"(median {median_ratio:.3f})")

    assert sweep_identical, "tracing changed the canonical sweep report"
    assert search_identical, "tracing changed the canonical BO search result"
    # A disabled span site is one method call returning a shared object;
    # 10 µs is two orders of magnitude above its real cost and exists only
    # to catch an accidental allocation or lock sneaking in.
    assert noop_nanos < 10_000, (
        f"no-op span site costs {noop_nanos:.0f} ns — the null path is no "
        "longer free")
    assert ratio <= 1.05, (
        f"tracing overhead {100 * (ratio - 1):.1f}% exceeds the 5% budget")
