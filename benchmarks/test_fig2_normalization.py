"""Figure 2(b) bench: normalisation layers hurt drift robustness."""

from __future__ import annotations

import numpy as np

from repro.evaluation import curve_auc
from repro.experiments import run_normalization_ablation

from conftest import curve_by_label, print_curves, run_once


def test_fig2b_normalization_ablation(benchmark, bench_config):
    curves = run_once(benchmark, run_normalization_ablation, bench_config, seed=0)
    print_curves("Figure 2(b): normalisation ablation", curves)

    no_norm = curve_by_label(curves, "Without Norm")
    norm_aucs = [curve_auc(curve) for curve in curves if curve.label != "Without Norm"]

    # Paper claim: adding normalisation generally worsens robustness — the
    # un-normalised model should beat the average normalised variant.
    assert curve_auc(no_norm) > np.mean(norm_aucs) - 0.05
    # And it should beat at least half of the normalised variants outright.
    wins = sum(curve_auc(no_norm) > auc for auc in norm_aucs)
    assert wins >= len(norm_aucs) / 2
