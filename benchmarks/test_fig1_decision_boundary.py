"""Figure 1 bench: decision-boundary shift under memristance drift."""

from __future__ import annotations

import numpy as np

from repro.experiments import run_decision_boundary_experiment

from conftest import run_once


def test_fig1_decision_boundary(benchmark):
    result = run_once(benchmark, run_decision_boundary_experiment,
                      sigmas=(0.0, 0.5, 1.0, 1.5), n_samples=300, epochs=25,
                      grid_resolution=30, trials=3, seed=0)

    print("\n=== Figure 1: decision boundary shift (two moons) ===")
    print("sigma   accuracy   boundary-change-vs-clean")
    clean_boundary = result["boundaries"][0.0]
    for sigma in result["sigmas"]:
        change = float(np.abs(result["boundaries"][sigma] - clean_boundary).mean())
        accuracy = result["accuracies"][sigma]["mean"]
        print(f"{sigma:5.2f}   {accuracy:8.3f}   {change:10.4f}")

    # Shape claims from the paper: the clean model separates the classes,
    # accuracy degrades as sigma grows, and the boundary visibly deforms.
    assert result["clean_accuracy"] > 0.8
    accuracies = [result["accuracies"][s]["mean"] for s in result["sigmas"]]
    assert accuracies[-1] < accuracies[0]
    final_change = np.abs(result["boundaries"][1.5] - clean_boundary).mean()
    assert final_change > 0.01
