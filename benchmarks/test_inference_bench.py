"""Inference-layer bench: per-trial vs trial-batched evaluation.

Measures the acceptance target of the inference-layer PR on the workload it
was built for — Monte-Carlo drift evaluation of small validation slices,
where the per-trial loop pays full Python/numpy dispatch overhead (layer
calls, im2col, loader iteration) once per trial and the batched evaluator
pays it once per *stack* of trials, turning the T per-trial GEMMs into one
C-level stacked call.  The bench asserts the batched scores are bit-identical
to the per-trial loop, that a seeded engine sweep stays byte-identical under
``trial_batch``, and that the measured speedup clears ≥2× on LeNet/MNIST and
≥1.5× on PreAct-18/CIFAR.  It writes the machine-readable
``BENCH_inference.json`` at the repo root (CI uploads it as an artifact).

Wall-clock on shared CI containers is noisy, so each configuration is timed
over several repetitions and the asserted speedup is the *median* ratio.
"""

from __future__ import annotations

import json
import statistics
import time
from pathlib import Path

import numpy as np

from repro.data import SyntheticCIFAR, SyntheticMNIST, train_test_split
from repro.evaluation import DriftSweepEngine
from repro.fault.drift import LogNormalDrift
from repro.fault.injector import FaultInjector
from repro.inference import (ClassificationAccuracy, PerTrialEvaluator,
                             TrialBatchedEvaluator)
from repro.models import build_model
from repro.training import train_classifier

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_inference.json"

#: Evaluation-slice size.  Trial batching amortises per-forward dispatch
#: overhead, so its regime is many trials over a small validation slice —
#: exactly the program-and-verify / BO-inner-loop shape, not full-test-set
#: sweeps (where numpy kernel time dominates and batching is a wash).
EVAL_SAMPLES = 4
REPS = 9


def _trained(name: str, dataset, rng_seed: int):
    rng = np.random.default_rng(rng_seed)
    train_set, test_set = train_test_split(dataset, test_fraction=0.3, rng=rng)
    in_channels = dataset.inputs.shape[1]
    image_size = dataset.inputs.shape[-1]
    model = build_model(name, num_classes=10, in_channels=in_channels,
                        image_size=image_size, rng=rng)
    train_classifier(model, train_set, epochs=1, batch_size=32,
                     learning_rate=0.05, rng=rng)
    return model, test_set.subset(np.arange(EVAL_SAMPLES))


def _bench_case(name: str, model, data, trials: int) -> dict:
    injector = FaultInjector(model, LogNormalDrift(0.8),
                             rng=np.random.default_rng(2021))
    injector.snapshot()
    drawn = injector.draw_trials(trials)
    pending = {f"trial-{index}": {key: arrays[index]
                                  for key, arrays in drawn.items()}
               for index in range(trials)}
    metric = ClassificationAccuracy()
    per_trial = PerTrialEvaluator()
    batched = TrialBatchedEvaluator(trials)

    ratios, per_seconds, batched_seconds = [], [], []
    try:
        for _ in range(REPS):
            start = time.perf_counter()
            reference = per_trial.run(model, data, metric, dict(pending),
                                      injector.apply_trial)
            mid = time.perf_counter()
            stacked = batched.run(model, data, metric, dict(pending),
                                  injector.apply_trial)
            end = time.perf_counter()
            assert ([(r.digest, r.score) for r in reference]
                    == [(r.digest, r.score) for r in stacked]), (
                f"{name}: batched scores diverged from the per-trial loop")
            per_seconds.append(mid - start)
            batched_seconds.append(end - mid)
            ratios.append((mid - start) / max(end - mid, 1e-9))
    finally:
        injector.restore()

    return {
        "model": name,
        "trials": trials,
        "eval_samples": len(data),
        "reps": REPS,
        "per_trial_seconds_median": round(statistics.median(per_seconds), 4),
        "batched_seconds_median": round(statistics.median(batched_seconds), 4),
        "speedup_median": round(statistics.median(ratios), 3),
        "speedup_min": round(min(ratios), 3),
        "speedup_max": round(max(ratios), 3),
    }


def test_trial_batching_speedup():
    lenet_model, lenet_data = _trained(
        "lenet", SyntheticMNIST(n_samples=80, image_size=16, rng=0), 0)
    # 8x8 CIFAR keeps the PreAct forward overhead-dominated (54 layer calls
    # per forward, tiny GEMMs) — the regime trial batching is built for.
    preact_model, preact_data = _trained(
        "preact18", SyntheticCIFAR(n_samples=60, image_size=8, rng=1), 1)

    lenet = _bench_case("lenet", lenet_model, lenet_data, trials=32)
    preact = _bench_case("preact18", preact_model, preact_data, trials=16)

    # Determinism at the engine level: a seeded sweep is byte-identical with
    # the batched evaluator switched on (full stack size).
    serial = DriftSweepEngine(lenet_model, lenet_data, trials=6, rng=7,
                              ).run((0.0, 0.8), label="bench")
    stacked = DriftSweepEngine(lenet_model, lenet_data, trials=6, rng=7,
                               trial_batch=6).run((0.0, 0.8), label="bench")
    assert stacked.to_json(canonical=True) == serial.to_json(canonical=True)
    assert stacked.batched_evaluations > 0

    summary = {
        "eval_samples": EVAL_SAMPLES,
        "sigma": 0.8,
        "cases": {"lenet": lenet, "preact18": preact},
        "engine_canonical_identical": True,
    }
    BENCH_PATH.write_text(json.dumps(summary, indent=2, sort_keys=True) + "\n")

    print("\n=== inference trial-batching bench (BENCH_inference.json) ===")
    for case in (lenet, preact):
        print(f"{case['model']:>9}: {case['trials']} trials x "
              f"{case['eval_samples']} samples — per-trial "
              f"{case['per_trial_seconds_median']:.3f}s, batched "
              f"{case['batched_seconds_median']:.3f}s, speedup "
              f"{case['speedup_median']:.2f}x (min {case['speedup_min']:.2f}, "
              f"max {case['speedup_max']:.2f})")

    assert lenet["speedup_median"] >= 2.0, (
        f"LeNet trial batching delivered {lenet['speedup_median']:.2f}x, "
        "expected >= 2.0x")
    assert preact["speedup_median"] >= 1.5, (
        f"PreAct-18 trial batching delivered {preact['speedup_median']:.2f}x, "
        "expected >= 1.5x")
