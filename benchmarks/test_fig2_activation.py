"""Figure 2(d) bench: activation choice does not significantly change robustness."""

from __future__ import annotations

import numpy as np

from repro.evaluation import curve_auc
from repro.experiments import run_activation_ablation

from conftest import print_curves, run_once


def test_fig2d_activation_ablation(benchmark, bench_config):
    curves = run_once(benchmark, run_activation_ablation, bench_config, seed=0)
    print_curves("Figure 2(d): activation-function ablation", curves)

    aucs = np.array([curve_auc(curve) for curve in curves])
    print("AUCs:", dict(zip([c.label for c in curves], np.round(aucs, 3))))

    # Paper claim: no statistically significant differences between ReLU,
    # Leaky ReLU, ELU and GELU — the spread of AUCs stays small compared to
    # the dropout/normalisation/depth effects (which move AUC by >0.1).
    assert aucs.max() - aucs.min() < 0.30
    assert aucs.min() > 0.05
