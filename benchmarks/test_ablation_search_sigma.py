"""Design-choice ablation bench: sensitivity to the search-time drift level σ."""

from __future__ import annotations

import numpy as np

from repro.experiments import run_sigma_sensitivity_ablation

from conftest import print_curves, run_once


def test_ablation_search_sigma(benchmark, bench_config):
    result = run_once(benchmark, run_sigma_sensitivity_ablation, bench_config,
                      search_sigmas=(0.2, 0.6, 1.0), seed=0)
    print_curves("Ablation: search-sigma sensitivity", result["curves"])
    print("AUC per search sigma:", dict(zip(result["search_sigmas"],
                                            np.round(result["aucs"], 3))))
    print("Best search sigma:", result["best_search_sigma"])

    assert len(result["curves"]) == 3
    assert all(auc > 0.1 for auc in result["aucs"])
    assert result["best_search_sigma"] in result["search_sigmas"]
