"""Result-store scale bench: 100k synthetic cells, flat vs. indexed.

Fabricates a ``REPRO_STORE_BENCH_CELLS`` (default 100 000) cell store in
the legacy flat layout, then measures the operations ROADMAP #4 named as
the bottleneck:

* **contains-heavy resume** — the flat baseline stats three files per
  cell (the pre-index ``ResultStore.contains`` loop); the sharded+indexed
  store answers the same membership question with one SQL batch probe
  (``missing_hashes``).  The bench asserts the indexed path is ≥20×
  faster.
* **stats()** — asserted to complete without a single per-entry tree walk
  (sizes and stamps come from the index).
* **migrate** — flat → sharded by rename; a sample of canonical
  ``report.json`` bytes is asserted identical before and after, and query
  results are asserted identical with the index deleted and rebuilt.

Writes the machine-readable ``BENCH_store.json`` at the repo root (CI
uploads it as an artifact; gitignored locally).
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from pathlib import Path

from repro.scenarios import ResultStore
from repro.scenarios.index import INDEX_FILE

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_store.json"

N_CELLS = int(os.environ.get("REPRO_STORE_BENCH_CELLS", "100000"))
MIN_SPEEDUP = 20.0

_ENTRY_FILES = ("spec.json", "report.json", "meta.json")


def _fabricate_flat_store(root: Path, n: int) -> list[str]:
    """``n`` synthetic cells in the legacy flat layout, fast.

    The entries are shaped like real ones (spec/report/meta JSON with the
    fields the index rows summarize) but fabricated directly — running
    100k genuine sweeps is not the thing under test.  Returns the entry
    hashes in creation order.
    """
    root.mkdir(parents=True)
    models = ("mlp", "lenet", "preact18", "vgg11")
    faults = ("lognormal", "gaussian", "bitflip", "stuckat")
    hashes = []
    for i in range(n):
        spec_hash = hashlib.sha256(f"bench-cell-{i}".encode()).hexdigest()
        hashes.append(spec_hash)
        worst = (i % 97) / 100.0
        spec = {"name": f"bench-{i:06d}", "model": models[i % len(models)],
                "dataset": "mnist", "fault": {"kind": faults[i % len(faults)]},
                "sigmas": [0.0, 0.8], "trials": 3, "seed": i,
                "metric": "accuracy"}
        report = {"sigmas": [0.0, 0.8], "means": [0.9, worst],
                  "stds": [0.0, 0.01], "trials": 3}
        meta = {"scenario": f"bench-{i % 8}",
                "created_at": f"2026-01-01T{i % 24:02d}:00:00+0000"}
        entry = root / spec_hash
        entry.mkdir()
        for name, payload in (("spec.json", spec), ("report.json", report),
                              ("meta.json", meta)):
            (entry / name).write_text(json.dumps(payload))
    return hashes


def _flat_contains_resume(root: Path, hashes: list[str]) -> int:
    """The pre-index resume probe: three ``is_file`` stats per cell."""
    present = 0
    for spec_hash in hashes:
        entry = root / spec_hash
        if all((entry / name).is_file() for name in _ENTRY_FILES):
            present += 1
    return present


def test_store_scales_to_100k_cells(tmp_path, monkeypatch):
    root = tmp_path / "store"

    start = time.perf_counter()
    hashes = _fabricate_flat_store(root, N_CELLS)
    fill_seconds = time.perf_counter() - start

    # Canonical-byte witnesses: a spread of entries sampled before any
    # migration or indexing touches the store.
    sample = hashes[:: max(1, N_CELLS // 64)]
    bytes_before = {spec_hash: (root / spec_hash / "report.json").read_bytes()
                    for spec_hash in sample}

    # --- flat baseline: the old per-cell stat loop ---------------------- #
    start = time.perf_counter()
    present = _flat_contains_resume(root, hashes)
    flat_resume_seconds = time.perf_counter() - start
    assert present == N_CELLS

    # --- migrate to the sharded layout + build the index ---------------- #
    store = ResultStore(root)
    start = time.perf_counter()
    migration = store.migrate()
    migrate_seconds = time.perf_counter() - start
    assert migration["moved"] == N_CELLS
    assert migration["entries"] == N_CELLS and migration["skipped"] == 0

    # --- indexed resume: one batched membership probe ------------------- #
    # Best of three: the probe is ~100ms, so a single sample would be
    # dominated by page-cache and allocator noise.
    indexed_resume_seconds = float("inf")
    for _ in range(3):
        start = time.perf_counter()
        missing = store.missing_hashes(hashes)
        indexed_resume_seconds = min(indexed_resume_seconds,
                                     time.perf_counter() - start)
        assert missing == []
    speedup = flat_resume_seconds / max(indexed_resume_seconds, 1e-9)
    assert speedup >= MIN_SPEEDUP, (
        f"indexed resume is only {speedup:.1f}x faster than the flat stat "
        f"loop over {N_CELLS} cells (flat {flat_resume_seconds:.3f}s, "
        f"indexed {indexed_resume_seconds:.3f}s); the bench requires "
        f">={MIN_SPEEDUP:g}x")

    # --- stats() without per-entry tree walks --------------------------- #
    walked = []
    monkeypatch.setattr(
        ResultStore, "_tree_bytes",
        staticmethod(lambda path: walked.append(path) or 0))
    start = time.perf_counter()
    stats = store.stats()
    stats_seconds = time.perf_counter() - start
    monkeypatch.undo()
    assert walked == [], "stats() walked an entry tree"
    assert stats["entries"] == N_CELLS and stats["total_bytes"] > 0

    # --- rich queries straight off the index ---------------------------- #
    start = time.perf_counter()
    fragile = store.query(model="preact18", fault="bitflip", worst="<0.5")
    query_seconds = time.perf_counter() - start
    assert 0 < len(fragile) < N_CELLS
    assert all(row["model"] == "preact18" and row["worst"] < 0.5
               for row in fragile)

    # --- determinism: bytes and query results survive everything -------- #
    for spec_hash, before in bytes_before.items():
        entry = store.entry_dir(spec_hash)
        assert entry.parent.name == spec_hash[:2]
        assert (entry / "report.json").read_bytes() == before
    store._index.close()
    (root / INDEX_FILE).unlink()
    start = time.perf_counter()
    rebuilt = ResultStore(root).query(model="preact18", fault="bitflip",
                                      worst="<0.5")
    reindex_seconds = time.perf_counter() - start
    assert rebuilt == fragile

    summary = {
        "cells": N_CELLS,
        "perf": {
            "fill_seconds": round(fill_seconds, 3),
            "flat_resume_seconds": round(flat_resume_seconds, 4),
            "indexed_resume_seconds": round(indexed_resume_seconds, 4),
            "resume_speedup": round(speedup, 1),
            "min_resume_speedup": MIN_SPEEDUP,
            "migrate_seconds": round(migrate_seconds, 3),
            "stats_seconds": round(stats_seconds, 4),
            "stats_tree_walks": len(walked),
            "query_seconds": round(query_seconds, 4),
            "reindex_and_query_seconds": round(reindex_seconds, 3),
        },
        "query": {"filters": {"model": "preact18", "fault": "bitflip",
                              "worst": "<0.5"},
                  "matches": len(fragile)},
        "migration": migration,
        "byte_identity_sample": len(bytes_before),
    }
    BENCH_PATH.write_text(json.dumps(summary, indent=2, sort_keys=True) + "\n")
    print(f"\n=== result-store scale bench (BENCH_store.json) ===")
    print(f"fill:    {N_CELLS} flat cells in {fill_seconds:.1f}s")
    print(f"resume:  flat stat loop {flat_resume_seconds:.3f}s vs indexed "
          f"batch probe {indexed_resume_seconds:.4f}s -> {speedup:.0f}x")
    print(f"migrate: flat -> sharded in {migrate_seconds:.1f}s "
          f"({migration['moved']} renames + reindex)")
    print(f"stats:   {stats_seconds:.4f}s, 0 tree walks; query "
          f"{len(fragile)} fragile cells in {query_seconds:.4f}s")
