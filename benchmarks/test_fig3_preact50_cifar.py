"""Figure 3(g) bench: PreAct-ResNet-50 on CIFAR-like data (ERM vs BayesFT).

The deep bottleneck models are the most expensive panels; the paper's point
here is the depth trend (18 vs 50 vs 152), which test_fig3_depth_trend.py
checks explicitly, so this panel compares the two central methods only.
"""

from __future__ import annotations

import dataclasses

from fig3_common import assert_all_methods_learn, assert_bayesft_competitive, run_panel


def test_fig3g_preact50_cifar(benchmark, heavy_bench_config):
    config = dataclasses.replace(heavy_bench_config,
                                 extra={"model_kwargs": {"width": 4}})
    result = run_panel(benchmark, "g_preact50_cifar", config, seed=0,
                       methods=("erm", "bayesft"))
    assert_all_methods_learn(result, minimum_clean=0.1)
    assert_bayesft_competitive(result, margin=0.08)
