"""Figure 3(a) bench: MLP on MNIST-like data, all five methods."""

from __future__ import annotations

from fig3_common import assert_all_methods_learn, assert_bayesft_competitive, run_panel


def test_fig3a_mlp_mnist(benchmark, bench_config):
    result = run_panel(benchmark, "a_mlp_mnist", bench_config, seed=0)
    assert_all_methods_learn(result, minimum_clean=0.3)
    assert_bayesft_competitive(result)
