"""Warm-runtime bench: N sequential sweeps with leased pools vs cold pools.

The regime the runtime was built for is the BO inner loop: many small
sweeps back to back, each of which used to fork a worker pool, ship the
model and dataset through the pool initializer and tear everything down
at ``backend.close()``.  With the warm runtime the fork/ship/teardown
happens once and every later sweep re-leases the pool and re-uses the
digest-keyed context segment, so per-sweep cost collapses to task
submission plus a digest compare.

That is *overhead elimination*, not parallelism — the >= 2x floor holds
on a single-core container (both arms run the same evaluations on the
same cores; only the per-sweep fork+ship+join tax differs), so unlike
the fan-out benches it is asserted unconditionally.  Timings are
best-of-``REPS`` per arm to shrug off scheduler noise on shared CI
boxes.  A small warm-pool async BO run is timed alongside for the
record (fan-out speedups still need real cores, so it is never
asserted).  Writes the machine-readable ``BENCH_runtime.json`` at the
repo root (CI uploads it as an artifact).
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from repro.core import (
    BayesFTSearch, DriftMarginalizedObjective, DropoutSearchSpace,
)
from repro.data import SyntheticMNIST, train_test_split
from repro.evaluation import DriftSweepEngine
from repro.execution.runtime import ExecutionRuntime, using_runtime
from repro.models import build_mlp
from repro.training import train_classifier

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_runtime.json"

SWEEPS = 8   # sequential sweeps per timed arm — the BO-inner-loop shape
REPS = 3     # best-of repetitions per arm
TRIALS = 4   # distinct sigma>0 trials -> 4 tasks, enough to engage the pool
SIGMAS = (0.6,)
WORKERS = 2


def _trained():
    dataset = SyntheticMNIST(n_samples=96, image_size=16, rng=13)
    train_set, test_set = train_test_split(dataset, test_fraction=0.33, rng=13)
    model = build_mlp(256, depth=2, width=16, num_classes=10, rng=13)
    train_classifier(model, train_set, epochs=1, learning_rate=0.1, rng=13)
    return model, test_set


def _run_sweeps(model, test_set) -> str:
    canonical = None
    for _ in range(SWEEPS):
        report = DriftSweepEngine(model, test_set, trials=TRIALS, rng=99,
                                  backend="shared_memory", workers=WORKERS,
                                  ).run(SIGMAS, label="bench")
        canonical = report.to_json(canonical=True)
    return canonical


def _time_arm(model, test_set) -> tuple[float, str]:
    best, canonical = float("inf"), None
    for _ in range(REPS):
        start = time.perf_counter()
        canonical = _run_sweeps(model, test_set)
        best = min(best, time.perf_counter() - start)
    return best, canonical


def _timed_bo_search(train_set, test_set, **kwargs) -> tuple[float, str]:
    model = build_mlp(256, depth=2, width=16, num_classes=10, rng=5)
    space = DropoutSearchSpace(model)
    objective = DriftMarginalizedObjective(test_set, sigma=0.7,
                                           monte_carlo_samples=2,
                                           metric="accuracy", rng=7)
    search = BayesFTSearch(space, objective, train_set, epochs_per_trial=1,
                           learning_rate=0.1, rng=9, **kwargs)
    start = time.perf_counter()
    result = search.run(n_trials=6)
    return time.perf_counter() - start, result.to_json()


def test_warm_runtime_beats_cold_pools_on_sequential_sweeps():
    model, test_set = _trained()

    cold_runtime = ExecutionRuntime(enabled=False)
    with using_runtime(cold_runtime):
        cold_seconds, cold_json = _time_arm(model, test_set)

    warm_runtime = ExecutionRuntime()
    try:
        with using_runtime(warm_runtime):
            _run_sweeps(model, test_set)  # untimed: pays the one cold start
            warm_seconds, warm_json = _time_arm(model, test_set)
            counters = dict(warm_runtime.stats()["counters"])
    finally:
        warm_runtime.shutdown()

    # The runtime moves where pools live, never what is evaluated.
    assert warm_json == cold_json

    speedup = cold_seconds / max(warm_seconds, 1e-9)
    summary = {
        "backend": "shared_memory",
        "workers": WORKERS,
        "sweeps_per_arm": SWEEPS,
        "trials_per_sweep": TRIALS,
        "reps": REPS,
        "usable_cores": os.cpu_count(),
        "cold_seconds_best": round(cold_seconds, 4),
        "warm_seconds_best": round(warm_seconds, 4),
        "warm_vs_cold_speedup": round(speedup, 3),
        "warm_counters": counters,
        "canonical_identical": True,
    }

    # Warm-pool async BO, for the record only: fan-out needs real cores,
    # but the pool-reuse tax it no longer pays shows up even on one.
    bo_runtime = ExecutionRuntime()
    try:
        with using_runtime(bo_runtime):
            train_set = SyntheticMNIST(n_samples=128, image_size=16, rng=3)
            bo_split = train_test_split(train_set, test_fraction=0.25, rng=3)
            serial_seconds, serial_json = _timed_bo_search(
                *bo_split, search_workers=0, suggest_batch=2)
            async_seconds, async_json = _timed_bo_search(
                *bo_split, search_workers=WORKERS, suggest_batch=2)
            assert async_json == serial_json
    finally:
        bo_runtime.shutdown()
    summary["bo_async_warm"] = {
        "n_trials": 6, "suggest_batch": 2, "search_workers": WORKERS,
        "serial_seconds": round(serial_seconds, 4),
        "async_seconds": round(async_seconds, 4),
        "speedup": round(serial_seconds / max(async_seconds, 1e-9), 3),
    }

    BENCH_PATH.write_text(json.dumps(summary, indent=2, sort_keys=True) + "\n")

    print("\n=== warm runtime bench (BENCH_runtime.json) ===")
    print(f"{SWEEPS} sequential sweeps x best-of-{REPS}: cold "
          f"{cold_seconds:.3f}s, warm {warm_seconds:.3f}s -> "
          f"{speedup:.2f}x on {os.cpu_count()} cores")
    print(f"warm counters: {counters}")
    print(f"warm async BO ({WORKERS} workers, q=2): serial "
          f"{serial_seconds:.2f}s, async {async_seconds:.2f}s")

    assert speedup >= 2.0, (
        f"warm runtime delivered only {speedup:.2f}x over cold pools "
        f"(cold {cold_seconds:.3f}s vs warm {warm_seconds:.3f}s)")
