"""Figure 3(j) bench: object-detection mAP vs σ, ERM against BayesFT."""

from __future__ import annotations

import numpy as np

from repro.experiments import run_detection_comparison
from repro.utils.config import ExperimentConfig

from conftest import print_map_curves, run_once


def test_fig3j_detection_map(benchmark):
    config = ExperimentConfig(epochs=4, bo_trials=4, monte_carlo_samples=2,
                              drift_trials=3, extra={"detector_epochs": 10})
    result = run_once(benchmark, run_detection_comparison, config, seed=0,
                      sigmas=(0.0, 0.2, 0.4, 0.6, 0.8), n_images=48, image_size=32)
    print_map_curves("Figure 3(j): pedestrian detection mAP vs sigma", result["curves"])
    print("BayesFT per-layer dropout rates:", np.round(result["best_alpha"], 3))

    erm, bayesft = result["curves"]
    assert erm["label"] == "ERM" and bayesft["label"] == "BayesFT"
    # All mAP values are valid and ERM does not improve under drift.
    for curve in (erm, bayesft):
        assert all(0.0 <= value <= 1.0 for value in curve["means"])
    assert erm["means"][-1] <= erm["means"][0] + 0.05
    # Paper claim (asserted only when the CPU-budget detector learned enough
    # for mAP to be meaningful): BayesFT retains more mAP than ERM under drift.
    if erm["means"][0] > 0.2 and bayesft["means"][0] > 0.2:
        erm_drifted = np.mean(erm["means"][1:])
        bayesft_drifted = np.mean(bayesft["means"][1:])
        assert bayesft_drifted >= erm_drifted - 0.05
