"""Figure 2(a) bench: dropout vs alpha-dropout vs no dropout."""

from __future__ import annotations

from dataclasses import replace

from repro.evaluation import curve_auc
from repro.experiments import run_dropout_ablation

from conftest import curve_by_label, print_curves, run_once


def test_fig2a_dropout_ablation(benchmark, bench_config):
    # The AUC comparison below is between two closely-matched curves, so it
    # needs a tighter Monte-Carlo estimate than the shared 3-trial scale:
    # at 3 trials the ±0.02 tolerance is within sampling noise of the draw.
    config = replace(bench_config, drift_trials=10)
    curves = run_once(benchmark, run_dropout_ablation, config, seed=0)
    print_curves("Figure 2(a): dropout ablation (MLP / MNIST-like)", curves)

    original = curve_by_label(curves, "Original Model")
    dropout = curve_by_label(curves, "DropOut")
    alpha = curve_by_label(curves, "Alpha DropOut")

    # Paper claim: dropout improves *fault tolerance*.  At benchmark scale
    # the short training budget costs the dropout variant some clean
    # accuracy, so the separation the paper plots shows up where it matters:
    # under strong drift, dropout is more accurate in absolute terms and
    # retains a larger fraction of its clean accuracy.
    assert dropout.accuracy_at(1.2) >= original.accuracy_at(1.2) + 0.02
    for sigma in (0.9, 1.2):
        dropout_retention = dropout.accuracy_at(sigma) / dropout.accuracy_at(0.0)
        original_retention = original.accuracy_at(sigma) / original.accuracy_at(0.0)
        assert dropout_retention >= original_retention
    # The overall AUC must stay in the same band despite the clean-accuracy
    # handicap (the paper's large-scale runs show a clear AUC win).
    assert curve_auc(dropout) >= curve_auc(original) - 0.05
    # Alpha dropout is reported for completeness; on this ReLU substrate it
    # trains less reliably than plain dropout (see EXPERIMENTS.md), so the
    # only assertion is that its curve is a valid accuracy series.
    assert all(0.0 <= value <= 1.0 for value in alpha.means)
