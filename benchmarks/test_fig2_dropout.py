"""Figure 2(a) bench: dropout vs alpha-dropout vs no dropout."""

from __future__ import annotations

from repro.evaluation import curve_auc
from repro.experiments import run_dropout_ablation

from conftest import curve_by_label, print_curves, run_once


def test_fig2a_dropout_ablation(benchmark, bench_config):
    curves = run_once(benchmark, run_dropout_ablation, bench_config, seed=0)
    print_curves("Figure 2(a): dropout ablation (MLP / MNIST-like)", curves)

    original = curve_by_label(curves, "Original Model")
    dropout = curve_by_label(curves, "DropOut")
    alpha = curve_by_label(curves, "Alpha DropOut")

    # Paper claim: dropout improves drift robustness.  At benchmark scale the
    # effect concentrates in the mid-σ region, so the check is on the overall
    # AUC (with a small tolerance) plus the σ=0.6 point where the paper's
    # curves separate first.
    assert curve_auc(dropout) >= curve_auc(original) - 0.02
    assert dropout.accuracy_at(0.6) >= original.accuracy_at(0.6) - 0.05
    # Alpha dropout is reported for completeness; on this ReLU substrate it
    # trains less reliably than plain dropout (see EXPERIMENTS.md), so the
    # only assertion is that its curve is a valid accuracy series.
    assert all(0.0 <= value <= 1.0 for value in alpha.means)
