"""Figure 4 bench: qualitative detections at drift 0.1 / 0.2 / 0.4."""

from __future__ import annotations

import numpy as np

from repro.experiments import run_detection_visualization
from repro.utils.config import ExperimentConfig

from conftest import run_once


def test_fig4_detection_visualization(benchmark):
    config = ExperimentConfig(drift_trials=2, extra={"detector_epochs": 10})
    result = run_once(benchmark, run_detection_visualization,
                      drift_levels=(0.1, 0.2, 0.4), config=config,
                      n_visualized=3, seed=0)

    print("\n=== Figure 4: detection quality vs drift ===")
    print("method    sigma   recall   AP")
    for method, per_level in result["methods"].items():
        for sigma, record in sorted(per_level.items()):
            print(f"{method:8s} {sigma:5.2f}   {record['recall']:6.3f}   {record['ap']:6.3f}")

    erm = result["methods"]["ERM"]
    bayesft = result["methods"]["BayesFT"]
    # Both detectors produce boxes at every drift level.
    for per_level in (erm, bayesft):
        for record in per_level.values():
            assert any(len(boxes) >= 0 for boxes in record["boxes"])
    # The paper's qualitative claim: at the largest drift shown (0.4) the
    # dropout-hardened detector keeps at least as much AP as ERM (tolerance
    # for the small scale of this benchmark).
    assert bayesft[0.4]["ap"] >= erm[0.4]["ap"] - 0.15
