"""Execution-backend bench: serial vs pickled pool vs shared memory.

Measures exactly the acceptance target of the execution-layer PR on the
workload it was built for — a PreAct-ResNet drift sweep, where every trial
is ~1.4 MB of drifted float64 weights.  The pickled pool serializes that
payload into every task; the shared-memory backend publishes each chunk's
weights once and ships a few-kilobyte ``(digest, segment, offset-table)``
message instead.  The bench asserts the canonical reports are bit-identical
across all three backends, that shared memory ships ≥10× fewer bytes per
task than the pickled pool, and writes the machine-readable
``BENCH_execution.json`` at the repo root (CI uploads it as an artifact).
Wall-clock is asserted only where the hardware has cores to spend; on 1-2
vCPU containers the numbers are reported for the record.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import numpy as np

from repro.data import SyntheticCIFAR, train_test_split
from repro.evaluation import DriftSweepEngine
from repro.models import build_model
from repro.training import train_classifier

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_execution.json"

SIGMAS = (0.0, 0.3, 0.6)
TRIALS = 4
WORKERS = 2


def _trained_preact():
    rng = np.random.default_rng(0)
    dataset = SyntheticCIFAR(n_samples=140, image_size=16, num_classes=10, rng=rng)
    train_set, test_set = train_test_split(dataset, test_fraction=0.43, rng=rng)
    model = build_model("preact18", num_classes=10, in_channels=3,
                        image_size=16, rng=rng)
    train_classifier(model, train_set, epochs=3, batch_size=32,
                     learning_rate=0.05, rng=rng)
    return model, test_set


def _sweep(model, test_set, backend):
    workers = 0 if backend == "serial" else WORKERS
    start = time.perf_counter()
    report = DriftSweepEngine(model, test_set, trials=TRIALS, rng=2021,
                              workers=workers, backend=backend,
                              ).run(SIGMAS, label="preact18")
    return report, time.perf_counter() - start


def test_shared_memory_ships_10x_fewer_bytes_on_preact_sweep():
    model, test_set = _trained_preact()
    trial_bytes = sum(p.data.nbytes for _, p in model.named_parameters())

    rows = {}
    for backend in ("serial", "process", "shared_memory"):
        report, seconds = _sweep(model, test_set, backend)
        per_task = (report.bytes_shipped / report.tasks_shipped
                    if report.tasks_shipped else 0.0)
        rows[backend] = {
            "backend_used": report.backend,
            "workers": report.workers,
            "seconds": round(seconds, 4),
            "n_evaluations": report.n_evaluations,
            "cache_hits": report.cache_hits,
            "tasks_shipped": report.tasks_shipped,
            "bytes_shipped": report.bytes_shipped,
            "bytes_per_task": round(per_task, 1),
            "canonical": report.to_json(canonical=True),
        }

    # Determinism: all three backends agree byte for byte.
    canonical = rows["serial"].pop("canonical")
    for backend in ("process", "shared_memory"):
        assert rows[backend].pop("canonical") == canonical, backend

    # Shipping: the pickled pool carries the full drifted weights per task,
    # shared memory only the offset table.  ≥10× is the acceptance floor;
    # on PreAct-18 the measured ratio is in the hundreds.
    pickled = rows["process"]
    shared = rows["shared_memory"]
    assert pickled["tasks_shipped"] == shared["tasks_shipped"] > 0
    assert pickled["bytes_per_task"] > 0.5 * trial_bytes  # really ships weights
    ratio = pickled["bytes_per_task"] / max(shared["bytes_per_task"], 1.0)
    assert ratio >= 10.0, (
        f"shared memory ships {shared['bytes_per_task']:.0f} B/task vs "
        f"{pickled['bytes_per_task']:.0f} B/task pickled — only {ratio:.1f}x")

    summary = {
        "model": "preact18",
        "trial_weight_bytes": trial_bytes,
        "sigmas": list(SIGMAS),
        "trials": TRIALS,
        "workers": WORKERS,
        "backends": rows,
        "bytes_per_task_reduction": round(ratio, 1),
    }
    BENCH_PATH.write_text(json.dumps(summary, indent=2, sort_keys=True) + "\n")

    print("\n=== execution backend bench (BENCH_execution.json) ===")
    print(f"preact18 sweep: {len(SIGMAS)} sigmas x {TRIALS} trials, "
          f"{trial_bytes / 1e6:.1f} MB of weights per trial")
    for backend, row in rows.items():
        print(f"{backend:>14}: {row['seconds']:6.2f}s, "
              f"{row['n_evaluations']} evaluations, "
              f"{row['tasks_shipped']} tasks, "
              f"{row['bytes_per_task']:.0f} B/task")
    print(f"bytes-per-task reduction (shared_memory vs pickled pool): "
          f"{ratio:.0f}x on {os.cpu_count()} cores")

    # The wall-clock claim needs real cores; CI containers often have 1-2.
    try:
        usable_cores = len(os.sched_getaffinity(0))
    except AttributeError:
        usable_cores = os.cpu_count() or 1
    if usable_cores > WORKERS and shared["backend_used"] == "shared_memory":
        assert shared["seconds"] < rows["serial"]["seconds"] * 1.5, (
            "shared-memory fan-out should not be slower than 1.5x serial "
            "when cores are available")
