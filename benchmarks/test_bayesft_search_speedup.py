"""Benchmark: the BayesFT inner objective routed through DriftSweepEngine.

The hottest path of the whole system is the Monte-Carlo estimate of the
drift-marginalised utility u(α, θ) (Eq. 3–4), evaluated once per
Bayesian-optimisation trial.  The baseline below reproduces the pre-engine
objective verbatim — one `fault_injection` context (snapshot + inject +
restore) and one forward pass per Monte-Carlo draw, plus a separate clean
evaluation.  Against it we time the engine-routed objective
(`evaluate_with_clean`: pre-drawn vectorized trials, one snapshot, inference
cache) and assert it at worst matches the seed-style loop on any machine —
the two run the same number of model evaluations, so the engine's digest
bookkeeping must stay in the noise.

We then run the full BayesFT search serial vs 2 sweep workers vs chunked
pre-drawing and assert the acceptance contract: seeded results are
bit-identical however the inner sweep is scheduled.  Timings and the
inner-objective evaluations saved by the inference cache are printed on
every run for EXPERIMENTS.md/ROADMAP.md bookkeeping.
"""

from __future__ import annotations

import os
import time

import numpy as np

from repro.core import BayesFT, DriftMarginalizedObjective
from repro.data import SyntheticMNIST, train_test_split
from repro.fault.drift import LogNormalDrift
from repro.fault.injector import fault_injection
from repro.models import build_mlp
from repro.nn.tensor import Tensor, no_grad
from repro.training import train_classifier
from repro.utils.rng import get_rng

OBJECTIVE_SIGMA = 0.8
MC_SAMPLES = 4
REPEATS = 12


def _data_and_model(config):
    dataset = SyntheticMNIST(n_samples=config.train_samples + config.test_samples,
                             image_size=16, rng=0)
    fraction = config.test_samples / (config.train_samples + config.test_samples)
    train_set, _ = train_test_split(dataset, test_fraction=fraction, rng=0)
    # Validation at the objective's real evaluation size (max_batch=512), so
    # the timing reflects production Monte-Carlo calls rather than being
    # dominated by per-call bookkeeping on a toy batch.
    validation_set = SyntheticMNIST(n_samples=512, image_size=16, rng=1)
    model = build_mlp(256, depth=3, width=64, num_classes=10, rng=0)
    train_classifier(model, train_set, epochs=config.epochs,
                     batch_size=config.batch_size,
                     learning_rate=config.learning_rate, rng=0)
    return train_set, validation_set, model


def _seed_style_objective(model, validation_set, rng) -> tuple[float, float]:
    """The pre-engine inner objective: a private per-draw Monte-Carlo loop."""
    model.eval()
    inputs, labels = validation_set.inputs, validation_set.labels

    def score_once():
        with no_grad():
            logits = model(Tensor(inputs))
        return float((logits.data.argmax(axis=1) == labels).mean())

    scores = []
    for _ in range(MC_SAMPLES):
        with fault_injection(model, LogNormalDrift(OBJECTIVE_SIGMA), rng=rng):
            scores.append(score_once())
    return float(np.mean(scores)), score_once()


def test_engine_objective_matches_seed_loop_and_search_is_deterministic(bench_config):
    train_set, validation_set, model = _data_and_model(bench_config)

    # ---------------------------------------------------------------- #
    # 1. Inner-objective wall clock: seed-style loop vs engine routing.
    rng = get_rng(11)
    start = time.perf_counter()
    for _ in range(REPEATS):
        _seed_style_objective(model, validation_set, rng)
    seed_seconds = time.perf_counter() - start

    start = time.perf_counter()
    for _ in range(REPEATS):
        objective = DriftMarginalizedObjective(validation_set, sigma=OBJECTIVE_SIGMA,
                                               monte_carlo_samples=MC_SAMPLES,
                                               metric="accuracy", rng=11)
        objective.evaluate_with_clean(model)
    engine_seconds = time.perf_counter() - start

    # Persistent shared cache: unchanged weights are never re-evaluated.
    cached_objective = DriftMarginalizedObjective(validation_set, sigma=OBJECTIVE_SIGMA,
                                                  monte_carlo_samples=MC_SAMPLES,
                                                  metric="accuracy", rng=11)
    start = time.perf_counter()
    for _ in range(REPEATS):
        cached_objective.evaluate_with_clean(model)
    cached_seconds = time.perf_counter() - start

    per_call_trials = 2 * MC_SAMPLES  # naive (0, σ) sweep would run this many
    print(f"\ninner objective x{REPEATS} ({MC_SAMPLES} MC draws + clean): "
          f"seed-style loop {seed_seconds:.3f}s, engine {engine_seconds:.3f}s, "
          f"engine with persistent cache {cached_seconds:.3f}s "
          f"on {os.cpu_count()} cores")
    print(f"engine evaluations per call: {objective.evaluations_total // 1} of "
          f"{per_call_trials} trials; cache saved "
          f"{objective.cache_hits_total} evaluations per call, "
          f"{cached_objective.cache_hits_total} of "
          f"{REPEATS * per_call_trials} across the cached repeats")
    assert objective.cache_hits_total >= MC_SAMPLES - 1  # σ=0 draws collapse
    # The σ>0 draws are fresh randomness every call (that is the Monte-Carlo
    # estimator), but the clean row is evaluated exactly once across all
    # repeats thanks to the persistent cache.
    assert cached_objective.evaluations_total == REPEATS * MC_SAMPLES + 1
    assert cached_objective.cache_hits_total == (
        REPEATS * 2 * MC_SAMPLES - cached_objective.evaluations_total)
    # Same number of model evaluations per call -> the engine's bookkeeping
    # must not cost more than the seed loop's per-draw snapshot/restore.
    assert engine_seconds <= seed_seconds * 1.5, (
        f"engine-routed objective {engine_seconds:.3f}s vs seed-style "
        f"{seed_seconds:.3f}s ({engine_seconds / seed_seconds:.2f}x)")
    assert cached_seconds <= engine_seconds * 1.15

    # ---------------------------------------------------------------- #
    # 2. Full search: bit-identical for any inner-sweep scheduling.
    def run_search(**kwargs):
        search_model = build_mlp(256, depth=3, width=48, num_classes=10, rng=3)
        searcher = BayesFT(sigma=OBJECTIVE_SIGMA, n_trials=bench_config.bo_trials,
                           epochs_per_trial=1, monte_carlo_samples=MC_SAMPLES,
                           learning_rate=bench_config.learning_rate, rng=3,
                           **kwargs)
        start = time.perf_counter()
        result = searcher.fit(search_model, train_set)
        return result, time.perf_counter() - start

    serial, serial_seconds = run_search()
    parallel, parallel_seconds = run_search(sweep_workers=2)
    chunked, chunked_seconds = run_search(max_chunk_trials=1)

    saved = serial.objective_stats["cache_hits"]
    total = serial.objective_stats["evaluations"] + saved
    print(f"BayesFT search ({bench_config.bo_trials} BO trials): serial "
          f"{serial_seconds:.2f}s, 2 sweep workers {parallel_seconds:.2f}s, "
          f"max_chunk_trials=1 {chunked_seconds:.2f}s")
    print(f"inner-objective evaluations saved by the cache: {saved} of "
          f"{total} scheduled trials "
          f"({serial.objective_stats['evaluations']} model evaluations run)")

    assert saved > 0
    for variant in (parallel, chunked):
        assert variant.trial_objectives == serial.trial_objectives
        assert variant.clean_objectives == serial.clean_objectives
        np.testing.assert_array_equal(variant.best_alpha, serial.best_alpha)
        assert variant.objective_stats == serial.objective_stats
