"""Figure 3(c) bench: AlexNet on CIFAR-like data, all five methods."""

from __future__ import annotations

from fig3_common import assert_all_methods_learn, assert_bayesft_competitive, run_panel


def test_fig3c_alexnet_cifar(benchmark, bench_config):
    result = run_panel(benchmark, "c_alexnet_cifar", bench_config, seed=0)
    assert_all_methods_learn(result, minimum_clean=0.2)
    assert_bayesft_competitive(result)
