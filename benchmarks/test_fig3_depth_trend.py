"""Figure 3(f)-(h) cross-panel claim: deeper PreAct ResNets degrade faster.

The paper observes "an increasingly steeper fall" from PreAct-18 to
PreAct-50 to PreAct-152 under ERM training.  This bench trains the three
depths with identical ERM settings and compares their degradation.
"""

from __future__ import annotations

import numpy as np

from repro.baselines import ERM
from repro.data import SyntheticCIFAR, train_test_split
from repro.evaluation import curve_auc, robustness_curve
from repro.models import PreActResNetS
from repro.utils.rng import get_rng

from conftest import print_curves, run_once


def _train_and_sweep(config, seed=0):
    rng = get_rng(seed)
    dataset = SyntheticCIFAR(n_samples=config.train_samples + config.test_samples,
                             image_size=16, rng=rng)
    fraction = config.test_samples / (config.train_samples + config.test_samples)
    train_set, test_set = train_test_split(dataset, test_fraction=fraction, rng=rng)
    curves = []
    for depth, depth_scale in ((18, 1.0), (50, 1.0), (152, 0.34)):
        model = PreActResNetS(depth=depth, num_classes=10, width=4,
                              depth_scale=depth_scale, rng=rng)
        ERM(config, rng=rng).apply(model, train_set)
        curves.append(robustness_curve(model, test_set, sigmas=config.sigma_grid,
                                       trials=config.drift_trials,
                                       label=f"PreAct-{depth}", rng=rng))
    return curves


def test_fig3fgh_depth_trend(benchmark, heavy_bench_config):
    curves = run_once(benchmark, _train_and_sweep, heavy_bench_config, seed=0)
    print_curves("Figure 3(f)-(h): ERM robustness vs PreAct depth", curves)
    aucs = [curve_auc(curve) for curve in curves]
    print("AUC by depth:", dict(zip(["18", "50", "152"], np.round(aucs, 3))))

    # The shallowest model must be at least as robust as the deepest one.
    assert aucs[0] >= aucs[2] - 0.03
    # And the trend is monotone up to a small tolerance.
    assert aucs[0] >= aucs[1] - 0.05
    assert aucs[1] >= aucs[2] - 0.05
