"""Benchmark: DriftSweepEngine vs the pre-engine serial sweep on LeNet/MNIST.

This measures exactly the acceptance target of the sweep-engine PR.  The
baseline below reproduces the seed repository's measurement loop verbatim —
one `fault_injection` context (snapshot + restore) and one full test-set
pass per (σ, trial) with no reuse.  Against it we time the engine with four
worker processes, assert the ≥2× speedup whenever the hardware actually has
the cores to spend, and always assert that a seeded engine sweep is
bit-identical for any worker count.  Timings are printed on every run for
EXPERIMENTS.md/ROADMAP.md bookkeeping.
"""

from __future__ import annotations

import os
import time

from repro.data import SyntheticMNIST, train_test_split
from repro.evaluation import DriftSweepEngine, accuracy
from repro.fault.drift import LogNormalDrift
from repro.fault.injector import fault_injection
from repro.models import build_model
from repro.training import train_classifier
from repro.utils.rng import get_rng

from conftest import PAPER_SIGMAS

SWEEP_TRIALS = 6
SWEEP_WORKERS = 4


def _trained_lenet(config):
    dataset = SyntheticMNIST(n_samples=config.train_samples + config.test_samples,
                             image_size=16, rng=0)
    fraction = config.test_samples / (config.train_samples + config.test_samples)
    train_set, test_set = train_test_split(dataset, test_fraction=fraction, rng=0)
    model = build_model("lenet", num_classes=10, in_channels=1, image_size=16, rng=0)
    train_classifier(model, train_set, epochs=config.epochs,
                     batch_size=config.batch_size,
                     learning_rate=config.learning_rate, rng=0)
    return model, test_set


def _seed_serial_sweep(model, test_set):
    """The pre-engine measurement loop: snapshot/draw/evaluate per trial."""
    rng = get_rng(2021)
    means = []
    for sigma in PAPER_SIGMAS:
        scores = []
        for _ in range(SWEEP_TRIALS):
            with fault_injection(model, LogNormalDrift(sigma), rng=rng):
                scores.append(accuracy(model, test_set))
        means.append(sum(scores) / len(scores))
    return means


def _engine_sweep(model, test_set, workers: int):
    engine = DriftSweepEngine(model, test_set, trials=SWEEP_TRIALS,
                              workers=workers, rng=2021)
    return engine.run(PAPER_SIGMAS, label="LeNet")


def test_engine_beats_seed_serial_path_and_is_deterministic(bench_config):
    model, test_set = _trained_lenet(bench_config)

    start = time.perf_counter()
    seed_means = _seed_serial_sweep(model, test_set)
    seed_seconds = time.perf_counter() - start

    start = time.perf_counter()
    serial = _engine_sweep(model, test_set, workers=0)
    engine_serial_seconds = time.perf_counter() - start

    start = time.perf_counter()
    parallel = _engine_sweep(model, test_set, workers=SWEEP_WORKERS)
    parallel_seconds = time.perf_counter() - start

    speedup = seed_seconds / max(parallel_seconds, 1e-9)
    print(f"\nLeNet/MNIST sweep ({len(PAPER_SIGMAS)} sigmas x {SWEEP_TRIALS} trials): "
          f"seed serial path {seed_seconds:.2f}s, engine serial "
          f"{engine_serial_seconds:.2f}s, engine {SWEEP_WORKERS} workers "
          f"{parallel_seconds:.2f}s ({parallel.backend}) -> {speedup:.2f}x "
          f"vs seed on {os.cpu_count()} cores")
    print(f"engine evaluations: {parallel.n_evaluations} for "
          f"{len(PAPER_SIGMAS) * SWEEP_TRIALS} trials "
          f"(cache hits {parallel.cache_hits})")

    # The seeded engine sweep is bit-identical for any worker count.
    assert parallel.sigmas == serial.sigmas
    assert parallel.means == serial.means
    assert parallel.stds == serial.stds
    assert parallel.trial_scores == serial.trial_scores

    # σ=0 trials are bit-identical, so the cache runs them exactly once.
    assert serial.cache_hits >= SWEEP_TRIALS - 1

    # Accuracies must agree with the seed loop where determinism transcends
    # the RNG stream layout: the σ=0 grid point has no randomness at all.
    assert parallel.means[0] == seed_means[0]

    # The wall-clock claim needs real cores; on smaller machines (CI
    # containers are often 1-2 vCPUs) we only report the numbers.
    try:
        usable_cores = len(os.sched_getaffinity(0))
    except AttributeError:
        usable_cores = os.cpu_count() or 1
    if usable_cores >= SWEEP_WORKERS and parallel.backend == "process":
        assert speedup >= 2.0, (
            f"engine with {SWEEP_WORKERS} workers only {speedup:.2f}x faster "
            f"than the seed serial path on {usable_cores} cores "
            f"({parallel_seconds:.2f}s vs {seed_seconds:.2f}s)")
