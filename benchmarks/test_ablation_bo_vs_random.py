"""Design-choice ablation bench: GP Bayesian optimisation vs random search."""

from __future__ import annotations

import numpy as np

from repro.experiments import run_bo_vs_random_ablation

from conftest import run_once


def test_ablation_bo_vs_random(benchmark, bench_config):
    result = run_once(benchmark, run_bo_vs_random_ablation, bench_config, seed=0)

    print("\n=== Ablation: BO vs random search over dropout rates ===")
    for kind, record in result.items():
        trace = np.round(record["objective_trace"], 3).tolist()
        print(f"{kind:>6s}: best objective {record['best_objective']:.3f}, "
              f"robustness AUC {record['auc']:.3f}, trace {trace}")

    # Both searches must find a configuration that actually works.
    assert result["bayes"]["auc"] > 0.1
    assert result["random"]["auc"] > 0.1
    # With an equal trial budget the GP-guided search should not be clearly
    # worse than random search (it is usually better; noise tolerance 0.08).
    assert result["bayes"]["best_objective"] >= result["random"]["best_objective"] - 0.08
