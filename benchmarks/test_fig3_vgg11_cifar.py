"""Figure 3(e) bench: VGG-11 on CIFAR-like data, all five methods."""

from __future__ import annotations

import dataclasses

from fig3_common import assert_all_methods_learn, assert_bayesft_competitive, run_panel


def test_fig3e_vgg11_cifar(benchmark, heavy_bench_config):
    config = dataclasses.replace(heavy_bench_config,
                                 extra={"model_kwargs": {"width": 6}})
    result = run_panel(benchmark, "e_vgg11_cifar", config, seed=0)
    assert_all_methods_learn(result, minimum_clean=0.12)
    assert_bayesft_competitive(result, margin=0.08)
