"""Figure 3(i) bench: spatial-transformer classifier on GTSRB-like data.

The paper omits FTNA for this panel; the convolutional STN needs Adam to
train reliably at this scale, matching the original spatial-transformer
recipe (Arcos-Garcia et al. tune the optimiser per model).
"""

from __future__ import annotations

import dataclasses

from fig3_common import assert_all_methods_learn, assert_bayesft_competitive, run_panel


def test_fig3i_stn_gtsrb(benchmark, bench_config):
    config = dataclasses.replace(bench_config,
                                 epochs=8, learning_rate=0.002, optimizer="adam",
                                 train_samples=560, test_samples=140,
                                 extra={"model_kwargs": {"width": 10}})
    result = run_panel(benchmark, "i_stn_gtsrb", config, seed=0,
                       methods=("erm", "reram-v", "bayesft"))
    assert_all_methods_learn(result, minimum_clean=0.1)
    assert_bayesft_competitive(result, margin=0.08)
