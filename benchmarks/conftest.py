"""Shared configuration for the benchmark harness.

Every benchmark regenerates one figure (or panel) of the paper at a scale
that fits a CPU-only run: fewer training samples and epochs, narrower
models, and a handful of drift trials per σ.  The *shape* of each result —
which method wins, where the accuracy cliff sits, how depth affects
robustness — is asserted; absolute numbers are reported for EXPERIMENTS.md.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.utils.config import ExperimentConfig
from repro.utils.rng import seed_everything

# The paper's σ grid for Figures 2 and 3(a)-(i).
PAPER_SIGMAS = (0.0, 0.3, 0.6, 0.9, 1.2, 1.5)


@pytest.fixture(autouse=True)
def _seed():
    seed_everything(2021)  # the paper's publication year, for flavour
    yield


@pytest.fixture(scope="session")
def bench_config():
    """Standard benchmark scale: small but large enough to learn the tasks."""
    return ExperimentConfig(epochs=6, batch_size=32, learning_rate=0.1,
                            train_samples=360, test_samples=120,
                            monte_carlo_samples=2, bo_trials=5, drift_trials=3,
                            sigma_grid=PAPER_SIGMAS)


@pytest.fixture(scope="session")
def heavy_bench_config():
    """Reduced scale for the deep convolutional panels (PreAct-50/152, VGG)."""
    return ExperimentConfig(epochs=3, batch_size=32, learning_rate=0.05,
                            train_samples=200, test_samples=80,
                            monte_carlo_samples=1, bo_trials=3, drift_trials=2,
                            sigma_grid=PAPER_SIGMAS)


def run_once(benchmark, func, *args, **kwargs):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(func, args=args, kwargs=kwargs, rounds=1, iterations=1)


def print_curves(title: str, curves) -> None:
    """Print the series a figure plots, one row per σ."""
    print(f"\n=== {title} ===")
    labels = [curve.label for curve in curves]
    sigmas = curves[0].sigmas
    header = "sigma   " + "  ".join(f"{label:>14s}" for label in labels)
    print(header)
    for index, sigma in enumerate(sigmas):
        row = f"{sigma:5.2f}   " + "  ".join(f"{curve.means[index]:14.3f}" for curve in curves)
        print(row)


def print_map_curves(title: str, curves) -> None:
    """Print mAP-vs-σ series (Fig. 3j format)."""
    print(f"\n=== {title} ===")
    sigmas = curves[0]["sigmas"]
    header = "sigma   " + "  ".join(f"{curve['label']:>10s}" for curve in curves)
    print(header)
    for index, sigma in enumerate(sigmas):
        row = f"{sigma:5.2f}   " + "  ".join(f"{curve['means'][index]:10.3f}" for curve in curves)
        print(row)


def degradation(curve) -> float:
    """Accuracy lost between the clean point and the largest σ."""
    return float(curve.means[0] - curve.means[-1])


def curve_by_label(curves, label: str):
    for curve in curves:
        if curve.label.lower() == label.lower():
            return curve
    raise KeyError(label)
