"""Figure 3(f) bench: PreAct-ResNet-18 on CIFAR-like data."""

from __future__ import annotations

import dataclasses

from fig3_common import assert_all_methods_learn, assert_bayesft_competitive, run_panel


def test_fig3f_preact18_cifar(benchmark, heavy_bench_config):
    config = dataclasses.replace(heavy_bench_config,
                                 extra={"model_kwargs": {"width": 6}})
    result = run_panel(benchmark, "f_preact18_cifar", config, seed=0)
    assert_all_methods_learn(result, minimum_clean=0.12)
    assert_bayesft_competitive(result, margin=0.08)
