"""Figure 3(d) bench: ResNet-18 on CIFAR-like data, all five methods."""

from __future__ import annotations

import dataclasses

from fig3_common import assert_all_methods_learn, assert_bayesft_competitive, run_panel


def test_fig3d_resnet18_cifar(benchmark, bench_config):
    config = dataclasses.replace(bench_config,
                                 extra={"model_kwargs": {"width": 6}})
    result = run_panel(benchmark, "d_resnet18_cifar", config, seed=0)
    assert_all_methods_learn(result, minimum_clean=0.15)
    # ResNet-18 with BatchNorm is the panel where ERM degrades fastest in the
    # paper; BayesFT should still not be worse than ERM under drift.
    assert_bayesft_competitive(result, margin=0.08)
