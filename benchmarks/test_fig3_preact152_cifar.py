"""Figure 3(h) bench: PreAct-ResNet-152 on CIFAR-like data (ERM vs BayesFT).

PreAct-152 keeps the original 3-8-36-3 block structure scaled by
``depth_scale`` so the panel finishes on CPU while remaining the deepest
model in the comparison.
"""

from __future__ import annotations

import dataclasses

from fig3_common import assert_all_methods_learn, assert_bayesft_competitive, run_panel


def test_fig3h_preact152_cifar(benchmark, heavy_bench_config):
    config = dataclasses.replace(
        heavy_bench_config,
        epochs=2, bo_trials=2,
        extra={"model_kwargs": {"width": 4, "depth_scale": 0.34}})
    result = run_panel(benchmark, "h_preact152_cifar", config, seed=0,
                       methods=("erm", "bayesft"))
    assert_all_methods_learn(result, minimum_clean=0.08)
    assert_bayesft_competitive(result, margin=0.1)
