"""Figure 2(c) bench: deeper MLPs are less robust to weight drift."""

from __future__ import annotations

from repro.evaluation import curve_auc
from repro.experiments import run_depth_ablation

from conftest import curve_by_label, print_curves, run_once


def test_fig2c_depth_ablation(benchmark, bench_config):
    curves = run_once(benchmark, run_depth_ablation, bench_config, seed=0, depths=(3, 6, 9))
    print_curves("Figure 2(c): model-complexity ablation", curves)

    shallow = curve_auc(curve_by_label(curves, "3-Layer"))
    medium = curve_auc(curve_by_label(curves, "6-Layer"))
    deep = curve_auc(curve_by_label(curves, "9-Layer"))

    # Paper claim: increasing depth decreases drift robustness.  The 3-layer
    # model must beat the 9-layer model; the 6-layer model sits in between
    # (allowing a small tolerance for run-to-run noise).
    assert shallow > deep
    assert shallow >= medium - 0.05
    assert medium >= deep - 0.05
