"""Scenario-orchestration bench: the fault matrix, with resume, to JSON.

Runs the built-in ``fault_matrix`` scenario (MLP/MNIST under every
registered fault model) through :class:`~repro.scenarios.runner.ScenarioRunner`
twice — a cold run that executes every cell and a resume run that must
answer entirely from the result store — and writes the machine-readable
``BENCH_scenarios.json`` perf/robustness summary at the repo root (CI
uploads it as an artifact).
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro.scenarios import ResultStore, ScenarioRunner, get_scenario

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_scenarios.json"


def test_fault_matrix_scenario_with_resume(tmp_path):
    store = ResultStore(tmp_path / "results")
    scenario = get_scenario("fault_matrix")

    start = time.perf_counter()
    cold = ScenarioRunner(store).run_scenario(scenario)
    cold_seconds = time.perf_counter() - start

    start = time.perf_counter()
    resumed = ScenarioRunner(store).run_scenario(scenario)
    resume_seconds = time.perf_counter() - start

    # Cold run executes every cell; the resume run recomputes nothing.
    assert [run.cached for run in cold] == [False] * len(cold)
    assert [run.cached for run in resumed] == [True] * len(resumed)
    assert len(cold) == len(scenario.cells()) >= 6
    for cold_run, resumed_run in zip(cold, resumed):
        assert resumed_run.report.means == cold_run.report.means
        assert resumed_run.report.trial_scores == cold_run.report.trial_scores
    assert resume_seconds < cold_seconds

    # Robustness sanity: every fault family degrades accuracy monotonically
    # enough to keep worst <= clean.
    for run in cold:
        assert min(run.report.means) <= run.report.means[0]

    summary = {
        "scenario": scenario.name,
        "cells": [run.summary() for run in cold],
        "perf": {
            "cold_run_seconds": round(cold_seconds, 4),
            "resume_run_seconds": round(resume_seconds, 4),
            "resume_speedup": round(cold_seconds / max(resume_seconds, 1e-9), 2),
            "evaluations_total": sum(run.report.n_evaluations for run in cold),
            "cache_hits_total": sum(run.report.cache_hits for run in cold),
            "cells_resumed_from_store": len(resumed),
        },
    }
    BENCH_PATH.write_text(json.dumps(summary, indent=2, sort_keys=True) + "\n")
    print(f"\n=== scenario orchestration bench (BENCH_scenarios.json) ===")
    print(f"cold run: {len(cold)} cells in {cold_seconds:.2f}s "
          f"({summary['perf']['evaluations_total']} evaluations, "
          f"{summary['perf']['cache_hits_total']} cache hits)")
    print(f"resume:   {len(resumed)} cells in {resume_seconds:.3f}s "
          f"(all answered from the result store, "
          f"{summary['perf']['resume_speedup']}x faster)")
