"""Shared driver for the Figure 3(a)-(i) classification benchmarks."""

from __future__ import annotations

from repro.evaluation import curve_auc
from repro.experiments import run_classification_comparison

from conftest import curve_by_label, print_curves, run_once


def run_panel(benchmark, panel: str, config, seed: int = 0, methods=None) -> dict:
    """Run one Figure-3 panel under the benchmark timer and print its series."""
    result = run_once(benchmark, run_classification_comparison, panel, config,
                      methods=methods, seed=seed)
    print_curves(f"Figure 3 panel {panel}", result["curves"])
    aucs = {curve.label: round(curve_auc(curve), 3) for curve in result["curves"]}
    print("AUC per method:", aucs)
    print_sweep_stats(result)
    return result


def print_sweep_stats(result: dict) -> None:
    """Print the DriftSweepEngine measurement cost recorded for a panel."""
    reports = result.get("sweep_reports", [])
    if not reports:
        return
    evaluations = sum(report["n_evaluations"] for report in reports)
    hits = sum(report["cache_hits"] for report in reports)
    seconds = sum(report["elapsed_seconds"] for report in reports)
    backend = reports[0]["backend"]
    print(f"sweep engine [{backend}]: {evaluations} evaluations "
          f"({hits} cache hits) in {seconds:.2f}s over {len(reports)} sweeps")


def assert_bayesft_competitive(result, margin: float = 0.08) -> None:
    """The paper's headline: BayesFT matches or beats ERM under drift.

    At benchmark scale (minutes of CPU training instead of GPU-hours) some
    panels do not reach meaningful clean accuracy; the comparison is only
    asserted when ERM itself learned the task (clean accuracy ≥ 0.35),
    otherwise the panel's numbers are reported without a method-ordering
    claim (EXPERIMENTS.md records this limitation explicitly).
    """
    curves = result["curves"]
    bayesft = curve_by_label(curves, "BayesFT")
    erm = curve_by_label(curves, "ERM")
    if erm.means[0] < 0.35 or bayesft.means[0] < 0.35:
        print("NOTE: panel under-trained at benchmark scale; "
              "method-ordering claim not asserted.")
        return
    assert curve_auc(bayesft) >= curve_auc(erm) - margin
    # Average accuracy over the drifted half of the sweep (σ ≥ 0.6).
    drifted_indices = [i for i, s in enumerate(bayesft.sigmas) if s >= 0.6]
    bayesft_drifted = sum(bayesft.means[i] for i in drifted_indices) / len(drifted_indices)
    erm_drifted = sum(erm.means[i] for i in drifted_indices) / len(drifted_indices)
    assert bayesft_drifted >= erm_drifted - margin


def assert_all_methods_learn(result, minimum_clean: float = 0.2) -> None:
    """Sanity check: the curves are valid accuracies and at least one method
    rises above chance.  Per-method learnability at full paper scale is not
    achievable in a CPU benchmark budget for the deepest models, so the
    threshold acts on the best method only."""
    best_clean = max(curve.means[0] for curve in result["curves"])
    assert best_clean >= min(minimum_clean, 0.15)
    for curve in result["curves"]:
        assert all(0.0 <= value <= 1.0 for value in curve.means)
