"""Async-search bench: batched BO fan-out vs the in-process trial loop.

Measures the acceptance target of the async-search PR on the workload it was
built for — a BayesFT search whose per-trial cost is dominated by training
(one LeNet fit per candidate α), where a ``q``-point constant-liar batch can
keep ``k`` worker processes busy at once.  Because the scheduler replays
observations in trial-index order, the async run computes *exactly* the same
canonical result as the serial-backend run of the same ``q`` — so the bench
both asserts byte-identity and times the two, and any speedup is pure
scheduling.  It writes the machine-readable ``BENCH_bo.json`` at the repo
root (CI uploads it as an artifact).

Wall-clock on shared CI containers is noisy and fan-out needs real cores, so
the ≥1.5× floor is asserted only when the hardware has at least ``k`` usable
cores (the same gate as ``test_sweep_speedup`` / ``test_execution_bench``);
on 1-2 vCPU containers the numbers are recorded for the record.  Each
configuration is timed over several repetitions and the asserted speedup is
the *median* ratio.
"""

from __future__ import annotations

import json
import os
import statistics
import time
from pathlib import Path

import numpy as np

from repro.core import BayesFTSearch, DriftMarginalizedObjective, DropoutSearchSpace
from repro.data import SyntheticMNIST, train_test_split
from repro.execution.runtime import ExecutionRuntime, using_runtime
from repro.models import build_model

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_bo.json"

N_TRIALS = 8
BATCH = 4      # q-point suggestion → 4 trials in flight per batch
WORKERS = 4    # k worker processes evaluating them
REPS = 3


def _usable_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:
        return os.cpu_count() or 1


def _make_search(split, **kwargs):
    train_set, test_set = split
    rng = np.random.default_rng(5)
    model = build_model("lenet", num_classes=10, in_channels=1,
                        image_size=16, rng=rng)
    space = DropoutSearchSpace(model)
    objective = DriftMarginalizedObjective(test_set, sigma=0.7,
                                           monte_carlo_samples=2,
                                           metric="accuracy", rng=7)
    return BayesFTSearch(space, objective, train_set, epochs_per_trial=2,
                         learning_rate=0.1, rng=9, suggest_batch=BATCH,
                         **kwargs)


def _timed_run(split, **kwargs):
    search = _make_search(split, **kwargs)
    start = time.perf_counter()
    result = search.run(n_trials=N_TRIALS)
    return time.perf_counter() - start, result


def test_async_search_speedup():
    dataset = SyntheticMNIST(n_samples=512, image_size=16, rng=3)
    split = train_test_split(dataset, test_fraction=0.25, rng=3)

    # Three arms per rep: serial backend, async over cold per-batch pools
    # (the pre-runtime behaviour, kept for the historical speedup_median),
    # and async over a warm leased pool shared across the whole bench —
    # the shipping default since the warm execution runtime landed.
    serial_seconds, cold_seconds, warm_seconds = [], [], []
    cold_ratios, warm_ratios = [], []
    reference_json = None
    warm_runtime = ExecutionRuntime()
    try:
        for _ in range(REPS):
            elapsed, serial_result = _timed_run(split, search_workers=0)
            serial_seconds.append(elapsed)
            with using_runtime(ExecutionRuntime(enabled=False)):
                elapsed, cold_result = _timed_run(split, search_workers=WORKERS)
            cold_seconds.append(elapsed)
            with using_runtime(warm_runtime):
                elapsed, warm_result = _timed_run(split, search_workers=WORKERS)
            warm_seconds.append(elapsed)

            # Ordered observation replay: the fan-out runs are byte-identical
            # to the serial-backend run — any speedup is pure scheduling.
            for async_result in (cold_result, warm_result):
                assert async_result.to_json() == serial_result.to_json(), (
                    "async search diverged from the serial-backend reference")
                assert async_result.search_stats["used_backend"] == "process"
                assert not async_result.search_stats["fell_back"]
            if reference_json is None:
                reference_json = serial_result.to_json()
            else:  # the whole bench is one deterministic cell
                assert serial_result.to_json() == reference_json
            cold_ratios.append(serial_seconds[-1] / max(cold_seconds[-1], 1e-9))
            warm_ratios.append(serial_seconds[-1] / max(warm_seconds[-1], 1e-9))
        warm_counters = dict(warm_runtime.stats()["counters"])
    finally:
        warm_runtime.shutdown()

    cores = _usable_cores()
    summary = {
        "model": "lenet",
        "n_trials": N_TRIALS,
        "suggest_batch": BATCH,
        "search_workers": WORKERS,
        "usable_cores": cores,
        "reps": REPS,
        "serial_seconds_median": round(statistics.median(serial_seconds), 4),
        "async_seconds_median": round(statistics.median(cold_seconds), 4),
        "speedup_median": round(statistics.median(cold_ratios), 3),
        "speedup_min": round(min(cold_ratios), 3),
        "speedup_max": round(max(cold_ratios), 3),
        "async_warm_seconds_median": round(statistics.median(warm_seconds), 4),
        "speedup_median_warm": round(statistics.median(warm_ratios), 3),
        "warm_pool_reuses": warm_counters.get("pool_reuses", 0),
        "speedup_asserted": cores >= WORKERS,
        "canonical_identical": True,
    }
    BENCH_PATH.write_text(json.dumps(summary, indent=2, sort_keys=True) + "\n")

    print("\n=== async BO search bench (BENCH_bo.json) ===")
    print(f"lenet: {N_TRIALS} trials, q={BATCH}, k={WORKERS} — serial "
          f"{summary['serial_seconds_median']:.2f}s, async cold "
          f"{summary['async_seconds_median']:.2f}s "
          f"({summary['speedup_median']:.2f}x), async warm "
          f"{summary['async_warm_seconds_median']:.2f}s "
          f"({summary['speedup_median_warm']:.2f}x, "
          f"{summary['warm_pool_reuses']} pool reuses) on {cores} cores")

    # The wall-clock claim needs real cores; CI containers often have 1-2.
    # The warm leased pool is the shipping default, so that is the arm held
    # to the floor.
    if cores >= WORKERS:
        assert summary["speedup_median_warm"] >= 1.5, (
            f"warm async search delivered {summary['speedup_median_warm']:.2f}x "
            f"with k={WORKERS} on {cores} cores, expected >= 1.5x")
