"""Tests for the trial-batched inference layer (`repro.inference`).

The load-bearing guarantee is batching equivalence: a seeded sweep produces
a byte-identical canonical report whether trials are evaluated one forward
pass at a time or stacked `trial_batch` at a time — across every execution
backend, worker count and chunk size, σ=0 cache fast path and ragged
remainder batches included, and for conv + BatchNorm models whose batched
forward exercises the stacked GEMM paths.  On top of that: the evaluator
contract (fallbacks, protocol detection, error paths), the batched-capable
metrics, the `trial_batch` knob on the BayesFT objective and the ReRAM
program-and-verify deployment, spec-hash invariance, and the shared-memory
dataset publication that rides along in the backends.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import SyntheticCIFAR, SyntheticMNIST, train_test_split
from repro.evaluation import DriftSweepEngine
from repro.fault.drift import LogNormalDrift
from repro.fault.injector import FaultInjector
from repro.inference import (
    AccuracyAndLoss, ClassificationAccuracy, InferenceEvaluator,
    PerTrialEvaluator, TrialBatchedEvaluator, resolve_evaluator,
)
from repro.models import build_mlp
from repro.training import train_classifier


@pytest.fixture(scope="module")
def trained():
    dataset = SyntheticMNIST(n_samples=200, image_size=16, rng=13)
    train_set, test_set = train_test_split(dataset, test_fraction=0.3, rng=13)
    model = build_mlp(256, depth=3, width=32, num_classes=10, rng=13)
    train_classifier(model, train_set, epochs=3, learning_rate=0.1, rng=13)
    return model, test_set


@pytest.fixture(scope="module")
def trained_lenet():
    from repro.models.registry import build_model

    dataset = SyntheticMNIST(n_samples=120, image_size=16, rng=7)
    train_set, test_set = train_test_split(dataset, test_fraction=0.4, rng=7)
    model = build_model("lenet", num_classes=10, in_channels=1,
                        image_size=16, rng=np.random.default_rng(7))
    train_classifier(model, train_set, epochs=1, learning_rate=0.05, rng=7)
    return model, test_set.subset(np.arange(16))


@pytest.fixture(scope="module")
def trained_preact():
    from repro.models.registry import build_model

    dataset = SyntheticCIFAR(n_samples=60, image_size=16, rng=0)
    train_set, test_set = train_test_split(dataset, test_fraction=0.5, rng=0)
    model = build_model("preact18", num_classes=10, in_channels=3,
                        image_size=16, rng=np.random.default_rng(0))
    train_classifier(model, train_set, epochs=1, learning_rate=0.05, rng=0)
    return model, test_set.subset(np.arange(8))


def _pending(model, trials, seed=0, sigma=0.8):
    """Pre-drawn `digest -> params` trials plus the snapshotted injector."""
    injector = FaultInjector(model, LogNormalDrift(sigma),
                             rng=np.random.default_rng(seed))
    injector.snapshot()
    drawn = injector.draw_trials(trials)
    pending = {f"trial-{index}": {name: arrays[index]
                                  for name, arrays in drawn.items()}
               for index in range(trials)}
    return injector, pending


# --------------------------------------------------------------------------- #
class TestResolveEvaluator:
    def test_none_and_one_resolve_per_trial(self):
        assert isinstance(resolve_evaluator(None), PerTrialEvaluator)
        assert isinstance(resolve_evaluator(1), PerTrialEvaluator)

    def test_batched_resolution_carries_the_batch_size(self):
        evaluator = resolve_evaluator(4)
        assert isinstance(evaluator, TrialBatchedEvaluator)
        assert evaluator.trial_batch == 4

    def test_invalid_batch_sizes_rejected(self):
        with pytest.raises(ValueError, match="at least 1"):
            resolve_evaluator(0)
        with pytest.raises(ValueError, match="at least 1"):
            TrialBatchedEvaluator(0)

    def test_abstract_contract_raises(self, trained):
        model, test_set = trained
        with pytest.raises(NotImplementedError):
            InferenceEvaluator().run(model, test_set, lambda m, d: 0.0,
                                     {}, lambda params: None)


class TestEvaluatorEquivalence:
    """Batched and per-trial evaluators agree bit for bit."""

    def _scores(self, evaluator, model, data, pending, injector):
        results = evaluator.run(model, data, ClassificationAccuracy(),
                                pending, injector.apply_trial)
        return [(result.digest, result.score) for result in results]

    @pytest.mark.parametrize("trials,batch", [(6, 6), (5, 2), (5, 3), (7, 4)],
                             ids=lambda v: str(v))
    def test_mlp_scores_identical_including_ragged_groups(self, trained,
                                                          trials, batch):
        model, test_set = trained
        injector, pending = _pending(model, trials)
        try:
            per = self._scores(PerTrialEvaluator(), model, test_set,
                               pending, injector)
            bat = self._scores(TrialBatchedEvaluator(batch), model, test_set,
                               pending, injector)
        finally:
            injector.restore()
        assert per == bat

    def test_lenet_scores_identical(self, trained_lenet):
        model, data = trained_lenet
        injector, pending = _pending(model, 5, seed=3)
        try:
            per = self._scores(PerTrialEvaluator(), model, data,
                               pending, injector)
            bat = self._scores(TrialBatchedEvaluator(5), model, data,
                               pending, injector)
        finally:
            injector.restore()
        assert per == bat

    def test_preact_scores_identical(self, trained_preact):
        """Conv + BatchNorm + residual adds through the stacked paths."""
        model, data = trained_preact
        injector, pending = _pending(model, 4, seed=5, sigma=0.5)
        try:
            per = self._scores(PerTrialEvaluator(), model, data,
                               pending, injector)
            bat = self._scores(TrialBatchedEvaluator(4), model, data,
                               pending, injector)
        finally:
            injector.restore()
        assert per == bat

    def test_batched_results_flagged(self, trained):
        model, test_set = trained
        injector, pending = _pending(model, 4)
        try:
            results = TrialBatchedEvaluator(2).run(
                model, test_set, ClassificationAccuracy(), pending,
                injector.apply_trial)
        finally:
            injector.restore()
        assert all(result.batched for result in results)
        assert [result.digest for result in results] == list(pending)

    def test_weights_restorable_after_stacked_install(self, trained):
        model, test_set = trained
        before = model.state_dict()
        injector, pending = _pending(model, 4)
        try:
            TrialBatchedEvaluator(4).run(model, test_set,
                                         ClassificationAccuracy(), pending,
                                         injector.apply_trial)
        finally:
            injector.restore()
        after = model.state_dict()
        for key in before:
            np.testing.assert_array_equal(before[key], after[key])


class TestEvaluatorFallbacks:
    def test_plain_function_falls_back_per_trial(self, trained):
        """No ``evaluate_trials`` protocol → the historical per-trial loop."""
        model, test_set = trained
        injector, pending = _pending(model, 4)
        accuracy = ClassificationAccuracy()

        def plain(m, d):
            return accuracy(m, d)

        try:
            results = TrialBatchedEvaluator(4).run(model, test_set, plain,
                                                   pending,
                                                   injector.apply_trial)
            reference = PerTrialEvaluator().run(model, test_set, plain,
                                                dict(pending),
                                                injector.apply_trial)
        finally:
            injector.restore()
        assert not any(result.batched for result in results)
        assert ([(r.digest, r.score) for r in results]
                == [(r.digest, r.score) for r in reference])

    def test_heterogeneous_parameter_sets_fall_back(self, trained):
        """Trials drifting different parameter subsets cannot be stacked."""
        model, test_set = trained
        injector, pending = _pending(model, 3)
        digests = list(pending)
        # Drop one parameter from the middle trial: its keyset now differs.
        dropped = dict(pending[digests[1]])
        dropped.pop(next(iter(dropped)))
        pending[digests[1]] = dropped
        try:
            results = TrialBatchedEvaluator(3).run(
                model, test_set, ClassificationAccuracy(), pending,
                injector.apply_trial)
            reference = PerTrialEvaluator().run(
                model, test_set, ClassificationAccuracy(), dict(pending),
                injector.apply_trial)
        finally:
            injector.restore()
        assert not any(result.batched for result in results)
        assert ([(r.digest, r.score) for r in results]
                == [(r.digest, r.score) for r in reference])

    def test_metric_count_mismatch_raises(self, trained):
        model, test_set = trained
        injector, pending = _pending(model, 2)

        class Broken:
            def __call__(self, m, d):
                return 0.0

            def evaluate_trials(self, m, d, trials):
                return [0.0]  # always one result, whatever was asked

        try:
            with pytest.raises(RuntimeError, match="evaluate_trials"):
                TrialBatchedEvaluator(2).run(model, test_set, Broken(),
                                             pending, injector.apply_trial)
        finally:
            injector.restore()


# --------------------------------------------------------------------------- #
class TestMetrics:
    def test_classification_accuracy_matches_robustness_accuracy(self, trained):
        from repro.evaluation.robustness import accuracy

        model, test_set = trained
        assert ClassificationAccuracy()(model, test_set) == accuracy(
            model, test_set)

    def test_accuracy_and_loss_batched_protocol_bit_identical(self, trained):
        model, test_set = trained
        injector, pending = _pending(model, 3)
        metric = AccuracyAndLoss()
        digests = list(pending)
        try:
            reference = []
            for digest in digests:
                injector.apply_trial(pending[digest])
                reference.append(metric(model, test_set))
            stacked = {name: np.stack([pending[d][name] for d in digests])
                       for name in pending[digests[0]]}
            injector.apply_trial(stacked)
            batched = metric.evaluate_trials(model, test_set, len(digests))
        finally:
            injector.restore()
        assert reference == batched  # scores AND losses, bit for bit

    def test_classification_accuracy_respects_loader_batches(self, trained):
        """Tiled evaluation keeps the per-sample batch boundaries."""
        model, test_set = trained
        injector, pending = _pending(model, 3)
        small = ClassificationAccuracy(batch_size=16)  # forces several batches
        try:
            per = PerTrialEvaluator().run(model, test_set, small,
                                          dict(pending), injector.apply_trial)
            bat = TrialBatchedEvaluator(3).run(model, test_set, small,
                                               pending, injector.apply_trial)
        finally:
            injector.restore()
        assert ([(r.digest, r.score) for r in per]
                == [(r.digest, r.score) for r in bat])


class TestTrialBatchingContext:
    def test_rejects_non_positive_counts(self):
        from repro.nn.functional import trial_batching

        with pytest.raises(ValueError, match="at least one"):
            with trial_batching(0):
                pass

    def test_inference_only(self, trained):
        from repro.nn.functional import trial_batching
        from repro.nn.tensor import Tensor

        model, test_set = trained
        tiled = np.concatenate([test_set.inputs[:4]] * 2, axis=0)
        with trial_batching(2):
            with pytest.raises(RuntimeError, match="no_grad"):
                model(Tensor(tiled))  # gradient recording still enabled

    def test_batch_must_tile_trial_major(self, trained):
        from repro.nn.functional import trial_batching
        from repro.nn.tensor import Tensor, no_grad

        model, test_set = trained
        with no_grad(), trial_batching(3):
            with pytest.raises(ValueError, match="multiple of 3"):
                model(Tensor(test_set.inputs[:4]))  # 4 rows, 3 trials

    def test_count_restored_after_context(self):
        from repro.nn.functional import trial_batching, trial_count

        assert trial_count() == 1
        with trial_batching(5):
            assert trial_count() == 5
        assert trial_count() == 1


# --------------------------------------------------------------------------- #
class TestSweepEquivalence:
    """`trial_batch` is a pure scheduling knob at the engine level."""

    SIGMAS = (0.0, 0.6, 1.2)  # σ=0 exercises the deterministic-drift fast path

    def _canonical(self, trained, trials=5, **kwargs) -> str:
        model, test_set = trained
        report = DriftSweepEngine(model, test_set, trials=trials, rng=99,
                                  **kwargs).run(self.SIGMAS, label="equiv")
        return report.to_json(canonical=True)

    @pytest.mark.parametrize("kwargs", [
        dict(trial_batch=1),
        dict(trial_batch=3),
        dict(trial_batch=5),                    # == trials: one full stack
        dict(trial_batch=7),                    # > trials: one ragged stack
        dict(trial_batch=3, max_chunk_trials=2),
        dict(trial_batch=2, workers=2),
        dict(trial_batch=3, workers=2, backend="process"),
        dict(trial_batch=3, workers=2, backend="shared_memory"),
        dict(trial_batch=5, workers=3, backend="shared_memory",
             max_chunk_trials=3),
    ], ids=lambda kw: "-".join(f"{k}={v}" for k, v in kw.items()))
    def test_byte_identical_canonical_reports(self, trained, kwargs):
        assert (self._canonical(trained, **kwargs)
                == self._canonical(trained))

    def test_lenet_sweep_identical_when_batched(self, trained_lenet):
        base = self._canonical(trained_lenet, trials=4)
        assert self._canonical(trained_lenet, trials=4,
                               trial_batch=4) == base

    def test_engine_rejects_invalid_trial_batch(self, trained):
        model, test_set = trained
        with pytest.raises(ValueError, match="trial_batch"):
            DriftSweepEngine(model, test_set, trial_batch=0)

    def test_batched_evaluations_counted(self, trained):
        model, test_set = trained
        report = DriftSweepEngine(model, test_set, trials=4, rng=21,
                                  trial_batch=4).run((0.0, 0.9))
        # σ=0 collapses to one (unbatched) evaluation; σ=0.9's four unique
        # trials run as one stacked group.
        assert report.trial_batch == 4
        assert report.batched_evaluations == 4
        assert report.n_evaluations == 5

    def test_trial_batch_fields_are_volatile(self, trained):
        model, test_set = trained
        report = DriftSweepEngine(model, test_set, trials=3, rng=1,
                                  trial_batch=3).run((0.7,))
        full = report.as_dict()
        assert full["trial_batch"] == 3 and full["batched_evaluations"] == 3
        canonical = report.canonical_dict()
        assert "trial_batch" not in canonical
        assert "batched_evaluations" not in canonical

    def test_legacy_report_dicts_still_load(self):
        from repro.evaluation.sweep import SweepReport

        legacy = SweepReport(label="old", sigmas=[0.5], means=[0.9],
                             stds=[0.0]).as_dict()
        legacy.pop("trial_batch")
        legacy.pop("batched_evaluations")
        report = SweepReport.from_dict(legacy)
        assert report.trial_batch is None and report.batched_evaluations == 0


# --------------------------------------------------------------------------- #
class TestObjectiveTrialBatch:
    def test_objective_identical_with_trial_batch(self, trained):
        from repro.core.objective import DriftMarginalizedObjective

        model, test_set = trained
        values = {}
        for trial_batch in (None, 3):
            objective = DriftMarginalizedObjective(
                test_set, sigma=0.7, monte_carlo_samples=3, rng=11,
                trial_batch=trial_batch)
            values[trial_batch] = objective.evaluate_with_clean(model)[:2]
        assert values[None] == values[3]

    def test_objective_batch_composes_with_shared_memory(self, trained):
        from repro.core.objective import DriftMarginalizedObjective

        model, test_set = trained
        serial = DriftMarginalizedObjective(
            test_set, sigma=0.7, monte_carlo_samples=4, rng=2)
        pooled = DriftMarginalizedObjective(
            test_set, sigma=0.7, monte_carlo_samples=4, rng=2,
            sweep_workers=2, sweep_backend="shared_memory", trial_batch=2)
        assert serial.evaluate(model) == pooled.evaluate(model)

    def test_bayesft_api_forwards_trial_batch(self):
        from repro.core.api import BayesFT

        assert BayesFT(trial_batch=4).trial_batch == 4


class TestDeployTrialBatch:
    def _model(self):
        return build_mlp(64, depth=2, width=12, num_classes=4, rng=0)

    def _data(self):
        dataset = SyntheticMNIST(n_samples=40, image_size=8, rng=2)
        _, test_set = train_test_split(dataset, test_fraction=0.5, rng=2)
        return test_set

    def test_program_and_verify_identical_when_batched(self):
        from repro.reram import deploy_on_reram

        reference_model, batched_model = self._model(), self._model()
        reference = deploy_on_reram(reference_model, rng=4, trials=3,
                                    validate_data=self._data())
        batched = deploy_on_reram(batched_model, rng=4, trials=3,
                                  validate_data=self._data(), trial_batch=3)
        assert batched.candidate_scores == reference.candidate_scores
        assert batched.selected_trial == reference.selected_trial
        for (name, expected), (_, got) in zip(
                reference_model.named_parameters(),
                batched_model.named_parameters()):
            np.testing.assert_array_equal(expected.data, got.data)


class TestSpecTrialBatch:
    def test_trial_batch_never_enters_the_spec_hash(self):
        from repro.scenarios import ScenarioSpec

        base = ScenarioSpec(name="cell", model="mlp", dataset="mnist")
        batched = ScenarioSpec(name="cell", model="mlp", dataset="mnist",
                               trial_batch=8)
        assert base.spec_hash() == batched.spec_hash()
        assert batched.to_dict()["trial_batch"] == 8

    def test_spec_roundtrips_trial_batch(self):
        from repro.scenarios import ScenarioSpec

        spec = ScenarioSpec(name="cell", trial_batch=4)
        assert ScenarioSpec.from_json(spec.to_json()).trial_batch == 4

    def test_cli_parser_accepts_trial_batch(self):
        from repro.scenarios.cli import build_parser

        args = build_parser().parse_args(
            ["run", "smoke", "--trial-batch", "6"])
        assert args.trial_batch == 6

    def test_runner_override_wins_over_spec(self):
        from repro.scenarios import ScenarioSpec
        from repro.scenarios.runner import ScenarioRunner

        spec = ScenarioSpec(name="cell", trial_batch=2)
        runner = ScenarioRunner(None, trial_batch=5)
        assert runner._engine_kwargs(spec)["trial_batch"] == 5
        assert ScenarioRunner(None)._engine_kwargs(spec)["trial_batch"] == 2


# --------------------------------------------------------------------------- #
class TestDatasetPublication:
    def test_dataset_segment_created_and_released(self, trained):
        from repro.execution import SharedMemoryBackend

        model, test_set = trained
        backend = SharedMemoryBackend(workers=2)
        DriftSweepEngine(model, test_set, trials=3, rng=3,
                         backend=backend).run((0.5, 1.0))
        # The engine closes the backend after the sweep: the pinned dataset
        # segment must be gone along with the per-chunk trial segments.
        assert backend._segments == []
        assert backend._data_segment is None

    def test_dataset_handle_counts_toward_bytes_shipped(self, trained):
        """Publication replaces the initializer's pickled dataset copy."""
        import pickle

        model, test_set = trained
        report = DriftSweepEngine(model, test_set, trials=3, rng=1,
                                  workers=2,
                                  backend="shared_memory").run((0.8, 1.2))
        assert report.backend == "shared_memory"
        # The handle is tiny but non-zero — and orders of magnitude smaller
        # than the dataset it replaces in the worker-initializer payload.
        assert report.bytes_shipped > 0
        assert len(pickle.dumps(test_set)) > 10_000

    def test_non_dataset_data_still_ships_pickled(self, trained):
        """Evaluation data without the Dataset shape falls back to pickling."""
        from repro.execution import EvalContext, SharedMemoryBackend

        model, test_set = trained
        samples = [(test_set.inputs[:8], test_set.labels[:8])]

        backend = SharedMemoryBackend(workers=2)
        engine = DriftSweepEngine(model, samples, trials=3, rng=9,
                                  backend=backend,
                                  evaluate_fn=_accuracy_on_samples)
        serial = DriftSweepEngine(model, samples, trials=3, rng=9,
                                  evaluate_fn=_accuracy_on_samples)
        assert (engine.run((0.8,)).to_json(canonical=True)
                == serial.run((0.8,)).to_json(canonical=True))
        assert backend._data_segment is None  # nothing was published

    def test_worker_views_match_the_published_dataset(self, trained):
        from repro.execution.shared import (_attach_dataset,
                                            SharedMemoryBackend)
        from repro.execution import EvalContext

        model, test_set = trained
        backend = SharedMemoryBackend(workers=2)
        backend.open(EvalContext(model=model, data=test_set,
                                 evaluate_fn=ClassificationAccuracy()))
        try:
            segment, handle = backend._publish_dataset(test_set)
            backend._data_segment = segment
            rebuilt = _attach_dataset(handle)
            np.testing.assert_array_equal(rebuilt.inputs, test_set.inputs)
            np.testing.assert_array_equal(rebuilt.labels, test_set.labels)
            assert rebuilt.num_classes == test_set.num_classes
            # Zero-copy: the rebuilt arrays alias the attached segment.
            assert rebuilt.inputs.base is not None
        finally:
            from repro.execution.shared import _ATTACHED, _PINNED

            _PINNED.discard(handle.segment)
            attached = _ATTACHED.pop(handle.segment, None)
            if attached is not None:
                attached.close()
            backend.close()


def _accuracy_on_samples(model, samples) -> float:
    """Module-level (picklable) metric over a plain list of batches."""
    from repro.nn.tensor import Tensor, no_grad

    correct = total = 0
    for inputs, labels in samples:
        with no_grad():
            logits = model(Tensor(inputs))
        correct += int((logits.data.argmax(axis=1) == labels).sum())
        total += len(labels)
    return correct / max(total, 1)
