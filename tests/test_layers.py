"""Tests for layer classes: linear, conv, pooling, dropout, normalisation."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import nn
from repro.nn.layers.activations import make_activation
from repro.nn.tensor import Tensor


class TestLinearLayer:
    def test_output_shape(self):
        layer = nn.Linear(8, 3, rng=0)
        assert layer(Tensor(np.zeros((5, 8)))).shape == (5, 3)

    def test_no_bias_option(self):
        layer = nn.Linear(4, 2, bias=False, rng=0)
        assert layer.bias is None
        assert len(list(layer.parameters())) == 1

    def test_invalid_dimensions_raise(self):
        with pytest.raises(ValueError):
            nn.Linear(0, 3)

    def test_unknown_init_scheme_raises(self):
        with pytest.raises(ValueError):
            nn.Linear(3, 3, init_scheme="bogus")

    def test_xavier_init_scale(self):
        layer = nn.Linear(100, 100, init_scheme="xavier", rng=0)
        bound = np.sqrt(6.0 / 200)
        assert np.abs(layer.weight.data).max() <= bound + 1e-12

    def test_gradient_flows_to_parameters(self):
        layer = nn.Linear(4, 2, rng=0)
        out = layer(Tensor(np.ones((3, 4)), requires_grad=True))
        out.sum().backward()
        assert layer.weight.grad is not None
        assert layer.bias.grad is not None


class TestConvLayer:
    def test_output_shape_and_spatial_helper(self):
        layer = nn.Conv2d(3, 8, kernel_size=3, stride=2, padding=1, rng=0)
        out = layer(Tensor(np.zeros((2, 3, 16, 16))))
        assert out.shape == (2, 8, 8, 8)
        assert layer.output_spatial(16, 16) == (8, 8)

    def test_invalid_geometry_raises(self):
        with pytest.raises(ValueError):
            nn.Conv2d(1, 1, kernel_size=0)

    def test_parameters_registered(self):
        layer = nn.Conv2d(2, 4, 3, rng=0)
        names = dict(layer.named_parameters())
        assert "weight" in names and "bias" in names


class TestPoolingLayers:
    def test_max_pool_layer(self):
        layer = nn.MaxPool2d(2)
        assert layer(Tensor(np.zeros((1, 1, 8, 8)))).shape == (1, 1, 4, 4)

    def test_avg_pool_layer(self):
        layer = nn.AvgPool2d(2)
        assert layer(Tensor(np.ones((1, 2, 4, 4)))).data.mean() == pytest.approx(1.0)

    def test_global_avg_pool(self):
        layer = nn.GlobalAvgPool2d()
        assert layer(Tensor(np.ones((2, 3, 5, 5)))).shape == (2, 3, 1, 1)

    def test_flatten_layer(self):
        layer = nn.Flatten()
        assert layer(Tensor(np.zeros((2, 3, 4)))).shape == (2, 12)


class TestDropout:
    def test_eval_mode_is_identity(self):
        layer = nn.Dropout(0.5, rng=0)
        layer.eval()
        x = Tensor(np.random.default_rng(0).standard_normal((10, 10)))
        assert np.allclose(layer(x).data, x.data)

    def test_zero_rate_is_identity_in_train(self):
        layer = nn.Dropout(0.0, rng=0)
        x = Tensor(np.ones((5, 5)))
        assert np.allclose(layer(x).data, 1.0)

    def test_train_mode_zeroes_roughly_rate_fraction(self):
        layer = nn.Dropout(0.3, rng=0)
        x = Tensor(np.ones((100, 100)))
        out = layer(x).data
        zero_fraction = (out == 0).mean()
        assert 0.25 < zero_fraction < 0.35

    def test_inverted_scaling_preserves_expectation(self):
        layer = nn.Dropout(0.4, rng=0)
        x = Tensor(np.ones((200, 200)))
        assert layer(x).data.mean() == pytest.approx(1.0, rel=0.05)

    def test_invalid_rate_raises(self):
        with pytest.raises(ValueError):
            nn.Dropout(1.0)
        with pytest.raises(ValueError):
            nn.Dropout(-0.1)

    def test_set_rate_clips_to_valid_range(self):
        layer = nn.Dropout(0.1, rng=0)
        layer.set_rate(2.0)
        assert layer.rate <= 0.95

    @given(st.floats(min_value=0.0, max_value=0.9))
    @settings(max_examples=20, deadline=None)
    def test_set_rate_roundtrip(self, rate):
        layer = nn.Dropout(0.0, rng=0)
        layer.set_rate(rate)
        assert layer.rate == pytest.approx(rate)

    def test_gradient_flows_through_mask(self):
        layer = nn.Dropout(0.5, rng=0)
        x = Tensor(np.ones((20, 20)), requires_grad=True)
        layer(x).sum().backward()
        # Gradient is either 0 (dropped) or the inverted-dropout scale 1/(1-rate)=2.
        unique = np.unique(np.round(x.grad, 6))
        assert len(unique) <= 2
        assert np.all(np.isin(unique, [0.0, 2.0]))


class TestAlphaDropout:
    def test_eval_mode_is_identity(self):
        layer = nn.AlphaDropout(0.5, rng=0)
        layer.eval()
        x = Tensor(np.random.default_rng(0).standard_normal((10, 10)))
        assert np.allclose(layer(x).data, x.data)

    def test_approximately_preserves_mean_and_variance(self):
        layer = nn.AlphaDropout(0.3, rng=0)
        x = Tensor(np.random.default_rng(1).standard_normal((400, 400)))
        out = layer(x).data
        assert abs(out.mean() - x.data.mean()) < 0.05
        assert abs(out.std() - x.data.std()) < 0.15

    def test_invalid_rate_raises(self):
        with pytest.raises(ValueError):
            nn.AlphaDropout(1.2)


class TestNormalizationLayers:
    def test_batchnorm1d_normalises_batch(self):
        layer = nn.BatchNorm1d(4)
        x = Tensor(np.random.default_rng(0).standard_normal((64, 4)) * 5 + 3)
        out = layer(x).data
        assert np.allclose(out.mean(axis=0), 0.0, atol=1e-7)
        assert np.allclose(out.std(axis=0), 1.0, atol=1e-2)

    def test_batchnorm1d_eval_uses_running_stats(self):
        layer = nn.BatchNorm1d(2, momentum=0.5)
        x = Tensor(np.random.default_rng(0).standard_normal((32, 2)) + 10.0)
        layer(x)  # update running stats
        layer.eval()
        out = layer(Tensor(np.full((4, 2), 10.0))).data
        assert np.all(np.isfinite(out))
        assert np.abs(out).max() < 15.0

    def test_batchnorm1d_rejects_wrong_rank(self):
        with pytest.raises(ValueError):
            nn.BatchNorm1d(3)(Tensor(np.zeros((2, 3, 4))))

    def test_batchnorm2d_normalises_channels(self):
        layer = nn.BatchNorm2d(3)
        x = Tensor(np.random.default_rng(0).standard_normal((8, 3, 6, 6)) * 2 + 1)
        out = layer(x).data
        assert np.allclose(out.mean(axis=(0, 2, 3)), 0.0, atol=1e-7)

    def test_layernorm_normalises_each_sample(self):
        layer = nn.LayerNorm(5)
        x = Tensor(np.random.default_rng(0).standard_normal((7, 5)) * 3 + 2)
        out = layer(x).data
        assert np.allclose(out.mean(axis=1), 0.0, atol=1e-7)

    def test_instancenorm_normalises_per_sample_channel(self):
        layer = nn.InstanceNorm2d(2)
        x = Tensor(np.random.default_rng(0).standard_normal((3, 2, 8, 8)) + 4)
        out = layer(x).data
        assert np.allclose(out.mean(axis=(2, 3)), 0.0, atol=1e-6)

    def test_groupnorm_requires_divisible_channels(self):
        with pytest.raises(ValueError):
            nn.GroupNorm(3, 4)

    def test_groupnorm_normalises_groups(self):
        layer = nn.GroupNorm(2, 4)
        x = Tensor(np.random.default_rng(0).standard_normal((2, 4, 5, 5)) * 2 - 1)
        out = layer(x).data
        grouped = out.reshape(2, 2, 2, 5, 5)
        assert np.allclose(grouped.mean(axis=(2, 3, 4)), 0.0, atol=1e-6)

    def test_affine_parameters_trainable(self):
        layer = nn.BatchNorm2d(3)
        params = dict(layer.named_parameters())
        assert "weight" in params and "bias" in params

    def test_norm_without_affine_has_no_parameters(self):
        layer = nn.LayerNorm(3, affine=False)
        assert len(list(layer.parameters())) == 0

    def test_norm_gradients_flow(self):
        layer = nn.GroupNorm(2, 4)
        x = Tensor(np.random.default_rng(0).standard_normal((2, 4, 3, 3)), requires_grad=True)
        layer(x).sum().backward()
        assert x.grad is not None
        assert layer.weight.grad is not None


class TestActivationLayers:
    @pytest.mark.parametrize("name", ["relu", "leaky_relu", "elu", "gelu",
                                      "tanh", "sigmoid", "identity"])
    def test_factory_builds_every_activation(self, name):
        layer = make_activation(name)
        out = layer(Tensor(np.array([-1.0, 0.5])))
        assert out.shape == (2,)

    def test_factory_rejects_unknown(self):
        with pytest.raises(ValueError):
            make_activation("swishy")

    def test_identity_passthrough(self):
        x = Tensor(np.array([1.0, -2.0]))
        assert np.allclose(nn.Identity()(x).data, x.data)

    def test_repr_strings(self):
        assert "ReLU" in repr(nn.ReLU())
        assert "Dropout" in repr(nn.Dropout(0.2))
        assert "Linear" in repr(nn.Linear(2, 2))
