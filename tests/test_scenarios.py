"""Tests for the scenario subsystem: specs, store, runner, library, CLI.

The load-bearing guarantees:

* ``ScenarioSpec`` round-trips through JSON and its content hash is stable
  against key order and scheduling knobs;
* the result store resumes (skips) completed cells, detects corruption with
  a labeled error, and stores **byte-identical** report files for any
  worker count (the determinism contract made auditable on disk);
* the figure harnesses produce bit-identical curves with and without a
  store-backed runner.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.fault.drift import CompositeFault, LogNormalDrift, StuckAtFault
from repro.scenarios import (
    FaultSpec, ResultStore, ResultStoreError, Scenario, ScenarioRunner,
    ScenarioSpec, available_fault_models, available_scenarios, get_scenario,
)
from repro.scenarios.cli import main
from repro.scenarios.store import VOLATILE_REPORT_FIELDS
from repro.utils.config import ExperimentConfig


def tiny_spec(**overrides) -> ScenarioSpec:
    """A cell small enough that executing it takes well under a second."""
    defaults = dict(
        name="tiny", model="mlp", dataset="mnist",
        fault=FaultSpec("lognormal"), sigmas=(0.0, 0.8), trials=2, seed=3,
        train=ExperimentConfig(epochs=1, train_samples=64, test_samples=32,
                               batch_size=32, learning_rate=0.1))
    defaults.update(overrides)
    return ScenarioSpec(**defaults)


class TestFaultSpec:
    def test_registry_covers_issue_kinds(self):
        names = available_fault_models()
        for kind in ("lognormal", "gaussian", "uniform", "stuckat", "bitflip",
                     "composite"):
            assert kind in names

    def test_build_dispatches_severity(self):
        drift = FaultSpec("lognormal").build(0.7)
        assert isinstance(drift, LogNormalDrift) and drift.sigma == 0.7
        stuck = FaultSpec("stuckat", params={"stuck_value": 1.5}).build(0.2)
        assert isinstance(stuck, StuckAtFault)
        assert stuck.probability == 0.2 and stuck.stuck_value == 1.5

    def test_composite_parse_and_scale(self):
        spec = FaultSpec.parse("composite:lognormal+stuckat")
        assert spec.kind == "composite"
        assert [c.kind for c in spec.components] == ["lognormal", "stuckat"]
        scaled = FaultSpec("composite", components=(
            FaultSpec("lognormal"), FaultSpec("stuckat", scale=0.1)))
        built = scaled.build(1.0)
        assert isinstance(built, CompositeFault)
        assert built.models[1].probability == pytest.approx(0.1)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault model"):
            FaultSpec("made-up")

    def test_bad_params_raise_labeled_error(self):
        with pytest.raises(ValueError, match="bad parameters"):
            FaultSpec("bitflip", params={"nonsense": 3}).build(0.1)

    def test_json_round_trip(self):
        spec = FaultSpec("composite", components=(
            FaultSpec("gaussian", params={"relative": False}),
            FaultSpec("stuckat", scale=0.5)))
        assert FaultSpec.from_dict(spec.to_dict()).to_dict() == spec.to_dict()

    def test_from_dict_rejects_unknown_keys(self):
        """A typo'd key must not silently run a different fault model."""
        with pytest.raises(ValueError, match="unknown FaultSpec fields"):
            FaultSpec.from_dict({"kind": "gaussian",
                                 "parameters": {"relative": False}})


class TestScenarioSpec:
    def test_json_round_trip_preserves_hash(self):
        spec = tiny_spec(model_kwargs={"depth": 3},
                         context={"figure": "fig2_dropout", "harness_seed": 1})
        restored = ScenarioSpec.from_json(spec.to_json())
        assert restored.to_dict() == spec.to_dict()
        assert restored.spec_hash() == spec.spec_hash()

    def test_hash_stable_across_key_order(self):
        spec = tiny_spec()
        shuffled = dict(reversed(list(spec.to_dict().items())))
        # A JSON file whose keys arrive in any order names the same cell.
        assert ScenarioSpec.from_dict(
            json.loads(json.dumps(shuffled))).spec_hash() == spec.spec_hash()

    def test_hash_ignores_scheduling_knobs(self):
        base = tiny_spec()
        assert tiny_spec(workers=4).spec_hash() == base.spec_hash()
        assert tiny_spec(max_chunk_trials=1).spec_hash() == base.spec_hash()
        config = ExperimentConfig(
            epochs=1, train_samples=64, test_samples=32,
            extra={"sweep_workers": 8, "sweep_chunk_trials": 2})
        assert tiny_spec(train=config).spec_hash() == tiny_spec(
            train=ExperimentConfig(epochs=1, train_samples=64,
                                   test_samples=32)).spec_hash()

    def test_hash_ignores_search_scheduling_knobs(self):
        """The async-search knobs name how a run was scheduled, not what
        cell it computed — same contract as sweep_workers."""
        base = tiny_spec()
        assert tiny_spec(search_workers=4).spec_hash() == base.spec_hash()
        assert tiny_spec(suggest_batch=2).spec_hash() == base.spec_hash()
        config = ExperimentConfig(
            epochs=1, train_samples=64, test_samples=32,
            extra={"search_workers": 4, "suggest_batch": 2})
        assert tiny_spec(train=config).spec_hash() == tiny_spec(
            train=ExperimentConfig(epochs=1, train_samples=64,
                                   test_samples=32)).spec_hash()

    def test_search_knobs_round_trip_in_dict_form(self):
        spec = tiny_spec(search_workers=2, suggest_batch=3)
        restored = ScenarioSpec.from_dict(spec.to_dict())
        assert restored.search_workers == 2
        assert restored.suggest_batch == 3
        assert restored.spec_hash() == tiny_spec().spec_hash()

    def test_hash_covers_result_determining_fields(self):
        base = tiny_spec()
        assert tiny_spec(seed=4).spec_hash() != base.spec_hash()
        assert tiny_spec(fault=FaultSpec("gaussian")).spec_hash() != base.spec_hash()
        assert tiny_spec(sigmas=(0.0, 0.9)).spec_hash() != base.spec_hash()
        assert tiny_spec(trials=3).spec_hash() != base.spec_hash()

    def test_invalid_specs_rejected(self):
        with pytest.raises(ValueError):
            tiny_spec(sigmas=())
        with pytest.raises(ValueError):
            tiny_spec(trials=0)
        with pytest.raises(ValueError):
            tiny_spec(metric="bleu")


class TestResultStore:
    def _stored(self, tmp_path):
        spec = tiny_spec()
        runner = ScenarioRunner(ResultStore(tmp_path / "store"))
        run = runner.run(spec)
        return spec, runner.store, run

    def test_save_load_round_trip(self, tmp_path):
        spec, store, run = self._stored(tmp_path)
        assert store.contains(spec)
        loaded = store.load(spec)
        assert loaded.means == run.report.means
        assert loaded.trial_scores == run.report.trial_scores

    def test_resume_skips_completed_cells(self, tmp_path):
        spec, store, first = self._stored(tmp_path)
        second = ScenarioRunner(store).run(spec)
        assert not first.cached and second.cached
        assert second.report.means == first.report.means

    def test_corrupted_report_raises_labeled_error(self, tmp_path):
        spec, store, _ = self._stored(tmp_path)
        report_file = store.path_for(spec) / "report.json"
        report_file.write_text(report_file.read_text()[:40])  # truncate
        with pytest.raises(ResultStoreError, match="corrupted"):
            store.load(spec)

    def test_mistyped_report_fields_raise_labeled_error(self, tmp_path):
        """Valid JSON with a scalar where a list belongs is corruption too,
        not a bare TypeError escaping to the caller."""
        spec, store, _ = self._stored(tmp_path)
        report_file = store.path_for(spec) / "report.json"
        tampered = json.loads(report_file.read_text())
        tampered["sigmas"] = 0.5
        report_file.write_text(json.dumps(tampered))
        with pytest.raises(ResultStoreError, match="corrupted"):
            store.load(spec)

    def test_edited_spec_detected_by_hash_mismatch(self, tmp_path):
        spec, store, _ = self._stored(tmp_path)
        spec_file = store.path_for(spec) / "spec.json"
        tampered = json.loads(spec_file.read_text())
        tampered["seed"] = 999  # claims to be a different experiment
        spec_file.write_text(json.dumps(tampered))
        with pytest.raises(ResultStoreError, match="hashes to"):
            store.load(spec)

    def test_missing_file_raises(self, tmp_path):
        spec, store, _ = self._stored(tmp_path)
        (store.path_for(spec) / "meta.json").unlink()
        with pytest.raises(ResultStoreError, match="missing meta.json"):
            store.load(spec)
        # The failed load evicted the stale index row, so the hand-broken
        # entry stops answering membership checks.
        assert not store.contains(spec)

    def test_missing_entry_raises(self, tmp_path):
        store = ResultStore(tmp_path / "empty")
        with pytest.raises(ResultStoreError, match="no entry"):
            store.load(tiny_spec())

    def test_entries_iterates_and_validates(self, tmp_path):
        spec, store, _ = self._stored(tmp_path)
        entries = list(store.entries())
        assert len(entries) == len(store) == 1
        stored_spec, report, meta = entries[0]
        assert stored_spec.spec_hash() == spec.spec_hash()
        assert "volatile" in meta

    def test_stale_staging_directories_are_invisible(self, tmp_path):
        """Regression: a crash mid-save leaves `<hash>.tmp-<pid>` behind;
        it must not surface as an entry or break report/compare."""
        import shutil

        spec, store, _ = self._stored(tmp_path)
        entry = store.path_for(spec)
        shutil.copytree(entry, entry.with_name(entry.name + ".tmp-9999"))
        assert len(store) == 1
        assert len(list(store.entries())) == 1  # does not raise


class TestDeterminism:
    def test_stored_report_bytes_identical_for_any_workers(self, tmp_path):
        """The acceptance criterion: workers ∈ {0, 2} → same report.json."""
        spec = tiny_spec()
        payloads = {}
        for workers in (0, 2):
            store = ResultStore(tmp_path / f"store-w{workers}")
            ScenarioRunner(store, workers=workers).run(spec)
            payloads[workers] = (store.path_for(spec) / "report.json").read_bytes()
        assert payloads[0] == payloads[2]

    def test_volatile_fields_live_in_meta_not_report(self, tmp_path):
        spec = tiny_spec()
        store = ResultStore(tmp_path / "store")
        ScenarioRunner(store).run(spec)
        report = json.loads((store.path_for(spec) / "report.json").read_text())
        meta = json.loads((store.path_for(spec) / "meta.json").read_text())
        for field in VOLATILE_REPORT_FIELDS:
            assert field not in report
            assert field in meta["volatile"]


class TestScenarioRunner:
    def test_summary_reports_no_clean_accuracy_without_sigma_zero(self, tmp_path):
        """A grid that never visits severity 0 has nothing 'clean' in it."""
        spec = tiny_spec(sigmas=(0.5, 1.0))
        run = ScenarioRunner(ResultStore(tmp_path / "store")).run(spec)
        assert run.summary()["clean"] is None
        run_with_zero = ScenarioRunner().run(tiny_spec())
        assert run_with_zero.summary()["clean"] == run_with_zero.report.means[0]

    def test_figure_cell_specs_cannot_be_executed_declaratively(self):
        spec = tiny_spec(context={"figure": "fig2_dropout"})
        with pytest.raises(ValueError, match="figure-harness context"):
            ScenarioRunner().run(spec)

    def test_run_scenario_by_name_and_resume(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        first = ScenarioRunner(store).run_scenario("smoke")
        again = ScenarioRunner(store).run_scenario("smoke")
        assert [run.cached for run in first] == [False]
        assert [run.cached for run in again] == [True]
        assert again[0].report.means == first[0].report.means

    def test_figure_harness_with_store_matches_plain_run(self, tmp_path):
        """Store-backed and store-less runs produce bit-identical curves."""
        from repro.experiments import run_dropout_ablation

        config = ExperimentConfig(epochs=1, train_samples=64, test_samples=32,
                                  drift_trials=2, sigma_grid=(0.0, 1.0),
                                  batch_size=32, learning_rate=0.1)
        plain = run_dropout_ablation(config, seed=0)
        runner = ScenarioRunner(ResultStore(tmp_path / "store"))
        stored = run_dropout_ablation(config, seed=0, runner=runner)
        rerun = run_dropout_ablation(
            config, seed=0, runner=ScenarioRunner(runner.store))
        for a, b, c in zip(plain, stored, rerun):
            assert a.means == b.means == c.means
            assert a.stds == b.stds == c.stds
        assert len(runner.store) == 3  # one cell per dropout variant

    def test_figure_cell_hash_covers_call_site_variants(self, tmp_path):
        """Regression: the harness threads one RNG through every variant, so
        a call that runs a *subset* of variants trains different weights for
        the same label — its cells must not be answered from a store filled
        by the full-variant call."""
        from repro.experiments import run_dropout_ablation, run_depth_ablation

        config = ExperimentConfig(epochs=1, train_samples=64, test_samples=32,
                                  drift_trials=1, sigma_grid=(0.0, 1.0),
                                  batch_size=32, learning_rate=0.1)
        store = ResultStore(tmp_path / "store")
        run_depth_ablation(config, seed=0, depths=(3, 6),
                           runner=ScenarioRunner(store))
        subset_runner = ScenarioRunner(store)
        run_depth_ablation(config, seed=0, depths=(6,), runner=subset_runner)
        assert [run.cached for run in subset_runner.runs] == [False]

        # Different figures sharing a label/config never collide either.
        dropout_runner = ScenarioRunner(store)
        run_dropout_ablation(config, seed=0, runner=dropout_runner)
        assert not any(run.cached for run in dropout_runner.runs)

    def test_fig3_cell_hash_covers_method_subset(self, tmp_path):
        from repro.experiments.fig3_classification import _cell_spec

        config = ExperimentConfig.fast()
        full = _cell_spec("a_mlp_mnist", "ERM", "mlp", "mnist", config, 0,
                          methods=("erm", "bayesft"))
        subset = _cell_spec("a_mlp_mnist", "ERM", "mlp", "mnist", config, 0,
                            methods=("erm",))
        assert full.spec_hash() != subset.spec_hash()

    def test_scenario_registry_contents(self):
        names = available_scenarios()
        assert "smoke" in names and "fault_matrix" in names
        assert "fig2_dropout" in names and "fig3_b_lenet_mnist" in names
        scenario = get_scenario("fault_matrix")
        faults = {spec.fault.describe() for spec in scenario.cells()}
        assert {"lognormal", "gaussian", "uniform", "stuckat", "bitflip",
                "composite:lognormal+stuckat"} <= faults

    def test_register_scenario_validates_shape(self):
        from repro.scenarios import register_scenario

        with pytest.raises(ValueError, match="exactly one"):
            register_scenario(Scenario(name="x-test-only",
                                       description="no builder and no figure"))
        with pytest.raises(ValueError, match="already registered"):
            register_scenario(get_scenario("smoke"))


class TestCLI:
    def test_list_runs(self, capsys):
        assert main(["list"]) == 0
        assert "fault_matrix" in capsys.readouterr().out

    def test_run_report_compare_round_trip(self, tmp_path, capsys):
        out = str(tmp_path / "results")
        assert main(["run", "smoke", "--out", out, "--json"]) == 0
        first = json.loads(capsys.readouterr().out)
        assert first["cells_executed"] == 1 and first["cells_cached"] == 0

        assert main(["run", "smoke", "--out", out, "--json"]) == 0
        second = json.loads(capsys.readouterr().out)
        assert second["cells_cached"] >= 1  # the acceptance criterion

        assert main(["report", "--out", out, "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert len(report["cells"]) == 1
        assert report["cells"][0]["name"] == "smoke-mlp-lognormal"

        assert main(["compare", "smoke", "--out", out, "--json"]) == 0
        compare = json.loads(capsys.readouterr().out)
        assert compare["cells"][0]["fault"] == "lognormal"

    def test_compare_requires_stored_cells(self, tmp_path):
        with pytest.raises(SystemExit, match="not in"):
            main(["compare", "smoke", "--out", str(tmp_path / "nothing")])

    def test_compare_rejects_figure_scenarios(self, tmp_path):
        with pytest.raises(SystemExit, match="figure"):
            main(["compare", "fig2_dropout", "--out", str(tmp_path)])

    def test_corrupted_store_reported_as_error(self, tmp_path, capsys):
        out = str(tmp_path / "results")
        assert main(["run", "smoke", "--out", out]) == 0
        store = ResultStore(out)
        entry = next(iter(store.hashes()))
        (store.entry_dir(entry) / "report.json").write_text("{not json")
        assert main(["report", "--out", out]) == 2
        assert "corrupted" in capsys.readouterr().err


class TestPolicySpecs:
    """Per-layer fault policies as spec data (`policy` field + registry)."""

    POLICY = {"kind": "per_layer_sigma",
              "sigma_scales": {r"layers\.0": 2.0},
              "default_scale": 0.5}

    def test_policy_registry_contents(self):
        from repro.fault.policy import available_policies

        assert {"uniform", "per_layer_sigma"} <= set(available_policies())

    def test_policy_enters_the_spec_hash(self):
        base = tiny_spec()
        with_policy = tiny_spec(policy=dict(self.POLICY))
        assert with_policy.spec_hash() != base.spec_hash()
        # ... and different policy parameters are different cells.
        stronger = dict(self.POLICY, default_scale=1.0)
        assert tiny_spec(policy=stronger).spec_hash() != with_policy.spec_hash()

    def test_policy_hash_stable_across_json_round_trip(self):
        spec = tiny_spec(policy=dict(self.POLICY))
        restored = ScenarioSpec.from_json(spec.to_json())
        assert restored.policy == spec.policy
        assert restored.spec_hash() == spec.spec_hash()

    def test_unknown_policy_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault policy"):
            tiny_spec(policy={"kind": "chaotic"})
        with pytest.raises(ValueError, match="'kind'"):
            tiny_spec(policy={"sigma_scales": {}})

    def test_per_layer_sigma_requires_lognormal_fault(self, tmp_path):
        from repro.fault.policy import build_policy

        with pytest.raises(ValueError, match="log-normal"):
            build_policy("per_layer_sigma", 0.5, FaultSpec("stuckat"),
                         sigma_scales={"w": 1.0})

    def test_policy_cell_executes_and_differs_from_uniform(self, tmp_path):
        runner = ScenarioRunner(ResultStore(tmp_path / "results"))
        uniform = runner.run(tiny_spec(name="uniform-cell"))
        # Only the first layer drifts, at double strength; everything else
        # stays clean — a different measurement than uniform drift.
        selective = runner.run(tiny_spec(
            name="policy-cell",
            policy={"kind": "per_layer_sigma",
                    "sigma_scales": {r"layers\.0\.": 2.0}}))
        assert uniform.report.means[0] == selective.report.means[0]  # σ=0
        assert uniform.report.trial_scores != selective.report.trial_scores

    def test_policy_cell_resumes_from_store(self, tmp_path):
        store = ResultStore(tmp_path / "results")
        spec = tiny_spec(name="policy-resume", policy=dict(self.POLICY))
        first = ScenarioRunner(store).run(spec)
        second = ScenarioRunner(store).run(spec)
        assert not first.cached and second.cached
        assert second.report.means == first.report.means


class TestDetectionCells:
    """Declarative fig3-detection-style cells (mAP sweeps in the runner)."""

    def test_detection_smoke_scenario_runs_and_resumes(self, tmp_path):
        store = ResultStore(tmp_path / "results")
        cold = ScenarioRunner(store).run_scenario("detection_smoke")
        assert len(cold) == 1 and not cold[0].cached
        report = cold[0].report
        assert report.sigmas[0] == 0.0
        assert report.means[0] > 0.2          # the detector really detects
        assert report.means[-1] < report.means[0]   # and drift degrades it
        resumed = ScenarioRunner(store).run_scenario("detection_smoke")
        assert resumed[0].cached
        assert resumed[0].report.means == report.means

    def test_detection_cell_requires_map_metric(self):
        spec = tiny_spec(name="bad-detector", model="detector",
                         dataset="pedestrians", metric="accuracy",
                         image_size=32)
        with pytest.raises(ValueError, match="metric='map'"):
            ScenarioRunner().run(spec)

    def test_detection_cell_is_scheduling_invariant(self, tmp_path):
        spec = get_scenario("detection_smoke").cells(seed=0)[0]
        serial = ScenarioRunner().run(spec)
        parallel = ScenarioRunner(workers=2, backend="shared_memory").run(spec)
        assert (parallel.report.to_json(canonical=True)
                == serial.report.to_json(canonical=True))


class TestCellFanOut:
    """run_specs(backend="process"): matrix cells over worker processes."""

    def _specs(self):
        return [tiny_spec(name=f"cell-{i}", seed=i) for i in range(3)]

    def test_fanned_matrix_matches_serial_bit_for_bit(self, tmp_path):
        specs = self._specs()
        serial_store = ResultStore(tmp_path / "serial")
        ScenarioRunner(serial_store).run_specs(specs)
        fanned_store = ResultStore(tmp_path / "fanned")
        runs = ScenarioRunner(fanned_store).run_specs(
            specs, backend="process", cell_workers=2)
        assert [run.spec.name for run in runs] == [s.name for s in specs]
        for spec in specs:
            a = (serial_store.path_for(spec) / "report.json").read_bytes()
            b = (fanned_store.path_for(spec) / "report.json").read_bytes()
            assert a == b

    def test_interrupted_fill_in_resumes_without_recompute(self, tmp_path):
        specs = self._specs()
        store = ResultStore(tmp_path / "results")
        # A "killed" matrix run that only finished the first cell.
        ScenarioRunner(store).run_specs(specs[:1])
        runner = ScenarioRunner(store)
        runs = runner.run_specs(specs, backend="process", cell_workers=2)
        assert [run.cached for run in runs] == [True, False, False]
        # Everything is now stored; a further run recomputes nothing.
        again = ScenarioRunner(store).run_specs(specs, backend="process",
                                                cell_workers=2)
        assert [run.cached for run in again] == [True, True, True]

    def test_trial_backends_rejected_for_cells(self):
        with pytest.raises(ValueError, match="trial-level backend"):
            ScenarioRunner().run_specs(self._specs(), backend="shared_memory")

    def test_figure_context_cells_cannot_fan_out(self):
        specs = [tiny_spec(name=f"ctx-{i}", context={"figure": "fig9"})
                 for i in range(2)]
        with pytest.raises(ValueError, match="figure-harness context"):
            ScenarioRunner().run_specs(specs, backend="process")

    def test_figure_scenarios_cannot_fan_out(self, tmp_path):
        runner = ScenarioRunner(ResultStore(tmp_path / "results"))
        with pytest.raises(ValueError, match="cannot fan out"):
            runner.run_scenario("fig2_dropout", cell_backend="process")


class TestStoreGC:
    def _filled(self, tmp_path, n=3):
        store = ResultStore(tmp_path / "results")
        runner = ScenarioRunner(store)
        for i in range(n):
            runner.run(tiny_spec(name=f"gc-{i}", seed=i), scenario="gc-test")
        return store

    def test_stats_accounting(self, tmp_path):
        store = self._filled(tmp_path)
        stats = store.stats()
        assert stats["entries"] == 3
        assert stats["total_bytes"] > 0
        assert stats["by_scenario"] == {"gc-test": 3}
        assert stats["oldest"] <= stats["newest"]
        assert stats["stale_staging_dirs"] == 0

    def test_gc_keep_latest_removes_oldest(self, tmp_path):
        store = self._filled(tmp_path)
        # Make creation order unambiguous (the stamp has 1s resolution);
        # gc ranks from the index, so hand-edited stamps need a reindex.
        for index, spec_hash in enumerate(sorted(store.hashes())):
            meta_path = store.entry_dir(spec_hash) / "meta.json"
            meta = json.loads(meta_path.read_text())
            meta["created_at"] = f"2026-01-0{index + 1}T00:00:00+0000"
            meta_path.write_text(json.dumps(meta))
        store.reindex()
        ordered = sorted(store.hashes())
        result = store.gc(keep_latest=1)
        assert result["entries_kept"] == 1
        assert sorted(result["removed_entries"]) == ordered[:2]
        assert result["bytes_freed"] > 0
        assert list(store.hashes()) == [ordered[2]]

    def test_gc_dry_run_deletes_nothing(self, tmp_path):
        store = self._filled(tmp_path)
        result = store.gc(keep_latest=0, dry_run=True)
        assert len(result["removed_entries"]) == 3 and result["dry_run"]
        assert store.stats()["entries"] == 3

    def test_gc_collects_stale_staging_dirs(self, tmp_path):
        store = self._filled(tmp_path, n=1)
        stale = store.root / ("f" * 64 + ".tmp-123")
        stale.mkdir()
        (stale / "report.json").write_text("{}")
        assert store.stats()["stale_staging_dirs"] == 1
        result = store.gc()
        assert result["removed_staging"] == [stale.name]
        assert result["removed_entries"] == []
        assert not stale.exists()
        assert store.stats()["entries"] == 1  # complete entries untouched

    def test_gc_rejects_negative_keep(self, tmp_path):
        with pytest.raises(ValueError, match="non-negative"):
            ResultStore(tmp_path).gc(keep_latest=-1)

    def test_cli_gc_round_trip(self, tmp_path, capsys):
        out = str(tmp_path / "results")
        assert main(["run", "smoke", "--out", out]) == 0
        capsys.readouterr()
        assert main(["gc", "--out", out, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["before"]["entries"] == 1
        assert payload["gc"]["removed_entries"] == []
        assert main(["gc", "--out", out, "--keep-latest", "0", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert len(payload["gc"]["removed_entries"]) == 1
        assert payload["after"]["entries"] == 0


class TestSchedulingKnobInvariance:
    def test_backend_knob_never_enters_the_hash(self):
        base = tiny_spec()
        assert tiny_spec(backend="shared_memory").spec_hash() == base.spec_hash()
        assert tiny_spec(workers=4, backend="process").spec_hash() == base.spec_hash()

    def test_runner_backend_override_is_result_invariant(self, tmp_path):
        spec = tiny_spec(name="backend-invariant")
        serial = ScenarioRunner().run(spec)
        shm = ScenarioRunner(workers=2, backend="shared_memory").run(spec)
        assert (shm.report.to_json(canonical=True)
                == serial.report.to_json(canonical=True))

    def test_cli_backend_flag_produces_identical_store(self, tmp_path, capsys):
        plain, shm = str(tmp_path / "plain"), str(tmp_path / "shm")
        assert main(["run", "smoke", "--out", plain, "--json"]) == 0
        assert main(["run", "smoke", "--out", shm, "--workers", "2",
                     "--backend", "shared_memory", "--json"]) == 0
        capsys.readouterr()
        store = ResultStore(plain)
        entry = next(iter(store.hashes()))
        a = (ResultStore(plain).entry_dir(entry) / "report.json").read_bytes()
        b = (ResultStore(shm).entry_dir(entry) / "report.json").read_bytes()
        assert a == b


class TestCellFanOutOverrides:
    def test_runner_overrides_reach_worker_cells(self, tmp_path):
        """--chunk-trials etc. must keep working under --cell-workers.

        The engine setting a cell ran with is auditable in its meta.json
        volatile record, so the stored cells prove the override crossed
        the process boundary.
        """
        store = ResultStore(tmp_path / "results")
        specs = [tiny_spec(name=f"ov-{i}", seed=i) for i in range(2)]
        runner = ScenarioRunner(store, max_chunk_trials=1)
        runner.run_specs(specs, backend="process", cell_workers=2)
        for spec in specs:
            meta = json.loads(
                (store.path_for(spec) / "meta.json").read_text())
            assert meta["volatile"]["max_chunk_trials"] == 1
            assert meta["volatile"]["peak_resident_trials"] == 1

    def test_cell_errors_propagate_without_serial_retry(self, tmp_path):
        """A deterministic cell failure is not pool breakage: no fallback
        warning, no wasted serial recompute — the original error surfaces."""
        import warnings as warnings_module

        # Passes spec validation, fails in the runner: detection dataset
        # with a classification metric.
        bad = tiny_spec(name="bad-cell", model="detector",
                        dataset="pedestrians", metric="accuracy",
                        image_size=32)
        good = tiny_spec(name="good-cell")
        runner = ScenarioRunner(ResultStore(tmp_path / "results"))
        with warnings_module.catch_warnings():
            warnings_module.simplefilter("error", RuntimeWarning)
            with pytest.raises(ValueError, match="metric='map'"):
                runner.run_specs([bad, good], backend="process",
                                 cell_workers=2)
