"""Tests for the scenario subsystem: specs, store, runner, library, CLI.

The load-bearing guarantees:

* ``ScenarioSpec`` round-trips through JSON and its content hash is stable
  against key order and scheduling knobs;
* the result store resumes (skips) completed cells, detects corruption with
  a labeled error, and stores **byte-identical** report files for any
  worker count (the determinism contract made auditable on disk);
* the figure harnesses produce bit-identical curves with and without a
  store-backed runner.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.fault.drift import CompositeFault, LogNormalDrift, StuckAtFault
from repro.scenarios import (
    FaultSpec, ResultStore, ResultStoreError, Scenario, ScenarioRunner,
    ScenarioSpec, available_fault_models, available_scenarios, get_scenario,
)
from repro.scenarios.cli import main
from repro.scenarios.store import VOLATILE_REPORT_FIELDS
from repro.utils.config import ExperimentConfig


def tiny_spec(**overrides) -> ScenarioSpec:
    """A cell small enough that executing it takes well under a second."""
    defaults = dict(
        name="tiny", model="mlp", dataset="mnist",
        fault=FaultSpec("lognormal"), sigmas=(0.0, 0.8), trials=2, seed=3,
        train=ExperimentConfig(epochs=1, train_samples=64, test_samples=32,
                               batch_size=32, learning_rate=0.1))
    defaults.update(overrides)
    return ScenarioSpec(**defaults)


class TestFaultSpec:
    def test_registry_covers_issue_kinds(self):
        names = available_fault_models()
        for kind in ("lognormal", "gaussian", "uniform", "stuckat", "bitflip",
                     "composite"):
            assert kind in names

    def test_build_dispatches_severity(self):
        drift = FaultSpec("lognormal").build(0.7)
        assert isinstance(drift, LogNormalDrift) and drift.sigma == 0.7
        stuck = FaultSpec("stuckat", params={"stuck_value": 1.5}).build(0.2)
        assert isinstance(stuck, StuckAtFault)
        assert stuck.probability == 0.2 and stuck.stuck_value == 1.5

    def test_composite_parse_and_scale(self):
        spec = FaultSpec.parse("composite:lognormal+stuckat")
        assert spec.kind == "composite"
        assert [c.kind for c in spec.components] == ["lognormal", "stuckat"]
        scaled = FaultSpec("composite", components=(
            FaultSpec("lognormal"), FaultSpec("stuckat", scale=0.1)))
        built = scaled.build(1.0)
        assert isinstance(built, CompositeFault)
        assert built.models[1].probability == pytest.approx(0.1)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault model"):
            FaultSpec("made-up")

    def test_bad_params_raise_labeled_error(self):
        with pytest.raises(ValueError, match="bad parameters"):
            FaultSpec("bitflip", params={"nonsense": 3}).build(0.1)

    def test_json_round_trip(self):
        spec = FaultSpec("composite", components=(
            FaultSpec("gaussian", params={"relative": False}),
            FaultSpec("stuckat", scale=0.5)))
        assert FaultSpec.from_dict(spec.to_dict()).to_dict() == spec.to_dict()

    def test_from_dict_rejects_unknown_keys(self):
        """A typo'd key must not silently run a different fault model."""
        with pytest.raises(ValueError, match="unknown FaultSpec fields"):
            FaultSpec.from_dict({"kind": "gaussian",
                                 "parameters": {"relative": False}})


class TestScenarioSpec:
    def test_json_round_trip_preserves_hash(self):
        spec = tiny_spec(model_kwargs={"depth": 3},
                         context={"figure": "fig2_dropout", "harness_seed": 1})
        restored = ScenarioSpec.from_json(spec.to_json())
        assert restored.to_dict() == spec.to_dict()
        assert restored.spec_hash() == spec.spec_hash()

    def test_hash_stable_across_key_order(self):
        spec = tiny_spec()
        shuffled = dict(reversed(list(spec.to_dict().items())))
        # A JSON file whose keys arrive in any order names the same cell.
        assert ScenarioSpec.from_dict(
            json.loads(json.dumps(shuffled))).spec_hash() == spec.spec_hash()

    def test_hash_ignores_scheduling_knobs(self):
        base = tiny_spec()
        assert tiny_spec(workers=4).spec_hash() == base.spec_hash()
        assert tiny_spec(max_chunk_trials=1).spec_hash() == base.spec_hash()
        config = ExperimentConfig(
            epochs=1, train_samples=64, test_samples=32,
            extra={"sweep_workers": 8, "sweep_chunk_trials": 2})
        assert tiny_spec(train=config).spec_hash() == tiny_spec(
            train=ExperimentConfig(epochs=1, train_samples=64,
                                   test_samples=32)).spec_hash()

    def test_hash_covers_result_determining_fields(self):
        base = tiny_spec()
        assert tiny_spec(seed=4).spec_hash() != base.spec_hash()
        assert tiny_spec(fault=FaultSpec("gaussian")).spec_hash() != base.spec_hash()
        assert tiny_spec(sigmas=(0.0, 0.9)).spec_hash() != base.spec_hash()
        assert tiny_spec(trials=3).spec_hash() != base.spec_hash()

    def test_invalid_specs_rejected(self):
        with pytest.raises(ValueError):
            tiny_spec(sigmas=())
        with pytest.raises(ValueError):
            tiny_spec(trials=0)
        with pytest.raises(ValueError):
            tiny_spec(metric="bleu")


class TestResultStore:
    def _stored(self, tmp_path):
        spec = tiny_spec()
        runner = ScenarioRunner(ResultStore(tmp_path / "store"))
        run = runner.run(spec)
        return spec, runner.store, run

    def test_save_load_round_trip(self, tmp_path):
        spec, store, run = self._stored(tmp_path)
        assert store.contains(spec)
        loaded = store.load(spec)
        assert loaded.means == run.report.means
        assert loaded.trial_scores == run.report.trial_scores

    def test_resume_skips_completed_cells(self, tmp_path):
        spec, store, first = self._stored(tmp_path)
        second = ScenarioRunner(store).run(spec)
        assert not first.cached and second.cached
        assert second.report.means == first.report.means

    def test_corrupted_report_raises_labeled_error(self, tmp_path):
        spec, store, _ = self._stored(tmp_path)
        report_file = store.path_for(spec) / "report.json"
        report_file.write_text(report_file.read_text()[:40])  # truncate
        with pytest.raises(ResultStoreError, match="corrupted"):
            store.load(spec)

    def test_mistyped_report_fields_raise_labeled_error(self, tmp_path):
        """Valid JSON with a scalar where a list belongs is corruption too,
        not a bare TypeError escaping to the caller."""
        spec, store, _ = self._stored(tmp_path)
        report_file = store.path_for(spec) / "report.json"
        tampered = json.loads(report_file.read_text())
        tampered["sigmas"] = 0.5
        report_file.write_text(json.dumps(tampered))
        with pytest.raises(ResultStoreError, match="corrupted"):
            store.load(spec)

    def test_edited_spec_detected_by_hash_mismatch(self, tmp_path):
        spec, store, _ = self._stored(tmp_path)
        spec_file = store.path_for(spec) / "spec.json"
        tampered = json.loads(spec_file.read_text())
        tampered["seed"] = 999  # claims to be a different experiment
        spec_file.write_text(json.dumps(tampered))
        with pytest.raises(ResultStoreError, match="hashes to"):
            store.load(spec)

    def test_missing_file_raises(self, tmp_path):
        spec, store, _ = self._stored(tmp_path)
        (store.path_for(spec) / "meta.json").unlink()
        assert not store.contains(spec)
        with pytest.raises(ResultStoreError, match="missing meta.json"):
            store.load(spec)

    def test_missing_entry_raises(self, tmp_path):
        store = ResultStore(tmp_path / "empty")
        with pytest.raises(ResultStoreError, match="no entry"):
            store.load(tiny_spec())

    def test_entries_iterates_and_validates(self, tmp_path):
        spec, store, _ = self._stored(tmp_path)
        entries = list(store.entries())
        assert len(entries) == len(store) == 1
        stored_spec, report, meta = entries[0]
        assert stored_spec.spec_hash() == spec.spec_hash()
        assert "volatile" in meta

    def test_stale_staging_directories_are_invisible(self, tmp_path):
        """Regression: a crash mid-save leaves `<hash>.tmp-<pid>` behind;
        it must not surface as an entry or break report/compare."""
        import shutil

        spec, store, _ = self._stored(tmp_path)
        entry = store.path_for(spec)
        shutil.copytree(entry, entry.with_name(entry.name + ".tmp-9999"))
        assert len(store) == 1
        assert len(list(store.entries())) == 1  # does not raise


class TestDeterminism:
    def test_stored_report_bytes_identical_for_any_workers(self, tmp_path):
        """The acceptance criterion: workers ∈ {0, 2} → same report.json."""
        spec = tiny_spec()
        payloads = {}
        for workers in (0, 2):
            store = ResultStore(tmp_path / f"store-w{workers}")
            ScenarioRunner(store, workers=workers).run(spec)
            payloads[workers] = (store.path_for(spec) / "report.json").read_bytes()
        assert payloads[0] == payloads[2]

    def test_volatile_fields_live_in_meta_not_report(self, tmp_path):
        spec = tiny_spec()
        store = ResultStore(tmp_path / "store")
        ScenarioRunner(store).run(spec)
        report = json.loads((store.path_for(spec) / "report.json").read_text())
        meta = json.loads((store.path_for(spec) / "meta.json").read_text())
        for field in VOLATILE_REPORT_FIELDS:
            assert field not in report
            assert field in meta["volatile"]


class TestScenarioRunner:
    def test_summary_reports_no_clean_accuracy_without_sigma_zero(self, tmp_path):
        """A grid that never visits severity 0 has nothing 'clean' in it."""
        spec = tiny_spec(sigmas=(0.5, 1.0))
        run = ScenarioRunner(ResultStore(tmp_path / "store")).run(spec)
        assert run.summary()["clean"] is None
        run_with_zero = ScenarioRunner().run(tiny_spec())
        assert run_with_zero.summary()["clean"] == run_with_zero.report.means[0]

    def test_figure_cell_specs_cannot_be_executed_declaratively(self):
        spec = tiny_spec(context={"figure": "fig2_dropout"})
        with pytest.raises(ValueError, match="figure-harness context"):
            ScenarioRunner().run(spec)

    def test_run_scenario_by_name_and_resume(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        first = ScenarioRunner(store).run_scenario("smoke")
        again = ScenarioRunner(store).run_scenario("smoke")
        assert [run.cached for run in first] == [False]
        assert [run.cached for run in again] == [True]
        assert again[0].report.means == first[0].report.means

    def test_figure_harness_with_store_matches_plain_run(self, tmp_path):
        """Store-backed and store-less runs produce bit-identical curves."""
        from repro.experiments import run_dropout_ablation

        config = ExperimentConfig(epochs=1, train_samples=64, test_samples=32,
                                  drift_trials=2, sigma_grid=(0.0, 1.0),
                                  batch_size=32, learning_rate=0.1)
        plain = run_dropout_ablation(config, seed=0)
        runner = ScenarioRunner(ResultStore(tmp_path / "store"))
        stored = run_dropout_ablation(config, seed=0, runner=runner)
        rerun = run_dropout_ablation(
            config, seed=0, runner=ScenarioRunner(runner.store))
        for a, b, c in zip(plain, stored, rerun):
            assert a.means == b.means == c.means
            assert a.stds == b.stds == c.stds
        assert len(runner.store) == 3  # one cell per dropout variant

    def test_figure_cell_hash_covers_call_site_variants(self, tmp_path):
        """Regression: the harness threads one RNG through every variant, so
        a call that runs a *subset* of variants trains different weights for
        the same label — its cells must not be answered from a store filled
        by the full-variant call."""
        from repro.experiments import run_dropout_ablation, run_depth_ablation

        config = ExperimentConfig(epochs=1, train_samples=64, test_samples=32,
                                  drift_trials=1, sigma_grid=(0.0, 1.0),
                                  batch_size=32, learning_rate=0.1)
        store = ResultStore(tmp_path / "store")
        run_depth_ablation(config, seed=0, depths=(3, 6),
                           runner=ScenarioRunner(store))
        subset_runner = ScenarioRunner(store)
        run_depth_ablation(config, seed=0, depths=(6,), runner=subset_runner)
        assert [run.cached for run in subset_runner.runs] == [False]

        # Different figures sharing a label/config never collide either.
        dropout_runner = ScenarioRunner(store)
        run_dropout_ablation(config, seed=0, runner=dropout_runner)
        assert not any(run.cached for run in dropout_runner.runs)

    def test_fig3_cell_hash_covers_method_subset(self, tmp_path):
        from repro.experiments.fig3_classification import _cell_spec

        config = ExperimentConfig.fast()
        full = _cell_spec("a_mlp_mnist", "ERM", "mlp", "mnist", config, 0,
                          methods=("erm", "bayesft"))
        subset = _cell_spec("a_mlp_mnist", "ERM", "mlp", "mnist", config, 0,
                            methods=("erm",))
        assert full.spec_hash() != subset.spec_hash()

    def test_scenario_registry_contents(self):
        names = available_scenarios()
        assert "smoke" in names and "fault_matrix" in names
        assert "fig2_dropout" in names and "fig3_b_lenet_mnist" in names
        scenario = get_scenario("fault_matrix")
        faults = {spec.fault.describe() for spec in scenario.cells()}
        assert {"lognormal", "gaussian", "uniform", "stuckat", "bitflip",
                "composite:lognormal+stuckat"} <= faults

    def test_register_scenario_validates_shape(self):
        from repro.scenarios import register_scenario

        with pytest.raises(ValueError, match="exactly one"):
            register_scenario(Scenario(name="x-test-only",
                                       description="no builder and no figure"))
        with pytest.raises(ValueError, match="already registered"):
            register_scenario(get_scenario("smoke"))


class TestCLI:
    def test_list_runs(self, capsys):
        assert main(["list"]) == 0
        assert "fault_matrix" in capsys.readouterr().out

    def test_run_report_compare_round_trip(self, tmp_path, capsys):
        out = str(tmp_path / "results")
        assert main(["run", "smoke", "--out", out, "--json"]) == 0
        first = json.loads(capsys.readouterr().out)
        assert first["cells_executed"] == 1 and first["cells_cached"] == 0

        assert main(["run", "smoke", "--out", out, "--json"]) == 0
        second = json.loads(capsys.readouterr().out)
        assert second["cells_cached"] >= 1  # the acceptance criterion

        assert main(["report", "--out", out, "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert len(report["cells"]) == 1
        assert report["cells"][0]["name"] == "smoke-mlp-lognormal"

        assert main(["compare", "smoke", "--out", out, "--json"]) == 0
        compare = json.loads(capsys.readouterr().out)
        assert compare["cells"][0]["fault"] == "lognormal"

    def test_compare_requires_stored_cells(self, tmp_path):
        with pytest.raises(SystemExit, match="not in"):
            main(["compare", "smoke", "--out", str(tmp_path / "nothing")])

    def test_compare_rejects_figure_scenarios(self, tmp_path):
        with pytest.raises(SystemExit, match="figure"):
            main(["compare", "fig2_dropout", "--out", str(tmp_path)])

    def test_corrupted_store_reported_as_error(self, tmp_path, capsys):
        out = str(tmp_path / "results")
        assert main(["run", "smoke", "--out", out]) == 0
        store = ResultStore(out)
        entry = next(iter(store.hashes()))
        (store.root / entry / "report.json").write_text("{not json")
        assert main(["report", "--out", out]) == 2
        assert "corrupted" in capsys.readouterr().err
