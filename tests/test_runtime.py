"""Tests for the warm execution runtime (`repro.execution.runtime`).

Three contracts, in descending order of importance:

* **Determinism is untouched.**  Canonical sweep reports, golden BO
  traces and store bytes are byte-identical with warm reuse on or off —
  the runtime moves *where* pools and bytes live, never what is
  evaluated.
* **Lifecycle hygiene.**  Leases never cross a fork, broken pools are
  evicted instead of resold, the idle TTL and segment cap actually reap,
  and ``shutdown()`` leaves no live worker processes and no
  ``/dev/shm`` segments behind.
* **Observability.**  ``pool_reuses`` / ``cold_starts`` /
  ``segment_reuses`` surface through the ambient telemetry session and
  the ``trace summarize`` report, and ``workers_used`` reflects the
  configured cap rather than an executor internal.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import time
from contextlib import contextmanager
from multiprocessing import shared_memory

import numpy as np
import pytest

from repro.data import SyntheticMNIST, train_test_split
from repro.evaluation import DriftSweepEngine
from repro.execution import validate_backend
from repro.execution.runtime import (
    ExecutionRuntime, get_runtime, read_payload, using_runtime,
)
from repro.models import build_mlp
from repro.training import train_classifier

HAVE_FORK = "fork" in multiprocessing.get_all_start_methods()


@contextmanager
def fresh_runtime(**kwargs):
    """A private runtime for one test: swapped in globally, shut down after."""
    runtime = ExecutionRuntime(**kwargs)
    try:
        with using_runtime(runtime):
            yield runtime
    finally:
        runtime.shutdown()


@pytest.fixture(scope="module")
def trained():
    dataset = SyntheticMNIST(n_samples=200, image_size=16, rng=13)
    train_set, test_set = train_test_split(dataset, test_fraction=0.3, rng=13)
    model = build_mlp(256, depth=3, width=32, num_classes=10, rng=13)
    train_classifier(model, train_set, epochs=3, learning_rate=0.1, rng=13)
    return model, test_set


def _canonical(trained, **kwargs) -> str:
    model, test_set = trained
    report = DriftSweepEngine(model, test_set, trials=3, rng=99,
                              **kwargs).run((0.0, 0.6, 1.2), label="warm")
    return report.to_json(canonical=True)


# Module-level so a leased pool can ship them to its workers.
def _probe_nested_lease(_):
    from repro.execution.runtime import get_runtime
    return get_runtime().lease_pool(2) is None


def _kill_worker(_):
    os._exit(1)


def _child_runtime_view(queue):
    runtime = get_runtime()
    queue.put({"stats": runtime.stats(),
               "lease_is_none": runtime.lease_pool(2) is None})


# --------------------------------------------------------------------------- #
class TestRuntimeCore:
    def test_disabled_or_serial_never_leases(self):
        runtime = ExecutionRuntime(enabled=False)
        assert runtime.lease_pool(2) is None
        assert runtime.lease_payload(b"x") is None
        enabled = ExecutionRuntime(enabled=True)
        try:
            assert enabled.lease_pool(0) is None
            assert enabled.lease_pool(1) is None
        finally:
            enabled.shutdown()

    def test_pool_reuse_hands_back_the_same_executor(self):
        with fresh_runtime() as runtime:
            first = runtime.lease_pool(2)
            pool = first.pool
            first.release()
            second = runtime.lease_pool(2)
            assert second.pool is pool
            second.release()
            counters = runtime.stats()["counters"]
            assert counters["cold_starts"] == 1
            assert counters["pool_reuses"] == 1

    def test_release_is_idempotent(self):
        with fresh_runtime() as runtime:
            lease = runtime.lease_pool(2)
            lease.release()
            lease.release()  # second release must be a no-op
            assert runtime.stats()["pools"] == 1

    def test_payload_published_once_per_digest(self):
        payload = pickle.dumps({"weights": np.arange(6.0)})
        with fresh_runtime() as runtime:
            first = runtime.lease_payload(payload)
            second = runtime.lease_payload(payload)
            assert second.handle == first.handle
            third = runtime.lease_payload(payload + b"!")
            assert third.handle != first.handle
            counters = runtime.stats()["counters"]
            assert counters["segments_published"] == 2
            assert counters["segment_reuses"] == 1
            roundtrip = read_payload(first.handle)
            np.testing.assert_array_equal(roundtrip["weights"], np.arange(6.0))
            for lease in (first, second, third):
                lease.release()

    def test_idle_ttl_reaps_unleased_segments_and_pools(self):
        with fresh_runtime(idle_ttl=0.0) as runtime:
            lease = runtime.lease_payload(b"ephemeral")
            name = lease.handle[1]
            pool_lease = runtime.lease_pool(2)
            lease.release()
            pool_lease.release()
            time.sleep(0.01)
            runtime.reap()
            stats = runtime.stats()
            assert stats["segments"] == 0 and stats["pools"] == 0
            with pytest.raises(FileNotFoundError):
                shared_memory.SharedMemory(name=name)

    def test_leased_resources_survive_the_reaper(self):
        with fresh_runtime(idle_ttl=0.0) as runtime:
            lease = runtime.lease_payload(b"pinned")
            pool_lease = runtime.lease_pool(2)
            time.sleep(0.01)
            runtime.reap()
            stats = runtime.stats()
            assert stats["segments"] == 1 and stats["pools"] == 1
            segment = shared_memory.SharedMemory(name=lease.handle[1])
            segment.close()
            lease.release()
            pool_lease.release()

    def test_idle_segment_cap_evicts_oldest_first(self):
        with fresh_runtime(max_idle_segments=1) as runtime:
            leases = [runtime.lease_payload(bytes([i]) * 8) for i in range(3)]
            names = [lease.handle[1] for lease in leases]
            for lease in leases:
                lease.release()
            runtime.reap()
            assert runtime.stats()["segments"] == 1
            for name in names[:2]:
                with pytest.raises(FileNotFoundError):
                    shared_memory.SharedMemory(name=name)
            survivor = shared_memory.SharedMemory(name=names[2])
            survivor.close()

    def test_shutdown_leaves_no_processes_or_segments(self):
        with fresh_runtime() as runtime:
            lease = runtime.lease_pool(2)
            # Materialise the workers before recording their pids.
            assert lease.pool.submit(max, 1, 2).result() == 2
            pids = [proc.pid for proc in lease.pool._processes.values()]
            assert pids
            payload = runtime.lease_payload(b"to-be-unlinked")
            name = payload.handle[1]
            lease.release()
            payload.release()
            runtime.shutdown()
            for pid in pids:
                for _ in range(100):
                    try:
                        os.kill(pid, 0)
                    except ProcessLookupError:
                        break
                    time.sleep(0.05)
                else:
                    pytest.fail(f"worker {pid} still alive after shutdown()")
            with pytest.raises(FileNotFoundError):
                shared_memory.SharedMemory(name=name)
            stats = runtime.stats()
            assert stats["pools"] == 0 and stats["segments"] == 0

    def test_release_after_shutdown_is_a_noop(self):
        with fresh_runtime() as runtime:
            lease = runtime.lease_pool(2)
            segment = runtime.lease_payload(b"gone")
            runtime.shutdown()
            lease.release()
            segment.release()
            assert runtime.stats()["pools"] == 0

    def test_broken_pool_evicted_and_next_lease_is_cold(self):
        with fresh_runtime() as runtime:
            lease = runtime.lease_pool(2)
            with pytest.raises(Exception):  # BrokenProcessPool
                lease.pool.submit(_kill_worker, None).result()
            lease.release()
            replacement = runtime.lease_pool(2)
            assert not getattr(replacement.pool, "_broken", False)
            assert replacement.pool.submit(max, 3, 4).result() == 4
            replacement.release()
            assert runtime.stats()["counters"]["cold_starts"] == 2

    def test_configure_disabled_shuts_down(self):
        with fresh_runtime() as runtime:
            runtime.lease_pool(2).release()
            runtime.configure(enabled=False)
            assert runtime.stats()["pools"] == 0
            assert runtime.lease_pool(2) is None
            runtime.configure(enabled=True)
            lease = runtime.lease_pool(2)
            assert lease is not None
            lease.release()

    @pytest.mark.skipif(not HAVE_FORK, reason="fork start method unavailable")
    def test_lease_never_crosses_fork(self):
        with fresh_runtime() as runtime:
            lease = runtime.lease_pool(2)
            assert lease.pool.submit(max, 1, 2).result() == 2
            context = multiprocessing.get_context("fork")
            queue = context.Queue()
            child = context.Process(target=_child_runtime_view, args=(queue,))
            child.start()
            view = queue.get(timeout=30)
            child.join(timeout=30)
            # The forked child sees an empty runtime (the parent's pools
            # were dropped, not closed) and may not lease at all.
            assert view["stats"]["pools"] == 0
            assert view["stats"]["segments"] == 0
            assert view["lease_is_none"]
            # ... and the parent's pool is still alive and usable.
            assert lease.pool.submit(max, 5, 6).result() == 6
            lease.release()

    @pytest.mark.skipif(not HAVE_FORK, reason="fork start method unavailable")
    def test_workers_cannot_lease_nested_pools(self):
        with fresh_runtime() as runtime:
            lease = runtime.lease_pool(2)
            assert lease.pool.submit(_probe_nested_lease, None).result()
            lease.release()


# --------------------------------------------------------------------------- #
class TestWarmColdIdentity:
    """Reports are byte-identical with runtime reuse on or off."""

    @pytest.mark.parametrize("kwargs", [
        dict(backend="process", workers=2),
        dict(backend="process", workers=2, max_chunk_trials=2),
        dict(backend="shared_memory", workers=2),
        # max_chunk_trials=1 would leave every chunk on the single-task
        # in-process fast path (no pool, warm or cold) — chunk at 2 so the
        # pool engages while the chunked schedule is still exercised.
        dict(backend="shared_memory", workers=2, max_chunk_trials=2),
    ], ids=lambda kw: "-".join(f"{k}={v}" for k, v in kw.items()))
    def test_sweep_reports_byte_identical(self, trained, kwargs):
        with fresh_runtime(enabled=False):
            cold = _canonical(trained, **kwargs)
        with fresh_runtime() as runtime:
            warm_first = _canonical(trained, **kwargs)   # cold start
            warm_second = _canonical(trained, **kwargs)  # pool + segment reuse
            counters = runtime.stats()["counters"]
            assert counters["pool_reuses"] >= 1
        assert cold == warm_first == warm_second

    def test_backend_opt_out_restores_cold_pools(self, trained):
        from repro.execution import ProcessPoolBackend
        with fresh_runtime() as runtime:
            backend = ProcessPoolBackend(workers=2, warm=False)
            warm_off = _canonical(trained, backend=backend)
            assert runtime.stats()["pools"] == 0
        with fresh_runtime(enabled=False):
            assert warm_off == _canonical(trained, backend="process", workers=2)

    def test_async_bo_golden_trace_byte_identical(self):
        from repro.core import (
            BayesFTSearch, DriftMarginalizedObjective, DropoutSearchSpace,
        )
        dataset = SyntheticMNIST(n_samples=160, image_size=16, rng=3)
        train_set, test_set = train_test_split(dataset, test_fraction=0.25,
                                               rng=3)

        def run_search():
            model = build_mlp(256, depth=3, width=16, num_classes=10, rng=5)
            space = DropoutSearchSpace(model)
            objective = DriftMarginalizedObjective(
                test_set, sigma=0.7, monte_carlo_samples=2,
                metric="accuracy", rng=7)
            search = BayesFTSearch(space, objective, train_set,
                                   epochs_per_trial=1, learning_rate=0.1,
                                   rng=9, suggest_batch=2, search_workers=2)
            return search.run(n_trials=4).to_json()

        with fresh_runtime(enabled=False):
            cold = run_search()
        with fresh_runtime() as runtime:
            warm = run_search()
            again = run_search()
            assert runtime.stats()["counters"]["pool_reuses"] >= 1
        assert cold == warm == again

    def test_cell_fanout_store_bytes_identical(self, tmp_path):
        from repro.scenarios import (
            FaultSpec, ResultStore, ScenarioRunner, ScenarioSpec,
        )
        from repro.utils.config import ExperimentConfig

        def specs():
            train = ExperimentConfig(epochs=1, train_samples=64,
                                     test_samples=32, batch_size=32,
                                     learning_rate=0.1)
            return [ScenarioSpec(name=name, model="mlp", dataset="mnist",
                                 fault=FaultSpec("lognormal"),
                                 sigmas=(0.0, 0.8), trials=2, seed=3,
                                 train=train)
                    for name in ("tiny", "tiny2")]

        blobs = {}
        for mode in ("cold", "warm"):
            with fresh_runtime(enabled=(mode == "warm")):
                store = ResultStore(tmp_path / mode)
                ScenarioRunner(store).run_specs(specs(), scenario="s",
                                                backend="process",
                                                cell_workers=2)
                blobs[mode] = {
                    (spec.name, name): (store.path_for(spec) / name).read_bytes()
                    for spec in specs()
                    for name in ("spec.json", "report.json")}
        assert blobs["cold"] == blobs["warm"]


# --------------------------------------------------------------------------- #
class TestObservability:
    def test_warm_counters_reach_trace_summaries(self, trained):
        from repro.telemetry import Telemetry, using
        from repro.telemetry.export import format_trace_summary, summarize_trace
        with fresh_runtime(), using(Telemetry()) as telemetry:
            _canonical(trained, backend="process", workers=2)
            _canonical(trained, backend="process", workers=2)
            summary = summarize_trace(telemetry.snapshot())
        assert summary["counters"]["cold_starts"] == 1
        assert summary["counters"]["pool_reuses"] >= 1
        rendered = format_trace_summary(summary)
        assert "warm runtime" in rendered
        assert "pool reuses" in rendered

    def test_workers_used_reports_configured_cap(self, trained):
        model, test_set = trained
        with fresh_runtime():
            engine = DriftSweepEngine(model, test_set, trials=2, rng=7,
                                      backend="process", workers=2)
            report = engine.run((0.0, 0.8))
        assert report.workers == 2

    def test_cold_single_task_still_reports_configured_cap(self, trained):
        """workers_used is the configured cap even when fewer tasks ship."""
        model, test_set = trained
        with fresh_runtime(enabled=False):
            report = DriftSweepEngine(model, test_set, trials=1, rng=7,
                                      backend="process", workers=2,
                                      ).run((0.7,))
        assert report.workers >= 1


# --------------------------------------------------------------------------- #
class TestValidateBackend:
    def test_unknown_name_rejected_with_available_list(self):
        with pytest.raises(ValueError, match="unknown execution backend"):
            validate_backend("warp-drive")

    def test_none_names_and_instances_accepted(self):
        from repro.execution import SerialBackend
        validate_backend(None)
        validate_backend("shared_memory")
        validate_backend(SerialBackend())

    def test_engine_construction_builds_no_backend(self, trained, monkeypatch):
        """Engine __init__ validates via the registry — no throwaway pool."""
        import repro.evaluation.sweep as sweep_module
        model, test_set = trained

        def explode(*args, **kwargs):
            raise AssertionError("resolve_backend called during __init__")

        monkeypatch.setattr(sweep_module, "resolve_backend", explode)
        engine = DriftSweepEngine(model, test_set, trials=2, rng=1,
                                  backend="process", workers=2)
        assert engine.backend == "process"
