"""Documentation stays executable: README code blocks are run, not trusted.

Two guarantees:

1. The README quickstart is the *verbatim* content of
   ``examples/quickstart.py`` (which CI executes), so the documented
   entry-point example can never drift from the code.
2. Every fenced ``python`` block in the README executes in order in one
   shared namespace.  Blocks that define ``main()`` guarded by
   ``__name__ == "__main__"`` are imported but not run (CI runs the real
   script); the engine-usage block runs outright, asserting its own claims.
"""

from __future__ import annotations

import re
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
README = REPO_ROOT / "README.md"
QUICKSTART = REPO_ROOT / "examples" / "quickstart.py"


def _python_blocks(text: str) -> list[str]:
    return re.findall(r"```python\n(.*?)```", text, flags=re.DOTALL)


def test_readme_and_architecture_docs_exist():
    assert README.is_file()
    assert (REPO_ROOT / "docs" / "architecture.md").is_file()


def test_readme_quickstart_is_verbatim_copy_of_example():
    readme = README.read_text()
    quickstart = QUICKSTART.read_text()
    assert quickstart in readme, (
        "README.md quickstart block has drifted from examples/quickstart.py; "
        "re-embed the script verbatim")


def test_readme_python_blocks_execute():
    blocks = _python_blocks(README.read_text())
    assert len(blocks) >= 2, "README lost its python code blocks"
    # One shared namespace, __name__ != "__main__" so the quickstart block
    # defines main() without running the full search here (CI executes the
    # real script in its docs job).
    namespace: dict = {"__name__": "readme"}
    for index, block in enumerate(blocks):
        try:
            exec(compile(block, f"README.md[python block {index}]", "exec"),
                 namespace)
        except Exception as error:  # pragma: no cover - the assert is the point
            pytest.fail(f"README python block {index} failed to execute: "
                        f"{type(error).__name__}: {error}")
    assert "main" in namespace, "quickstart block should define main()"
