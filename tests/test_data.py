"""Tests for the synthetic datasets, loaders and transforms."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.data import (
    make_moons, make_blobs, ToyDataset, SyntheticMNIST, SyntheticCIFAR,
    SyntheticGTSRB, SyntheticPedestrians, Dataset, DataLoader, train_test_split,
    normalize_images, random_crop, random_flip, add_pixel_noise,
)


class TestToyData:
    def test_make_moons_shapes_and_labels(self):
        points, labels = make_moons(101, rng=0)
        assert points.shape == (101, 2)
        assert set(np.unique(labels)) == {0, 1}

    def test_make_blobs_class_count(self):
        _, labels = make_blobs(300, centers=4, rng=0)
        assert labels.max() == 3

    def test_toy_dataset_grid_covers_data(self):
        dataset = ToyDataset("moons", 50, rng=0)
        grid, shape = dataset.grid(resolution=10)
        assert grid.shape == (100, 2)
        assert shape == (10, 10)
        assert grid[:, 0].min() <= dataset.inputs[:, 0].min()
        assert grid[:, 0].max() >= dataset.inputs[:, 0].max()

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            ToyDataset("spirals")


class TestSyntheticMNIST:
    def test_shapes_and_classes(self):
        dataset = SyntheticMNIST(n_samples=50, image_size=16, rng=0)
        assert dataset.inputs.shape == (50, 1, 16, 16)
        assert dataset.num_classes == 10
        assert dataset.input_dim == 256

    def test_pixel_range(self):
        dataset = SyntheticMNIST(n_samples=30, rng=0)
        assert dataset.inputs.min() >= 0.0
        assert dataset.inputs.max() <= 1.0

    def test_flatten_option(self):
        dataset = SyntheticMNIST(n_samples=20, image_size=16, flatten=True, rng=0)
        assert dataset.inputs.shape == (20, 256)

    def test_classes_balanced(self):
        dataset = SyntheticMNIST(n_samples=100, rng=0)
        counts = np.bincount(dataset.labels, minlength=10)
        assert counts.min() >= 8

    def test_different_digits_produce_different_images(self):
        dataset = SyntheticMNIST(n_samples=200, noise=0.0, rng=0)
        zero_image = dataset.inputs[dataset.labels == 0][0]
        one_image = dataset.inputs[dataset.labels == 1][0]
        assert not np.allclose(zero_image, one_image)

    def test_too_few_samples_rejected(self):
        with pytest.raises(ValueError):
            SyntheticMNIST(n_samples=5)

    def test_determinism_given_seed(self):
        a = SyntheticMNIST(n_samples=30, rng=42)
        b = SyntheticMNIST(n_samples=30, rng=42)
        assert np.array_equal(a.inputs, b.inputs)
        assert np.array_equal(a.labels, b.labels)


class TestSyntheticCIFAR:
    def test_shapes(self):
        dataset = SyntheticCIFAR(n_samples=40, image_size=16, rng=0)
        assert dataset.inputs.shape == (40, 3, 16, 16)
        assert dataset.num_classes == 10

    def test_custom_class_count(self):
        dataset = SyntheticCIFAR(n_samples=30, num_classes=5, rng=0)
        assert dataset.num_classes == 5
        assert dataset.labels.max() <= 4

    def test_pixel_range(self):
        dataset = SyntheticCIFAR(n_samples=20, rng=0)
        assert 0.0 <= dataset.inputs.min() and dataset.inputs.max() <= 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            SyntheticCIFAR(n_samples=5, num_classes=10)
        with pytest.raises(ValueError):
            SyntheticCIFAR(num_classes=1)


class TestSyntheticGTSRB:
    def test_default_has_43_classes(self):
        dataset = SyntheticGTSRB(n_samples=86, rng=0)
        assert dataset.num_classes == 43
        assert dataset.inputs.shape[1:] == (3, 16, 16)

    def test_class_count_validation(self):
        with pytest.raises(ValueError):
            SyntheticGTSRB(num_classes=44)

    def test_classes_visually_distinct(self):
        dataset = SyntheticGTSRB(n_samples=86, noise=0.0, rng=0)
        image_a = dataset.inputs[dataset.labels == 0][0]
        image_b = dataset.inputs[dataset.labels == 1][0]
        assert np.abs(image_a - image_b).mean() > 0.01


class TestSyntheticPedestrians:
    def test_sample_structure(self):
        dataset = SyntheticPedestrians(n_samples=6, image_size=32, rng=0)
        assert len(dataset) == 6
        sample = dataset[0]
        assert sample.image.shape == (3, 32, 32)
        assert sample.boxes.shape[1] == 4
        assert sample.num_objects >= 1

    def test_boxes_within_image(self):
        dataset = SyntheticPedestrians(n_samples=10, image_size=32, rng=0)
        for sample in dataset:
            assert np.all(sample.boxes[:, 0] < sample.boxes[:, 2])
            assert np.all(sample.boxes[:, 1] < sample.boxes[:, 3])
            assert sample.boxes.min() >= 0
            assert sample.boxes.max() <= 32

    def test_images_method_stacks(self):
        dataset = SyntheticPedestrians(n_samples=4, rng=0)
        assert dataset.images().shape == (4, 3, 32, 32)

    def test_split_partitions_samples(self):
        dataset = SyntheticPedestrians(n_samples=20, rng=0)
        train, test = dataset.split(test_fraction=0.25, rng=0)
        assert len(train) + len(test) == 20
        assert len(test) == 5

    def test_validation(self):
        with pytest.raises(ValueError):
            SyntheticPedestrians(n_samples=0)
        with pytest.raises(ValueError):
            SyntheticPedestrians(max_pedestrians=0)


class TestDatasetAndLoader:
    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            Dataset(np.zeros((3, 2)), np.zeros(4))

    def test_subset_preserves_class_count(self):
        dataset = SyntheticMNIST(n_samples=40, rng=0)
        subset = dataset.subset(np.arange(5))
        assert subset.num_classes == 10

    def test_loader_batches_cover_dataset(self):
        dataset = Dataset(np.arange(23).reshape(23, 1).astype(float), np.zeros(23, dtype=int))
        loader = DataLoader(dataset, batch_size=5, shuffle=False)
        seen = sum(len(labels) for _, labels in loader)
        assert seen == 23
        assert len(loader) == 5

    def test_loader_drop_last(self):
        dataset = Dataset(np.zeros((23, 1)), np.zeros(23, dtype=int))
        loader = DataLoader(dataset, batch_size=5, drop_last=True)
        assert len(loader) == 4
        assert sum(len(labels) for _, labels in loader) == 20

    def test_loader_shuffles(self):
        dataset = Dataset(np.arange(50).reshape(50, 1).astype(float), np.arange(50))
        loader = DataLoader(dataset, batch_size=50, shuffle=True, rng=0)
        (inputs, _), = list(loader)
        assert not np.array_equal(inputs.ravel(), np.arange(50))

    def test_invalid_batch_size(self):
        with pytest.raises(ValueError):
            DataLoader(Dataset(np.zeros((2, 1)), np.zeros(2)), batch_size=0)

    def test_train_test_split_fraction(self):
        dataset = Dataset(np.zeros((100, 2)), np.zeros(100, dtype=int))
        train, test = train_test_split(dataset, test_fraction=0.2, rng=0)
        assert len(train) == 80 and len(test) == 20

    def test_train_test_split_validation(self):
        with pytest.raises(ValueError):
            train_test_split(Dataset(np.zeros((10, 1)), np.zeros(10)), test_fraction=1.5)

    @given(st.integers(min_value=2, max_value=40))
    @settings(max_examples=15, deadline=None)
    def test_split_is_a_partition(self, n):
        dataset = Dataset(np.arange(n).reshape(n, 1).astype(float), np.zeros(n, dtype=int))
        train, test = train_test_split(dataset, test_fraction=0.5, rng=0)
        combined = np.sort(np.concatenate([train.inputs.ravel(), test.inputs.ravel()]))
        assert np.array_equal(combined, np.arange(n))


class TestTransforms:
    def test_normalize_images_zero_mean(self):
        images = np.random.default_rng(0).random((10, 1, 8, 8))
        normalised = normalize_images(images)
        assert abs(normalised.mean()) < 1e-10
        assert normalised.std() == pytest.approx(1.0, rel=1e-6)

    def test_random_crop_preserves_shape(self):
        images = np.random.default_rng(0).random((4, 3, 16, 16))
        assert random_crop(images, padding=2, rng=0).shape == images.shape

    def test_random_crop_requires_nchw(self):
        with pytest.raises(ValueError):
            random_crop(np.zeros((4, 16, 16)))

    def test_random_flip_probability_one_reverses(self):
        images = np.arange(16.0).reshape(1, 1, 4, 4)
        flipped = random_flip(images, probability=1.0, rng=0)
        assert np.array_equal(flipped[0, 0, 0], images[0, 0, 0, ::-1])

    def test_add_pixel_noise_stays_in_range(self):
        images = np.random.default_rng(0).random((3, 1, 8, 8))
        noisy = add_pixel_noise(images, sigma=0.5, rng=0)
        assert noisy.min() >= 0.0 and noisy.max() <= 1.0
