"""Tests for the BayesFT core: search space, objective, Algorithm 1, API."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import DropoutSearchSpace, DriftMarginalizedObjective, BayesFTSearch, BayesFT
from repro.data import SyntheticMNIST, train_test_split
from repro.models import build_mlp, build_model, LeNet5
from repro.nn.layers import Dropout
from repro.training import train_classifier
from repro.utils.rng import get_rng


@pytest.fixture(scope="module")
def small_split():
    dataset = SyntheticMNIST(n_samples=160, image_size=16, rng=3)
    return train_test_split(dataset, test_fraction=0.25, rng=3)


class TestDropoutSearchSpace:
    def test_dimension_matches_dropout_layers(self):
        model = build_mlp(64, depth=4, width=16, num_classes=5, rng=0)
        space = DropoutSearchSpace(model)
        dropout_count = sum(1 for _, m in model.named_modules() if isinstance(m, Dropout))
        assert space.dim == dropout_count == 3

    def test_apply_sets_rates_in_order(self):
        model = build_mlp(64, depth=3, width=16, num_classes=5, rng=0)
        space = DropoutSearchSpace(model)
        alpha = np.array([0.1, 0.4])
        space.apply(alpha)
        assert np.allclose(space.get_rates(), alpha)

    def test_apply_clips_to_max_rate(self):
        model = build_mlp(64, depth=3, width=16, num_classes=5, rng=0)
        space = DropoutSearchSpace(model, max_rate=0.5)
        space.apply(np.array([0.9, 0.2]))
        assert space.get_rates()[0] <= 0.5

    def test_apply_rejects_wrong_dimension(self):
        model = build_mlp(64, depth=3, width=16, num_classes=5, rng=0)
        space = DropoutSearchSpace(model)
        with pytest.raises(ValueError):
            space.apply(np.array([0.1, 0.2, 0.3]))

    def test_bounds_match_dimension(self):
        model = LeNet5(num_classes=10, image_size=16, width=4, rng=0)
        space = DropoutSearchSpace(model, max_rate=0.8)
        assert len(space.bounds) == space.dim
        assert all(low == 0.0 and high == 0.8 for low, high in space.bounds)

    def test_model_without_dropout_rejected(self):
        model = build_mlp(64, depth=3, width=16, num_classes=5, dropout="none", rng=0)
        with pytest.raises(ValueError):
            DropoutSearchSpace(model)

    def test_sample_within_bounds(self):
        model = build_mlp(64, depth=4, width=8, num_classes=3, rng=0)
        space = DropoutSearchSpace(model, max_rate=0.7)
        sample = space.sample(get_rng(0))
        assert sample.shape == (space.dim,)
        assert np.all((0.0 <= sample) & (sample <= 0.7))

    def test_describe_names_layers(self):
        model = build_mlp(64, depth=3, width=8, num_classes=3, rng=0)
        space = DropoutSearchSpace(model)
        description = space.describe()
        assert len(description) == space.dim
        assert all("dropout" in name for name in description)

    def test_invalid_max_rate(self):
        model = build_mlp(64, depth=3, width=8, num_classes=3, rng=0)
        with pytest.raises(ValueError):
            DropoutSearchSpace(model, max_rate=1.5)


class TestDriftMarginalizedObjective:
    def test_clean_vs_drifted_ordering(self, small_split):
        train_set, test_set = small_split
        model = build_mlp(256, depth=3, width=64, num_classes=10, rng=0)
        train_classifier(model, train_set, epochs=4, learning_rate=0.1, rng=0)
        objective = DriftMarginalizedObjective(test_set, sigma=1.2, monte_carlo_samples=3,
                                               metric="accuracy", rng=0)
        assert objective.evaluate_clean(model) >= objective.evaluate(model) - 0.05

    def test_weights_restored_after_evaluate(self, small_split):
        _, test_set = small_split
        model = build_mlp(256, depth=3, width=32, num_classes=10, rng=0)
        before = model.state_dict()
        objective = DriftMarginalizedObjective(test_set, sigma=1.0, monte_carlo_samples=2, rng=0)
        objective.evaluate(model)
        for key, value in model.state_dict().items():
            assert np.array_equal(before[key], value)

    def test_neg_loss_metric_is_negative_loss(self, small_split):
        _, test_set = small_split
        model = build_mlp(256, depth=3, width=32, num_classes=10, rng=0)
        objective = DriftMarginalizedObjective(test_set, sigma=0.0, monte_carlo_samples=1,
                                               metric="neg_loss", rng=0)
        value = objective.evaluate(model)
        assert value < 0  # untrained model has positive cross-entropy

    def test_accuracy_metric_bounded(self, small_split):
        _, test_set = small_split
        model = build_mlp(256, depth=3, width=32, num_classes=10, rng=0)
        objective = DriftMarginalizedObjective(test_set, sigma=0.5, monte_carlo_samples=2,
                                               metric="accuracy", rng=0)
        value = objective.evaluate(model)
        assert 0.0 <= value <= 1.0

    def test_invalid_parameters(self, small_split):
        _, test_set = small_split
        with pytest.raises(ValueError):
            DriftMarginalizedObjective(test_set, monte_carlo_samples=0)
        with pytest.raises(ValueError):
            DriftMarginalizedObjective(test_set, metric="f1")

    def test_max_batch_subsampling(self, small_split):
        _, test_set = small_split
        objective = DriftMarginalizedObjective(test_set, sigma=0.0, monte_carlo_samples=1,
                                               max_batch=8, rng=0)
        inputs, labels = objective._evaluation_batch()
        assert len(labels) == 8


class TestBayesFTSearch:
    def test_run_returns_best_trial(self, small_split):
        train_set, test_set = small_split
        model = build_mlp(256, depth=3, width=32, num_classes=10, rng=0)
        space = DropoutSearchSpace(model)
        objective = DriftMarginalizedObjective(test_set, sigma=0.6, monte_carlo_samples=2, rng=0)
        search = BayesFTSearch(space, objective, train_set, epochs_per_trial=1,
                               learning_rate=0.1, rng=0)
        result = search.run(n_trials=3)
        assert result.num_trials == 3
        assert result.best_objective == max(result.trial_objectives)
        assert np.allclose(space.get_rates(), result.best_alpha, atol=1e-9)

    def test_best_state_loaded_back_into_model(self, small_split):
        train_set, test_set = small_split
        model = build_mlp(256, depth=3, width=32, num_classes=10, rng=0)
        space = DropoutSearchSpace(model)
        objective = DriftMarginalizedObjective(test_set, sigma=0.6, monte_carlo_samples=2, rng=0)
        search = BayesFTSearch(space, objective, train_set, epochs_per_trial=1,
                               learning_rate=0.1, rng=0)
        result = search.run(n_trials=2)
        for key, value in model.state_dict().items():
            assert np.array_equal(result.best_state[key], value)

    def test_random_optimizer_kind(self, small_split):
        train_set, test_set = small_split
        model = build_mlp(256, depth=3, width=32, num_classes=10, rng=0)
        space = DropoutSearchSpace(model)
        objective = DriftMarginalizedObjective(test_set, sigma=0.6, monte_carlo_samples=1, rng=0)
        search = BayesFTSearch(space, objective, train_set, epochs_per_trial=1,
                               optimizer_kind="random", rng=0)
        assert search.run(n_trials=2).num_trials == 2

    def test_invalid_arguments(self, small_split):
        train_set, test_set = small_split
        model = build_mlp(256, depth=3, width=32, num_classes=10, rng=0)
        space = DropoutSearchSpace(model)
        objective = DriftMarginalizedObjective(test_set, rng=0)
        with pytest.raises(ValueError):
            BayesFTSearch(space, objective, train_set, optimizer_kind="annealing")
        search = BayesFTSearch(space, objective, train_set, rng=0)
        with pytest.raises(ValueError):
            search.run(n_trials=0)


class TestObjectiveThroughEngine:
    """The inner Monte-Carlo objective is routed through DriftSweepEngine."""

    def _search(self, train_set, **kwargs):
        model = build_mlp(256, depth=3, width=16, num_classes=10, rng=5)
        searcher = BayesFT(sigma=0.7, n_trials=3, epochs_per_trial=1,
                           monte_carlo_samples=2, learning_rate=0.1, rng=5,
                           **kwargs)
        result = searcher.fit(model, train_set)
        return result

    def test_search_bit_identical_for_any_workers_and_chunks(self, small_split):
        """The acceptance contract: seeded BO results don't depend on how the
        inner sweep is scheduled (serial vs 2 workers, any chunk size)."""
        train_set, _ = small_split
        baseline = self._search(train_set)
        for kwargs in ({"sweep_workers": 2}, {"max_chunk_trials": 1},
                       {"max_chunk_trials": 2, "sweep_workers": 2}):
            variant = self._search(train_set, **kwargs)
            assert variant.trial_objectives == baseline.trial_objectives
            assert variant.clean_objectives == baseline.clean_objectives
            np.testing.assert_array_equal(variant.best_alpha, baseline.best_alpha)

    def test_evaluate_with_clean_caches_sigma_zero_trials(self, small_split):
        train_set, test_set = small_split
        model = build_mlp(256, depth=3, width=32, num_classes=10, rng=0)
        objective = DriftMarginalizedObjective(test_set, sigma=0.8,
                                               monte_carlo_samples=4, rng=0)
        value, clean, report = objective.evaluate_with_clean(model)
        # The 4 clean draws are bit-identical: one evaluation, 3 cache hits.
        assert report.cache_hits >= 3
        assert report.n_evaluations == 8 - report.cache_hits
        assert objective.cache_hits_total == report.cache_hits
        assert objective.evaluations_total == report.n_evaluations
        assert np.isfinite(value) and np.isfinite(clean)

    def test_evaluate_with_clean_agrees_with_split_calls(self, small_split):
        train_set, test_set = small_split
        model = build_mlp(256, depth=3, width=32, num_classes=10, rng=0)
        objective = DriftMarginalizedObjective(test_set, sigma=0.0,
                                               monte_carlo_samples=2,
                                               metric="accuracy", rng=0)
        value, clean, _ = objective.evaluate_with_clean(model)
        # At σ=0 the drifted and clean utilities coincide exactly.
        assert value == clean == objective.evaluate_clean(model)

    def test_search_result_reports_objective_stats(self, small_split):
        train_set, _ = small_split
        result = self._search(train_set)
        assert result.objective_stats["evaluations"] > 0
        assert result.objective_stats["cache_hits"] > 0

    def test_neg_loss_metric_uses_engine_loss_track(self, small_split):
        _, test_set = small_split
        model = build_mlp(256, depth=3, width=32, num_classes=10, rng=0)
        objective = DriftMarginalizedObjective(test_set, sigma=0.5,
                                               monte_carlo_samples=2,
                                               metric="neg_loss", rng=0)
        objective.evaluate(model)
        assert objective.last_report is not None
        assert len(objective.last_report.trial_losses) == 1

    def test_invalid_sweep_workers_rejected(self, small_split):
        _, test_set = small_split
        with pytest.raises(ValueError):
            DriftMarginalizedObjective(test_set, sweep_workers=-1)


class TestBayesFTApi:
    def test_fit_configures_model_dropout(self, small_split):
        train_set, _ = small_split
        model = build_model("mlp", num_classes=10, in_channels=1, image_size=16, rng=0)
        searcher = BayesFT(sigma=0.6, n_trials=3, epochs_per_trial=1,
                           monte_carlo_samples=2, learning_rate=0.1, rng=0)
        result = searcher.fit(model, train_set)
        space = DropoutSearchSpace(model)
        assert np.allclose(space.get_rates(), result.best_alpha, atol=1e-9)
        assert searcher.best_alpha.shape == result.best_alpha.shape

    def test_best_alpha_requires_fit(self):
        with pytest.raises(RuntimeError):
            _ = BayesFT().best_alpha

    def test_explicit_validation_dataset(self, small_split):
        train_set, test_set = small_split
        model = build_model("mlp", num_classes=10, in_channels=1, image_size=16, rng=0)
        searcher = BayesFT(sigma=0.6, n_trials=2, epochs_per_trial=1,
                           monte_carlo_samples=1, learning_rate=0.1, rng=0)
        result = searcher.fit(model, train_set, validation_dataset=test_set)
        assert result.num_trials == 2

    def test_invalid_validation_fraction(self):
        with pytest.raises(ValueError):
            BayesFT(validation_fraction=1.0)

    def test_search_improves_drifted_accuracy_over_no_dropout(self, small_split):
        """The headline claim on a small scale: BayesFT-selected dropout beats
        the zero-dropout configuration under strong drift."""
        from repro.evaluation import accuracy_under_drift
        train_set, test_set = small_split

        erm_model = build_model("mlp", num_classes=10, in_channels=1, image_size=16, rng=1)
        train_classifier(erm_model, train_set, epochs=4, learning_rate=0.1, rng=1)

        bayes_model = build_model("mlp", num_classes=10, in_channels=1, image_size=16, rng=1)
        searcher = BayesFT(sigma=0.8, n_trials=5, epochs_per_trial=2,
                           monte_carlo_samples=2, learning_rate=0.1, rng=1)
        searcher.fit(bayes_model, train_set)

        erm_drifted, _ = accuracy_under_drift(erm_model, test_set, sigma=1.0, trials=5, rng=2)
        bayes_drifted, _ = accuracy_under_drift(bayes_model, test_set, sigma=1.0, trials=5, rng=2)
        # Allow a small slack: the claim is "not worse, usually clearly better".
        assert bayes_drifted >= erm_drifted - 0.05
