"""Tests for the ReRAM crossbar substrate."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.reram import (
    DeviceConfig, DeviceVariationModel, ConductanceMapper, Crossbar, CrossbarArray,
    ReRAMLinear, deploy_on_reram,
)
from repro import nn
from repro.models import build_mlp


class TestDeviceConfig:
    def test_defaults_are_valid(self):
        config = DeviceConfig()
        assert config.g_max > config.g_min > 0

    def test_invalid_conductance_range_rejected(self):
        with pytest.raises(ValueError):
            DeviceConfig(g_min=1e-4, g_max=1e-6)

    def test_negative_noise_rejected(self):
        with pytest.raises(ValueError):
            DeviceConfig(read_noise_sigma=-0.1)


class TestDeviceVariationModel:
    def test_effective_sigma_combines_sources(self):
        config = DeviceConfig(programming_sigma=0.3, read_noise_sigma=0.4,
                              process_variation_sigma=0.0, drift_rate=0.0)
        model = DeviceVariationModel(config, deployment_time=0.0)
        assert model.effective_sigma() == pytest.approx(0.5)

    def test_effective_sigma_grows_with_deployment_time(self):
        config = DeviceConfig(drift_rate=0.2)
        early = DeviceVariationModel(config, deployment_time=0.0).effective_sigma()
        late = DeviceVariationModel(config, deployment_time=5.0).effective_sigma()
        assert late > early

    def test_sample_log_factors_statistics(self):
        config = DeviceConfig(programming_sigma=0.2, read_noise_sigma=0.0,
                              process_variation_sigma=0.0, drift_rate=0.0)
        model = DeviceVariationModel(config, deployment_time=0.0, rng=0)
        factors = model.sample_log_factors((100_000,))
        assert np.log(factors).std() == pytest.approx(0.2, rel=0.05)

    def test_perturb_conductance_respects_physical_range(self):
        config = DeviceConfig(stuck_at_rate=0.05)
        model = DeviceVariationModel(config, rng=0)
        conductance = np.full((64, 64), (config.g_min + config.g_max) / 2)
        perturbed = model.perturb_conductance(conductance)
        assert perturbed.min() >= config.g_min
        assert perturbed.max() <= config.g_max


class TestConductanceMapper:
    def test_roundtrip_without_quantization_is_exact(self):
        mapper = ConductanceMapper(DeviceConfig())
        weights = np.random.default_rng(0).standard_normal((8, 8))
        g_pos, g_neg = mapper.to_conductance(weights)
        recovered = mapper.to_weights(g_pos, g_neg)
        assert np.allclose(recovered, weights, atol=1e-12)

    def test_differential_pair_uses_one_side_per_sign(self):
        mapper = ConductanceMapper(DeviceConfig())
        weights = np.array([[1.0, -1.0]])
        g_pos, g_neg = mapper.to_conductance(weights)
        config = mapper.config
        assert g_pos[0, 0] > config.g_min and g_neg[0, 0] == config.g_min
        assert g_neg[0, 1] > config.g_min and g_pos[0, 1] == config.g_min

    def test_quantization_introduces_bounded_error(self):
        mapper = ConductanceMapper(DeviceConfig(quantization_bits=4))
        weights = np.random.default_rng(0).standard_normal((16, 16))
        error = mapper.roundtrip_error(weights)
        assert 0.0 < error < 0.5

    def test_to_weights_requires_fit(self):
        mapper = ConductanceMapper(DeviceConfig())
        with pytest.raises(RuntimeError):
            mapper.to_weights(np.ones((2, 2)), np.ones((2, 2)))

    @given(st.integers(min_value=2, max_value=6))
    @settings(max_examples=10, deadline=None)
    def test_more_bits_reduce_error_on_random_weights(self, bits):
        weights = np.random.default_rng(bits).standard_normal((8, 8))
        coarse = ConductanceMapper(DeviceConfig(quantization_bits=bits)).roundtrip_error(weights)
        fine = ConductanceMapper(DeviceConfig(quantization_bits=bits + 6)).roundtrip_error(weights)
        assert fine < coarse


class TestCrossbar:
    def test_requires_2d_weights(self):
        with pytest.raises(ValueError):
            Crossbar(np.zeros(4))

    def test_effective_weights_close_to_ideal_for_quiet_device(self):
        config = DeviceConfig(programming_sigma=0.001, read_noise_sigma=0.0,
                              process_variation_sigma=0.001, drift_rate=0.0)
        weights = np.random.default_rng(0).standard_normal((8, 8))
        crossbar = Crossbar(weights, config, deployment_time=0.0, rng=0)
        assert crossbar.weight_error() < 0.02

    def test_matvec_approximates_matrix_product(self):
        config = DeviceConfig(programming_sigma=0.01, read_noise_sigma=0.0,
                              process_variation_sigma=0.01, drift_rate=0.0)
        weights = np.random.default_rng(0).standard_normal((6, 10))
        crossbar = Crossbar(weights, config, deployment_time=0.0, rng=0)
        voltage = np.random.default_rng(1).standard_normal(10)
        exact = weights @ voltage
        analog = crossbar.matvec(voltage, read_noise=False)
        assert np.allclose(analog, exact, rtol=0.2, atol=0.2)

    def test_noisier_device_has_larger_weight_error(self):
        weights = np.random.default_rng(0).standard_normal((8, 8))
        quiet = Crossbar(weights, DeviceConfig(programming_sigma=0.01), rng=0).weight_error()
        noisy = Crossbar(weights, DeviceConfig(programming_sigma=0.3), rng=0).weight_error()
        assert noisy > quiet


class TestCrossbarArray:
    def test_tiling_counts(self):
        weights = np.zeros((100, 70))
        array = CrossbarArray(weights, tile_rows=32, tile_cols=32, rng=0)
        assert array.num_tiles == 4 * 3

    def test_effective_weights_shape(self):
        weights = np.random.default_rng(0).standard_normal((50, 30))
        array = CrossbarArray(weights, tile_rows=16, tile_cols=16, rng=0)
        assert array.effective_weights().shape == (50, 30)

    def test_matvec_matches_dense_product(self):
        config = DeviceConfig(programming_sigma=0.005, read_noise_sigma=0.0,
                              process_variation_sigma=0.005, drift_rate=0.0)
        weights = np.random.default_rng(0).standard_normal((20, 33))
        array = CrossbarArray(weights, tile_rows=8, tile_cols=8, config=config,
                              deployment_time=0.0, rng=0)
        voltage = np.random.default_rng(1).standard_normal(33)
        assert np.allclose(array.matvec(voltage, read_noise=False), weights @ voltage,
                           rtol=0.2, atol=0.3)

    def test_matvec_rejects_wrong_length(self):
        array = CrossbarArray(np.zeros((4, 6)), rng=0)
        with pytest.raises(ValueError):
            array.matvec(np.zeros(5))

    def test_invalid_tile_sizes_rejected(self):
        with pytest.raises(ValueError):
            CrossbarArray(np.zeros((4, 4)), tile_rows=0)


class TestBatchedMatmat:
    def _quiet_array(self, rows=20, cols=33):
        config = DeviceConfig(programming_sigma=0.005, read_noise_sigma=0.0,
                              process_variation_sigma=0.005, drift_rate=0.0)
        weights = np.random.default_rng(0).standard_normal((rows, cols))
        return CrossbarArray(weights, tile_rows=8, tile_cols=8, config=config,
                             deployment_time=0.0, rng=0)

    def test_matmat_matches_per_row_matvec(self):
        """Regression: the batched path must equal the row-by-row loop."""
        array = self._quiet_array()
        voltages = np.random.default_rng(1).standard_normal((5, 33))
        batched = array.matmat(voltages, read_noise=False)
        per_row = np.stack([array.matvec(row, read_noise=False)
                            for row in voltages])
        np.testing.assert_allclose(batched, per_row, rtol=1e-12, atol=1e-12)

    def test_single_crossbar_matmat_matches_matvec(self):
        weights = np.random.default_rng(0).standard_normal((6, 10))
        config = DeviceConfig(programming_sigma=0.01, read_noise_sigma=0.0,
                              process_variation_sigma=0.01, drift_rate=0.0)
        crossbar = Crossbar(weights, config, deployment_time=0.0, rng=0)
        voltages = np.random.default_rng(1).standard_normal((4, 10))
        batched = crossbar.matmat(voltages, read_noise=False)
        per_row = np.stack([crossbar.matvec(row, read_noise=False)
                            for row in voltages])
        np.testing.assert_allclose(batched, per_row, rtol=1e-12, atol=1e-12)

    def test_matmat_rejects_bad_shapes(self):
        array = self._quiet_array()
        with pytest.raises(ValueError):
            array.matmat(np.zeros((2, 5)))
        with pytest.raises(ValueError):
            Crossbar(np.zeros((4, 6)), rng=0).matmat(np.zeros(6))

    def test_reram_linear_uses_batched_path(self):
        linear = nn.Linear(12, 6, rng=0)
        config = DeviceConfig(programming_sigma=0.01, read_noise_sigma=0.0,
                              process_variation_sigma=0.01, drift_rate=0.0)
        hardware = ReRAMLinear(linear, config=config, deployment_time=0.0, rng=0)
        x = np.random.default_rng(1).standard_normal((4, 12))
        batched = hardware(nn.Tensor(x)).data
        per_row = np.stack([hardware.array.matvec(row, read_noise=False)
                            for row in x]) + hardware.bias
        np.testing.assert_allclose(batched, per_row, rtol=1e-12, atol=1e-12)


class TestDeployment:
    def test_reram_linear_matches_clean_linear_approximately(self):
        linear = nn.Linear(12, 6, rng=0)
        config = DeviceConfig(programming_sigma=0.01, read_noise_sigma=0.0,
                              process_variation_sigma=0.01, drift_rate=0.0)
        hardware = ReRAMLinear(linear, config=config, deployment_time=0.0, rng=0)
        x = np.random.default_rng(1).standard_normal((4, 12))
        clean = linear(nn.Tensor(x)).data
        analog = hardware(nn.Tensor(x)).data
        assert np.allclose(clean, analog, rtol=0.3, atol=0.3)

    def test_deploy_on_reram_perturbs_every_parameter(self):
        model = build_mlp(16, depth=2, width=8, num_classes=3, rng=0)
        before = model.state_dict()
        report = deploy_on_reram(model, rng=0)
        assert set(report) == {name for name, _ in model.named_parameters()}
        changed = any(not np.array_equal(before[name], parameter.data)
                      for name, parameter in model.named_parameters())
        assert changed
        assert all(np.isfinite(value) for value in report.values())

    def test_deployment_report_structure_and_round_trip(self):
        from repro.reram import DeploymentReport
        model = build_mlp(16, depth=2, width=8, num_classes=3, rng=0)
        report = deploy_on_reram(model, deployment_time=2.0, rng=0)
        assert report.deployment_time == 2.0
        assert report.equivalent_sigma > 0
        assert report.crossbar_tiles > 0
        assert report.n_parameters == len(report.parameter_errors)
        assert report.mean_relative_error() > 0
        restored = DeploymentReport.from_json(report.to_json(indent=2))
        assert restored == report

    def test_deploy_is_seed_reproducible(self):
        results = []
        for _ in range(2):
            model = build_mlp(16, depth=2, width=8, num_classes=3, rng=0)
            deploy_on_reram(model, rng=3)
            results.append(model.state_dict())
        for key in results[0]:
            np.testing.assert_array_equal(results[0][key], results[1][key])

    def test_crossbar_realization_is_a_drift_model(self):
        """The hardware path plugs into the generic fault machinery."""
        from repro.fault.injector import fault_injection
        from repro.reram import CrossbarRealization
        model = build_mlp(16, depth=2, width=8, num_classes=3, rng=0)
        before = model.state_dict()
        with fault_injection(model, CrossbarRealization(deployment_time=2.0), rng=0):
            drifted = model.state_dict()
            assert any(not np.array_equal(before[k], drifted[k]) for k in before)
        after = model.state_dict()
        for key in before:
            np.testing.assert_array_equal(before[key], after[key])
