"""Determinism-replay harness for async batched Bayesian optimisation.

Three contracts, in the style of ``tests/test_execution.py`` /
``tests/test_inference.py``:

* **Pre-PR byte-identity** — the sequential paths (``BayesianOptimizer``
  with ``suggest()`` and ``BayesFTSearch`` with ``suggest_batch=1,
  search_workers<=1``) reproduce, byte for byte, golden traces captured
  from the implementation *before* batch suggestion existed.
* **Ordered observation replay** — a seeded ``(q, k)`` async search yields
  one canonical ``BayesFTResult`` regardless of worker count, backend or
  worker completion order; the canonical trace depends only on ``q``.
* **Constant-liar bookkeeping** — fantasised observations steer batch
  suggestion but never leak into the trace, ``best_*`` accessors or the
  aggregated objective stats; early termination never changes the winner.
"""

from __future__ import annotations

import json
import os

import numpy as np
import pytest

from repro.bayesopt.optimizer import BayesianOptimizer, OptimizationTrace
from repro.core import (
    AsyncTrialScheduler, BayesFTSearch, DriftMarginalizedObjective,
    DropoutSearchSpace,
)
from repro.core.algorithm import _state_sha256
from repro.data import SyntheticMNIST, train_test_split
from repro.execution.search import SearchTrialPool
from repro.models import build_mlp

# --------------------------------------------------------------------------- #
# Golden traces captured from the pre-batch-suggestion implementation
# (sequential suggest/observe loop, np.argmax tie-breaking): the sequential
# paths must keep producing these bytes forever.
# --------------------------------------------------------------------------- #
GOLDEN_OPTIMIZER_TRACE = (
    '{"points":[[0.625095466604667,0.8972138009695755],'
    '[0.7756856902451935,0.22520718999059186],'
    '[0.30016628491122543,0.8735534453962619],'
    '[0.03805728669123909,0.876218808109271],'
    '[0.3066594908888719,0.9613508447364569],'
    '[0.18370352102024934,0.6698645598173122],'
    '[0.2341870956723922,0.6815584622557674],'
    '[0.294784272833487,0.7062672371624146],'
    '[0.294784272833487,0.7062672371624146],'
    '[0.294784272833487,0.7062672371624146]],'
    '"values":[-0.1445803456997735,-0.45170508834067613,'
    '-0.030120826059584976,-0.09966705338700779,-0.06834861286335861,'
    '-0.014433015778091937,-0.004671428690406807,-6.648207152545229e-05,'
    '-6.648207152545229e-05,-6.648207152545229e-05]}')

GOLDEN_SYNC_SEARCH = (
    '{"best_alpha":[0.04140831987288487,0.02808978222076053],'
    '"best_objective":0.1875,'
    '"best_state_sha256":'
    '"fdb19be7f268f6372870bad453f436a257ec08004f9066fdb1c5d8f24c39b1f8",'
    '"clean_objectives":[0.125,0.1,0.1,0.075],'
    '"objective_stats":{"cache_hits":4,"evaluations":12},'
    '"trial_alphas":[[0.7832242835730762,0.25813548817879983],'
    '[0.5008886006891077,0.5120255110721568],'
    '[0.6344594344328459,0.48492430559629074],'
    '[0.04140831987288487,0.02808978222076053]],'
    '"trial_objectives":[0.1375,0.1375,0.125,0.1875]}')


def quadratic(point):
    return -float(np.sum((point - np.array([0.3, 0.7])) ** 2))


@pytest.fixture(scope="module")
def split():
    dataset = SyntheticMNIST(n_samples=160, image_size=16, rng=3)
    return train_test_split(dataset, test_fraction=0.25, rng=3)


def make_search(split, **kwargs):
    train_set, test_set = split
    model = build_mlp(256, depth=3, width=16, num_classes=10, rng=5)
    space = DropoutSearchSpace(model)
    objective = DriftMarginalizedObjective(test_set, sigma=0.7,
                                           monte_carlo_samples=2,
                                           metric="accuracy", rng=7)
    return BayesFTSearch(space, objective, train_set, epochs_per_trial=1,
                         learning_rate=0.1, rng=9, **kwargs)


# --------------------------------------------------------------------------- #
class TestGoldenByteIdentity:
    def test_optimizer_trace_byte_identical_to_pre_pr(self):
        opt = BayesianOptimizer([(0.0, 1.0), (0.0, 1.0)], n_initial=3,
                                n_candidates=64, rng=7)
        trace = opt.optimize(quadratic, n_trials=10)
        assert trace.to_json() == GOLDEN_OPTIMIZER_TRACE

    def test_sync_search_byte_identical_to_pre_pr(self, split):
        result = make_search(split).run(n_trials=4)
        # The golden was captured before trial_terminated existed; the
        # sequential path fills it with all-False, which is asserted apart.
        canonical = result.canonical_dict()
        assert canonical.pop("trial_terminated") == [False] * 4
        got = json.dumps(canonical, sort_keys=True, separators=(",", ":"))
        assert got == GOLDEN_SYNC_SEARCH

    def test_trace_json_roundtrip(self):
        trace = OptimizationTrace()
        trace.append(np.array([0.25, 0.5]), 1.5)
        trace.append(np.array([0.1, 0.9]), float("nan"))
        data = json.loads(trace.to_json())
        assert data["points"][0] == [0.25, 0.5]
        assert np.isnan(data["values"][1])


# --------------------------------------------------------------------------- #
class TestOrderedObservationReplay:
    def test_async_byte_identical_across_workers_and_backends(self, split):
        """The acceptance contract: one canonical trace per seeded (q,)
        configuration, whatever k, backend or completion order did."""
        reference = {
            q: make_search(split, suggest_batch=q).run(n_trials=4).to_json()
            for q in (2, 3)}
        variants = [
            dict(suggest_batch=2, search_workers=2),
            dict(suggest_batch=2, search_workers=3),
            dict(suggest_batch=2, search_workers=2, search_backend="serial"),
            dict(suggest_batch=3, search_workers=2),
        ]
        for kwargs in variants:
            result = make_search(split, **kwargs).run(n_trials=4)
            assert result.to_json() == reference[kwargs["suggest_batch"]], kwargs

    def test_different_q_gives_different_traces(self, split):
        """q is part of the search's identity (unlike k): fantasy-driven
        batches explore differently than the sequential loop."""
        sync = make_search(split).run(n_trials=4)
        batched = make_search(split, suggest_batch=2).run(n_trials=4)
        assert sync.trial_alphas[1].tolist() != batched.trial_alphas[1].tolist()

    def test_scrambled_completion_order_replays_identically(self):
        """The scheduler commits by trial index even if the pool hands back
        results in a hostile order."""

        class ScrambledPool:
            def __init__(self):
                self.calls = 0

            def run_batch(self, payloads):
                self.calls += 1
                results = [{"index": p["index"],
                            "value": quadratic(p["alpha"]),
                            "clean": 0.0, "terminated": False,
                            "state": {}, "stats": {"evaluations": 1,
                                                   "cache_hits": 0}}
                           for p in payloads]
                return results[::-1]  # reversed completion order

        def run(pool):
            opt = BayesianOptimizer([(0.0, 1.0), (0.0, 1.0)], n_initial=3,
                                    n_candidates=64, rng=11)
            scheduler = AsyncTrialScheduler(opt, pool, suggest_batch=3)
            committed = []
            scheduler.run(
                9,
                lambda index, alpha: {"index": index, "alpha": alpha},
                lambda alpha, result: committed.append(result["index"]))
            return opt.trace.to_json(), committed

        class OrderedPool(ScrambledPool):
            def run_batch(self, payloads):
                return super().run_batch(payloads)[::-1]

        scrambled_trace, scrambled_order = run(ScrambledPool())
        ordered_trace, ordered_order = run(OrderedPool())
        assert scrambled_trace == ordered_trace
        assert scrambled_order == ordered_order == list(range(9))

    def test_random_optimizer_kind_supports_batching(self, split):
        base = make_search(split, optimizer_kind="random",
                           suggest_batch=2).run(n_trials=4)
        fanned = make_search(split, optimizer_kind="random", suggest_batch=2,
                             search_workers=2).run(n_trials=4)
        assert base.to_json() == fanned.to_json()

    def test_async_aggregates_objective_stats(self, split):
        result = make_search(split, suggest_batch=2).run(n_trials=4)
        # Per trial: one (0, σ) engine run over T=2 draws = 4 evaluations,
        # with the σ=0 pair collapsed by the per-trial inference cache.
        stats = result.objective_stats
        assert stats["evaluations"] + stats["cache_hits"] == 16
        assert stats["cache_hits"] >= 4

    def test_search_stats_report_scheduling(self, split):
        result = make_search(split, suggest_batch=2,
                             search_workers=2).run(n_trials=4)
        assert result.search_stats["used_backend"] == "process"
        assert result.search_stats["suggest_batch"] == 2
        assert result.search_stats["batches"] == 2
        assert result.search_stats["tasks_shipped"] == 4


# --------------------------------------------------------------------------- #
class TestConstantLiarBookkeeping:
    def _seeded_optimizer(self, rng=0):
        opt = BayesianOptimizer([(0.0, 1.0), (0.0, 1.0)], n_initial=3,
                                n_candidates=64, rng=rng)
        for point, value in [([0.2, 0.6], 0.5), ([0.8, 0.1], 0.1),
                             ([0.35, 0.7], 0.9)]:
            opt.observe(np.array(point), value)
        return opt

    def test_fantasies_never_enter_trace_or_best(self):
        opt = self._seeded_optimizer()
        before = opt.trace.to_json()
        best_before = (opt.trace.best_value, opt.trace.best_point.copy())
        batch = opt.suggest_batch(3)
        assert len(opt.pending_points) == 3
        assert opt.trace.to_json() == before
        assert opt.trace.best_value == best_before[0]
        np.testing.assert_array_equal(opt.trace.best_point, best_before[1])
        for point in batch:
            opt.observe(point, 0.42)
        assert opt.pending_points == []
        assert len(opt.trace) == 6

    def test_fantasies_steer_the_fit(self):
        """Same streams, same observations — the only difference is a
        pending fantasy at the incumbent, and the suggestion moves."""
        plain = self._seeded_optimizer(rng=3)
        lied = self._seeded_optimizer(rng=3)
        lied._pending.append(lied.trace.best_point.copy())
        plain_point = plain.suggest_batch(1)[0]
        lied_point = lied.suggest_batch(1)[0]
        assert not np.array_equal(plain_point, lied_point)

    def test_observe_retracts_only_the_matching_fantasy(self):
        opt = self._seeded_optimizer()
        batch = opt.suggest_batch(2)
        opt.observe(np.array([0.11, 0.22]), 0.3)  # not a pending point
        assert len(opt.pending_points) == 2
        opt.observe(batch[0], 0.6)
        remaining = opt.pending_points
        assert len(remaining) == 1
        np.testing.assert_array_equal(remaining[0], batch[1])

    def test_clear_pending(self):
        opt = self._seeded_optimizer()
        opt.suggest_batch(2)
        opt.clear_pending()
        assert opt.pending_points == []

    def test_nan_observation_in_batch_does_not_poison_fit(self):
        """wandb-next_sample-style: a diverged trial inside a pending batch
        is retracted and excluded, and later batches still work."""
        opt = self._seeded_optimizer()
        batch = opt.suggest_batch(3)
        opt.observe(batch[0], float("nan"))
        assert len(opt.pending_points) == 2
        again = opt.suggest_batch(2)  # fits with 2 fantasies + finite trace
        for point in again:
            assert np.all(np.isfinite(point))
            assert np.all((0.0 <= point) & (point <= 1.0))
        assert opt.trace.best_value == 0.9  # NaN trial never the winner

    def test_liar_value_modes(self):
        values = np.array([0.1, 0.5, 0.9])
        for liar, expected in (("min", 0.1), ("mean", 0.5), ("max", 0.9)):
            opt = BayesianOptimizer([(0.0, 1.0)], liar=liar, rng=0)
            assert opt._liar_value(values) == pytest.approx(expected)
        with pytest.raises(ValueError):
            BayesianOptimizer([(0.0, 1.0)], liar="median")

    def test_suggest_batch_validates_q(self):
        with pytest.raises(ValueError):
            self._seeded_optimizer().suggest_batch(0)


# --------------------------------------------------------------------------- #
class TestStableTieBreak:
    def test_lexicographic_among_exact_ties(self):
        scores = np.array([1.0, 2.0, 2.0, 0.5])
        candidates = np.array([[0.5, 0.5], [0.3, 0.9], [0.3, 0.2], [0.0, 0.0]])
        index = BayesianOptimizer._argmax_stable(scores, candidates)
        assert index == 2  # [0.3, 0.2] < [0.3, 0.9] lexicographically

    def test_candidate_order_cannot_change_the_chosen_point(self):
        rng = np.random.default_rng(0)
        candidates = rng.random((16, 3))
        scores = np.zeros(16)  # everything tied
        chosen = candidates[BayesianOptimizer._argmax_stable(scores, candidates)]
        permutation = rng.permutation(16)
        shuffled = candidates[permutation]
        rechosen = shuffled[BayesianOptimizer._argmax_stable(scores, shuffled)]
        np.testing.assert_array_equal(chosen, rechosen)

    def test_unique_max_matches_numpy(self):
        scores = np.array([0.1, 0.9, 0.3])
        candidates = np.array([[0.0], [1.0], [2.0]])
        assert BayesianOptimizer._argmax_stable(scores, candidates) == \
            int(np.argmax(scores))

    def test_nan_scores_fall_back_to_numpy_behaviour(self):
        scores = np.array([0.2, float("nan"), 0.8])
        candidates = np.array([[0.0], [1.0], [2.0]])
        assert BayesianOptimizer._argmax_stable(scores, candidates) == \
            int(np.argmax(scores))


# --------------------------------------------------------------------------- #
class TestEarlyTermination:
    def test_preserves_the_winner_on_the_seeded_fixture(self, split):
        """With a margin, dominated trials are cut short — and on this
        seeded fixture the winner (alpha, objective, trained weights) is
        exactly the no-margin one.  (Termination is a heuristic on the
        clean reading: a terminated trial can never win *its own* run, but
        an aggressive margin may prune a trial whose drifted utility would
        have won the exhaustive search — which is why this is pinned to a
        fixture rather than claimed in general.)"""
        plain = make_search(split, suggest_batch=2).run(n_trials=4)
        pruned = make_search(split, suggest_batch=2,
                             early_stop_margin=0.02).run(n_trials=4)
        assert sum(pruned.trial_terminated) >= 1
        assert pruned.best_objective == plain.best_objective
        np.testing.assert_array_equal(pruned.best_alpha, plain.best_alpha)
        assert _state_sha256(pruned.best_state) == \
            _state_sha256(plain.best_state)
        for value, terminated in zip(pruned.trial_objectives,
                                     pruned.trial_terminated):
            if terminated:
                assert value < pruned.best_objective

    def test_first_batch_has_no_baseline(self, split):
        pruned = make_search(split, suggest_batch=2,
                             early_stop_margin=0.0).run(n_trials=4)
        assert pruned.trial_terminated[:2] == [False, False]

    def test_deterministic_across_workers(self, split):
        base = make_search(split, suggest_batch=2,
                           early_stop_margin=0.02).run(n_trials=4)
        fanned = make_search(split, suggest_batch=2, early_stop_margin=0.02,
                             search_workers=2).run(n_trials=4)
        assert base.to_json() == fanned.to_json()
        assert base.trial_terminated == fanned.trial_terminated


# --------------------------------------------------------------------------- #
def _square_task(context, payload):
    return {"index": payload["index"],
            "value": payload["x"] ** 2 + context["offset"]}


def _exit_in_worker_task(context, payload):
    if os.getpid() != context["parent"]:
        os._exit(1)  # kill the worker: only in-process execution survives
    return {"index": payload["index"], "value": payload["x"]}


class TestSearchTrialPool:
    def test_serial_backend_runs_in_order(self):
        pool = SearchTrialPool(_square_task, {"offset": 1}, workers=0)
        results = pool.run_batch([{"index": i, "x": i} for i in range(4)])
        assert [r["value"] for r in results] == [1, 2, 5, 10]
        assert pool.used_backend == "serial"
        assert pool.tasks_shipped == 0
        pool.close()

    def test_process_backend_returns_payload_order(self):
        pool = SearchTrialPool(_square_task, {"offset": 0}, workers=2)
        try:
            results = pool.run_batch([{"index": i, "x": i} for i in range(6)])
            assert [r["index"] for r in results] == list(range(6))
            assert [r["value"] for r in results] == [i ** 2 for i in range(6)]
            assert pool.tasks_shipped == 6
            # The pool is persistent: a second batch reuses the workers.
            again = pool.run_batch([{"index": 0, "x": 7}])
            assert again[0]["value"] == 49
        finally:
            pool.close()

    def test_single_payload_runs_in_process(self):
        pool = SearchTrialPool(_square_task, {"offset": 0}, workers=2)
        results = pool.run_batch([{"index": 0, "x": 3}])
        assert results[0]["value"] == 9
        assert pool.tasks_shipped == 0
        pool.close()

    def test_pool_breakage_falls_back_to_serial(self):
        pool = SearchTrialPool(_exit_in_worker_task, {"parent": os.getpid()},
                               workers=2)
        try:
            with pytest.warns(RuntimeWarning, match="fell back"):
                results = pool.run_batch(
                    [{"index": i, "x": i * 10} for i in range(3)])
            assert [r["value"] for r in results] == [0, 10, 20]
            assert pool.fell_back
            # Later batches stay serial without re-warning.
            again = pool.run_batch([{"index": 0, "x": 5}, {"index": 1, "x": 6}])
            assert [r["value"] for r in again] == [5, 6]
        finally:
            pool.close()

    def test_deterministic_task_error_propagates(self):
        def boom(context, payload):
            raise RuntimeError("trial exploded")

        pool = SearchTrialPool(boom, {}, workers=0)
        with pytest.raises(RuntimeError, match="trial exploded"):
            pool.run_batch([{"index": 0}, {"index": 1}])
        pool.close()

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown search backend"):
            SearchTrialPool(_square_task, {}, workers=2,
                            backend="shared_memory")


# --------------------------------------------------------------------------- #
class TestSchedulerValidation:
    def test_invalid_arguments(self, split):
        with pytest.raises(ValueError):
            make_search(split, suggest_batch=0)
        with pytest.raises(ValueError):
            make_search(split, search_workers=-1)
        with pytest.raises(ValueError):
            make_search(split, early_stop_margin=-0.1)
        with pytest.raises(ValueError):
            AsyncTrialScheduler(object(), object(), suggest_batch=0)

    def test_custom_objective_requires_engine_contract(self, split):
        train_set, _ = split

        class Flat:
            def evaluate(self, model):
                return 0.0

        model = build_mlp(256, depth=3, width=16, num_classes=10, rng=5)
        space = DropoutSearchSpace(model)
        search = BayesFTSearch(space, Flat(), train_set, suggest_batch=2,
                               rng=0)
        with pytest.raises(TypeError, match="async search"):
            search.run(n_trials=2)
